#!/usr/bin/env python3
"""Repo-specific lint rules for the SilkRoad reproduction.

Run from anywhere: paths are resolved relative to the repository root.
Registered as the `lint` ctest, so tier-1 enforces it.

Rules
-----
R1  no raw assert( in src/        — library code must use SR_CHECK/SR_DCHECK
                                    (check/sr_check.h); assert() vanishes in
                                    the default RelWithDebInfo build.
                                    static_assert is always fine.
R2  no rand()/std::rand anywhere  — simulations must draw from sim::Rng so
                                    every run is seed-reproducible.
R3  no <iostream> in src/         — library code reports through return
                                    values, strings, or stderr (cstdio);
                                    iostreams drag in static initializers.
R4  #pragma once in every header  — all .h files, repo-wide.
R5  no ad-hoc `struct ...Stats` in src/ outside src/obs/ — counters belong in
                                    the obs::MetricsRegistry (DESIGN.md §9);
                                    the three legacy snapshot-view structs
                                    (assembled FROM the registry) are
                                    grandfathered explicitly.
R6  no printf/fprintf in src/ outside src/obs/ and src/check/ — library code
                                    reports through the metrics registry,
                                    trace ring, or returned strings
                                    (DESIGN.md §10); only the observability
                                    and check layers own process output.
                                    snprintf into buffers is fine.
R7  no raw update-lifecycle TraceEvents (TraceEventKind::kUpdate*) and no
                                    direct TraceRing use in src/fault/ or
                                    src/deploy/ — the update lifecycle is
                                    observed through obs::SpanCollector
                                    (DESIGN.md §12), which keeps one causal
                                    record per intent instead of per-layer
                                    fragments; the per-switch trace ring
                                    belongs to the switch that owns it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tests", "bench", "examples"]
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

# sr_check.h implements the macros assert() users migrate to, and mentions
# assert( in its documentation; it is the single allowed exception to R1.
R1_EXEMPT = {Path("src/check/sr_check.h")}

# Legacy Stats structs kept as snapshot views over the metrics registry —
# they hold no state of their own and are allowed to stay for API stability.
# Do NOT add to this list: new counters go through obs::MetricsRegistry.
R5_EXEMPT = {
    Path("src/core/silkroad_switch.h"),
    Path("src/lb/scenario.h"),
    Path("src/lb/packet_level.h"),
}

RAW_ASSERT = re.compile(r"(?<![_\w])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")
RAW_RAND = re.compile(r"(?<![_\w])(?:std::)?rand\s*\(\s*\)")
IOSTREAM = re.compile(r"^\s*#\s*include\s*<iostream>")
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\s*$")
STATS_STRUCT = re.compile(r"\bstruct\s+\w*Stats\b")
# Lookbehind keeps snprintf/vsnprintf (buffer formatting) out of R6's reach.
RAW_PRINTF = re.compile(r"(?<![\w.:])(?:std::)?f?printf\s*\(")
UPDATE_TRACE = re.compile(r"TraceEventKind\s*::\s*kUpdate\w*|\bTraceRing\b")
LINE_COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    """Removes // comments (string literals with // are not used for code
    the rules below target, so this cheap strip is sufficient)."""
    return LINE_COMMENT.sub("", line)


def iter_files():
    for dirname in SOURCE_DIRS:
        root = REPO_ROOT / dirname
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def main() -> int:
    problems: list[str] = []

    for path in iter_files():
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        in_src = rel.parts[0] == "src"

        if path.suffix in {".h", ".hpp"} and not any(
            PRAGMA_ONCE.match(line) for line in lines
        ):
            problems.append(f"{rel}: header lacks '#pragma once' (R4)")

        for lineno, raw_line in enumerate(lines, start=1):
            line = strip_comment(raw_line)

            if in_src and rel not in R1_EXEMPT:
                no_static = STATIC_ASSERT.sub("", line)
                if RAW_ASSERT.search(no_static):
                    problems.append(
                        f"{rel}:{lineno}: raw assert() in library code — use "
                        f"SR_CHECK/SR_DCHECK from check/sr_check.h (R1)"
                    )

            if RAW_RAND.search(line):
                problems.append(
                    f"{rel}:{lineno}: rand()/std::rand() — use sim::Rng for "
                    f"seed-reproducible randomness (R2)"
                )

            if in_src and IOSTREAM.match(line):
                problems.append(
                    f"{rel}:{lineno}: <iostream> in library code (R3)"
                )

            if (
                in_src
                and rel.parts[1] != "obs"
                and rel not in R5_EXEMPT
                and STATS_STRUCT.search(line)
            ):
                problems.append(
                    f"{rel}:{lineno}: ad-hoc Stats struct — register the "
                    f"counters in obs::MetricsRegistry instead (R5)"
                )

            if (
                in_src
                and rel.parts[1] not in {"obs", "check"}
                and RAW_PRINTF.search(line)
            ):
                problems.append(
                    f"{rel}:{lineno}: printf/fprintf in library code — report "
                    f"through metrics, traces, or returned strings (R6)"
                )

            if (
                in_src
                and rel.parts[1] in {"fault", "deploy"}
                and UPDATE_TRACE.search(line)
            ):
                problems.append(
                    f"{rel}:{lineno}: raw update-lifecycle TraceEvent/"
                    f"TraceRing in {rel.parts[1]}/ — record the leg on the "
                    f"obs::SpanCollector instead (R7)"
                )

    if problems:
        print(f"lint: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
