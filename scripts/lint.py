#!/usr/bin/env python3
"""Thin shim: the repo linter is the token-aware srlint engine in
tools/srlint/ (DESIGN.md §13). This file keeps the historical entry point —
the `lint` ctest and scripts/check.sh invoke it — and forwards everything.

Run `python3 tools/srlint --list-rules` for the rule catalog R1–R14.
"""

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":
    os.execv(
        sys.executable,
        [sys.executable, str(REPO_ROOT / "tools" / "srlint"), *sys.argv[1:]],
    )
