#!/usr/bin/env bash
# Thread-safety analysis gate + self-test (DESIGN.md §13).
#
# Two halves, both required:
#
#   1. The library must build CLEAN with clang -Wthread-safety promoted to an
#      error (SILKROAD_THREAD_SAFETY=ON) — every sr::Mutex acquisition matches
#      its SR_GUARDED_BY/SR_REQUIRES annotations.
#   2. The committed negative fixture (tests/thread_safety_negative.cc, a
#      guarded field written without the lock) must FAIL to compile under the
#      same flags. If it ever compiles, the annotation shim has silently
#      no-op'd (wrong compiler, missing attribute) and half 1 proves nothing.
#
# Skips with a notice when clang++ is not installed (CI always has it).
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang++ > /dev/null; then
  echo "thread_safety_selftest: clang++ not installed — skipping (CI runs it)"
  exit 0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR=build-check-tsa
LAUNCHER_ARGS=()
if command -v ccache > /dev/null; then
  LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "=== thread-safety: library must build clean ==="
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_COMPILER=clang++ \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSILKROAD_THREAD_SAFETY=ON \
  "${LAUNCHER_ARGS[@]}" \
  > "$BUILD_DIR.configure.log" 2>&1 || {
  tail -40 "$BUILD_DIR.configure.log"
  exit 1
}
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== thread-safety: negative fixture must FAIL to build ==="
NEGATIVE_LOG="$BUILD_DIR.negative.log"
if cmake --build "$BUILD_DIR" --target thread_safety_negative -j "$JOBS" \
    > "$NEGATIVE_LOG" 2>&1; then
  echo "FAIL: tests/thread_safety_negative.cc compiled — the" \
       "-Werror=thread-safety-analysis gate is not biting" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$NEGATIVE_LOG"; then
  echo "FAIL: negative fixture failed for a reason other than" \
       "thread-safety analysis:" >&2
  tail -40 "$NEGATIVE_LOG" >&2
  exit 1
fi
echo "negative fixture rejected with a thread-safety diagnostic, as required"

echo "thread_safety_selftest: PASS"
