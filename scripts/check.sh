#!/usr/bin/env bash
# Full correctness matrix for the SilkRoad reproduction:
#
#   1. plain        — RelWithDebInfo, -Werror, build + ctest (tier-1)
#   2. asan+ubsan   — Debug (so SR_DCHECKs are live) + ASan + UBSan, ctest
#   3. clang-tidy   — static analysis over src/ (skipped when clang-tidy is
#                     not installed; CI always has it)
#   4. lint         — tools/srlint repo rules (via the scripts/lint.py shim)
#
# Extra stages, not in the default list (DESIGN.md §13):
#   static          — the full analyzer matrix: srlint + its engine test,
#                     clang thread-safety build + negative self-test,
#                     cppcheck, and clang scan-build. Tool-gated: anything
#                     not installed is skipped with a notice; CI runs all.
#   tsan            — ThreadSanitizer build + ctest
#
# Usage: scripts/check.sh [stage ...]   (default: all stages)
# Build trees land in build-check-<stage>/ so the developer's own build/ is
# never touched.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(plain asan-ubsan clang-tidy lint)
fi

run_stage() {
  echo
  echo "=== check.sh stage: $1 ==="
}

configure_build_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" > "$dir.configure.log" 2>&1 || {
    tail -40 "$dir.configure.log"
    return 1
  }
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    plain)
      run_stage "plain (-Werror)"
      configure_build_test build-check-plain \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSILKROAD_WERROR=ON
      ;;
    asan-ubsan)
      run_stage "ASan+UBSan (Debug: SR_DCHECKs live)"
      configure_build_test build-check-asan \
        -DCMAKE_BUILD_TYPE=Debug -DSILKROAD_ASAN=ON -DSILKROAD_UBSAN=ON
      ;;
    tsan)
      run_stage "TSan"
      configure_build_test build-check-tsan \
        -DCMAKE_BUILD_TYPE=Debug -DSILKROAD_TSAN=ON
      ;;
    clang-tidy)
      run_stage "clang-tidy"
      if ! command -v clang-tidy > /dev/null; then
        echo "clang-tidy not installed — skipping (CI runs it)"
        continue
      fi
      cmake -B build-check-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        > build-check-tidy.configure.log 2>&1
      # Run over library + test sources; headers are covered via
      # HeaderFilterRegex in .clang-tidy.
      find src tests -name '*.cc' -print0 |
        xargs -0 -P "$JOBS" -n 8 clang-tidy -p build-check-tidy --quiet
      ;;
    lint)
      run_stage "custom lint"
      python3 scripts/lint.py
      ;;
    static)
      run_stage "static analysis matrix (srlint, thread-safety, cppcheck, scan-build)"
      python3 scripts/lint.py
      python3 tests/srlint_test.py
      scripts/thread_safety_selftest.sh
      if command -v cppcheck > /dev/null; then
        cppcheck --enable=warning,portability --std=c++20 --inline-suppr \
          --suppressions-list=.cppcheck-suppressions \
          --error-exitcode=1 -I src src
      else
        echo "cppcheck not installed — skipping (CI runs it)"
      fi
      if command -v scan-build > /dev/null; then
        scan-build cmake -B build-check-scan -S . -DCMAKE_BUILD_TYPE=Debug \
          > build-check-scan.configure.log 2>&1
        scan-build --status-bugs cmake --build build-check-scan -j "$JOBS"
      else
        echo "scan-build not installed — skipping (CI runs it)"
      fi
      ;;
    *)
      echo "unknown stage: $stage (known: plain asan-ubsan tsan clang-tidy lint static)" >&2
      exit 2
      ;;
  esac
done

echo
echo "check.sh: all requested stages passed"
