#!/usr/bin/env bash
# Full correctness matrix for the SilkRoad reproduction:
#
#   1. plain        — RelWithDebInfo, -Werror, build + ctest (tier-1)
#   2. asan+ubsan   — Debug (so SR_DCHECKs are live) + ASan + UBSan, ctest
#   3. clang-tidy   — static analysis over src/ (skipped when clang-tidy is
#                     not installed; CI always has it)
#   4. lint         — scripts/lint.py repo rules
#
# Usage: scripts/check.sh [stage ...]   (default: all stages)
# Build trees land in build-check-<stage>/ so the developer's own build/ is
# never touched.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(plain asan-ubsan clang-tidy lint)
fi

run_stage() {
  echo
  echo "=== check.sh stage: $1 ==="
}

configure_build_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" > "$dir.configure.log" 2>&1 || {
    tail -40 "$dir.configure.log"
    return 1
  }
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    plain)
      run_stage "plain (-Werror)"
      configure_build_test build-check-plain \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSILKROAD_WERROR=ON
      ;;
    asan-ubsan)
      run_stage "ASan+UBSan (Debug: SR_DCHECKs live)"
      configure_build_test build-check-asan \
        -DCMAKE_BUILD_TYPE=Debug -DSILKROAD_ASAN=ON -DSILKROAD_UBSAN=ON
      ;;
    tsan)
      run_stage "TSan"
      configure_build_test build-check-tsan \
        -DCMAKE_BUILD_TYPE=Debug -DSILKROAD_TSAN=ON
      ;;
    clang-tidy)
      run_stage "clang-tidy"
      if ! command -v clang-tidy > /dev/null; then
        echo "clang-tidy not installed — skipping (CI runs it)"
        continue
      fi
      cmake -B build-check-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        > build-check-tidy.configure.log 2>&1
      # Run over library + test sources; headers are covered via
      # HeaderFilterRegex in .clang-tidy.
      find src tests -name '*.cc' -print0 |
        xargs -0 -P "$JOBS" -n 8 clang-tidy -p build-check-tidy --quiet
      ;;
    lint)
      run_stage "custom lint"
      python3 scripts/lint.py
      ;;
    *)
      echo "unknown stage: $stage (known: plain asan-ubsan tsan clang-tidy lint)" >&2
      exit 2
      ;;
  esac
done

echo
echo "check.sh: all requested stages passed"
