#!/usr/bin/env python3
"""Bench-regression gate: compare candidate BENCH_*.json against baselines.

The bench harnesses emit their headline numbers as BENCH_<name>.json (obs
JSON exporter format, DESIGN.md §9). This gate re-runs the deterministic
benches in CI and fails if any headline drifts beyond its tolerance, so a
perf- or model-regression cannot land silently.

Usage:
  scripts/bench_gate.py --candidate-dir /tmp/bench_out
  scripts/bench_gate.py --candidate-dir /tmp/bench_out --baseline-dir bench/baselines
  scripts/bench_gate.py --self-test

Comparison rule per metric:
  pass iff |candidate - baseline| <= abs_tol + rel_tol * |baseline|

Tolerances come from <baseline-dir>/tolerances.json:
  {
    "default_rel_tol": 0.05,
    "default_abs_tol": 1e-9,
    "overrides": { "<bench>.<metric>": {"rel_tol": 0.2, "abs_tol": 1.0} }
  }
Override keys are "<bench>.<metric>" where <bench> is the BENCH_<bench>.json
stem and <metric> the sample name (labels are appended as {labels} when
present). Missing benches or metrics on either side fail the gate: a deleted
headline is a regression until the baseline is re-recorded.

Coverage: every bench target declared in bench/CMakeLists.txt must either
have a committed baseline or an EXEMPT_BENCHES entry (with a reason) below —
an unbaselined, unexempted bench fails the gate, as does a candidate
BENCH_*.json with no baseline. A bench can never land ungated by omission.

To refresh baselines intentionally (tolerated drift or a model change), run
the benches with SILKROAD_BENCH_JSON_DIR=bench/baselines and commit the
diff; in CI, apply the `perf-baseline-override` PR label to skip the gate.

Exit codes: 0 all within tolerance, 1 regression/missing data, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent.parent / "bench" / "baselines"

# Benches that intentionally have no committed baseline. Every bench target in
# bench/CMakeLists.txt must either have a BENCH_<name>.json baseline or an
# entry here with the reason — anything else fails the gate, so a new bench
# cannot land ungated by omission.
EXEMPT_BENCHES = {
    "micro_asic": "google-benchmark harness: raw ns/op timings with no "
                  "BENCH_*.json headlines; machine-dependent, nothing stable "
                  "to pin",
}


def known_benches(bench_dir: Path) -> set[str]:
    """Bench target names declared in bench/CMakeLists.txt: the members of
    set(SILKROAD_BENCHES ...) plus any standalone add_executable(name ...)."""
    cmake = bench_dir / "CMakeLists.txt"
    if not cmake.is_file():
        return set()
    text = cmake.read_text()
    names: set[str] = set()
    m = re.search(r"set\(SILKROAD_BENCHES\s+([^)]*)\)", text)
    if m:
        names.update(m.group(1).split())
    for m in re.finditer(r"add_executable\((\w+)", text):
        if m.group(1) != "${bench_name}":
            names.add(m.group(1))
    return names


def check_coverage(baseline_dir: Path) -> int:
    """Returns the number of benches neither baselined nor exempted (and
    flags stale exemptions/baselines for benches that no longer exist)."""
    benches = known_benches(baseline_dir.parent)
    if not benches:
        print(f"bench_gate: no bench/CMakeLists.txt next to {baseline_dir} — "
              f"skipping coverage check")
        return 0
    baselined = {p.stem.removeprefix("BENCH_")
                 for p in baseline_dir.glob("BENCH_*.json")}
    failures = 0
    for bench in sorted(benches - baselined - set(EXEMPT_BENCHES)):
        print(f"FAIL coverage: bench '{bench}' has neither a baseline "
              f"(bench/baselines/BENCH_{bench}.json) nor an EXEMPT_BENCHES "
              f"entry in scripts/bench_gate.py")
        failures += 1
    for bench in sorted((baselined | set(EXEMPT_BENCHES)) - benches):
        print(f"FAIL coverage: '{bench}' is baselined or exempted but is not "
              f"a bench target in bench/CMakeLists.txt (renamed? clean up)")
        failures += 1
    for bench in sorted(baselined & set(EXEMPT_BENCHES)):
        print(f"FAIL coverage: '{bench}' is both baselined and exempted — "
              f"drop one")
        failures += 1
    return failures


def load_bench_json(path: Path) -> dict[str, float]:
    """Parses one BENCH_*.json into {metric_key: value}."""
    with path.open() as f:
        doc = json.load(f)
    metrics = {}
    for sample in doc.get("metrics", []):
        key = sample["name"]
        if sample.get("labels"):
            key += "{" + sample["labels"] + "}"
        metrics[key] = float(sample["value"])
    return metrics


def load_tolerances(baseline_dir: Path) -> dict:
    path = baseline_dir / "tolerances.json"
    if not path.is_file():
        return {"default_rel_tol": 0.05, "default_abs_tol": 1e-9, "overrides": {}}
    with path.open() as f:
        return json.load(f)


def tolerance_for(tolerances: dict, bench: str, metric: str) -> tuple[float, float]:
    override = tolerances.get("overrides", {}).get(f"{bench}.{metric}", {})
    rel = override.get("rel_tol", tolerances.get("default_rel_tol", 0.05))
    abs_ = override.get("abs_tol", tolerances.get("default_abs_tol", 1e-9))
    return float(rel), float(abs_)


def compare(baseline_dir: Path, candidate_dir: Path) -> int:
    """Returns the number of failures; prints a verdict per metric drift."""
    tolerances = load_tolerances(baseline_dir)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"bench_gate: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        return 1

    failures = check_coverage(baseline_dir)
    checked = 0
    for cand_path in sorted(candidate_dir.glob("BENCH_*.json")):
        bench = cand_path.stem.removeprefix("BENCH_")
        if not (baseline_dir / cand_path.name).is_file() \
                and bench not in EXEMPT_BENCHES:
            print(f"FAIL {bench}: candidate output has no baseline — record "
                  f"one (SILKROAD_BENCH_JSON_DIR=bench/baselines) or add an "
                  f"EXEMPT_BENCHES entry")
            failures += 1
    for base_path in baseline_files:
        bench = base_path.stem.removeprefix("BENCH_")
        cand_path = candidate_dir / base_path.name
        if not cand_path.is_file():
            print(f"FAIL {bench}: candidate file {cand_path} missing "
                  f"(bench not run or renamed)")
            failures += 1
            continue
        base = load_bench_json(base_path)
        cand = load_bench_json(cand_path)
        for metric, base_value in sorted(base.items()):
            checked += 1
            if metric not in cand:
                print(f"FAIL {bench}.{metric}: missing from candidate "
                      f"(headline deleted?)")
                failures += 1
                continue
            cand_value = cand[metric]
            rel, abs_ = tolerance_for(tolerances, bench, metric)
            budget = abs_ + rel * abs(base_value)
            drift = abs(cand_value - base_value)
            if math.isnan(cand_value) or drift > budget:
                print(f"FAIL {bench}.{metric}: baseline {base_value:g}, "
                      f"candidate {cand_value:g}, |drift| {drift:g} > "
                      f"allowed {budget:g}")
                failures += 1
        for metric in sorted(set(cand) - set(base)):
            # New headlines are fine to add, but flag them so the baseline
            # gets re-recorded (otherwise they are never gated).
            print(f"NOTE {bench}.{metric}: in candidate but not baseline — "
                  f"re-record baselines to start gating it")

    print(f"bench_gate: {checked} metrics checked across "
          f"{len(baseline_files)} benches, {failures} failure(s)")
    return failures


def self_test(baseline_dir: Path, tmp_root: Path) -> int:
    """Verifies the gate logic: identical dirs pass, perturbed dirs fail."""
    import shutil

    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"bench_gate --self-test: no baselines in {baseline_dir}",
              file=sys.stderr)
        return 1

    identical = tmp_root / "identical"
    perturbed = tmp_root / "perturbed"
    for d in (identical, perturbed):
        if d.exists():
            shutil.rmtree(d)
        d.mkdir(parents=True)
    for path in baseline_files:
        shutil.copy(path, identical / path.name)
        shutil.copy(path, perturbed / path.name)

    # Perturb one metric of the first bench far beyond any sane tolerance.
    victim = perturbed / baseline_files[0].name
    doc = json.loads(victim.read_text())
    if not doc.get("metrics"):
        print("bench_gate --self-test: first baseline has no metrics",
              file=sys.stderr)
        return 1
    original = doc["metrics"][0]["value"]
    doc["metrics"][0]["value"] = original * 10 + 1e6
    victim.write_text(json.dumps(doc))

    print("--- self-test: identical candidate must pass ---")
    if compare(baseline_dir, identical) != 0:
        print("bench_gate --self-test: FAILED (identical candidate rejected)",
              file=sys.stderr)
        return 1
    print("--- self-test: perturbed candidate must fail ---")
    if compare(baseline_dir, perturbed) == 0:
        print("bench_gate --self-test: FAILED (perturbation not caught)",
              file=sys.stderr)
        return 1
    print("bench_gate --self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json headlines against committed baselines.")
    parser.add_argument("--baseline-dir", type=Path,
                        default=DEFAULT_BASELINE_DIR)
    parser.add_argument("--candidate-dir", type=Path,
                        help="directory holding freshly generated BENCH_*.json")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected regression")
    parser.add_argument("--tmp-dir", type=Path, default=Path("/tmp/bench_gate"),
                        help="scratch space for --self-test")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.baseline_dir, args.tmp_dir)
    if args.candidate_dir is None:
        parser.error("--candidate-dir is required unless --self-test")
    if not args.candidate_dir.is_dir():
        print(f"bench_gate: candidate dir {args.candidate_dir} does not exist",
              file=sys.stderr)
        return 2
    return 1 if compare(args.baseline_dir, args.candidate_dir) else 0


if __name__ == "__main__":
    sys.exit(main())
