// Network-wide deployment (paper §5.3): assign VIPs to switch layers of a
// Clos fabric by bin packing (minimize the bottleneck SRAM utilization under
// capacity budgets), then study incremental deployment and a switch failure.
//
//   ./build/examples/network_wide
#include <cstdio>

#include "deploy/topology.h"
#include "deploy/vip_assignment.h"
#include "sim/random.h"

using namespace silkroad;
using namespace silkroad::deploy;

int main() {
  // A pod: 48 ToRs, 16 aggregation switches, 4 cores. Each switch budgets
  // 50 MB of SRAM for load balancing and 6.4 Tbps of forwarding capacity.
  ClosTopology topo(48, 16, 4, /*sram=*/50u << 20, /*gbps=*/6400);

  // 200 VIPs with heavy-tailed connection counts and volumes: a few
  // elephants (inbound frontends), many mice (internal services).
  sim::Rng rng(7);
  std::vector<VipDemand> demands;
  for (int v = 0; v < 200; ++v) {
    VipDemand d;
    d.vip = {net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 443};
    d.active_connections =
        static_cast<std::uint64_t>(rng.pareto(2e4, 1.1));  // up to tens of M
    d.traffic_gbps = rng.pareto(2.0, 1.2);
    d.dips = 50 + rng.uniform_int(400);
    d.ipv6 = rng.bernoulli(0.5);
    demands.push_back(d);
  }

  std::printf("== full deployment (every switch SilkRoad-enabled) ==\n");
  const auto full = assign_vips(topo, demands);
  std::printf("%s\n", format_assignment(topo, full).c_str());

  // Incremental deployment: only 12 ToRs and the cores run SilkRoad yet.
  std::printf("== incremental deployment (12 ToRs + 4 cores enabled) ==\n");
  ClosTopology partial = topo;
  partial.enable_only(Layer::kToR, 12);
  partial.enable_only(Layer::kAgg, 0);
  const auto inc = assign_vips(partial, demands);
  std::printf("%s\n", format_assignment(partial, inc).c_str());

  // Switch failure (§7): ongoing connections of the failed switch re-hash on
  // a peer via ECMP; those bound to the latest pool version survive, the
  // stale fraction breaks. Use 5% stale (typical refcount mix under a
  // moderate update rate).
  std::printf("== failure of one ToR switch ==\n");
  for (const double stale : {0.01, 0.05, 0.20}) {
    const auto broken =
        switch_failure_broken_conns(topo, full, demands, /*failed=*/0, stale);
    std::printf("stale-version fraction %4.0f%% -> %llu broken connections\n",
                100 * stale, static_cast<unsigned long long>(broken));
  }
  std::printf(
      "\n(the same failure under an SLB deployment loses that SLB's entire "
      "ConnTable — the switch case is no worse, paper §7)\n");
  return 0;
}
