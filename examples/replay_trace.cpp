// Trace-driven evaluation: export a workload to CSV, read it back, and
// replay it through a SilkRoad switch — the path an operator takes to test
// SilkRoad against their own production flow/update traces.
//
//   ./build/examples/replay_trace [flows.csv updates.csv]
//   (without arguments, generates a synthetic trace in /tmp and replays it)
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/silkroad_switch.h"
#include "lb/scenario.h"
#include "workload/trace.h"

using namespace silkroad;

namespace {

net::Endpoint vip_ep() { return *net::Endpoint::parse("20.0.0.1:80"); }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000u + static_cast<std::uint32_t>(i)), 8080});
  }
  return dips;
}

/// Produces a ten-minute synthetic trace and writes both CSV files.
void generate_trace(const std::string& flows_path,
                    const std::string& updates_path) {
  sim::Simulator sim;
  std::vector<workload::Flow> flows;
  workload::FlowGenerator gen(
      sim, {{vip_ep(), 2000.0, workload::FlowProfile::hadoop(), false}}, 77);
  gen.start(
      10 * sim::kMinute,
      [&flows](const workload::Flow& f) { flows.push_back(f); },
      [](const workload::Flow&) {});
  sim.run();

  workload::UpdateGenerator ugen({.seed = 78}, vip_ep(), make_dips(16));
  const auto updates = ugen.generate(8.0, 10 * sim::kMinute);

  std::ofstream flows_out(flows_path);
  workload::write_flow_trace(flows_out, flows);
  std::ofstream updates_out(updates_path);
  workload::write_update_trace(updates_out, updates);
  std::printf("generated %zu flows and %zu updates -> %s, %s\n", flows.size(),
              updates.size(), flows_path.c_str(), updates_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string flows_path = "/tmp/silkroad_flows.csv";
  std::string updates_path = "/tmp/silkroad_updates.csv";
  if (argc == 3) {
    flows_path = argv[1];
    updates_path = argv[2];
  } else {
    generate_trace(flows_path, updates_path);
  }

  // Read the traces back (the operator's entry point).
  std::ifstream flows_in(flows_path);
  std::ifstream updates_in(updates_path);
  std::string error;
  const auto flows = workload::read_flow_trace(flows_in, &error);
  if (!flows) {
    std::fprintf(stderr, "cannot read %s: %s\n", flows_path.c_str(),
                 error.c_str());
    return 1;
  }
  const auto updates = workload::read_update_trace(updates_in, &error);
  if (!updates) {
    std::fprintf(stderr, "cannot read %s: %s\n", updates_path.c_str(),
                 error.c_str());
    return 1;
  }

  // Replay through a SilkRoad switch under the standard scenario driver,
  // which audits PCC exactly (and attributes server-down breakage to the
  // servers, not the balancer).
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(200'000);
  config.idle_timeout = 30 * sim::kMinute;  // clean up flows missing a FIN
  core::SilkRoadSwitch lb(sim, config);

  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = 10 * sim::kMinute;
  scenario_config.vip_loads = {
      {vip_ep(), 0.0, workload::FlowProfile::hadoop(), false}};
  scenario_config.dip_pools = {make_dips(16)};
  scenario_config.updates = *updates;
  scenario_config.replay_flows = *flows;
  lb::Scenario scenario(sim, lb, scenario_config);
  const auto stats = scenario.run();

  std::printf("replayed %zu flows, %zu updates: %llu PCC violations "
              "(%.5f%%)\n",
              flows->size(), updates->size(),
              static_cast<unsigned long long>(stats.violations),
              100.0 * stats.violation_fraction);
  const auto& sw_stats = lb.stats();
  std::printf("switch: %llu learns, %llu inserts, %llu erases, %llu aged "
              "out, %llu updates completed\n",
              static_cast<unsigned long long>(sw_stats.learns),
              static_cast<unsigned long long>(sw_stats.inserts),
              static_cast<unsigned long long>(sw_stats.erases),
              static_cast<unsigned long long>(sw_stats.aged_out),
              static_cast<unsigned long long>(sw_stats.updates_completed));
  return 0;
}
