// A top-of-rack switch under realistic cluster load: compares SilkRoad,
// Duet (Migrate-10min / Migrate-1min), a pure software load balancer, and
// stateless ECMP on the same workload — flow arrivals, heavy-tailed
// durations, and a rolling-reboot update stream.
//
//   ./build/examples/datacenter_tor
#include <cstdio>
#include <memory>

#include "core/silkroad_switch.h"
#include "lb/duet.h"
#include "lb/ecmp_lb.h"
#include "lb/scenario.h"
#include "lb/slb.h"

using namespace silkroad;

namespace {

lb::ScenarioConfig make_workload() {
  lb::ScenarioConfig config;
  config.horizon = 5 * sim::kMinute;
  config.seed = 2024;
  sim::Rng seeder(99);
  for (int v = 0; v < 8; ++v) {
    const net::Endpoint vip{net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 80};
    config.vip_loads.push_back(
        {vip, /*arrivals_per_min=*/1200.0, workload::FlowProfile::hadoop(),
         /*ipv6=*/false});
    std::vector<net::Endpoint> dips;
    for (int d = 0; d < 20; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A000000 +
                                         static_cast<std::uint32_t>(v * 256 + d)),
                      20});
    }
    config.dip_pools.push_back(dips);
    workload::UpdateGenerator gen({.seed = seeder.next()}, vip,
                                  config.dip_pools.back());
    auto updates = gen.generate(/*rate_per_min=*/2.0, config.horizon);
    config.updates.insert(config.updates.end(), updates.begin(), updates.end());
  }
  return config;
}

void report(const char* name, const lb::ScenarioStats& stats) {
  std::printf("%-18s %10llu %12llu %13.4f%% %12.1f%%\n", name,
              static_cast<unsigned long long>(stats.flows),
              static_cast<unsigned long long>(stats.violations),
              100.0 * stats.violation_fraction,
              100.0 * stats.slb_traffic_fraction);
}

}  // namespace

int main() {
  std::printf("ToR workload: 8 VIPs x 1200 conns/min, 20 DIPs each, "
              "16 updates/min total, 5 minutes\n\n");
  std::printf("%-18s %10s %12s %14s %13s\n", "balancer", "flows",
              "violations", "violation%", "SLB traffic");

  {
    sim::Simulator sim;
    core::SilkRoadSwitch::Config config;
    config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
    core::SilkRoadSwitch lb(sim, config);
    lb::Scenario scenario(sim, lb, make_workload());
    report("silkroad", scenario.run());
  }
  {
    sim::Simulator sim;
    lb::DuetLoadBalancer duet(
        sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
              .migrate_period = 10 * sim::kMinute});
    lb::Scenario scenario(sim, duet, make_workload());
    report("duet-10min", scenario.run());
  }
  {
    sim::Simulator sim;
    lb::DuetLoadBalancer duet(
        sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
              .migrate_period = sim::kMinute});
    lb::Scenario scenario(sim, duet, make_workload());
    report("duet-1min", scenario.run());
  }
  {
    sim::Simulator sim;
    lb::SoftwareLoadBalancer slb;
    lb::Scenario scenario(sim, slb, make_workload());
    report("slb (maglev)", scenario.run());
  }
  {
    sim::Simulator sim;
    lb::EcmpLoadBalancer ecmp;
    lb::Scenario scenario(sim, ecmp, make_workload());
    report("ecmp (stateless)", scenario.run());
  }

  std::printf(
      "\nreading: SilkRoad and the SLB never break connections; the SLB pays "
      "with 100%% software traffic, Duet trades SLB load against broken "
      "connections, and stateless ECMP breaks flows on every update.\n");
  return 0;
}
