// Quickstart: a SilkRoad switch balancing one service through a DIP-pool
// update, with per-connection consistency end to end.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "core/silkroad_switch.h"
#include "deploy/fleet.h"
#include "obs/exporters.h"
#include "obs/journey.h"
#include "obs/scrape_server.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"

using namespace silkroad;

int main() {
  // The simulator provides virtual time for the ASIC's learning filter and
  // the switch CPU's insertion queue.
  sim::Simulator sim;

  // Size the ConnTable for 100K concurrent connections (16-bit digests,
  // 6-bit versions -> 28-bit entries, 4 per 112-bit SRAM word).
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  core::SilkRoadSwitch lb(sim, config);

  // One service: VIP 20.0.0.1:80 backed by four servers.
  const net::Endpoint vip = *net::Endpoint::parse("20.0.0.1:80");
  const std::vector<net::Endpoint> dips = {
      *net::Endpoint::parse("10.0.0.1:8080"),
      *net::Endpoint::parse("10.0.0.2:8080"),
      *net::Endpoint::parse("10.0.0.3:8080"),
      *net::Endpoint::parse("10.0.0.4:8080"),
  };
  lb.add_vip(vip, dips);

  // Open 32 client connections (first packet = SYN selects the DIP and
  // triggers connection learning).
  std::map<int, net::Endpoint> assigned;
  for (int client = 0; client < 32; ++client) {
    net::Packet syn;
    syn.flow = {{net::IpAddress::v4(0x01020300u + static_cast<std::uint32_t>(client)), 40000},
                vip,
                net::Protocol::kTcp};
    syn.syn = true;
    syn.size_bytes = 64;
    const auto result = lb.process_packet(syn);
    assigned.emplace(client, *result.dip);
  }
  std::printf("opened 32 connections across %zu DIPs\n", dips.size());

  // Upgrade a backend: remove 10.0.0.2 (its connections' packets keep
  // flowing to it until they finish — that is PCC), then bring it back.
  lb.request_update({sim.now(), vip, dips[1],
                     workload::UpdateAction::kRemoveDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();  // learning, insertion, and the 3-step update all complete

  int moved = 0;
  for (const auto& [client, dip] : assigned) {
    net::Packet data;
    data.flow = {{net::IpAddress::v4(0x01020300u + static_cast<std::uint32_t>(client)), 40000},
                 vip,
                 net::Protocol::kTcp};
    data.size_bytes = 1200;
    const auto result = lb.process_packet(data);
    if (!(result.dip && *result.dip == dip)) ++moved;
  }
  std::printf("after removing %s: %d of 32 ongoing connections re-mapped "
              "(PCC requires 0)\n",
              dips[1].to_string().c_str(), moved);

  // New connections avoid the removed server.
  int to_removed = 0;
  for (int client = 100; client < 164; ++client) {
    net::Packet syn;
    syn.flow = {{net::IpAddress::v4(0x01020300u + static_cast<std::uint32_t>(client)), 40000},
                vip,
                net::Protocol::kTcp};
    syn.syn = true;
    const auto result = lb.process_packet(syn);
    if (result.dip && *result.dip == dips[1]) ++to_removed;
  }
  std::printf("64 new connections: %d landed on the removed DIP (want 0)\n",
              to_removed);
  sim.run();

  // Rolling reboot completes: the DIP returns and its old version number is
  // reused instead of burning a new one (paper §4.2).
  lb.request_update({sim.now(), vip, dips[1], workload::UpdateAction::kAddDip,
                     workload::UpdateCause::kServiceUpgrade});
  sim.run();
  const auto* versions = lb.version_manager(vip);
  std::printf("after re-adding it: %zu pool versions live, %llu reused\n",
              versions->active_versions(),
              static_cast<unsigned long long>(versions->versions_reused()));

  // --- Live observability (DESIGN.md §10) -----------------------------------
  // Sample every metric each 50 ms of sim time while a churn phase runs:
  // ~1500 new connections over 3 s with a rolling remove/add of one DIP.
  // The recorder derives per-interval rates and p50/p99 latency series.
  obs::TimeSeriesRecorder::Options rec_opts;
  rec_opts.interval = 50 * sim::kMillisecond;
  rec_opts.capacity = 4096;
  obs::TimeSeriesRecorder recorder(lb.metrics(), rec_opts);
  recorder.attach(sim);

  const sim::Time churn_start = sim.now();
  for (int client = 0; client < 1500; ++client) {
    const sim::Time at =
        churn_start + static_cast<sim::Time>(client) * 2 * sim::kMillisecond;
    sim.schedule_at(at, [&lb, vip, client] {
      net::Packet syn;
      syn.flow = {{net::IpAddress::v4(0x05000000u +
                                      static_cast<std::uint32_t>(client)),
                   41000},
                  vip,
                  net::Protocol::kTcp};
      syn.syn = true;
      syn.size_bytes = 64;
      lb.process_packet(syn);
    });
  }
  const net::Endpoint churn_dip = dips[2];
  for (int round = 0; round < 3; ++round) {
    sim.schedule_at(
        churn_start + (round * 2 + 1) * 500 * sim::kMillisecond,
        [&lb, &sim, vip, churn_dip] {
          lb.request_update({sim.now(), vip, churn_dip,
                             workload::UpdateAction::kRemoveDip,
                             workload::UpdateCause::kServiceUpgrade});
        });
    sim.schedule_at(
        churn_start + (round * 2 + 2) * 500 * sim::kMillisecond,
        [&lb, &sim, vip, churn_dip] {
          lb.request_update({sim.now(), vip, churn_dip,
                             workload::UpdateAction::kAddDip,
                             workload::UpdateCause::kServiceUpgrade});
        });
  }
  sim.run_until(churn_start + 4 * sim::kSecond);
  recorder.detach();
  sim.run();  // drain any remaining learning/insertion events

  const auto p99 = recorder.find("silkroad_insert_latency_ns:p99");
  std::printf("\nrecorder: %zu samples, %zu series; insert-latency p99 has "
              "%zu points\n",
              recorder.sample_count(), recorder.series_count(), p99.size());
  const auto journeys = obs::FlowJourneyTracer::reconstruct(lb.trace());
  std::printf("journeys: %zu flows reconstructed from the trace ring "
              "(%llu events dropped to wraparound)\n",
              journeys.size(),
              static_cast<unsigned long long>(lb.trace().dropped()));

  std::printf("\n%s", lb.debug_report().c_str());

  // --- Fleet convergence observatory (DESIGN.md §17) ------------------------
  // Three replicas behind ECMP on a mildly lossy control plane: stream
  // paired remove/add updates, crash and restore one replica mid-churn, and
  // let the FleetObserver derive watermark lag, the convergence SLO, and
  // per-switch digests for the /fleet scrape plane below.
  fault::ControlChannel::Config fleet_channel;
  fleet_channel.base_delay = 200 * sim::kMicrosecond;
  fleet_channel.jitter = 100 * sim::kMicrosecond;
  fleet_channel.drop_probability = 0.05;
  deploy::SilkRoadFleet fleet(sim, config, 3, 0xFEE7ULL, fleet_channel);
  const net::Endpoint fleet_vip = *net::Endpoint::parse("20.0.1.1:80");
  fleet.add_vip(fleet_vip, dips);
  sim.run();
  for (int round = 0; round < 20; ++round) {
    const net::Endpoint& dip = dips[static_cast<std::size_t>(round) % dips.size()];
    fleet.request_update({sim.now(), fleet_vip, dip,
                          workload::UpdateAction::kRemoveDip,
                          workload::UpdateCause::kServiceUpgrade});
    fleet.request_update({sim.now(), fleet_vip, dip,
                          workload::UpdateAction::kAddDip,
                          workload::UpdateCause::kServiceUpgrade});
    if (round == 8) fleet.fail_switch(2);
    if (round == 12) fleet.restore_switch(2);
    sim.run();
  }
  sim.run();
  fleet.observer()->evaluate(sim.now());
  std::printf("\nfleet: %zu/%zu live, converged=%d; observer: head=%llu "
              "slo_ok=%d divergences=%llu (digest self-check %s)\n",
              fleet.live_count(), fleet.size(), fleet.converged() ? 1 : 0,
              static_cast<unsigned long long>(fleet.observer()->head()),
              fleet.observer()->slo_ok() ? 1 : 0,
              static_cast<unsigned long long>(
                  fleet.observer()->divergences()),
              fleet.observer()->verify_digests() ? "ok" : "FAILED");

  // With SILKROAD_TELEMETRY_DIR set, dump all three telemetry formats: the
  // Prometheus text and JSON snapshot of every metric, and the trace ring as
  // Chrome trace-event JSON (open trace.json in chrome://tracing or
  // https://ui.perfetto.dev to see the 3-step update spans per VIP).
  if (const char* dir = std::getenv("SILKROAD_TELEMETRY_DIR")) {
    const std::string base = std::string(dir) + "/";
    const obs::Snapshot snapshot = lb.metrics().snapshot();
    const bool ok =
        obs::write_file(base + "metrics.prom", obs::to_prometheus(snapshot)) &&
        obs::write_file(base + "metrics.json", obs::to_json(snapshot)) &&
        obs::write_file(base + "trace.json",
                        obs::to_chrome_trace(lb.trace())) &&
        obs::write_file(base + "timeseries.json", recorder.to_json()) &&
        obs::write_file(base + "timeseries.csv", recorder.to_csv()) &&
        obs::write_file(base + "journeys.json",
                        obs::FlowJourneyTracer::to_chrome_trace(lb.trace(),
                                                                journeys)) &&
        obs::write_file(base + "tables.json", lb.tables_json()) &&
        obs::write_file(base + "profile.json", obs::to_profile_json(snapshot)) &&
        obs::write_file(base + "imbalance.json", recorder.imbalance_json()) &&
        obs::write_file(base + "capacity.json", lb.capacity().to_json()) &&
        obs::write_file(base + "fleet.json", fleet.observer()->to_json());
    std::printf("telemetry written to %s{metrics.prom,metrics.json,"
                "trace.json,timeseries.json,timeseries.csv,journeys.json,"
                "tables.json,profile.json,imbalance.json,capacity.json,"
                "fleet.json}%s\n",
                base.c_str(), ok ? "" : " (write failed)");
    if (!ok) return 1;
  }

  // With SILKROAD_SCRAPE_PORT set (0 = ephemeral), serve the live telemetry
  // over loopback HTTP so curl/Prometheus can watch:
  //   SILKROAD_SCRAPE_PORT=9100 ./quickstart &
  //   curl localhost:9100/metrics   (also /healthz /timeseries.json /tables)
  // The process lingers SILKROAD_SCRAPE_LINGER_S wall seconds (default 30).
  std::uint16_t scrape_port = 0;
  if (obs::scrape_port_from_env(scrape_port)) {
    obs::ScrapeServer::Options sopts;
    sopts.port = scrape_port;
    obs::ScrapeServer server(sopts);
    server.handle("/metrics", "text/plain; version=0.0.4",
                  [&lb] { return obs::to_prometheus(lb.metrics().snapshot()); });
    server.handle("/timeseries.json", "application/json",
                  [&recorder] { return recorder.to_json(); });
    server.handle("/tables", "application/json",
                  [&lb] { return lb.tables_json(); });
    server.handle("/profile", "application/json", [&lb] {
      return obs::to_profile_json(lb.metrics().snapshot());
    });
    server.handle("/imbalance.json", "application/json",
                  [&recorder] { return recorder.imbalance_json(); });
    server.handle("/capacity", "text/plain",
                  [&lb] { return lb.capacity().to_text(); });
    server.handle("/capacity.json", "application/json",
                  [&lb] { return lb.capacity().to_json(); });
    server.handle("/fleet", "text/plain",
                  [&fleet] { return fleet.observer()->to_text(); });
    server.handle("/fleet.json", "application/json",
                  [&fleet] { return fleet.observer()->to_json(); });
    if (!server.start()) {
      std::printf("scrape server: could not bind 127.0.0.1:%u\n", scrape_port);
      return 1;
    }
    long linger = 30;
    if (const char* s = std::getenv("SILKROAD_SCRAPE_LINGER_S")) {
      linger = std::strtol(s, nullptr, 10);
    }
    std::printf("scrape server on http://127.0.0.1:%u "
                "(/metrics /healthz /timeseries.json /tables /profile "
                "/imbalance.json /capacity /capacity.json /fleet "
                "/fleet.json), lingering %lds\n",
                server.port(), linger);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger));
    server.stop();
    std::printf("scrape server served %llu requests\n",
                static_cast<unsigned long long>(server.requests_served()));
  }
  return 0;
}
