// A fleet of SilkRoad switches behind ECMP, with BFD-style health checking:
// survive a DIP failure (in-place resilient hashing, §7) and a whole-switch
// failure (re-hash onto peers; only stale-version flows break).
//
//   ./build/examples/fleet_failover
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "core/health_checker.h"
#include "deploy/fleet.h"
#include "obs/exporters.h"
#include "obs/scrape_server.h"
#include "obs/timeseries.h"

using namespace silkroad;

namespace {

net::Packet packet_for(std::uint32_t client, const net::Endpoint& vip,
                       bool syn = false) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 40000}, vip,
            net::Protocol::kTcp};
  p.syn = syn;
  p.size_bytes = 200;
  return p;
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  deploy::SilkRoadFleet fleet(sim, config, /*replicas=*/4);

  const net::Endpoint vip = *net::Endpoint::parse("20.0.0.1:80");
  std::vector<net::Endpoint> dips;
  for (int d = 0; d < 16; ++d) {
    dips.push_back({net::IpAddress::v4(0x0A000000u + static_cast<std::uint32_t>(d)), 8080});
  }
  fleet.add_vip(vip, dips);

  // Health checking: one checker (switch 0's BFD sessions) detects the
  // failure; its callback propagates the in-place resilient removal to the
  // rest of the fleet so every member converges.
  std::set<net::Endpoint> dead_servers;
  core::HealthChecker checker(
      sim, fleet.switch_at(0),
      {.probe_interval = sim::kSecond, .failure_threshold = 3},
      [&](const net::Endpoint& dip) { return !dead_servers.contains(dip); });
  checker.set_failure_callback(
      [&](const net::Endpoint& v, const net::Endpoint& dip) {
        for (std::size_t i = 1; i < fleet.size(); ++i) {
          fleet.switch_at(i).handle_dip_failure(v, dip, true);
        }
      });
  for (const auto& dip : dips) checker.watch(vip, dip);

  // Fleet-wide time series: one recorder over the aggregate of all four
  // member registries, sampled every 250 ms of sim time. The
  // silkroad_fleet_switches_live series captures the failover itself.
  obs::TimeSeriesRecorder::Options rec_opts;
  rec_opts.interval = 250 * sim::kMillisecond;
  obs::TimeSeriesRecorder recorder(fleet.snapshot_source(), rec_opts);
  recorder.attach(sim);

  // Optional live scrape endpoint over the fleet-wide aggregate
  // (SILKROAD_SCRAPE_PORT, see quickstart for the endpoint list; /tables
  // shows switch 0's ConnTable).
  std::optional<obs::ScrapeServer> server;
  std::uint16_t scrape_port = 0;
  if (obs::scrape_port_from_env(scrape_port)) {
    obs::ScrapeServer::Options sopts;
    sopts.port = scrape_port;
    server.emplace(sopts);
    server->handle("/metrics", "text/plain; version=0.0.4", [&fleet] {
      return obs::to_prometheus(fleet.metrics_snapshot());
    });
    server->handle("/timeseries.json", "application/json",
                   [&recorder] { return recorder.to_json(); });
    server->handle("/tables", "application/json",
                   [&fleet] { return fleet.switch_at(0).tables_json(); });
    server->handle("/spans", "application/json",
                   [&fleet] { return fleet.spans().to_json(); });
    server->handle("/spans/trace.json", "application/json",
                   [&fleet] { return fleet.spans().to_chrome_trace(); });
    server->handle_prefix("/update", "application/json", [&fleet](
                                         const std::string& suffix) {
      char* end = nullptr;
      const unsigned long long id = std::strtoull(suffix.c_str(), &end, 10);
      if (end == suffix.c_str() || *end != '\0') return std::string();
      return fleet.spans().span_json(id);
    });
    if (server->start()) {
      std::printf("scrape server on http://127.0.0.1:%u\n", server->port());
    }
  }

  // 2000 long-lived connections spread across the fleet.
  std::map<std::uint32_t, net::Endpoint> assigned;
  for (std::uint32_t c = 0; c < 2000; ++c) {
    const auto r = fleet.process_packet(packet_for(c, vip, true));
    assigned.emplace(c, *r.dip);
  }
  sim.run_until(sim.now() + sim::kSecond);
  std::printf("fleet of %zu switches, %zu DIPs, 2000 connections\n",
              fleet.size(), dips.size());

  // --- Event 1: a server dies -------------------------------------------------
  dead_servers.insert(dips[3]);
  sim.run_until(sim.now() + 5 * sim::kSecond);  // BFD detects in ~3 s
  int moved = 0, victims = 0;
  for (auto& [c, dip] : assigned) {
    const auto r = fleet.process_packet(packet_for(c, vip));
    if (!(*r.dip == dip)) {
      ++moved;
      if (dip == dips[3]) ++victims;
      dip = *r.dip;  // those flows re-established elsewhere
    }
  }
  std::printf("\nDIP %s failed: health check detected it in %.0f s\n",
              dips[3].to_string().c_str(),
              sim::to_seconds(checker.detection_latency()));
  std::printf("  %d connections re-mapped, all %d of them victims of the "
              "dead server (no collateral re-mapping)\n",
              moved, victims);

  // --- Event 2: a pool update, then a switch dies --------------------------------
  // The update makes the standing connections "stale" (bound to the previous
  // pool version, pinned per switch). A surviving switch has the same
  // VIPTable but not the dead switch's ConnTable, so exactly the stale flows
  // of the dead switch can re-map.
  fleet.request_update({sim.now(), vip, dips[7],
                        workload::UpdateAction::kRemoveDip,
                        workload::UpdateCause::kServiceUpgrade});
  // (run_until, not run(): the health checker keeps probing forever)
  sim.run_until(sim.now() + sim::kSecond);
  for (auto& [c, dip] : assigned) {
    dip = *fleet.process_packet(packet_for(c, vip)).dip;  // settle post-update
  }
  fleet.fail_switch(2);
  int broken = 0;
  for (const auto& [c, dip] : assigned) {
    const auto r = fleet.process_packet(packet_for(c, vip));
    if (!r.dip || !(*r.dip == dip)) ++broken;
  }
  std::printf("\npool update, then switch 2 failed: %zu of %zu switches "
              "remain\n",
              fleet.live_count(), fleet.size());
  std::printf("  %d of 2000 connections broke — exactly the dead switch's "
              "~1/4 share that was pinned to the pre-update pool version "
              "(paper §7: latest-version flows survive; stale-version flows "
              "lose their ConnTable pin and re-hash under the new pool). "
              "The same blast radius as losing one SLB's ConnTable.\n",
              broken);

  recorder.detach();
  const auto live = recorder.find("silkroad_fleet_switches_live");
  std::printf("\nrecorder: %zu samples; fleet-live series has %zu points "
              "(last value %.0f)\n",
              recorder.sample_count(), live.size(),
              live.empty() ? 0.0 : live.back().value);
  if (server) server->stop();
  return 0;
}
