// Performance isolation (paper §5.2): per-VIP meters throttle a VIP under a
// DDoS flood without affecting neighbours — contrast with an SLB, where the
// flooded VIP's packets burn the same CPU that serves everyone else.
//
//   ./build/examples/ddos_isolation
#include <cstdio>

#include "core/silkroad_switch.h"

using namespace silkroad;

int main() {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
  core::SilkRoadSwitch lb(sim, config);

  const net::Endpoint victim = *net::Endpoint::parse("20.0.0.1:80");
  const net::Endpoint bystander = *net::Endpoint::parse("20.0.0.2:80");
  for (const auto& vip : {victim, bystander}) {
    std::vector<net::Endpoint> dips;
    for (int d = 0; d < 8; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A000000u + static_cast<std::uint32_t>(
                                             (vip.ip.v4_value() & 0xFF) * 16 + d)),
                      8080});
    }
    lb.add_vip(vip, dips);
    // 2 Gbps committed + 2 Gbps excess per VIP; enforce (drop red).
    lb.attach_meter(vip,
                    {.cir_bps = 2e9, .eir_bps = 2e9,
                     .cbs_bytes = 256 * 1024, .ebs_bytes = 256 * 1024},
                    /*enforce=*/true);
  }

  // Offer 10 Gbps to the victim and 1 Gbps to the bystander for one second
  // of simulated time (1500-byte packets).
  const std::uint32_t pkt = 1500;
  const double victim_pps = 10e9 / (pkt * 8);
  const double bystander_pps = 1e9 / (pkt * 8);
  std::uint64_t victim_sent = 0, victim_ok = 0;
  std::uint64_t bystander_sent = 0, bystander_ok = 0;
  const sim::Time horizon = sim::kSecond;
  sim::Time tv = 0, tb = 0;
  const sim::Time victim_gap =
      static_cast<sim::Time>(static_cast<double>(sim::kSecond) / victim_pps);
  const sim::Time bystander_gap =
      static_cast<sim::Time>(static_cast<double>(sim::kSecond) / bystander_pps);
  std::uint32_t attacker = 0, client = 0;
  while (tv < horizon || tb < horizon) {
    if (tv <= tb) {
      tv += victim_gap;
      sim.run_until(tv);
      net::Packet p;
      p.flow = {{net::IpAddress::v4(0x66000000u + attacker++ % 5000), 1000},
                victim,
                net::Protocol::kUdp};
      p.size_bytes = pkt;
      ++victim_sent;
      if (lb.process_packet(p).dip) ++victim_ok;
    } else {
      tb += bystander_gap;
      sim.run_until(tb);
      net::Packet p;
      p.flow = {{net::IpAddress::v4(0x42000000u + client++ % 200), 2000},
                bystander,
                net::Protocol::kTcp};
      p.syn = (client % 50 == 0);
      p.size_bytes = pkt;
      ++bystander_sent;
      if (lb.process_packet(p).dip) ++bystander_ok;
    }
  }

  std::printf("victim VIP:    offered 10.0 Gbps, delivered %5.2f Gbps "
              "(meter: 2+2 Gbps) — %llu of %llu packets\n",
              10.0 * static_cast<double>(victim_ok) / static_cast<double>(victim_sent),
              static_cast<unsigned long long>(victim_ok),
              static_cast<unsigned long long>(victim_sent));
  std::printf("bystander VIP: offered  1.0 Gbps, delivered %5.2f Gbps "
              "— %llu of %llu packets\n",
              1.0 * static_cast<double>(bystander_ok) /
                  static_cast<double>(bystander_sent),
              static_cast<unsigned long long>(bystander_ok),
              static_cast<unsigned long long>(bystander_sent));
  std::printf("\nthe flood is clipped to its own meter; the bystander VIP "
              "keeps 100%% delivery (paper §5.2: <1%% marking error, 40K "
              "meters ~ 1%% of SRAM)\n");
  return 0;
}
