"""srlint — the repo's token-aware C++ linter (DESIGN.md §13).

Usage:
    python3 tools/srlint [--root DIR] [--format text|json] [--list-rules]

Lints src/, tests/, bench/, and examples/ under --root (default: the repo
root containing this tool). Exit codes: 0 clean, 1 violations found, 2 bad
invocation or broken exemption manifest.

scripts/lint.py (the `lint` ctest) is a thin shim onto this entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from engine import load_exemptions, run
from rules import RULES


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="srlint", add_help=True)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="tree to lint (default: the repository root)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:>4}  {rule.summary}")
        return 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"srlint: --root {root} is not a directory", file=sys.stderr)
        return 2

    try:
        load_exemptions(root)  # fail fast with a readable message
        violations, checked = run(root)
    except (ValueError, json.JSONDecodeError) as err:
        print(f"srlint: {err}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "checked_files": checked,
                    "violations": [
                        {
                            "file": v.rel,
                            "line": v.line,
                            "rule": v.rule,
                            "message": v.message,
                        }
                        for v in violations
                    ],
                },
                indent=2,
            )
        )
        return 1 if violations else 0

    if violations:
        print(f"srlint: {len(violations)} problem(s)")
        for v in violations:
            print(f"  {v.rel}:{v.line}: {v.message} ({v.rule})")
        return 1
    print(f"srlint: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
