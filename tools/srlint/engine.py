"""srlint engine: file discovery, suppressions, exemptions, reporting.

Suppressions (DESIGN.md §13): a comment of the form

    // srlint: allow(R8) reason text

suppresses the listed rules on its target line — the comment's own line when
it trails code, otherwise the next line that holds code (so a standalone
justification block above the statement works). The reason is mandatory.

Engine diagnostics (never suppressible):
  S1  malformed suppression — unparseable allow(...), unknown rule id, or a
      missing reason.
  S2  unused suppression — the allow() suppressed nothing; stale allows are
      deleted, not kept "just in case".
  S3  unused exemption — a tools/srlint/exemptions.json entry matched no
      violation; the manifest must not rot.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import NamedTuple

from model import FileModel, build_model
from rules import RULE_IDS, RULES, Violation

SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}
# Fixture mini-trees are linted only via --root pointing *at* them.
SKIP_PART = "srlint_fixtures"

_ALLOW_RE = re.compile(r"srlint:\s*allow\s*\(([^)]*)\)\s*(.*)", re.DOTALL)
_MARKER_RE = re.compile(r"srlint:")
_EXPECT_RE = re.compile(r"srlint-expect:")


class Suppression(NamedTuple):
    comment_line: int
    target_line: int
    rules: tuple[str, ...]


def iter_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for dirname in SCAN_DIRS:
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            if SKIP_PART in path.relative_to(root).parts:
                continue
            files.append(path)
    return files


def load_exemptions(root: Path) -> dict[str, dict[str, str]]:
    """{"R5": {"src/lb/scenario.h": "reason"}, ...} or {} when absent."""
    manifest = root / "tools" / "srlint" / "exemptions.json"
    if not manifest.is_file():
        return {}
    data = json.loads(manifest.read_text(encoding="utf-8"))
    for rule_id, entries in data.items():
        if rule_id not in RULE_IDS:
            raise ValueError(
                f"exemptions.json: unknown rule id {rule_id!r}"
            )
        for rel, reason in entries.items():
            if not isinstance(reason, str) or not reason.strip():
                raise ValueError(
                    f"exemptions.json: {rule_id}/{rel} needs a reason string"
                )
    return data


def collect_suppressions(
    model: FileModel,
) -> tuple[list[Suppression], list[Violation]]:
    """Parses `srlint: allow(...)` comments; returns the suppressions plus
    S1 diagnostics for malformed ones."""
    suppressions: list[Suppression] = []
    diags: list[Violation] = []
    for comment in model.comments:
        if not _MARKER_RE.search(comment.text):
            continue
        if _EXPECT_RE.search(comment.text):
            continue  # fixture expectation markers, not suppressions
        m = _ALLOW_RE.search(comment.text)
        if not m:
            diags.append(
                Violation(
                    model.rel,
                    comment.line,
                    "S1",
                    "malformed srlint comment — expected "
                    "'// srlint: allow(Rn[,Rm]) reason'",
                )
            )
            continue
        rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        reason = m.group(2).strip().lstrip("*/").strip()
        unknown = [r for r in rules if r not in RULE_IDS]
        if not rules or unknown:
            diags.append(
                Violation(
                    model.rel,
                    comment.line,
                    "S1",
                    f"suppression names unknown rule(s) "
                    f"{unknown or ['<none>']} — known: sorted R1..R14",
                )
            )
            continue
        if not reason:
            diags.append(
                Violation(
                    model.rel,
                    comment.line,
                    "S1",
                    "suppression lacks a reason — justify every allow()",
                )
            )
            continue
        if comment.standalone:
            target = _next_code_line(model, comment.line)
        else:
            target = comment.line
        suppressions.append(Suppression(comment.line, target, rules))
    return suppressions, diags


def _next_code_line(model: FileModel, after: int) -> int:
    candidates = [ln for ln in model.lex.code_lines if ln > after]
    return min(candidates) if candidates else after


def lint_file(
    model: FileModel, exemptions: dict[str, dict[str, str]],
    used_exemptions: set[tuple[str, str]],
) -> list[Violation]:
    raw: list[Violation] = []
    for rule in RULES:
        raw.extend(rule.check(model))

    suppressions, diags = collect_suppressions(model)
    used: set[int] = set()  # indices into `suppressions`

    kept: list[Violation] = []
    for v in raw:
        if v.rel in exemptions.get(v.rule, {}):
            used_exemptions.add((v.rule, v.rel))
            continue
        suppressed = False
        for idx, s in enumerate(suppressions):
            if v.line == s.target_line and v.rule in s.rules:
                used.add(idx)
                suppressed = True
        if not suppressed:
            kept.append(v)

    for idx, s in enumerate(suppressions):
        if idx not in used:
            diags.append(
                Violation(
                    model.rel,
                    s.comment_line,
                    "S2",
                    f"unused suppression allow({','.join(s.rules)}) — "
                    "delete it or move it to the offending line",
                )
            )
    return kept + diags


def run(root: Path) -> tuple[list[Violation], int]:
    """Lints the tree under `root`; returns (violations, files checked)."""
    exemptions = load_exemptions(root)
    used_exemptions: set[tuple[str, str]] = set()
    violations: list[Violation] = []
    files = iter_files(root)
    for path in files:
        model = build_model(root, path)
        violations.extend(lint_file(model, exemptions, used_exemptions))

    for rule_id, entries in exemptions.items():
        for rel in entries:
            if (rule_id, rel) not in used_exemptions:
                violations.append(
                    Violation(
                        "tools/srlint/exemptions.json",
                        0,
                        "S3",
                        f"unused exemption {rule_id} for {rel} — the "
                        "manifest must only carry live exceptions",
                    )
                )

    violations.sort(key=lambda v: (v.rel, v.line, v.rule))
    return violations, len(files)
