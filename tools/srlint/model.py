"""Per-file symbol model for srlint (DESIGN.md §13).

Each linted file gets a FileModel carrying its token stream, preprocessor
directives, comment list, and a small symbol table: the set of identifiers
declared with an unordered container type (``std::unordered_map`` /
``std::unordered_set`` and their multi variants), either directly or through
a ``using X = std::unordered_...`` alias. Rule R10 consumes that table.

When linting ``X.cc``/``X.cpp``, the companion header ``X.h``/``X.hpp`` in
the same directory is lexed too and its declarations merged in — a member
declared in the header and iterated in the .cc is still recognized. Aliases
contaminate nothing: only the *declared variable names* enter the table, so
``membership_.at(vip)`` (a vector lookup on a map member) never matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from lexer import Comment, LexResult, PpDirective, Token, lex

_UNORDERED_TYPES = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}

_HEADER_SUFFIXES = {".h", ".hpp"}
_IMPL_SUFFIXES = {".cc", ".cpp"}


@dataclass
class FileModel:
    rel: str  # repo-root-relative posix path, e.g. "src/lb/slb.cc"
    path: Path
    lex: LexResult
    unordered_decls: set[str] = field(default_factory=set)

    @property
    def tokens(self) -> list[Token]:
        return self.lex.tokens

    @property
    def comments(self) -> list[Comment]:
        return self.lex.comments

    @property
    def directives(self) -> list[PpDirective]:
        return self.lex.directives

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.rel.split("/"))

    @property
    def top(self) -> str:
        return self.parts[0]

    @property
    def is_header(self) -> bool:
        return self.path.suffix in _HEADER_SUFFIXES


def build_model(root: Path, path: Path) -> FileModel:
    rel = path.relative_to(root).as_posix()
    result = lex(path.read_text(encoding="utf-8"))
    model = FileModel(rel=rel, path=path, lex=result)
    model.unordered_decls = _collect_unordered_decls(result.tokens)
    if path.suffix in _IMPL_SUFFIXES:
        for suffix in _HEADER_SUFFIXES:
            companion = path.with_suffix(suffix)
            if companion.is_file():
                companion_lex = lex(companion.read_text(encoding="utf-8"))
                model.unordered_decls |= _collect_unordered_decls(
                    companion_lex.tokens
                )
    return model


def _collect_unordered_decls(tokens: list[Token]) -> set[str]:
    """Identifiers declared with an unordered container type (directly or via
    a ``using`` alias declared in the same token stream)."""
    aliases = _collect_aliases(tokens)
    names: set[str] = set()
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "ident" and t.value in _UNORDERED_TYPES:
            close = _match_angles(tokens, i + 1)
            if close is not None:
                names |= _declarator_names(tokens, close + 1)
                i = close + 1
                continue
        if t.kind == "ident" and t.value in aliases:
            # `DipSet have;`, `DipSet& want = ...` — alias used as a type.
            names |= _declarator_names(tokens, i + 1)
        i += 1
    return names


def _collect_aliases(tokens: list[Token]) -> set[str]:
    """Names from `using X = ...unordered_map<...>...;` declarations."""
    aliases: set[str] = set()
    for i, t in enumerate(tokens):
        if (
            t.kind == "ident"
            and t.value == "using"
            and i + 2 < len(tokens)
            and tokens[i + 1].kind == "ident"
            and tokens[i + 2].value == "="
        ):
            j = i + 3
            while j < len(tokens) and tokens[j].value != ";":
                if (
                    tokens[j].kind == "ident"
                    and tokens[j].value in _UNORDERED_TYPES
                ):
                    aliases.add(tokens[i + 1].value)
                    break
                j += 1
    return aliases


def _match_angles(tokens: list[Token], i: int) -> int | None:
    """If tokens[i] is '<', returns the index of its matching '>'. Bails on
    anything that makes this look like a comparison rather than a template
    argument list."""
    if i >= len(tokens) or tokens[i].value != "<":
        return None
    depth = 0
    while i < len(tokens):
        v = tokens[i].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return i
        elif v in (";", "{", "}") or tokens[i].kind in ("string", "char"):
            return None
        i += 1
    return None


def _declarator_names(tokens: list[Token], i: int) -> set[str]:
    """Variable names following a type, up to the end of the declaration.
    Handles `name;`, `name = ...`, `name{...}`, `a, b;`, references and
    pointers, and trailing annotation macros (`name SR_GUARDED_BY(mu_);`).
    Returns nothing when the next tokens do not look like a declarator
    (e.g. `unordered_map<K,V>::iterator` or a closing `>` of an enclosing
    template argument list)."""
    names: set[str] = set()
    expect_name = True
    pending: str | None = None
    while i < len(tokens):
        t = tokens[i]
        v = t.value
        if v in ("&", "*", "const"):
            i += 1
            continue
        if t.kind == "ident":
            if not expect_name:
                # `name SR_GUARDED_BY(...)` / `name ;` — an identifier right
                # after a captured name is an annotation macro; skip its
                # argument list if present.
                if i + 1 < len(tokens) and tokens[i + 1].value == "(":
                    i = _skip_parens(tokens, i + 1)
                    continue
                break
            pending = v
            expect_name = False
            i += 1
            continue
        if v in (";",):
            if pending:
                names.add(pending)
            break
        if v in ("=", "{"):
            if pending:
                names.add(pending)
            # Initializer: the declaration continues but further declarators
            # after a brace/assign initializer are rare; stop conservatively.
            break
        if v == ",":
            if pending:
                names.add(pending)
            pending = None
            expect_name = True
            i += 1
            continue
        if v == "(":
            # `)` of a function signature or a constructor call — treat the
            # pending identifier as a name only for `name(...)` initializers
            # at statement scope; too ambiguous, stop without capturing.
            break
        # `::`, `>`, `)` etc. — not a declarator context.
        break
    return names


def _skip_parens(tokens: list[Token], i: int) -> int:
    """tokens[i] == '(' — returns the index just past its matching ')'."""
    depth = 0
    while i < len(tokens):
        v = tokens[i].value
        if v == "(":
            depth += 1
        elif v == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i
