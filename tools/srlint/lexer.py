"""Token-aware C++ lexer for srlint (DESIGN.md §13).

Not a full C++ front end — a deliberately small lexer that is *exact* about
the three things regex linting gets wrong:

  * comments (line, block, and backslash-continued line comments),
  * string/char literals, including raw strings ``R"delim(...)delim"`` and
    encoding prefixes (``u8"..."``, ``L'x'``),
  * preprocessor logical lines (backslash continuations folded, trailing
    comments stripped).

The output is a flat token stream (identifiers, numbers, literals,
punctuators — with ``::`` and ``->`` as single tokens), the comment list
(for suppression parsing), and the normalized preprocessor directives.
Rules never see comment or literal *content* as code, which is what makes
``// assert(x)`` and ``"rand()"`` non-findings by construction.
"""

from __future__ import annotations

from typing import NamedTuple


class Token(NamedTuple):
    kind: str  # "ident" | "number" | "string" | "char" | "punct"
    value: str
    line: int


class Comment(NamedTuple):
    line: int  # line the comment starts on
    text: str  # raw comment text including the // or /* */ markers
    standalone: bool  # True when no code precedes it on its start line


class PpDirective(NamedTuple):
    line: int  # line the '#' appears on
    text: str  # whitespace-normalized logical line, e.g. "# include <x>"


class LexResult(NamedTuple):
    tokens: list[Token]
    comments: list[Comment]
    directives: list[PpDirective]
    code_lines: set[int]  # lines holding at least one token or directive


_STRING_PREFIXES = {"u8", "u", "U", "L"}
_RAW_PREFIXES = {"R", "u8R", "uR", "UR", "LR"}
_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


def lex(text: str) -> LexResult:
    tokens: list[Token] = []
    comments: list[Comment] = []
    directives: list[PpDirective] = []

    i, n = 0, len(text)
    line = 1
    # True until the first token on the current physical line (comments and
    # whitespace do not clear it) — gates preprocessor-directive detection.
    at_line_start = True

    def line_has_code(lineno: int) -> bool:
        return bool(tokens) and tokens[-1].line == lineno

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue

        # --- comments ------------------------------------------------------
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start, start_line = i, line
            standalone = not line_has_code(line)
            i += 2
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            comments.append(Comment(start_line, text[start:i], standalone))
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start, start_line = i, line
            standalone = not line_has_code(line)
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            comments.append(Comment(start_line, text[start:i], standalone))
            continue

        # --- preprocessor logical line ------------------------------------
        if c == "#" and at_line_start:
            start_line = line
            parts: list[str] = []
            while i < n:
                ch = text[i]
                if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    parts.append(" ")
                    continue
                if ch == "\n":
                    break
                if ch == "/" and i + 1 < n and text[i + 1] == "/":
                    while i < n and text[i] != "\n":
                        i += 1
                    break
                if ch == "/" and i + 1 < n and text[i + 1] == "*":
                    i += 2
                    while i + 1 < n and not (
                        text[i] == "*" and text[i + 1] == "/"
                    ):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    parts.append(" ")
                    continue
                parts.append(ch)
                i += 1
            normalized = " ".join("".join(parts).split())
            directives.append(PpDirective(start_line, normalized))
            at_line_start = False
            continue

        at_line_start = False

        # --- identifiers (and string-prefix folding) -----------------------
        if c in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            word = text[start:i]
            start_line = line
            if i < n and text[i] == '"' and word in _RAW_PREFIXES:
                i, line = _lex_raw_string(text, i, line)
                tokens.append(Token("string", word, start_line))
                continue
            if i < n and text[i] == '"' and word in _STRING_PREFIXES:
                i, line = _lex_quoted(text, i, line, '"')
                tokens.append(Token("string", word, start_line))
                continue
            if i < n and text[i] == "'" and word in _STRING_PREFIXES:
                i, line = _lex_quoted(text, i, line, "'")
                tokens.append(Token("char", word, start_line))
                continue
            tokens.append(Token("ident", word, line))
            continue

        # --- numbers (pp-number: digit separators, exponents, suffixes) ---
        if c.isdigit() or (
            c == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            i += 1
            while i < n:
                ch = text[i]
                if ch in "eEpP" and i + 1 < n and text[i + 1] in "+-":
                    i += 2
                    continue
                if ch.isalnum() or ch in "._'":
                    i += 1
                    continue
                break
            tokens.append(Token("number", text[start:i], line))
            continue

        # --- literals ------------------------------------------------------
        if c == '"':
            start_line = line
            i, line = _lex_quoted(text, i, line, '"')
            tokens.append(Token("string", "", start_line))
            continue
        if c == "'":
            start_line = line
            i, line = _lex_quoted(text, i, line, "'")
            tokens.append(Token("char", "", start_line))
            continue

        # --- punctuators ---------------------------------------------------
        two = text[i : i + 2]
        if two in ("::", "->"):
            tokens.append(Token("punct", two, line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1

    code_lines = {t.line for t in tokens} | {d.line for d in directives}
    return LexResult(tokens, comments, directives, code_lines)


def _lex_quoted(text: str, i: int, line: int, quote: str) -> tuple[int, int]:
    """Consumes a quoted literal starting at text[i] == quote. Unterminated
    literals stop at the newline (keeps the lexer robust on broken input)."""
    n = len(text)
    i += 1
    while i < n:
        c = text[i]
        if c == "\\" and i + 1 < n:
            if text[i + 1] == "\n":
                line += 1
            i += 2
            continue
        if c == quote:
            return i + 1, line
        if c == "\n":
            return i, line
        i += 1
    return i, line


def _lex_raw_string(text: str, i: int, line: int) -> tuple[int, int]:
    """Consumes R"delim( ... )delim" starting at text[i] == '"'."""
    n = len(text)
    i += 1  # past the opening quote
    delim_start = i
    while i < n and text[i] not in "(\n":
        i += 1
    if i >= n or text[i] != "(":
        return i, line  # malformed; give up at this point
    delim = text[delim_start:i]
    closer = ")" + delim + '"'
    i += 1
    end = text.find(closer, i)
    if end == -1:
        line += text.count("\n", i)
        return n, line
    line += text.count("\n", i, end)
    return end + len(closer), line
