"""srlint rule catalog (DESIGN.md §13).

Every rule is a function FileModel -> list[Violation]. Scoping (which
directories a rule patrols) lives inside the rule so the catalog below is
the single source of truth; the engine applies suppressions and the
exemption manifest afterwards.

R1  no raw assert( in src/          — use SR_CHECK/SR_DCHECK (check/sr_check.h);
                                      assert() vanishes in RelWithDebInfo.
                                      static_assert is a distinct token and
                                      never matches.
R2  no rand()/std::rand() anywhere  — draw from sim::Rng so every run is
                                      seed-reproducible. Member `.rand()` is
                                      not flagged.
R3  no <iostream> in src/           — iostreams drag in static initializers;
                                      report through strings or cstdio.
R4  #pragma once in every header    — all .h/.hpp files, repo-wide.
R5  no ad-hoc `struct ...Stats` in src/ outside src/obs/ — counters belong in
                                      obs::MetricsRegistry (DESIGN.md §9);
                                      grandfathered snapshot views live in
                                      tools/srlint/exemptions.json.
R6  no printf/fprintf in src/ outside src/obs/ and src/check/ — report
                                      through metrics, traces, or returned
                                      strings; snprintf into buffers is fine.
R7  no raw update-lifecycle TraceEvents (TraceEventKind::kUpdate*) and no
                                      TraceRing use in src/fault/ or
                                      src/deploy/ — the update lifecycle is
                                      observed through obs::SpanCollector
                                      (DESIGN.md §12).
R8  no wall-clock / environment nondeterminism in src/ outside src/sim/ —
                                      getenv, time(), system_clock and
                                      friends make runs irreproducible; sim
                                      time comes from sim::Simulator.
R9  no bare std::mutex/std::lock_guard (and friends) in src/ — use the
                                      annotated sr::Mutex/sr::MutexLock from
                                      check/thread_annotations.h so clang
                                      -Wthread-safety sees every lock site.
R10 no iteration over an unordered container that feeds control-channel
                                      sends or update-protocol calls in src/
                                      — unordered iteration order is
                                      implementation-defined; snapshot and
                                      sort first (see fleet.cc apply_resync).
R11 no plain registry.counter()/histogram() in src/lb/ or src/asic/ — those
                                      directories hold the packet path, where
                                      every bump contends on one cache line;
                                      use sharded_counter()/sharded_histogram()
                                      (DESIGN.md §14). Control-plane metrics
                                      in those directories carry an
                                      `srlint: allow(R11)` suppression or an
                                      exemptions.json entry.
R12 no ad-hoc SRAM byte aggregation in src/ outside the capacity
                                      single-sources — folding sram_bytes()/
                                      bits_to_bytes()/..._table_bytes() results
                                      into +/-/*//(+=,-=) arithmetic re-derives
                                      totals that asic::silkroad_usage and
                                      obs::ResourceLedger (DESIGN.md §15)
                                      already own; inline totals drift silently
                                      when the cell model changes. Attribution
                                      sites carry `srlint: allow(R12)` or an
                                      exemptions.json entry.
R13 no direct resync-machinery invocation in src/ outside the channel —
                                      calling begin_resync_session()/resync_()
                                      bypasses ControlChannel::force_resync(),
                                      which wipes the in-flight window, bumps
                                      the receive epoch, and mints the session
                                      span before the catch-up is computed
                                      (DESIGN.md §16). The channel's ResyncFn
                                      binding site carries
                                      `srlint: allow(R13)`.
R14 no ad-hoc membership-digest hashing in src/deploy/ or src/obs/ —
                                      folding mix64()/hash_bytes()/... results
                                      into ^/^= XOR chains re-derives the
                                      per-VIP membership digests that
                                      obs::VipDigest and obs::FleetObserver
                                      (DESIGN.md §17) single-source; a second
                                      folding scheme drifts from the salts and
                                      token derivation the divergence detector
                                      compares against, turning every mismatch
                                      into a false alarm (or masking a real
                                      one). Non-digest hash uses (seed
                                      derivation, ECMP ranking) either avoid
                                      the XOR-fold shape or carry
                                      `srlint: allow(R14)`.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from model import FileModel


class Violation(NamedTuple):
    rel: str
    line: int
    rule: str
    message: str


class Rule(NamedTuple):
    rule_id: str
    summary: str
    check: Callable[[FileModel], list["Violation"]]


# Tokens that put a following identifier in *expression* position. An
# identifier right before the name (e.g. `int rand()`, `double time(int)`)
# means a declaration of an unrelated symbol, not a call of the libc one.
_EXPR_CONTEXT = {"=", "(", ")", ",", ";", "{", "}", "return", "?", ":", "<",
                 ">", "+", "-", "*", "/", "%", "!", "&", "|", "["}


def _is_call(toks: list, i: int, std_qualified_ok: bool = True) -> bool:
    """True when the identifier at toks[i] is called as a free function:
    `name(` in expression position, or `std::name(`. Member access
    (`.name(`, `->name(`) and foreign scopes (`ns::name(`) never match."""
    if i + 1 >= len(toks) or toks[i + 1].value != "(":
        return False
    if i == 0:
        return True
    prev = toks[i - 1].value
    if prev == "::":
        return std_qualified_ok and i > 1 and toks[i - 2].value == "std"
    return prev in _EXPR_CONTEXT


def _in_src(model: FileModel) -> bool:
    return model.top == "src"


def _src_sub(model: FileModel) -> str:
    return model.parts[1] if _in_src(model) and len(model.parts) > 1 else ""


# --- R1 ---------------------------------------------------------------------


def check_r1(model: FileModel) -> list[Violation]:
    if not _in_src(model):
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value != "assert":
            continue
        if not _is_call(toks, i, std_qualified_ok=False):
            continue
        out.append(
            Violation(
                model.rel,
                t.line,
                "R1",
                "raw assert() in library code — use SR_CHECK/SR_DCHECK "
                "from check/sr_check.h",
            )
        )
    return out


# --- R2 ---------------------------------------------------------------------


def check_r2(model: FileModel) -> list[Violation]:
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value != "rand":
            continue
        if not _is_call(toks, i):
            continue  # member .rand(), ns::rand, or a declaration
        out.append(
            Violation(
                model.rel,
                t.line,
                "R2",
                "rand()/std::rand() — use sim::Rng for seed-reproducible "
                "randomness",
            )
        )
    return out


# --- R3 ---------------------------------------------------------------------


def check_r3(model: FileModel) -> list[Violation]:
    if not _in_src(model):
        return []
    out = []
    for d in model.directives:
        if d.text.replace(" ", "").startswith("#include<iostream>"):
            out.append(
                Violation(
                    model.rel, d.line, "R3", "<iostream> in library code"
                )
            )
    return out


# --- R4 ---------------------------------------------------------------------


def check_r4(model: FileModel) -> list[Violation]:
    if not model.is_header:
        return []
    for d in model.directives:
        if d.text.replace(" ", "") == "#pragmaonce":
            return []
    return [
        Violation(model.rel, 1, "R4", "header lacks '#pragma once'")
    ]


# --- R5 ---------------------------------------------------------------------


def check_r5(model: FileModel) -> list[Violation]:
    if not _in_src(model) or _src_sub(model) == "obs":
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if (
            t.kind == "ident"
            and t.value == "struct"
            and i + 1 < len(toks)
            and toks[i + 1].kind == "ident"
            and toks[i + 1].value.endswith("Stats")
        ):
            out.append(
                Violation(
                    model.rel,
                    toks[i + 1].line,
                    "R5",
                    "ad-hoc Stats struct — register the counters in "
                    "obs::MetricsRegistry instead",
                )
            )
    return out


# --- R6 ---------------------------------------------------------------------


def check_r6(model: FileModel) -> list[Violation]:
    if not _in_src(model) or _src_sub(model) in ("obs", "check"):
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value not in ("printf", "fprintf"):
            continue
        if not _is_call(toks, i):
            continue  # member call, foreign scope, or a declaration
        out.append(
            Violation(
                model.rel,
                t.line,
                "R6",
                "printf/fprintf in library code — report through metrics, "
                "traces, or returned strings",
            )
        )
    return out


# --- R7 ---------------------------------------------------------------------


def check_r7(model: FileModel) -> list[Violation]:
    if _src_sub(model) not in ("fault", "deploy"):
        return []
    out = []
    toks = model.tokens
    sub = _src_sub(model)
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        hit = t.value == "TraceRing" or (
            t.value == "TraceEventKind"
            and i + 2 < len(toks)
            and toks[i + 1].value == "::"
            and toks[i + 2].value.startswith("kUpdate")
        )
        if hit:
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R7",
                    f"raw update-lifecycle TraceEvent/TraceRing in {sub}/ — "
                    "record the leg on the obs::SpanCollector instead",
                )
            )
    return out


# --- R8 ---------------------------------------------------------------------

# Identifiers that are nondeterministic by *name* (clock types, env access).
_R8_NAMES = {
    "getenv",
    "gettimeofday",
    "clock_gettime",
    "localtime",
    "gmtime",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "random_device",
}
# Nondeterministic only when called (too common as plain names otherwise).
_R8_CALLS = {"time", "clock"}


def check_r8(model: FileModel) -> list[Violation]:
    if not _in_src(model) or _src_sub(model) == "sim":
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        flagged = False
        if t.value in _R8_NAMES:
            if i > 0 and toks[i - 1].value in (".", "->"):
                pass  # member access — a different symbol
            elif (
                i > 1
                and toks[i - 1].value == "::"
                and toks[i - 2].value not in ("std", "chrono")
            ):
                pass  # scoped in some other namespace
            else:
                flagged = True
        elif t.value in _R8_CALLS:
            flagged = _is_call(toks, i)
        if flagged:
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R8",
                    f"'{t.value}' is wall-clock/environment nondeterminism — "
                    "simulation inputs come from sim::Simulator and seeds",
                )
            )
    return out


# --- R9 ---------------------------------------------------------------------

_R9_NAMES = {
    "mutex",
    "recursive_mutex",
    "timed_mutex",
    "recursive_timed_mutex",
    "shared_mutex",
    "shared_timed_mutex",
    "lock_guard",
    "unique_lock",
    "scoped_lock",
    "shared_lock",
    "condition_variable",
    "condition_variable_any",
}


def check_r9(model: FileModel) -> list[Violation]:
    if not _in_src(model):
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if (
            t.kind == "ident"
            and t.value in _R9_NAMES
            and i > 1
            and toks[i - 1].value == "::"
            and toks[i - 2].value == "std"
        ):
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R9",
                    f"bare std::{t.value} — use the annotated sr::Mutex/"
                    "sr::MutexLock from check/thread_annotations.h so clang "
                    "-Wthread-safety sees the lock site",
                )
            )
    return out


# --- R10 --------------------------------------------------------------------

# Calls that feed the control channels or the 3-step update protocol; their
# argument/issue order must not depend on unordered iteration order.
_R10_SINKS = {
    "send",
    "request_update",
    "add_vip",
    "handle_dip_failure",
    "finish_update",
}


def check_r10(model: FileModel) -> list[Violation]:
    if not _in_src(model):
        return []
    out = []
    toks = model.tokens
    decls = model.unordered_decls
    i = 0
    while i < len(toks):
        t = toks[i]
        if (
            t.kind == "ident"
            and t.value == "for"
            and i + 1 < len(toks)
            and toks[i + 1].value == "("
        ):
            colon, close = _range_for_parts(toks, i + 1)
            if colon is not None and close is not None:
                target = _range_container(toks[colon + 1 : close])
                if target is not None and target in decls:
                    body_end = _body_end(toks, close + 1)
                    sink = _first_sink(toks, close + 1, body_end)
                    if sink is not None:
                        out.append(
                            Violation(
                                model.rel,
                                t.line,
                                "R10",
                                f"iterating unordered container '{target}' "
                                f"feeds '{sink}' — iteration order is "
                                "implementation-defined; snapshot into a "
                                "sorted vector first",
                            )
                        )
                    i = body_end
                    continue
        i += 1
    return out


def _range_for_parts(
    toks: list, open_idx: int
) -> tuple[int | None, int | None]:
    """For tokens starting at `(`: (index of the range-for ':' at depth 1,
    index of the matching ')'). The ':' of a ternary inside nested parens
    sits at depth > 1 and is ignored; `::` is a single distinct token."""
    depth = 0
    colon = None
    i = open_idx
    while i < len(toks):
        v = toks[i].value
        if v == "(":
            depth += 1
        elif v == ")":
            depth -= 1
            if depth == 0:
                return colon, i
        elif v == ":" and depth == 1 and colon is None:
            colon = i
        i += 1
    return None, None


def _range_container(expr: list) -> str | None:
    """The container identifier when the range expression IS a container
    (`m`, `*m`, `this->m`) — method-call results (`m.at(k)`) return None so
    a vector pulled out of a map is never mistaken for the map."""
    vals = [e.value for e in expr]
    if len(expr) == 1 and expr[0].kind == "ident":
        return vals[0]
    if len(expr) == 2 and vals[0] == "*" and expr[1].kind == "ident":
        return vals[1]
    if (
        len(expr) == 3
        and vals[0] == "this"
        and vals[1] == "->"
        and expr[2].kind == "ident"
    ):
        return vals[2]
    return None


def _body_end(toks: list, i: int) -> int:
    """Index one past the loop body starting at toks[i] (a `{` block or a
    single statement up to `;`)."""
    if i < len(toks) and toks[i].value == "{":
        depth = 0
        while i < len(toks):
            v = toks[i].value
            if v == "{":
                depth += 1
            elif v == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return i
    depth = 0
    while i < len(toks):
        v = toks[i].value
        if v in "([{":
            depth += 1
        elif v in ")]}":
            depth -= 1
        elif v == ";" and depth == 0:
            return i + 1
        i += 1
    return i


def _first_sink(toks: list, start: int, end: int) -> str | None:
    for i in range(start, min(end, len(toks))):
        t = toks[i]
        if (
            t.kind == "ident"
            and t.value in _R10_SINKS
            and i + 1 < len(toks)
            and toks[i + 1].value == "("
        ):
            return t.value
    return None


# --- R11 --------------------------------------------------------------------

# Registry factory methods whose product is a single contended cache line.
# The sharded variants (sharded_counter, sharded_histogram) are distinct
# identifiers and never match; `gauge` stays plain by design (CAS add is
# rare on the packet path).
_R11_FACTORIES = {"counter", "histogram"}


def check_r11(model: FileModel) -> list[Violation]:
    if _src_sub(model) not in ("lb", "asic"):
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if (
            t.kind == "ident"
            and t.value in _R11_FACTORIES
            and i > 0
            and toks[i - 1].value in (".", "->")
            and i + 1 < len(toks)
            and toks[i + 1].value == "("
        ):
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R11",
                    f"plain registry {t.value}() on the packet path — use "
                    f"sharded_{t.value}() (DESIGN.md §14) so per-packet bumps "
                    "stripe across cache lines; control-plane metrics may "
                    "suppress with 'srlint: allow(R11) <reason>'",
                )
            )
    return out


# --- R12 --------------------------------------------------------------------

# Functions whose return value is an SRAM byte count. Summing or scaling
# them inline re-derives capacity math that the single-source files below
# already own; the totals drift silently when the cell model changes.
_R12_BYTE_CALLS = {
    "sram_bytes",
    "sram_bytes_for_entries",
    "conn_table_bytes",
    "dip_pool_table_bytes",
    "pool_table_bytes",
    "byte_count",
    "bits_to_bytes",
}
# Binary arithmetic that marks aggregation. `=` alone (snapshotting a count)
# is fine; `+=`/`-=` lex as two tokens and are handled in _r12_compound.
_R12_OPS = {"+", "-", "*", "/"}
# The capacity single-sources: the static SRAM models and the live ledger.
_R12_ALLOWED = {
    "src/asic/resources.h",
    "src/asic/resources.cc",
    "src/asic/sram.h",
    "src/core/memory_model.h",
    "src/core/memory_model.cc",
    "src/obs/capacity.h",
    "src/obs/capacity.cc",
}


def _r12_chain_start(toks: list, i: int) -> int:
    """Index of the token just before the object/scope chain ending at
    toks[i]: walks left over identifiers and `.`/`->`/`::` connectors, so
    for `usage.versions->pool_table_bytes` it lands before `usage`."""
    j = i - 1
    while j >= 0 and (
        toks[j].kind == "ident" or toks[j].value in (".", "->", "::")
    ):
        j -= 1
    return j


def _r12_close_paren(toks: list, open_idx: int) -> int | None:
    depth = 0
    for k in range(open_idx, len(toks)):
        v = toks[k].value
        if v == "(":
            depth += 1
        elif v == ")":
            depth -= 1
            if depth == 0:
                return k
    return None


def _r12_compound(toks: list, j: int) -> bool:
    """True when toks[j] is the `=` of a `+=`/`-=` (lexed as two tokens).
    `==`, `<=`, `>=`, `!=` keep their non-arithmetic first char and stay
    clean."""
    return (
        j > 0
        and toks[j].value == "="
        and toks[j - 1].value in ("+", "-")
        and toks[j - 1].line == toks[j].line
    )


def check_r12(model: FileModel) -> list[Violation]:
    if not _in_src(model) or model.rel in _R12_ALLOWED:
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value not in _R12_BYTE_CALLS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].value != "(":
            continue  # a field or declaration, not a call
        j = _r12_chain_start(toks, i)
        before = toks[j].value if j >= 0 else ""
        close = _r12_close_paren(toks, i + 1)
        after = (
            toks[close + 1].value
            if close is not None and close + 1 < len(toks)
            else ""
        )
        aggregated = (
            before in _R12_OPS
            or _r12_compound(toks, j)
            or after in _R12_OPS
        )
        if aggregated:
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R12",
                    f"'{t.value}()' folded into ad-hoc SRAM byte arithmetic "
                    "— capacity totals belong to asic::silkroad_usage / "
                    "obs::ResourceLedger (DESIGN.md §15); attribution sites "
                    "may suppress with 'srlint: allow(R12) <reason>'",
                )
            )
    return out


# --- R13 --------------------------------------------------------------------

# The resync-session machinery: the fleet's session opener and the
# ControlChannel's stored ResyncFn. ControlChannel::force_resync() is the one
# sanctioned entry — it wipes the in-flight window, bumps the receive epoch,
# and mints the session span before asking for the catch-up.
_R13_NAMES = {"begin_resync_session", "resync_"}
# The channel invokes its own ResyncFn from inside force_resync().
_R13_ALLOWED = {"src/fault/control_channel.cc"}


def check_r13(model: FileModel) -> list[Violation]:
    if not _in_src(model) or model.rel in _R13_ALLOWED:
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value not in _R13_NAMES:
            continue
        if i + 1 >= len(toks) or toks[i + 1].value != "(":
            continue  # a field, declaration type position, or bare mention
        prev = toks[i - 1].value if i > 0 else ""
        invoked = prev in (".", "->") or _is_call(
            toks, i, std_qualified_ok=False
        )
        if not invoked:
            continue  # declaration (`void begin_resync_session(...)`) or
            # qualified definition (`SilkRoadFleet::begin_resync_session`)
        out.append(
            Violation(
                model.rel,
                t.line,
                "R13",
                f"direct '{t.value}()' invocation — resync sessions begin "
                "only through ControlChannel::force_resync(), which wipes "
                "the window, bumps the epoch, and mints the session span "
                "first (DESIGN.md §16); the channel's ResyncFn binding may "
                "suppress with 'srlint: allow(R13) <reason>'",
            )
        )
    return out


# --- R14 --------------------------------------------------------------------

# Hash primitives whose results, XOR-folded together, form a membership
# digest. Any of these in a `^`/`^=` chain inside the digest-consuming
# directories re-derives obs::VipDigest's scheme by hand.
_R14_HASH_CALLS = {
    "mix64",
    "hash_bytes",
    "hash_five_tuple",
    "crc32c",
    "connection_digest",
}
# The sanctioned digest implementation: VipDigest's token derivation and the
# FleetObserver folds that consume it.
_R14_ALLOWED = {
    "src/obs/convergence.h",
    "src/obs/convergence.cc",
}


def _r14_xor_compound(toks: list, j: int) -> bool:
    """True when toks[j] is the `=` of a `^=` (lexed as two tokens, like the
    R12 `+=`/`-=` case). `==`/`!=` etc. keep a non-`^` first char."""
    return (
        j > 0
        and toks[j].value == "="
        and toks[j - 1].value == "^"
        and toks[j - 1].line == toks[j].line
    )


def check_r14(model: FileModel) -> list[Violation]:
    if _src_sub(model) not in ("deploy", "obs") or model.rel in _R14_ALLOWED:
        return []
    out = []
    toks = model.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident" or t.value not in _R14_HASH_CALLS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].value != "(":
            continue  # a field, declaration type position, or bare mention
        j = _r12_chain_start(toks, i)
        before = toks[j].value if j >= 0 else ""
        close = _r12_close_paren(toks, i + 1)
        after = (
            toks[close + 1].value
            if close is not None and close + 1 < len(toks)
            else ""
        )
        folded = (
            before == "^"
            or _r14_xor_compound(toks, j)
            or after == "^"
        )
        if folded:
            out.append(
                Violation(
                    model.rel,
                    t.line,
                    "R14",
                    f"'{t.value}()' XOR-folded into an ad-hoc membership "
                    "digest — per-VIP membership digests come only from "
                    "obs::VipDigest / obs::FleetObserver (DESIGN.md §17); "
                    "non-digest hash uses may suppress with "
                    "'srlint: allow(R14) <reason>'",
                )
            )
    return out


RULES: list[Rule] = [
    Rule("R1", "no raw assert() in src/ (use SR_CHECK/SR_DCHECK)", check_r1),
    Rule("R2", "no rand()/std::rand() anywhere (use sim::Rng)", check_r2),
    Rule("R3", "no <iostream> in src/", check_r3),
    Rule("R4", "#pragma once in every header", check_r4),
    Rule("R5", "no ad-hoc `struct ...Stats` in src/ outside src/obs/", check_r5),
    Rule("R6", "no printf/fprintf in src/ outside src/obs/, src/check/", check_r6),
    Rule("R7", "no TraceRing/kUpdate* trace events in src/fault|deploy", check_r7),
    Rule("R8", "no wall-clock/getenv nondeterminism in src/ outside src/sim/", check_r8),
    Rule("R9", "no bare std::mutex family in src/ (use sr:: wrappers)", check_r9),
    Rule("R10", "no unordered iteration feeding channel/protocol calls", check_r10),
    Rule("R11", "no plain counter()/histogram() in src/lb|asic (use sharded)", check_r11),
    Rule("R12", "no ad-hoc SRAM byte aggregation outside capacity sources", check_r12),
    Rule("R13", "no direct resync-machinery invocation outside the channel", check_r13),
    Rule("R14", "no ad-hoc membership-digest hashing in src/deploy|obs", check_r14),
]

RULE_IDS = {r.rule_id for r in RULES}
