#include "lb/duet.h"

namespace silkroad::lb {

DuetLoadBalancer::DuetLoadBalancer(sim::Simulator& simulator,
                                   const Config& config)
    : sim_(simulator),
      config_(config),
      slb_latency_(sim::LogNormalByQuantiles::from_median_p99(
          config.slb_latency_us_median, config.slb_latency_us_p99)),
      latency_rng_(0xD0E7ULL) {}

std::string DuetLoadBalancer::name() const {
  if (config_.policy == MigratePolicy::kWaitPcc) return "duet-migrate-pcc";
  if (config_.migrate_period == sim::kMinute) return "duet-migrate-1min";
  if (config_.migrate_period == 10 * sim::kMinute) return "duet-migrate-10min";
  return "duet-migrate-" +
         std::to_string(config_.migrate_period / sim::kSecond) + "s";
}

void DuetLoadBalancer::add_vip(const net::Endpoint& vip,
                               const std::vector<net::Endpoint>& dips) {
  VipState state;
  state.pool = DipPool(dips, config_.pool_semantics);
  vips_.insert_or_assign(vip, std::move(state));
}

void DuetLoadBalancer::request_update(const workload::DipUpdate& update) {
  const auto it = vips_.find(update.vip);
  if (it == vips_.end()) return;
  VipState& state = it->second;

  if (!state.at_slb) {
    // Redirect the VIP to SLBs first. The mapping-risk callback prompts the
    // driver to emit a packet per ongoing flow, which pins each one in the
    // SLB ConnTable under the *old* pool — modeling "the SLB waits until it
    // has seen at least one packet from every ongoing connection".
    state.at_slb = true;
    ++to_slb_;
    if (risk_cb_) risk_cb_(update.vip);
  }

  // Apply the update to the pool (used for new flows from now on).
  if (update.action == workload::UpdateAction::kAddDip) {
    state.pool.add(update.dip);
  } else {
    state.pool.remove(update.dip);
  }

  // Re-classify pinned flows against the updated pool: a flow whose pinned
  // DIP now disagrees with the pool hash would break if migrated back.
  std::uint64_t mismatched = 0;
  for (auto& [flow, pin] : state.pinned) {
    const auto now_maps_to = state.pool.select(flow);
    pin.mismatched = !now_maps_to || !(*now_maps_to == pin.dip);
    if (pin.mismatched) ++mismatched;
  }
  state.mismatched_count = mismatched;

  if (config_.policy == MigratePolicy::kWaitPcc) {
    maybe_migrate_pcc(update.vip, state);
  } else if (!tick_scheduled_) {
    tick_scheduled_ = true;
    sim_.schedule_after(config_.migrate_period, [this] { migrate_back_if_due(); });
  }
}

PacketResult DuetLoadBalancer::process_packet(const net::Packet& packet) {
  const auto it = vips_.find(packet.flow.dst);
  if (it == vips_.end()) return {};
  VipState& state = it->second;

  if (!state.at_slb) {
    // Pure switch path: stateless ECMP into the current pool.
    PacketResult result;
    result.dip = state.pool.select(packet.flow);
    result.added_latency = config_.switch_latency;
    return result;
  }

  PacketResult result;
  result.handled_by_slb = true;
  result.added_latency =
      config_.switch_latency +
      static_cast<sim::Time>(slb_latency_.sample(latency_rng_) *
                             static_cast<double>(sim::kMicrosecond));
  if (const auto pinned = state.pinned.find(packet.flow);
      pinned != state.pinned.end()) {
    result.dip = pinned->second.dip;
    if (packet.fin) {
      const bool was_mismatched = pinned->second.mismatched;
      state.pinned.erase(pinned);
      if (was_mismatched && state.mismatched_count > 0) {
        --state.mismatched_count;
        if (config_.policy == MigratePolicy::kWaitPcc) {
          maybe_migrate_pcc(packet.flow.dst, state);
        }
      }
    }
    return result;
  }
  const auto dip = state.pool.select(packet.flow);
  if (dip && !packet.fin) {
    state.pinned.emplace(packet.flow, Pin{*dip, false});
  }
  result.dip = dip;
  return result;
}

bool DuetLoadBalancer::vip_at_slb(const net::Endpoint& vip) const {
  const auto it = vips_.find(vip);
  return it != vips_.end() && it->second.at_slb;
}

void DuetLoadBalancer::migrate_back_if_due() {
  tick_scheduled_ = false;
  bool any_still_at_slb = false;
  for (auto& [vip, state] : vips_) {
    if (state.at_slb) {
      migrate_vip_to_switch(vip, state);
    }
    any_still_at_slb |= state.at_slb;
  }
  (void)any_still_at_slb;
}

void DuetLoadBalancer::migrate_vip_to_switch(const net::Endpoint& vip,
                                             VipState& state) {
  state.at_slb = false;
  state.pinned.clear();
  state.mismatched_count = 0;
  ++to_switch_;
  // Flows now map via the switch's current pool; any flow that was pinned to
  // a different DIP breaks here — the driver's probe records it.
  if (risk_cb_) risk_cb_(vip);
}

void DuetLoadBalancer::maybe_migrate_pcc(const net::Endpoint& vip,
                                         VipState& state) {
  if (state.at_slb && state.mismatched_count == 0) {
    migrate_vip_to_switch(vip, state);
  }
}

}  // namespace silkroad::lb
