// Scenario driver: wires a workload (flow arrivals + DIP-pool updates) to a
// LoadBalancer implementation and audits PCC and SLB load.
//
// Flow-level fidelity argument (DESIGN.md §6): between the mapping-risk
// events a balancer reports, its mapping function is constant; the driver
// probes every active flow of the affected VIP at each such event, so every
// mapping change any real packet could have observed is detected, under the
// conservative assumption that flows always have packets in flight (the
// regime the paper targets: data-center RTTs of microseconds to 250 µs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lb/load_balancer.h"
#include "lb/pcc_tracker.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "workload/flow_gen.h"
#include "workload/update_gen.h"

namespace silkroad::lb {

struct ScenarioConfig {
  /// Arrival window; flows may outlive it and all are drained to completion.
  sim::Time horizon = 10 * sim::kMinute;
  std::uint64_t seed = 42;
  /// VIP loads (flow arrival processes).
  std::vector<workload::FlowGenerator::VipLoad> vip_loads;
  /// Initial DIP pools, one per VIP (parallel to vip_loads).
  std::vector<std::vector<net::Endpoint>> dip_pools;
  /// Pre-generated update schedule.
  std::vector<workload::DipUpdate> updates;
  /// Trace replay: when non-empty, these flows are scheduled verbatim and
  /// the per-VIP arrival generators are not used (vip_loads then only
  /// declares the VIPs and their pools). See workload/trace.h for the CSV
  /// import path.
  std::vector<workload::Flow> replay_flows;
};

/// Snapshot view assembled from the scenario's metrics registry at the end
/// of run() — the registry is the source of truth (see Scenario::metrics()).
struct ScenarioStats {
  std::uint64_t flows = 0;
  std::uint64_t violations = 0;
  double violation_fraction = 0;
  double slb_bytes = 0;
  double total_bytes = 0;
  double slb_traffic_fraction = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t cpu_redirects = 0;
  std::uint64_t unmapped_starts = 0;
  /// Violations per simulated minute of the arrival window.
  double violations_per_minute = 0;
};

class Scenario {
 public:
  Scenario(sim::Simulator& simulator, LoadBalancer& lb, ScenarioConfig config);

  /// Runs the scenario to completion and returns the statistics.
  ScenarioStats run();

  const PccTracker& tracker() const noexcept { return tracker_; }

  // --- Chaos-harness support -------------------------------------------------

  /// Currently established flows across all VIPs.
  std::vector<net::FiveTuple> active_flows() const;
  /// Marks a DIP out of service for the audit's server-breakage exemption —
  /// for liveness changes injected outside the scenario's update schedule
  /// (health checkers, fault injectors).
  void note_dip_down(const net::Endpoint& dip) { down_dips_.insert(dip); }
  void note_dip_up(const net::Endpoint& dip) { down_dips_.erase(dip); }
  /// Exempts every active flow currently assigned to `dip` (its server is
  /// gone; the connections are dead regardless of the balancer).
  void exempt_flows_on_dip(const net::Endpoint& dip);
  /// Exempts one flow from the PCC audit (e.g. fleet failover blast radius).
  void exempt_flow(const net::FiveTuple& flow) { tracker_.exempt_flow(flow); }

  /// Invoked the instant the audit charges a flow with a PCC violation —
  /// the harness's chance to capture forensics (obs::assemble_forensics)
  /// while the trace ring still holds the flow's journey.
  using ViolationCallback =
      std::function<void(const net::FiveTuple& flow, sim::Time at)>;
  void set_violation_callback(ViolationCallback cb) {
    violation_cb_ = std::move(cb);
  }

  /// Driver-side telemetry (silkroad_scenario_*): update/redirect counters
  /// plus pull gauges over the PCC tracker and traffic split. Snapshot it
  /// alongside the balancer's own registry for a complete picture.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

 private:
  void on_flow_start(const workload::Flow& flow);
  void on_flow_end(const workload::Flow& flow);
  void on_mapping_risk(const net::Endpoint& vip);
  /// Integrates traffic volume up to now with the current rate split.
  void settle_volume();

  struct ActiveFlow {
    double rate_bps = 0;
  };
  struct VipRegistry {
    std::unordered_map<net::FiveTuple, ActiveFlow, net::FiveTupleHash> flows;
    double rate_bps = 0;
    bool at_slb = false;
  };

  /// Audits one observation, first exempting flows whose assigned DIP is out
  /// of service (server-induced breakage is not an LB PCC violation).
  void audit(const net::FiveTuple& flow,
             const std::optional<net::Endpoint>& dip);

  sim::Simulator& sim_;
  LoadBalancer& lb_;
  ScenarioConfig config_;
  PccTracker tracker_;
  std::unique_ptr<workload::FlowGenerator> flow_gen_;
  std::unordered_map<net::Endpoint, VipRegistry, net::EndpointHash> registry_;
  /// DIPs currently removed from service (maintained from the update stream).
  std::unordered_set<net::Endpoint, net::EndpointHash> down_dips_;
  double slb_rate_bps_ = 0;
  double total_rate_bps_ = 0;
  double slb_bytes_ = 0;
  double total_bytes_ = 0;
  sim::Time last_settle_ = 0;
  obs::MetricsRegistry metrics_;
  ViolationCallback violation_cb_;
  obs::Counter* updates_applied_ = nullptr;
  obs::Counter* cpu_redirects_ = nullptr;
  obs::Counter* unmapped_starts_ = nullptr;
  obs::Counter* flows_started_ = nullptr;
  obs::Counter* flows_finished_ = nullptr;
};

}  // namespace silkroad::lb
