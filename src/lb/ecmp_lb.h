// Stateless ECMP load balancer — the "no ConnTable anywhere" strawman.
//
// Maps every packet by hashing into the *current* pool. Fast and tiny, but
// any pool change re-maps ongoing connections: it exists to demonstrate the
// PCC problem the paper opens with (§2.1) and as the in-switch half of Duet.
#pragma once

#include <unordered_map>
#include <vector>

#include "lb/load_balancer.h"

namespace silkroad::lb {

class EcmpLoadBalancer : public LoadBalancer {
 public:
  /// `semantics` chooses the member-table behaviour on removal (compact
  /// rehash vs resilient dead slots); classic ECMP compacts.
  explicit EcmpLoadBalancer(
      PoolSemantics semantics = PoolSemantics::kCompactEcmp)
      : semantics_(semantics) {}

  std::string name() const override { return "ecmp"; }

  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override {
    pools_.insert_or_assign(vip, DipPool(dips, semantics_));
  }

  void request_update(const workload::DipUpdate& update) override {
    const auto it = pools_.find(update.vip);
    if (it == pools_.end()) return;
    if (update.action == workload::UpdateAction::kAddDip) {
      it->second.add(update.dip);
    } else {
      it->second.remove(update.dip);
    }
    if (risk_cb_) risk_cb_(update.vip);
  }

  PacketResult process_packet(const net::Packet& packet) override {
    const auto it = pools_.find(packet.flow.dst);
    if (it == pools_.end()) return {};
    return PacketResult{it->second.select(packet.flow), false, false};
  }

  void set_mapping_risk_callback(MappingRiskCallback cb) override {
    risk_cb_ = std::move(cb);
  }

  bool vip_at_slb(const net::Endpoint&) const override { return false; }

  const DipPool* pool(const net::Endpoint& vip) const {
    const auto it = pools_.find(vip);
    return it == pools_.end() ? nullptr : &it->second;
  }

 private:
  PoolSemantics semantics_;
  std::unordered_map<net::Endpoint, DipPool, net::EndpointHash> pools_;
  MappingRiskCallback risk_cb_;
};

}  // namespace silkroad::lb
