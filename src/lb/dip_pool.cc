#include "lb/dip_pool.h"

#include <algorithm>

namespace silkroad::lb {

DipPool::DipPool(std::vector<net::Endpoint> dips, PoolSemantics semantics,
                 std::uint64_t select_seed)
    : slots_(std::move(dips)),
      alive_(slots_.size(), true),
      semantics_(semantics),
      select_seed_(select_seed) {}

std::optional<net::Endpoint> DipPool::select(const net::FiveTuple& flow) const {
  if (slots_.empty()) return std::nullopt;
  const std::size_t n = slots_.size();
  std::size_t idx =
      static_cast<std::size_t>(net::hash_five_tuple(flow, select_seed_) % n);
  if (alive_[idx]) return slots_[idx];
  if (semantics_ == PoolSemantics::kCompactEcmp) {
    // Compact tables never hold dead slots (remove() erases), but guard
    // against transient states: fall through to the resilient path.
  }
  // Resilient re-hash: bounded deterministic attempts with distinct seeds,
  // then a linear sweep (guarantees termination when any live slot exists).
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    idx = static_cast<std::size_t>(
        net::hash_five_tuple(flow, net::mix64(select_seed_ + attempt)) % n);
    if (alive_[idx]) return slots_[idx];
  }
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t probe = (idx + off) % n;
    if (alive_[probe]) return slots_[probe];
  }
  return std::nullopt;
}

std::size_t DipPool::add(const net::Endpoint& dip) {
  slots_.push_back(dip);
  alive_.push_back(true);
  return slots_.size() - 1;
}

bool DipPool::remove(const net::Endpoint& dip) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i] && slots_[i] == dip) {
      if (semantics_ == PoolSemantics::kCompactEcmp) {
        slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
        alive_.erase(alive_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        alive_[i] = false;
      }
      return true;
    }
  }
  return false;
}

std::optional<std::size_t> DipPool::replace_dead_slot(const net::Endpoint& dip) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!alive_[i]) {
      slots_[i] = dip;
      alive_[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

bool DipPool::erase_member(const net::Endpoint& dip) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i] && slots_[i] == dip) {
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      alive_.erase(alive_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool DipPool::replace_member(const net::Endpoint& from, const net::Endpoint& to) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i] && slots_[i] == from) {
      slots_[i] = to;
      return true;
    }
  }
  return false;
}

std::vector<net::Endpoint> DipPool::members() const {
  std::vector<net::Endpoint> out;
  out.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i]) out.push_back(slots_[i]);
  }
  return out;
}

bool DipPool::contains_live(const net::Endpoint& dip) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (alive_[i] && slots_[i] == dip) return true;
  }
  return false;
}

bool DipPool::has_dead_slot() const {
  return std::any_of(alive_.begin(), alive_.end(),
                     [](bool alive) { return !alive; });
}

std::size_t DipPool::live_count() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

bool DipPool::ipv6() const {
  return !slots_.empty() && slots_.front().ip.is_v6();
}

std::size_t DipPool::wire_bytes() const {
  std::size_t total = 0;
  for (const auto& dip : slots_) total += dip.wire_bytes();
  return total;
}

std::string DipPool::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    out += slots_[i].to_string();
    if (!alive_[i]) out += "(dead)";
  }
  out += "}";
  return out;
}

}  // namespace silkroad::lb
