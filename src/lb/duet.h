// Duet-style hybrid load balancer (Gandhi et al., SIGCOMM'14; paper §2.3,
// §3.2) — VIPTable in switch ASICs, ConnTable only in SLB servers.
//
// Steady state: the switch maps packets statelessly by ECMP hash into the
// VIP's pool. To update a DIP pool, the VIP's traffic is first redirected to
// SLBs, which pin every ongoing connection in a software ConnTable (under
// the old pool) before the update applies. The open question — when to
// migrate the VIP *back* to the switch — is the dilemma of Fig. 5:
//
//   * kPeriodic (10 min / 1 min): migrate back on a period tick. Connections
//     still pinned to a DIP that differs from the current pool's hash break
//     on migration (PCC violations, Fig. 5b), and all redirected traffic
//     burns SLB capacity until the tick (Fig. 5a).
//   * kWaitPcc: migrate back only when no pinned connection disagrees with
//     the current pool hash — zero violations, maximal SLB load.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "lb/load_balancer.h"
#include "sim/distributions.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace silkroad::lb {

class DuetLoadBalancer : public LoadBalancer {
 public:
  enum class MigratePolicy : std::uint8_t { kPeriodic, kWaitPcc };

  struct Config {
    MigratePolicy policy = MigratePolicy::kPeriodic;
    /// Period for kPeriodic ("Migrate-10min" is the Duet default).
    sim::Time migrate_period = 10 * sim::kMinute;
    /// Pool semantics of the in-switch ECMP tables.
    PoolSemantics pool_semantics = PoolSemantics::kCompactEcmp;
    /// Per-packet latency on the switch path (ASIC pipeline).
    sim::Time switch_latency = 400;  // ns
    /// SLB-path latency envelope (µs), as in SoftwareLoadBalancer.
    double slb_latency_us_median = 100.0;
    double slb_latency_us_p99 = 1000.0;
  };

  DuetLoadBalancer(sim::Simulator& simulator, const Config& config);

  std::string name() const override;

  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;
  void request_update(const workload::DipUpdate& update) override;
  PacketResult process_packet(const net::Packet& packet) override;
  void set_mapping_risk_callback(MappingRiskCallback cb) override {
    risk_cb_ = std::move(cb);
  }
  bool vip_at_slb(const net::Endpoint& vip) const override;

  // --- Statistics ------------------------------------------------------------
  std::uint64_t migrations_to_slb() const noexcept { return to_slb_; }
  std::uint64_t migrations_to_switch() const noexcept { return to_switch_; }

 private:
  /// One SLB ConnTable entry: the pinned DIP plus whether the pin currently
  /// disagrees with the pool hash (a migrate-back hazard).
  struct Pin {
    net::Endpoint dip;
    bool mismatched = false;
  };

  struct VipState {
    DipPool pool;
    bool at_slb = false;
    /// SLB ConnTable fragment for this VIP.
    std::unordered_map<net::FiveTuple, Pin, net::FiveTupleHash> pinned;
    /// Number of pinned flows with mismatched=true (kWaitPcc bookkeeping).
    std::uint64_t mismatched_count = 0;
  };

  void migrate_back_if_due();
  void migrate_vip_to_switch(const net::Endpoint& vip, VipState& state);
  /// kWaitPcc: checks whether every pinned flow agrees with the current pool
  /// hash; migrates back when true.
  void maybe_migrate_pcc(const net::Endpoint& vip, VipState& state);

  sim::Simulator& sim_;
  Config config_;
  sim::LogNormalByQuantiles slb_latency_;
  sim::Rng latency_rng_;
  std::unordered_map<net::Endpoint, VipState, net::EndpointHash> vips_;
  MappingRiskCallback risk_cb_;
  bool tick_scheduled_ = false;
  std::uint64_t to_slb_ = 0;
  std::uint64_t to_switch_ = 0;
};

}  // namespace silkroad::lb
