#include "lb/packet_level.h"

namespace silkroad::lb {

void PacketLevelRunner::send_packet(const workload::Flow& flow, bool syn,
                                    bool fin) {
  net::Packet packet;
  packet.flow = flow.tuple;
  packet.syn = syn;
  packet.fin = fin;
  packet.size_bytes = config_.packet_bytes;
  const auto result = lb_.process_packet(packet);
  packets_->inc();

  if (syn) {
    if (!result.dip) {
      unmapped_flows_->inc();
      return;
    }
    flows_->inc();
    active_.emplace(flow.tuple, FlowState{*result.dip, false});
    return;
  }
  const auto it = active_.find(flow.tuple);
  if (it == active_.end()) return;  // never established
  FlowState& state = it->second;
  if (!state.violated && down_dips_.contains(state.first_dip)) {
    // Server-down exemption: the connection is dead regardless of the LB.
    state.violated = true;  // stop auditing without counting
  } else if (!state.violated &&
             (!result.dip || !(*result.dip == state.first_dip))) {
    state.violated = true;
    violations_->inc();
  }
  if (fin) active_.erase(it);
}

PacketLevelRunner::Stats PacketLevelRunner::run(
    const std::vector<workload::Flow>& flows,
    const std::vector<workload::DipUpdate>& updates) {
  for (const auto& update : updates) {
    sim_.schedule_at(update.at, [this, update] {
      if (update.action == workload::UpdateAction::kRemoveDip) {
        down_dips_.insert(update.dip);
      } else {
        down_dips_.erase(update.dip);
      }
      lb_.request_update(update);
    });
  }
  for (const auto& flow : flows) {
    sim_.schedule_at(flow.start, [this, flow] {
      send_packet(flow, /*syn=*/true, /*fin=*/false);
      // Schedule the packet train: one packet per interval until the flow
      // ends, then the FIN.
      for (sim::Time t = flow.start + config_.packet_interval; t < flow.end;
           t += config_.packet_interval) {
        sim_.schedule_at(t, [this, flow] {
          send_packet(flow, /*syn=*/false, /*fin=*/false);
        });
      }
      sim_.schedule_at(flow.end, [this, flow] {
        send_packet(flow, /*syn=*/false, /*fin=*/true);
      });
    });
  }
  sim_.run();
  Stats stats;
  stats.flows = flows_->value();
  stats.packets = packets_->value();
  stats.violations = violations_->value();
  stats.unmapped_flows = unmapped_flows_->value();
  stats.violation_fraction =
      stats.flows == 0 ? 0.0
                       : static_cast<double>(stats.violations) /
                             static_cast<double>(stats.flows);
  return stats;
}

}  // namespace silkroad::lb
