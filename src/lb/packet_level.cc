#include "lb/packet_level.h"

namespace silkroad::lb {

void PacketLevelRunner::send_packet(const workload::Flow& flow, bool syn,
                                    bool fin) {
  net::Packet packet;
  packet.flow = flow.tuple;
  packet.syn = syn;
  packet.fin = fin;
  packet.size_bytes = config_.packet_bytes;
  const auto result = lb_.process_packet(packet);
  ++stats_.packets;

  if (syn) {
    if (!result.dip) {
      ++stats_.unmapped_flows;
      return;
    }
    ++stats_.flows;
    active_.emplace(flow.tuple, FlowState{*result.dip, false});
    return;
  }
  const auto it = active_.find(flow.tuple);
  if (it == active_.end()) return;  // never established
  FlowState& state = it->second;
  if (!state.violated && down_dips_.contains(state.first_dip)) {
    // Server-down exemption: the connection is dead regardless of the LB.
    state.violated = true;  // stop auditing without counting
  } else if (!state.violated &&
             (!result.dip || !(*result.dip == state.first_dip))) {
    state.violated = true;
    ++stats_.violations;
  }
  if (fin) active_.erase(it);
}

PacketLevelRunner::Stats PacketLevelRunner::run(
    const std::vector<workload::Flow>& flows,
    const std::vector<workload::DipUpdate>& updates) {
  for (const auto& update : updates) {
    sim_.schedule_at(update.at, [this, update] {
      if (update.action == workload::UpdateAction::kRemoveDip) {
        down_dips_.insert(update.dip);
      } else {
        down_dips_.erase(update.dip);
      }
      lb_.request_update(update);
    });
  }
  for (const auto& flow : flows) {
    sim_.schedule_at(flow.start, [this, flow] {
      send_packet(flow, /*syn=*/true, /*fin=*/false);
      // Schedule the packet train: one packet per interval until the flow
      // ends, then the FIN.
      for (sim::Time t = flow.start + config_.packet_interval; t < flow.end;
           t += config_.packet_interval) {
        sim_.schedule_at(t, [this, flow] {
          send_packet(flow, /*syn=*/false, /*fin=*/false);
        });
      }
      sim_.schedule_at(flow.end, [this, flow] {
        send_packet(flow, /*syn=*/false, /*fin=*/true);
      });
    });
  }
  sim_.run();
  stats_.violation_fraction =
      stats_.flows == 0 ? 0.0
                        : static_cast<double>(stats_.violations) /
                              static_cast<double>(stats_.flows);
  return stats_;
}

}  // namespace silkroad::lb
