// A VIP's DIP pool with hash-based member selection.
//
// Two slot semantics are provided because they induce the different PCC
// behaviours the paper compares:
//
//  * kCompactEcmp    — classic ECMP member table: removing a member compacts
//                      the table, so `hash % size` re-maps ~everything. This
//                      is the fixed-function behaviour Duet is built on.
//  * kStableResilient— slots are stable: a removed DIP leaves a dead slot;
//                      selection re-hashes deterministically past dead slots
//                      (resilient hashing, paper §7). Replacing a dead slot
//                      in place (version *reuse*, §4.2) leaves every live
//                      mapping untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "net/five_tuple.h"
#include "net/hash.h"

namespace silkroad::lb {

enum class PoolSemantics : std::uint8_t { kCompactEcmp, kStableResilient };

class DipPool {
 public:
  DipPool() = default;
  DipPool(std::vector<net::Endpoint> dips, PoolSemantics semantics,
          std::uint64_t select_seed = 0xD1A5E1EC7ULL);

  /// Selects the DIP for a flow; nullopt when no live member exists.
  /// Deterministic in (flow, pool state).
  std::optional<net::Endpoint> select(const net::FiveTuple& flow) const;

  /// Adds a DIP. Under kStableResilient a dead slot is *not* implicitly
  /// reused (that decision belongs to the version manager); a new slot is
  /// appended. Returns the slot index.
  std::size_t add(const net::Endpoint& dip);

  /// Removes a DIP. kCompactEcmp erases the slot (re-mapping hazard);
  /// kStableResilient marks it dead. Returns false if not found live.
  bool remove(const net::Endpoint& dip);

  /// kStableResilient only: replaces the first dead slot with `dip`
  /// (in-place substitution enabling version reuse). Returns the slot index
  /// or nullopt when no dead slot exists.
  std::optional<std::size_t> replace_dead_slot(const net::Endpoint& dip);

  /// Hard-removes `dip`'s slot (compaction) regardless of semantics — used
  /// when *constructing* a new pool version, where no connection depends on
  /// the layout yet. Returns false if the dip is not a live member.
  bool erase_member(const net::Endpoint& dip);

  /// In-place substitution: the slot holding `from` now holds `to`, keeping
  /// its position (version reuse, paper §4.2: "replace DIP 10.0.0.2:20 with
  /// 10.0.0.4:20"). Returns false if `from` is not a live member.
  bool replace_member(const net::Endpoint& from, const net::Endpoint& to);

  /// Live member endpoints in slot order.
  std::vector<net::Endpoint> members() const;

  bool contains_live(const net::Endpoint& dip) const;
  bool has_dead_slot() const;
  std::size_t live_count() const;
  std::size_t slot_count() const noexcept { return slots_.size(); }
  PoolSemantics semantics() const noexcept { return semantics_; }
  const std::vector<net::Endpoint>& slots() const noexcept { return slots_; }
  const std::vector<bool>& alive() const noexcept { return alive_; }
  bool ipv6() const;

  /// Wire bytes of the member list (DIPPoolTable sizing): live+dead slots x
  /// (address + port).
  std::size_t wire_bytes() const;

  std::string to_string() const;

  friend bool operator==(const DipPool& a, const DipPool& b) {
    return a.slots_ == b.slots_ && a.alive_ == b.alive_;
  }

 private:
  std::vector<net::Endpoint> slots_;
  std::vector<bool> alive_;
  PoolSemantics semantics_ = PoolSemantics::kStableResilient;
  std::uint64_t select_seed_ = 0xD1A5E1EC7ULL;
};

}  // namespace silkroad::lb
