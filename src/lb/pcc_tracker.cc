#include "lb/pcc_tracker.h"

namespace silkroad::lb {

void PccTracker::flow_started(const net::FiveTuple& flow,
                              const net::Endpoint& dip, sim::Time /*now*/) {
  ++flows_seen_;
  active_.emplace(flow, FlowState{dip, false});
}

void PccTracker::observe(const net::FiveTuple& flow, const net::Endpoint& dip,
                         sim::Time now) {
  const auto it = active_.find(flow);
  if (it == active_.end()) return;
  FlowState& state = it->second;
  if (state.exempt) return;
  if (!state.violated && !(state.dip == dip)) {
    state.violated = true;
    ++violations_;
    violation_times_.push_back(now);
    violation_records_.push_back({flow, now});
  }
}

void PccTracker::observe_unmapped(const net::FiveTuple& flow, sim::Time now) {
  const auto it = active_.find(flow);
  if (it == active_.end()) return;
  FlowState& state = it->second;
  if (state.exempt) return;
  if (!state.violated) {
    state.violated = true;
    ++violations_;
    violation_times_.push_back(now);
    violation_records_.push_back({flow, now});
  }
}

void PccTracker::flow_finished(const net::FiveTuple& flow) {
  active_.erase(flow);
}

void PccTracker::exempt_flow(const net::FiveTuple& flow) {
  const auto it = active_.find(flow);
  if (it != active_.end()) it->second.exempt = true;
}

std::optional<net::Endpoint> PccTracker::assigned_dip(
    const net::FiveTuple& flow) const {
  const auto it = active_.find(flow);
  if (it == active_.end()) return std::nullopt;
  return it->second.dip;
}

}  // namespace silkroad::lb
