// Software load balancer (SLB) — the Maglev/Ananta-class baseline (§2.2).
//
// Both VIPTable (Maglev consistent hashing) and ConnTable (an in-memory hash
// map) live in server software. Updates are applied atomically under a lock
// with new connections buffered, so the SLB never violates PCC — its costs
// are elsewhere: every packet is handled in software (x86 pps limits, 50 µs -
// 1 ms added latency), which is what Figs. 5a/13 and the cost table charge.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "check/thread_annotations.h"
#include "lb/load_balancer.h"
#include "lb/maglev.h"
#include "obs/metrics.h"
#include "obs/sharded.h"
#include "sim/distributions.h"
#include "sim/random.h"

namespace silkroad::lb {

class SoftwareLoadBalancer : public LoadBalancer {
 public:
  struct Config {
    /// Maglev lookup-table size (prime).
    std::size_t maglev_table_size = 65537;
    /// Capacity envelope constants used for cost/scaling math (not enforced
    /// per-packet): the state-of-the-art 8-core SLB forwards 12 Mpps [20].
    double max_mpps = 12.0;
    double nic_gbps = 10.0;
    double added_latency_us_min = 50.0;
    double added_latency_us_max = 1000.0;
    double watts = 200.0;
    double cost_usd = 3000.0;
  };

  SoftwareLoadBalancer() : SoftwareLoadBalancer(Config{}) {}
  explicit SoftwareLoadBalancer(const Config& config)
      : config_(config),
        latency_dist_(sim::LogNormalByQuantiles::from_median_p99(
            config.added_latency_us_min * 2, config.added_latency_us_max)),
        latency_rng_(0x51B1A7ULL) {}

  std::string name() const override { return "slb"; }

  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;
  void request_update(const workload::DipUpdate& update) override;
  PacketResult process_packet(const net::Packet& packet) override;
  void set_mapping_risk_callback(MappingRiskCallback cb) override {
    risk_cb_ = std::move(cb);
  }
  bool vip_at_slb(const net::Endpoint&) const override { return true; }

  std::size_t conn_table_size() const {
    const sr::MutexLock lock(mu_);
    return conn_table_.size();
  }
  const Config& config() const noexcept { return config_; }

  /// Optional telemetry: registers the SLB's packet-path counters
  /// (silkroad_slb_*) in `registry`. Sharded — the SLB's per-packet path is
  /// explicitly multi-threaded (worker threads share one instance), so these
  /// bumps must not contend. Call before traffic; the registry must outlive
  /// the balancer.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct VipState {
    std::vector<net::Endpoint> dips;
    MaglevTable maglev;
  };

  Config config_;
  /// Per-packet software latency (batching + queueing): log-normal with the
  /// paper's 50 µs - 1 ms envelope (§2.2).
  sim::LogNormalByQuantiles latency_dist_;
  /// The "VIPTable is locked and new connections buffered" atomic-update
  /// contract of §2.1, made literal: one mutex over the whole per-packet /
  /// per-update state so worker threads can share an SLB instance.
  mutable sr::Mutex mu_;
  sim::Rng latency_rng_ SR_GUARDED_BY(mu_);
  std::unordered_map<net::Endpoint, VipState, net::EndpointHash> vips_
      SR_GUARDED_BY(mu_);
  std::unordered_map<net::FiveTuple, net::Endpoint, net::FiveTupleHash>
      conn_table_ SR_GUARDED_BY(mu_);
  MappingRiskCallback risk_cb_;
  /// Null until bind_metrics(); sharded, so bumps take no lock and the
  /// handles may be used while mu_ is held without ordering concerns.
  obs::ShardedCounter* packets_ = nullptr;
  obs::ShardedCounter* new_conns_ = nullptr;
  obs::ShardedCounter* conn_table_hits_ = nullptr;
};

}  // namespace silkroad::lb
