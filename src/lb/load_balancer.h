// Common interface of all layer-4 load balancers under study.
//
// A load balancer maps packets addressed to a VIP onto a DIP. Implementations
// differ in *where* state lives (SLB servers, switch ASIC, both) and in how
// they behave across DIP-pool updates — which is exactly what the paper's
// experiments compare. The scenario driver (scenario.h) interacts with every
// implementation solely through this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lb/dip_pool.h"
#include "sim/time.h"
#include "net/endpoint.h"
#include "net/packet.h"
#include "workload/update_gen.h"

namespace silkroad::lb {

/// Outcome of processing one packet.
struct PacketResult {
  /// Chosen DIP; nullopt when the destination is not a configured VIP or the
  /// pool is empty (packet dropped / routed normally).
  std::optional<net::Endpoint> dip;
  /// True when an SLB server (not a switch ASIC) did the work — the quantity
  /// Fig. 5a integrates (traffic volume handled in software).
  bool handled_by_slb = false;
  /// True when the packet took a slow path through the switch CPU
  /// (SYN false-positive redirection, §4.2/§4.3).
  bool redirected_to_cpu = false;
  /// Processing latency this hop added to the packet (ns). Switch ASICs add
  /// sub-microsecond pipeline latency; SLBs add 50 µs - 1 ms of batched
  /// software processing (§2.2); CPU-redirected packets add milliseconds.
  sim::Time added_latency = 0;
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  virtual std::string name() const = 0;

  // --- Control plane --------------------------------------------------------

  /// Installs a VIP with its initial DIP pool.
  virtual void add_vip(const net::Endpoint& vip,
                       const std::vector<net::Endpoint>& dips) = 0;

  /// Requests a DIP-pool change. Implementations apply it according to their
  /// own consistency machinery (immediately, 3-step, via SLB redirection...).
  virtual void request_update(const workload::DipUpdate& update) = 0;

  /// DIP failure fast path (SilkRoad §7). The default turns it into a plain
  /// removal update; implementations with an in-place resilient path (mark
  /// the slot dead in every pool version, no version churn) honor
  /// `resilient_in_place`. Health checkers call this so they can drive any
  /// balancer, not just the SilkRoad switch.
  virtual void handle_dip_failure(const net::Endpoint& vip,
                                  const net::Endpoint& dip,
                                  bool /*resilient_in_place*/) {
    workload::DipUpdate update;
    update.vip = vip;
    update.dip = dip;
    update.action = workload::UpdateAction::kRemoveDip;
    update.cause = workload::UpdateCause::kFailure;
    request_update(update);
  }

  // --- Data plane ------------------------------------------------------------

  /// Processes one packet (first packets carry syn=true, closing ones
  /// fin=true). Deterministic between control-plane state changes.
  virtual PacketResult process_packet(const net::Packet& packet) = 0;

  // --- Observability ----------------------------------------------------------

  /// Invoked (synchronously, at the simulated time of the change) whenever
  /// the mapping of existing connections of `vip` may have changed: VIPTable
  /// version flips, Duet VIP migrations, pool rewrites. The scenario driver
  /// uses it to audit PCC exactly. Implementations must call it *after* the
  /// state change took effect.
  using MappingRiskCallback = std::function<void(const net::Endpoint& vip)>;
  virtual void set_mapping_risk_callback(MappingRiskCallback cb) = 0;

  /// True while `vip`'s traffic is served by SLB servers (Fig. 5a
  /// accounting). Pure-switch designs return false, pure-SLB designs true.
  virtual bool vip_at_slb(const net::Endpoint& vip) const = 0;

  /// Verifies the implementation's internal structural invariants, aborting
  /// (SR_CHECK) on any violation. The scenario driver invokes this after
  /// every pool-update step so long randomized runs audit consistency
  /// machinery continuously; the default is a no-op for balancers without
  /// auditable internal state.
  virtual void self_check() const {}
};

}  // namespace silkroad::lb
