#include "lb/hash_ring.h"

#include <array>

namespace silkroad::lb {

std::uint64_t HashRing::vnode_point(const net::Endpoint& backend,
                                    std::size_t replica) const {
  std::array<std::uint8_t, 18> buf{};
  std::size_t pos = 0;
  for (const std::uint8_t b : backend.ip.bytes()) buf[pos++] = b;
  buf[pos++] = static_cast<std::uint8_t>(backend.port >> 8);
  buf[pos++] = static_cast<std::uint8_t>(backend.port);
  return net::hash_bytes(std::span<const std::uint8_t>(buf),
                         net::mix64(seed_ + 0x9E3779B9ULL * (replica + 1)));
}

void HashRing::add(const net::Endpoint& backend) {
  bool added_any = false;
  for (std::size_t r = 0; r < vnodes_; ++r) {
    added_any |= ring_.emplace(vnode_point(backend, r), backend).second;
  }
  if (added_any) ++backend_count_;
}

bool HashRing::remove(const net::Endpoint& backend) {
  bool removed_any = false;
  for (std::size_t r = 0; r < vnodes_; ++r) {
    const auto it = ring_.find(vnode_point(backend, r));
    if (it != ring_.end() && it->second == backend) {
      ring_.erase(it);
      removed_any = true;
    }
  }
  if (removed_any) --backend_count_;
  return removed_any;
}

std::optional<net::Endpoint> HashRing::select(
    const net::FiveTuple& flow) const {
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t point = net::hash_five_tuple(flow, seed_);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::pair<net::Endpoint, double>> HashRing::ownership(
    std::size_t samples) const {
  std::vector<std::pair<net::Endpoint, double>> shares;
  if (ring_.empty() || samples == 0) return shares;
  std::map<net::Endpoint, std::size_t> counts;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::uint64_t point = net::mix64(seed_ ^ (i * 0x2545F4914F6CDD1DULL));
    auto it = ring_.lower_bound(point);
    if (it == ring_.end()) it = ring_.begin();
    ++counts[it->second];
  }
  shares.reserve(counts.size());
  for (const auto& [backend, count] : counts) {
    shares.emplace_back(backend,
                        static_cast<double>(count) / static_cast<double>(samples));
  }
  return shares;
}

}  // namespace silkroad::lb
