// Classic consistent-hash ring (Karger et al.) with virtual nodes.
//
// One more point in the design space the paper's baselines draw from: SLBs
// use consistent hashing so that DIP-pool changes re-map only ~1/N of the
// keyspace even *without* per-connection state. The ring trades the
// near-perfect balance of Maglev for cheap incremental updates (no O(M)
// table rebuild). Exposed so the hash-churn ablation bench can compare
// ECMP-compact, resilient slots, Maglev, and the ring on equal terms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/endpoint.h"
#include "net/five_tuple.h"
#include "net/hash.h"

namespace silkroad::lb {

class HashRing {
 public:
  /// `vnodes` virtual nodes per backend smooth the load distribution
  /// (classic rule of thumb: 100-200 for ~10% imbalance).
  explicit HashRing(std::size_t vnodes = 160, std::uint64_t seed = 0x41A6ULL)
      : vnodes_(vnodes == 0 ? 1 : vnodes), seed_(seed) {}

  /// Adds a backend (its virtual nodes join the ring). No other backend's
  /// arcs are disturbed beyond those the new nodes split.
  void add(const net::Endpoint& backend);

  /// Removes a backend; its arcs fall to their ring successors.
  bool remove(const net::Endpoint& backend);

  /// First virtual node clockwise from the flow's hash point.
  std::optional<net::Endpoint> select(const net::FiveTuple& flow) const;

  std::size_t backends() const noexcept { return backend_count_; }
  std::size_t ring_size() const noexcept { return ring_.size(); }

  /// Fraction of the keyspace owned by each backend (balance diagnostic),
  /// estimated over `samples` random points.
  std::vector<std::pair<net::Endpoint, double>> ownership(
      std::size_t samples = 20000) const;

 private:
  std::uint64_t vnode_point(const net::Endpoint& backend,
                            std::size_t replica) const;

  std::size_t vnodes_;
  std::uint64_t seed_;
  std::map<std::uint64_t, net::Endpoint> ring_;
  std::size_t backend_count_ = 0;
};

}  // namespace silkroad::lb
