// Packet-level cross-validation of the flow-level model.
//
// The scenario driver (scenario.h) audits PCC by probing flows exactly at
// mapping-risk events, under the assumption that a balancer's mapping is
// constant between such events. This runner discharges that assumption
// empirically: it materializes every packet of every flow (one per configured
// interval, modeling a flow that always has a packet within an RTT) and
// checks each packet's DIP directly. Orders of magnitude more expensive, so
// it runs small workloads — its job is to agree with the flow-level results,
// not to replace them (see PacketLevelAgreement tests).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lb/load_balancer.h"
#include "obs/metrics.h"
#include "obs/sharded.h"
#include "sim/event_queue.h"
#include "workload/flow_gen.h"
#include "workload/update_gen.h"

namespace silkroad::lb {

class PacketLevelRunner {
 public:
  struct Config {
    /// Inter-packet gap within a flow (the data-center RTT scale; every
    /// mapping change lasting at least this long is observed).
    sim::Time packet_interval = 10 * sim::kMillisecond;
    /// Payload size attached to each packet.
    std::uint32_t packet_bytes = 1000;
  };

  /// Snapshot view assembled from the runner's metrics registry at the end
  /// of run() — the registry (silkroad_packet_level_*) is the source of
  /// truth.
  struct Stats {
    std::uint64_t flows = 0;
    std::uint64_t packets = 0;
    std::uint64_t violations = 0;  // flows whose mapping changed mid-life
    std::uint64_t unmapped_flows = 0;
    double violation_fraction = 0;
  };

  PacketLevelRunner(sim::Simulator& simulator, LoadBalancer& lb,
                    const Config& config)
      : sim_(simulator), lb_(lb), config_(config) {
    // Bumped once per materialized packet/flow: sharded (DESIGN.md §14).
    packets_ = metrics_.sharded_counter("silkroad_packet_level_packets_total",
                                        "packets materialized and audited");
    flows_ = metrics_.sharded_counter("silkroad_packet_level_flows_total",
                                      "flows that established a mapping");
    violations_ =
        metrics_.sharded_counter("silkroad_packet_level_violations_total",
                                 "flows whose mapping changed mid-life");
    unmapped_flows_ = metrics_.sharded_counter(
        "silkroad_packet_level_unmapped_flows_total",
        "SYNs that received no DIP");
    metrics_.register_callback(
        "silkroad_packet_level_active_flows", obs::MetricKind::kGauge,
        [this] { return static_cast<double>(active_.size()); },
        "flows currently in their packet train");
  }

  PacketLevelRunner(const PacketLevelRunner&) = delete;
  PacketLevelRunner& operator=(const PacketLevelRunner&) = delete;

  /// Runs `flows` against `updates` (VIPs/pools must already be configured
  /// on the balancer) and audits every packet.
  Stats run(const std::vector<workload::Flow>& flows,
            const std::vector<workload::DipUpdate>& updates);

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

 private:
  struct FlowState {
    net::Endpoint first_dip;
    bool violated = false;
  };

  void send_packet(const workload::Flow& flow, bool syn, bool fin);

  sim::Simulator& sim_;
  LoadBalancer& lb_;
  Config config_;
  std::unordered_map<net::FiveTuple, FlowState, net::FiveTupleHash> active_;
  /// DIPs currently out of service (server-down exemption, as in Scenario).
  std::unordered_set<net::Endpoint, net::EndpointHash> down_dips_;
  obs::MetricsRegistry metrics_;
  obs::ShardedCounter* packets_ = nullptr;
  obs::ShardedCounter* flows_ = nullptr;
  obs::ShardedCounter* violations_ = nullptr;
  obs::ShardedCounter* unmapped_flows_ = nullptr;
};

}  // namespace silkroad::lb
