#include "lb/maglev.h"

#include <algorithm>
#include <array>
#include "check/sr_check.h"

namespace silkroad::lb {
namespace {

std::uint64_t endpoint_hash(const net::Endpoint& e, std::uint64_t seed) {
  std::array<std::uint8_t, 18> buf{};
  std::size_t pos = 0;
  for (const std::uint8_t b : e.ip.bytes()) buf[pos++] = b;
  buf[pos++] = static_cast<std::uint8_t>(e.port >> 8);
  buf[pos++] = static_cast<std::uint8_t>(e.port);
  return net::hash_bytes(std::span<const std::uint8_t>(buf), seed);
}

}  // namespace

MaglevTable::MaglevTable(std::vector<net::Endpoint> backends,
                         std::size_t table_size, std::uint64_t seed)
    : backends_(std::move(backends)),
      table_(table_size == 0 ? 1 : table_size, -1),
      seed_(seed) {
  build();
}

void MaglevTable::set_backends(std::vector<net::Endpoint> backends) {
  backends_ = std::move(backends);
  build();
}

void MaglevTable::build() {
  const std::size_t m = table_.size();
  std::fill(table_.begin(), table_.end(), std::int32_t{-1});
  const std::size_t n = backends_.size();
  if (n == 0) return;
  // Per-backend permutation parameters: offset in [0, M), skip in [1, M).
  std::vector<std::uint64_t> offset(n);
  std::vector<std::uint64_t> skip(n);
  for (std::size_t i = 0; i < n; ++i) {
    offset[i] = endpoint_hash(backends_[i], seed_) % m;
    skip[i] = endpoint_hash(backends_[i], net::mix64(seed_)) % (m - 1) + 1;
  }
  std::vector<std::uint64_t> next(n, 0);
  std::size_t filled = 0;
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      // Advance backend i's permutation to its next unclaimed slot.
      std::size_t slot;
      do {
        slot = static_cast<std::size_t>((offset[i] + next[i] * skip[i]) % m);
        ++next[i];
      } while (table_[slot] >= 0);
      table_[slot] = static_cast<std::int32_t>(i);
      ++filled;
    }
  }
}

std::optional<net::Endpoint> MaglevTable::select(
    const net::FiveTuple& flow) const {
  if (backends_.empty()) return std::nullopt;
  const std::size_t slot = static_cast<std::size_t>(
      net::hash_five_tuple(flow, seed_ ^ 0x5E1EC7ULL) % table_.size());
  const std::int32_t idx = table_[slot];
  if (idx < 0) return std::nullopt;
  return backends_[static_cast<std::size_t>(idx)];
}

std::vector<double> MaglevTable::slot_shares() const {
  std::vector<double> shares(backends_.size(), 0.0);
  if (backends_.empty()) return shares;
  for (const std::int32_t idx : table_) {
    if (idx >= 0) shares[static_cast<std::size_t>(idx)] += 1.0;
  }
  for (auto& s : shares) s /= static_cast<double>(table_.size());
  return shares;
}

double MaglevTable::disruption_vs(const MaglevTable& other) const {
  SR_CHECKF(table_.size() == other.table_.size(),
            "disruption_vs needs equally sized tables (%zu vs %zu)",
            table_.size(), other.table_.size());
  std::size_t moved = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const std::int32_t a = table_[i];
    const std::int32_t b = other.table_[i];
    const bool same =
        a >= 0 && b >= 0 &&
        backends_[static_cast<std::size_t>(a)] ==
            other.backends_[static_cast<std::size_t>(b)];
    if (!same) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(table_.size());
}

}  // namespace silkroad::lb
