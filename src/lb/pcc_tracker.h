// Per-connection-consistency auditor (paper §2.1 definition).
//
// PCC holds for connection c iff every packet of c maps to the DIP its first
// packet mapped to. The tracker records the first mapping of each flow and
// flags any later observation that differs. A flow is counted broken at most
// once. Observations are supplied by the scenario driver, which probes every
// active flow of a VIP exactly when the balancer reports a mapping-risk
// event — between such events the mapping function is constant, so this
// audit is exact, not sampled.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/endpoint.h"
#include "net/five_tuple.h"
#include "net/hash.h"
#include "sim/time.h"

namespace silkroad::lb {

class PccTracker {
 public:
  /// Registers a flow's first mapping.
  void flow_started(const net::FiveTuple& flow, const net::Endpoint& dip,
                    sim::Time now);

  /// Records a later mapping observation; a mismatch marks the flow broken.
  void observe(const net::FiveTuple& flow, const net::Endpoint& dip,
               sim::Time now);

  /// Records that a flow's packet was dropped / unmapped mid-life (counts as
  /// a violation: the connection cannot proceed).
  void observe_unmapped(const net::FiveTuple& flow, sim::Time now);

  /// Removes bookkeeping for an ended flow.
  void flow_finished(const net::FiveTuple& flow);

  /// Stops auditing a flow whose server went away (its DIP was removed from
  /// service): the connection is broken by the server, not by the load
  /// balancer, so later re-mappings must not count as LB-induced PCC
  /// violations — the accounting the paper's evaluation uses.
  void exempt_flow(const net::FiveTuple& flow);

  std::uint64_t flows_seen() const noexcept { return flows_seen_; }
  std::uint64_t violations() const noexcept { return violations_; }
  double violation_fraction() const noexcept {
    return flows_seen_ == 0
               ? 0.0
               : static_cast<double>(violations_) /
                     static_cast<double>(flows_seen_);
  }
  std::size_t active_flows() const noexcept { return active_.size(); }

  /// Violation timestamps (for per-minute series in Figs. 16-18).
  const std::vector<sim::Time>& violation_times() const noexcept {
    return violation_times_;
  }

  /// Which flow broke, and when — the forensics pipeline resolves the flow
  /// to its trace-ring journey and the update spans overlapping it.
  struct ViolationRecord {
    net::FiveTuple flow;
    sim::Time at = 0;
  };
  const std::vector<ViolationRecord>& violation_records() const noexcept {
    return violation_records_;
  }

  /// First-assigned DIP of an active flow, if tracked.
  std::optional<net::Endpoint> assigned_dip(const net::FiveTuple& flow) const;

 private:
  struct FlowState {
    net::Endpoint dip;
    bool violated = false;
    bool exempt = false;
  };

  std::unordered_map<net::FiveTuple, FlowState, net::FiveTupleHash> active_;
  std::uint64_t flows_seen_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<sim::Time> violation_times_;
  std::vector<ViolationRecord> violation_records_;
};

}  // namespace silkroad::lb
