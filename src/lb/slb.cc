#include "lb/slb.h"

#include <algorithm>

namespace silkroad::lb {

void SoftwareLoadBalancer::add_vip(const net::Endpoint& vip,
                                   const std::vector<net::Endpoint>& dips) {
  VipState state;
  state.dips = dips;
  state.maglev = MaglevTable(dips, config_.maglev_table_size);
  const sr::MutexLock lock(mu_);
  vips_.insert_or_assign(vip, std::move(state));
}

void SoftwareLoadBalancer::request_update(const workload::DipUpdate& update) {
  {
    const sr::MutexLock lock(mu_);
    const auto it = vips_.find(update.vip);
    if (it == vips_.end()) return;
    VipState& state = it->second;
    // Atomic update semantics (§2.1): VIPTable is locked and new connections
    // buffered while the Maglev table rebuilds, so existing flows — pinned in
    // ConnTable — are never re-hashed. In simulation the swap is a single
    // synchronous step, faithfully giving zero PCC violations.
    if (update.action == workload::UpdateAction::kAddDip) {
      state.dips.push_back(update.dip);
    } else {
      state.dips.erase(
          std::remove(state.dips.begin(), state.dips.end(), update.dip),
          state.dips.end());
    }
    state.maglev.set_backends(state.dips);
  }
  // Existing connections stay pinned via conn_table_, so no mapping-risk
  // event is raised for them; the callback is still invoked so the auditor
  // can verify that claim rather than trust it. Called outside mu_: the
  // probe sweep it triggers re-enters process_packet().
  if (risk_cb_) risk_cb_(update.vip);
}

void SoftwareLoadBalancer::bind_metrics(obs::MetricsRegistry& registry) {
  packets_ = registry.sharded_counter("silkroad_slb_packets_total",
                                      "packets handled in SLB software");
  new_conns_ = registry.sharded_counter(
      "silkroad_slb_new_conns_total",
      "connections pinned into the SLB's software ConnTable");
  conn_table_hits_ =
      registry.sharded_counter("silkroad_slb_conn_table_hits_total",
                               "packets served from an existing pin");
}

PacketResult SoftwareLoadBalancer::process_packet(const net::Packet& packet) {
  const sr::MutexLock lock(mu_);
  const auto vip_it = vips_.find(packet.flow.dst);
  if (vip_it == vips_.end()) return {};
  if (packets_ != nullptr) packets_->inc();
  PacketResult result;
  result.handled_by_slb = true;
  result.added_latency = static_cast<sim::Time>(
      latency_dist_.sample(latency_rng_) * static_cast<double>(sim::kMicrosecond));
  if (const auto pinned = conn_table_.find(packet.flow);
      pinned != conn_table_.end()) {
    if (conn_table_hits_ != nullptr) conn_table_hits_->inc();
    if (packet.fin) {
      result.dip = pinned->second;
      conn_table_.erase(pinned);
      return result;
    }
    result.dip = pinned->second;
    return result;
  }
  const auto dip = vip_it->second.maglev.select(packet.flow);
  if (!dip) return result;
  if (!packet.fin) {
    conn_table_.emplace(packet.flow, *dip);
    if (new_conns_ != nullptr) new_conns_->inc();
  }
  result.dip = dip;
  return result;
}

}  // namespace silkroad::lb
