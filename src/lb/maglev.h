// Maglev consistent-hashing lookup table (Eisenbud et al., NSDI'16) — the
// hashing scheme of the paper's SLB baseline (§2.2, [20]).
//
// Each backend fills a prime-sized lookup table through its own permutation
// of table slots; the result is near-perfectly balanced and minimally
// disrupted by membership changes (a property the SLB relies on so that DIP
// selection stays mostly stable across pool updates even before the
// ConnTable pins a flow).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/endpoint.h"
#include "net/five_tuple.h"
#include "net/hash.h"

namespace silkroad::lb {

class MaglevTable {
 public:
  /// `table_size` must be prime and larger than the backend count; Maglev's
  /// paper uses 65537 for production and 251 for examples.
  explicit MaglevTable(std::vector<net::Endpoint> backends = {},
                       std::size_t table_size = 65537,
                       std::uint64_t seed = 0xA61E77ULL);

  /// Rebuilds the lookup table for a new backend set (O(M log M) expected).
  void set_backends(std::vector<net::Endpoint> backends);

  std::optional<net::Endpoint> select(const net::FiveTuple& flow) const;

  const std::vector<net::Endpoint>& backends() const noexcept {
    return backends_;
  }
  std::size_t table_size() const noexcept { return table_.size(); }

  /// Fraction of table slots assigned to each backend (balance diagnostic;
  /// Maglev guarantees max/min -> 1 as M/N grows).
  std::vector<double> slot_shares() const;

  /// Fraction of slots that changed owner between this table and `other`
  /// (disruption diagnostic; small for single-backend changes).
  double disruption_vs(const MaglevTable& other) const;

 private:
  void build();

  std::vector<net::Endpoint> backends_;
  std::vector<std::int32_t> table_;  // slot -> backend index, -1 when empty
  std::uint64_t seed_;
};

}  // namespace silkroad::lb
