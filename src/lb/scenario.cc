#include "lb/scenario.h"

#include <map>

#include "check/sr_check.h"

namespace silkroad::lb {

Scenario::Scenario(sim::Simulator& simulator, LoadBalancer& lb,
                   ScenarioConfig config)
    : sim_(simulator), lb_(lb), config_(std::move(config)) {
  SR_CHECKF(config_.vip_loads.size() == config_.dip_pools.size(),
            "one initial DIP pool per VIP load (%zu loads, %zu pools)",
            config_.vip_loads.size(), config_.dip_pools.size());
  for (std::size_t i = 0; i < config_.vip_loads.size(); ++i) {
    lb_.add_vip(config_.vip_loads[i].vip, config_.dip_pools[i]);
    registry_[config_.vip_loads[i].vip] = VipRegistry{};
  }
  lb_.set_mapping_risk_callback(
      [this](const net::Endpoint& vip) { on_mapping_risk(vip); });
  flow_gen_ = std::make_unique<workload::FlowGenerator>(
      sim_, config_.vip_loads, config_.seed);

  updates_applied_ = metrics_.counter("silkroad_scenario_updates_applied_total",
                                      "DIP-pool updates delivered to the LB");
  cpu_redirects_ =
      metrics_.counter("silkroad_scenario_cpu_redirects_total",
                       "packets the LB reported as CPU-redirected");
  unmapped_starts_ =
      metrics_.counter("silkroad_scenario_unmapped_starts_total",
                       "SYNs that received no DIP (connection never opened)");
  flows_started_ = metrics_.counter("silkroad_scenario_flows_started_total",
                                    "flows that established a mapping");
  flows_finished_ = metrics_.counter("silkroad_scenario_flows_finished_total",
                                     "flows whose FIN was delivered");
  metrics_.register_callback(
      "silkroad_scenario_flows_seen", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(tracker_.flows_seen()); },
      "flows the PCC tracker has observed");
  metrics_.register_callback(
      "silkroad_scenario_violations_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(tracker_.violations()); },
      "PCC violations detected by the audit");
  metrics_.register_callback(
      "silkroad_scenario_active_flows", obs::MetricKind::kGauge,
      [this] {
        std::size_t total = 0;
        for (const auto& [vip, reg] : registry_) total += reg.flows.size();
        return static_cast<double>(total);
      },
      "currently established flows across all VIPs");
  metrics_.register_callback(
      "silkroad_scenario_slb_traffic_fraction", obs::MetricKind::kGauge,
      [this] {
        return total_bytes_ <= 0 ? 0.0 : slb_bytes_ / total_bytes_;
      },
      "fraction of bytes carried by software load balancers");
}

ScenarioStats Scenario::run() {
  // Group same-instant updates (rolling-reboot bursts) so the whole batch's
  // server-liveness changes are visible to the PCC audit before any probe
  // fires: a flow whose server leaves in the batch is server-broken, not
  // LB-broken, even if a sibling update also re-mapped it.
  std::map<sim::Time, std::vector<workload::DipUpdate>> by_time;
  for (const auto& update : config_.updates) {
    by_time[update.at].push_back(update);
  }
  for (const auto& [at, batch] : by_time) {
    sim_.schedule_at(at, [this, batch] {
      settle_volume();
      for (const auto& update : batch) {
        if (update.action == workload::UpdateAction::kRemoveDip) {
          down_dips_.insert(update.dip);
        } else {
          down_dips_.erase(update.dip);
        }
      }
      for (const auto& update : batch) {
        lb_.request_update(update);
        updates_applied_->inc();
      }
      // Audit the balancer's structural invariants at t_req of every update
      // batch (the other half of each update window is audited at the
      // mapping-risk callback, i.e. t_exec).
      lb_.self_check();
    });
  }
  if (config_.replay_flows.empty()) {
    flow_gen_->start(
        config_.horizon,
        [this](const workload::Flow& f) { on_flow_start(f); },
        [this](const workload::Flow& f) { on_flow_end(f); });
  } else {
    for (const auto& flow : config_.replay_flows) {
      sim_.schedule_at(flow.start, [this, flow] { on_flow_start(flow); });
      sim_.schedule_at(flow.end, [this, flow] { on_flow_end(flow); });
    }
  }
  sim_.run();
  settle_volume();
  lb_.self_check();  // final audit once every event has drained

  ScenarioStats stats;
  stats.flows = tracker_.flows_seen();
  stats.violations = tracker_.violations();
  stats.violation_fraction = tracker_.violation_fraction();
  stats.slb_bytes = slb_bytes_;
  stats.total_bytes = total_bytes_;
  stats.slb_traffic_fraction =
      total_bytes_ <= 0 ? 0.0 : slb_bytes_ / total_bytes_;
  stats.updates_applied = updates_applied_->value();
  stats.cpu_redirects = cpu_redirects_->value();
  stats.unmapped_starts = unmapped_starts_->value();
  const double minutes = sim::to_seconds(config_.horizon) / 60.0;
  stats.violations_per_minute =
      minutes <= 0 ? 0.0 : static_cast<double>(stats.violations) / minutes;
  return stats;
}

std::vector<net::FiveTuple> Scenario::active_flows() const {
  std::vector<net::FiveTuple> out;
  for (const auto& [vip, reg] : registry_) {
    for (const auto& [tuple, info] : reg.flows) out.push_back(tuple);
  }
  return out;
}

void Scenario::exempt_flows_on_dip(const net::Endpoint& dip) {
  for (const auto& [vip, reg] : registry_) {
    for (const auto& [tuple, info] : reg.flows) {
      if (const auto assigned = tracker_.assigned_dip(tuple);
          assigned && *assigned == dip) {
        tracker_.exempt_flow(tuple);
      }
    }
  }
}

void Scenario::on_flow_start(const workload::Flow& flow) {
  settle_volume();
  net::Packet syn;
  syn.flow = flow.tuple;
  syn.syn = true;
  syn.size_bytes = 64;
  const PacketResult result = lb_.process_packet(syn);
  if (result.redirected_to_cpu) cpu_redirects_->inc();
  if (!result.dip) {
    unmapped_starts_->inc();
    return;  // No pool / not a VIP: connection never establishes.
  }
  flows_started_->inc();
  tracker_.flow_started(flow.tuple, *result.dip, sim_.now());
  auto& vip_reg = registry_[flow.tuple.dst];
  vip_reg.flows.emplace(flow.tuple, ActiveFlow{flow.rate_bps});
  vip_reg.rate_bps += flow.rate_bps;
  vip_reg.at_slb = lb_.vip_at_slb(flow.tuple.dst);
  total_rate_bps_ += flow.rate_bps;
  if (vip_reg.at_slb) slb_rate_bps_ += flow.rate_bps;
}

void Scenario::on_flow_end(const workload::Flow& flow) {
  auto& vip_reg = registry_[flow.tuple.dst];
  const auto it = vip_reg.flows.find(flow.tuple);
  if (it == vip_reg.flows.end()) return;  // Was never established.
  settle_volume();
  // Deregister before delivering the FIN: the FIN may trigger a mapping-risk
  // event inside the balancer (e.g., Duet migrating back when the last
  // blocking flow ends), and the probe sweep must not synthesize a packet
  // for a connection that has already sent its final one.
  const double rate_bps = it->second.rate_bps;
  vip_reg.flows.erase(it);
  vip_reg.rate_bps -= rate_bps;
  total_rate_bps_ -= rate_bps;
  if (vip_reg.at_slb) slb_rate_bps_ -= rate_bps;

  net::Packet fin;
  fin.flow = flow.tuple;
  fin.fin = true;
  fin.size_bytes = 64;
  const PacketResult result = lb_.process_packet(fin);
  // The closing packet is still subject to the PCC audit.
  audit(flow.tuple, result.dip);
  tracker_.flow_finished(flow.tuple);
  flows_finished_->inc();
}

void Scenario::audit(const net::FiveTuple& flow,
                     const std::optional<net::Endpoint>& dip) {
  if (const auto assigned = tracker_.assigned_dip(flow);
      assigned && down_dips_.contains(*assigned)) {
    // The flow's server left service: the connection is dead regardless of
    // what the balancer does with its (now pointless) packets.
    tracker_.exempt_flow(flow);
    return;
  }
  const std::uint64_t before = tracker_.violations();
  if (dip) {
    tracker_.observe(flow, *dip, sim_.now());
  } else {
    tracker_.observe_unmapped(flow, sim_.now());
  }
  if (violation_cb_ && tracker_.violations() != before) {
    violation_cb_(flow, sim_.now());
  }
}

void Scenario::on_mapping_risk(const net::Endpoint& vip) {
  const auto reg_it = registry_.find(vip);
  if (reg_it == registry_.end()) return;
  VipRegistry& vip_reg = reg_it->second;
  settle_volume();
  // Probe every active flow of this VIP: its next packet's mapping.
  for (const auto& [tuple, info] : vip_reg.flows) {
    net::Packet probe;
    probe.flow = tuple;
    probe.size_bytes = 1000;
    const PacketResult result = lb_.process_packet(probe);
    if (result.redirected_to_cpu) cpu_redirects_->inc();
    audit(tuple, result.dip);
  }
  // The event may mark a mode flip (e.g., Duet migration): re-split rates.
  const bool now_at_slb = lb_.vip_at_slb(vip);
  if (now_at_slb != vip_reg.at_slb) {
    slb_rate_bps_ += now_at_slb ? vip_reg.rate_bps : -vip_reg.rate_bps;
    vip_reg.at_slb = now_at_slb;
  }
  // Mapping-risk events fire exactly when consistency machinery commits
  // (VIPTable flips, migrations): audit the balancer in its new state.
  lb_.self_check();
}

void Scenario::settle_volume() {
  const sim::Time now = sim_.now();
  if (now <= last_settle_) return;
  const double dt = sim::to_seconds(now - last_settle_);
  slb_bytes_ += slb_rate_bps_ / 8.0 * dt;
  total_bytes_ += total_rate_bps_ / 8.0 * dt;
  last_settle_ = now;
}

}  // namespace silkroad::lb
