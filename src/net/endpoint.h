// Transport endpoint (IP:port) — the representation of both VIPs and DIPs.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_address.h"

namespace silkroad::net {

/// An (address, L4 port) pair. A VIP is an Endpoint clients connect to; a DIP
/// is an Endpoint of a backend server in the VIP's pool (paper §2.1).
struct Endpoint {
  IpAddress ip;
  std::uint16_t port = 0;

  /// Wire size: address bytes + 2 port bytes (18 B for IPv6, 6 B for IPv4).
  /// This is the action-data width a naive ConnTable entry would carry.
  constexpr std::size_t wire_bytes() const noexcept { return ip.wire_bytes() + 2; }

  std::string to_string() const;

  /// Parses "a.b.c.d:port" or "[v6]:port".
  static std::optional<Endpoint> parse(std::string_view text);

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) noexcept = default;
  friend constexpr bool operator==(const Endpoint&, const Endpoint&) noexcept = default;
};

}  // namespace silkroad::net
