// Hash primitives modeling the generic hash units of a switching ASIC.
//
// Switching ASICs expose families of independent hash functions (used for
// ECMP, LAG, cuckoo stage addressing, bloom filter indices, digests). We model
// them as a seeded 64-bit mixer: each seed yields an independent member of the
// family. A software CRC32-C is also provided since ASIC digest units are
// CRC-based; ConnTable digests can use either.
#pragma once

#include <cstdint>
#include <span>

#include "net/five_tuple.h"

namespace silkroad::net {

/// SplitMix64 finalizer — a strong, cheap 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seeded hash over raw bytes (FNV-1a accumulation + SplitMix64 finalize).
std::uint64_t hash_bytes(std::span<const std::uint8_t> data,
                         std::uint64_t seed) noexcept;

/// CRC32-C (Castagnoli) of raw bytes — software table-driven implementation.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0) noexcept;

/// Seeded hash of a 5-tuple. All ASIC-side addressing (cuckoo stage index,
/// bloom index, ECMP member selection) and digest extraction flow through
/// this function with different seeds, exactly as distinct hash units would.
std::uint64_t hash_five_tuple(const FiveTuple& t, std::uint64_t seed) noexcept;

/// One member of an independent hash-function family, identified by seed.
class HashFunction {
 public:
  constexpr explicit HashFunction(std::uint64_t seed) noexcept : seed_(seed) {}

  std::uint64_t operator()(const FiveTuple& t) const noexcept {
    return hash_five_tuple(t, seed_);
  }
  std::uint64_t operator()(std::span<const std::uint8_t> bytes) const noexcept {
    return hash_bytes(bytes, seed_);
  }
  constexpr std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Extracts a `bits`-wide digest (1..32 bits) from a connection, independent
/// of the addressing hashes (distinct seed domain). Paper §4.2 uses 16 bits.
std::uint32_t connection_digest(const FiveTuple& t, unsigned bits) noexcept;

/// Hash functor for using FiveTuple as a key in std::unordered_map (the
/// switch-CPU shadow state and simulator bookkeeping).
struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(hash_five_tuple(t, 0xC0FFEE0DDBA11ULL));
  }
};

/// Hash functor for Endpoint keys (VIP-indexed control-plane maps).
struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const noexcept {
    return static_cast<std::size_t>(
        hash_bytes(std::span<const std::uint8_t>(e.ip.bytes().data(), 16),
                   0x3D9021EULL ^ e.port));
  }
};

}  // namespace silkroad::net
