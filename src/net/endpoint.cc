#include "net/endpoint.h"

#include <charconv>

namespace silkroad::net {

std::string Endpoint::to_string() const {
  if (ip.is_v6()) return "[" + ip.to_string() + "]:" + std::to_string(port);
  return ip.to_string() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  std::string_view addr_part;
  std::string_view port_part;
  if (!text.empty() && text.front() == '[') {
    const auto close = text.find(']');
    if (close == std::string_view::npos || close + 1 >= text.size() ||
        text[close + 1] != ':') {
      return std::nullopt;
    }
    addr_part = text.substr(1, close - 1);
    port_part = text.substr(close + 2);
  } else {
    const auto colon = text.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    addr_part = text.substr(0, colon);
    port_part = text.substr(colon + 1);
  }
  const auto ip = IpAddress::parse(addr_part);
  if (!ip) return std::nullopt;
  unsigned port = 0;
  auto [ptr, ec] =
      std::from_chars(port_part.data(), port_part.data() + port_part.size(), port);
  if (ec != std::errc{} || ptr != port_part.data() + port_part.size() ||
      port > 0xFFFF) {
    return std::nullopt;
  }
  return Endpoint{*ip, static_cast<std::uint16_t>(port)};
}

}  // namespace silkroad::net
