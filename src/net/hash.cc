#include "net/hash.h"

#include <array>

namespace silkroad::net {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

// Seed domain separator so digests are independent of addressing hashes even
// if a caller picks numerically colliding seeds.
constexpr std::uint64_t kDigestDomain = 0xD16E57D0A11A5EEDULL;

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const auto table = make_crc32c_table();
  return table;
}

}  // namespace

std::uint64_t hash_bytes(std::span<const std::uint8_t> data,
                         std::uint64_t seed) noexcept {
  std::uint64_t h = kFnvOffset ^ mix64(seed);
  for (const std::uint8_t byte : data) {
    h = (h ^ byte) * kFnvPrime;
  }
  return mix64(h);
}

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  const auto& table = crc32c_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t hash_five_tuple(const FiveTuple& t, std::uint64_t seed) noexcept {
  // Serialize the 5-tuple into a fixed 37-byte buffer (IPv6 width; IPv4
  // addresses occupy the first 4 bytes of each 16-byte field with zero fill,
  // plus a family tag folded into the seed so v4/v6 cannot alias).
  std::array<std::uint8_t, 37> buf{};
  std::size_t pos = 0;
  for (const std::uint8_t b : t.src.ip.bytes()) buf[pos++] = b;
  buf[pos++] = static_cast<std::uint8_t>(t.src.port >> 8);
  buf[pos++] = static_cast<std::uint8_t>(t.src.port);
  for (const std::uint8_t b : t.dst.ip.bytes()) buf[pos++] = b;
  buf[pos++] = static_cast<std::uint8_t>(t.dst.port >> 8);
  buf[pos++] = static_cast<std::uint8_t>(t.dst.port);
  buf[pos++] = static_cast<std::uint8_t>(t.proto);
  const std::uint64_t family_tag =
      (t.src.ip.is_v6() ? 2u : 0u) | (t.dst.ip.is_v6() ? 1u : 0u);
  return hash_bytes(std::span<const std::uint8_t>(buf),
                    seed ^ mix64(family_tag));
}

std::uint32_t connection_digest(const FiveTuple& t, unsigned bits) noexcept {
  const std::uint64_t h = hash_five_tuple(t, kDigestDomain);
  const unsigned width = bits == 0 ? 1 : (bits > 32 ? 32 : bits);
  return static_cast<std::uint32_t>(h & ((width == 32)
                                             ? 0xFFFFFFFFULL
                                             : ((1ULL << width) - 1)));
}

}  // namespace silkroad::net
