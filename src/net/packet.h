// Flow-level packet descriptor.
//
// The simulator is flow-level: it materializes only the packets whose handling
// can differ — the first packet (triggers DIP selection + connection
// learning), packets around table-state transitions (where PCC can break),
// and TCP SYN/FIN markers used by the false-positive resolution logic.
#pragma once

#include <cstdint>

#include "net/five_tuple.h"

namespace silkroad::net {

struct Packet {
  FiveTuple flow;
  /// True on the connection-opening packet (TCP SYN). SilkRoad redirects a
  /// SYN that *hits* ConnTable to the switch CPU as a digest-collision signal
  /// (paper §4.2).
  bool syn = false;
  /// True on the connection-closing packet (TCP FIN/RST); drives ConnTable
  /// entry expiration in the control plane.
  bool fin = false;
  /// Payload + header size in bytes; used for traffic-volume accounting and
  /// metering.
  std::uint32_t size_bytes = 0;
};

}  // namespace silkroad::net
