// IP address value type supporting both IPv4 and IPv6.
//
// SilkRoad must size its tables for both families: an IPv6 ConnTable entry
// would naively need a 37-byte 5-tuple key and an 18-byte DIP action, which is
// what motivates the digest/version compression (paper §4.2). The address type
// therefore exposes exact on-the-wire byte widths for the memory model.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace silkroad::net {

enum class IpFamily : std::uint8_t { kV4 = 4, kV6 = 6 };

/// Number of address bytes on the wire for a family (4 or 16).
constexpr std::size_t address_bytes(IpFamily family) noexcept {
  return family == IpFamily::kV4 ? 4 : 16;
}

/// Immutable IPv4/IPv6 address. IPv4 addresses occupy the first 4 bytes of
/// the internal buffer; the remainder is zero so that comparison and hashing
/// are uniform across families.
class IpAddress {
 public:
  /// Default-constructs the IPv4 unspecified address 0.0.0.0.
  constexpr IpAddress() noexcept = default;

  /// Builds an IPv4 address from a host-order 32-bit value
  /// (e.g. 0x0A000001 == 10.0.0.1).
  static constexpr IpAddress v4(std::uint32_t host_order) noexcept {
    IpAddress a;
    a.family_ = IpFamily::kV4;
    a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
    a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
    a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
    a.bytes_[3] = static_cast<std::uint8_t>(host_order);
    return a;
  }

  /// Builds an IPv6 address from 16 network-order bytes.
  static constexpr IpAddress v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
    IpAddress a;
    a.family_ = IpFamily::kV6;
    a.bytes_ = bytes;
    return a;
  }

  /// Builds an IPv6 address from two host-order 64-bit halves (hi = first
  /// 8 bytes on the wire). Convenient for synthetic address generation.
  static constexpr IpAddress v6(std::uint64_t hi, std::uint64_t lo) noexcept {
    std::array<std::uint8_t, 16> b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return v6(b);
  }

  /// Parses dotted-quad IPv4 ("10.0.0.1") or full/abbreviated-"::" IPv6
  /// ("2001:db8::1"). Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  constexpr IpFamily family() const noexcept { return family_; }
  constexpr bool is_v4() const noexcept { return family_ == IpFamily::kV4; }
  constexpr bool is_v6() const noexcept { return family_ == IpFamily::kV6; }

  /// Address width on the wire: 4 (IPv4) or 16 (IPv6) bytes.
  constexpr std::size_t wire_bytes() const noexcept { return address_bytes(family_); }

  /// Raw bytes; for IPv4 only the first 4 are meaningful (rest are zero).
  constexpr const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

  /// Host-order 32-bit value of an IPv4 address. Precondition: is_v4().
  constexpr std::uint32_t v4_value() const noexcept {
    return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
           (static_cast<std::uint32_t>(bytes_[1]) << 16) |
           (static_cast<std::uint32_t>(bytes_[2]) << 8) |
           static_cast<std::uint32_t>(bytes_[3]);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddress&, const IpAddress&) noexcept = default;
  friend constexpr bool operator==(const IpAddress&, const IpAddress&) noexcept = default;

 private:
  IpFamily family_ = IpFamily::kV4;
  std::array<std::uint8_t, 16> bytes_{};
};

}  // namespace silkroad::net
