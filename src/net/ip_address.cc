#include "net/ip_address.h"

#include <charconv>
#include <cstdio>
#include <vector>

namespace silkroad::net {
namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    unsigned value = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return IpAddress::v4((static_cast<std::uint32_t>(octets[0]) << 24) |
                       (static_cast<std::uint32_t>(octets[1]) << 16) |
                       (static_cast<std::uint32_t>(octets[2]) << 8) |
                       static_cast<std::uint32_t>(octets[3]));
}

std::optional<std::uint16_t> parse_hex_group(std::string_view group) {
  if (group.empty() || group.size() > 4) return std::nullopt;
  unsigned value = 0;
  auto [ptr, ec] =
      std::from_chars(group.data(), group.data() + group.size(), value, 16);
  if (ec != std::errc{} || ptr != group.data() + group.size() || value > 0xFFFF) {
    return std::nullopt;
  }
  return static_cast<std::uint16_t>(value);
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split on "::" (at most one occurrence allowed).
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  const auto gap = text.find("::");
  auto split_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      const auto colon = part.find(':', start);
      const auto group = part.substr(start, colon == std::string_view::npos
                                                ? std::string_view::npos
                                                : colon - start);
      const auto value = parse_hex_group(group);
      if (!value) return false;
      out.push_back(*value);
      if (colon == std::string_view::npos) return true;
      start = colon + 1;
    }
  };
  if (gap == std::string_view::npos) {
    if (!split_groups(text, head) || head.size() != 8) return std::nullopt;
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!split_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!split_groups(text.substr(gap + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() >= 8) return std::nullopt;
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xFF);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // Canonical-ish IPv6: compress the longest run of zero groups.
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(bytes_[2 * i]) << 8) | bytes_[2 * i + 1]);
  }
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // Only compress runs of >= 2.
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    if (++i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace silkroad::net
