// The L4 connection identifier: the 5-tuple ConnTable keys on.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/endpoint.h"

namespace silkroad::net {

enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

constexpr const char* to_string(Protocol p) noexcept {
  return p == Protocol::kTcp ? "TCP" : "UDP";
}

/// A connection's 5-tuple: (src ip, src port, dst ip, dst port, protocol).
/// For load-balanced traffic the destination is the VIP.
struct FiveTuple {
  Endpoint src;
  Endpoint dst;
  Protocol proto = Protocol::kTcp;

  /// Wire size of the match key a naive ConnTable entry stores:
  /// 2*addr + 2*port + 1 proto = 37 B for IPv6, 13 B for IPv4 (paper §4.2).
  constexpr std::size_t wire_bytes() const noexcept {
    return src.ip.wire_bytes() + dst.ip.wire_bytes() + 2 + 2 + 1;
  }

  std::string to_string() const {
    return src.to_string() + "=>" + dst.to_string() + "/" +
           net::to_string(proto);
  }

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) noexcept = default;
  friend constexpr bool operator==(const FiveTuple&, const FiveTuple&) noexcept = default;
};

}  // namespace silkroad::net
