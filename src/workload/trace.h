// Trace serialization: CSV reading/writing for flow and update traces.
//
// The paper's experiments replay production traces. Users with their own
// traces (from SLB logs, IPFIX collectors, or service-management systems)
// can export them in these two simple CSV schemas and replay them through
// lb::Scenario instead of the synthetic generators.
//
// Flow trace columns:
//   start_ns,end_ns,src,dst,proto,rate_bps
//   e.g. 1000000,5000000,11.0.0.1:40001,[2001:db8::1]:443,tcp,1500000
//
// Update trace columns:
//   at_ns,vip,dip,action,cause
//   e.g. 60000000000,20.0.0.1:80,10.0.0.2:8080,remove,service-upgrade
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "workload/flow_gen.h"
#include "workload/update_gen.h"

namespace silkroad::workload {

// --- Flow traces --------------------------------------------------------------

void write_flow_trace(std::ostream& out, const std::vector<Flow>& flows);
/// Parses a flow trace; returns nullopt (with `error` set, if given) on the
/// first malformed record.
std::optional<std::vector<Flow>> read_flow_trace(std::istream& in,
                                                 std::string* error = nullptr);

// --- Update traces -------------------------------------------------------------

void write_update_trace(std::ostream& out, const std::vector<DipUpdate>& updates);
std::optional<std::vector<DipUpdate>> read_update_trace(
    std::istream& in, std::string* error = nullptr);

// --- Individual record conversions (exposed for tests/tools) -------------------

std::string flow_to_csv(const Flow& flow);
std::optional<Flow> flow_from_csv(const std::string& line);
std::string update_to_csv(const DipUpdate& update);
std::optional<DipUpdate> update_from_csv(const std::string& line);

std::optional<UpdateCause> cause_from_string(const std::string& text);

}  // namespace silkroad::workload
