#include "workload/flow_gen.h"

namespace silkroad::workload {

FlowGenerator::FlowGenerator(sim::Simulator& simulator,
                             std::vector<VipLoad> vips, std::uint64_t seed)
    : sim_(simulator), vips_(std::move(vips)) {
  sim::Rng master(seed);
  rngs_.reserve(vips_.size());
  duration_dists_.reserve(vips_.size());
  rate_dists_.reserve(vips_.size());
  for (const auto& v : vips_) {
    rngs_.push_back(master.fork());
    duration_dists_.push_back(sim::LogNormalByQuantiles::from_median_p99(
        v.profile.duration_median_s, v.profile.duration_p99_s));
    rate_dists_.push_back(sim::LogNormalByQuantiles::from_median_p99(
        v.profile.rate_median_bps, v.profile.rate_p99_bps));
  }
}

void FlowGenerator::start(sim::Time horizon, FlowCallback on_start,
                          FlowCallback on_end) {
  horizon_ = horizon;
  on_start_ = std::move(on_start);
  on_end_ = std::move(on_end);
  for (std::size_t i = 0; i < vips_.size(); ++i) {
    schedule_next_arrival(i);
  }
}

void FlowGenerator::scale_arrivals(double factor) {
  for (auto& v : vips_) v.arrivals_per_min *= factor;
}

Flow FlowGenerator::synthesize(std::size_t vip_index) {
  auto& rng = rngs_[vip_index];
  const auto& load = vips_[vip_index];
  Flow flow;
  flow.vip_index = vip_index;
  flow.start = sim_.now();
  const double duration_s = duration_dists_[vip_index].sample(rng);
  flow.end = flow.start + sim::from_seconds(std::max(1e-3, duration_s));
  flow.rate_bps = rate_dists_[vip_index].sample(rng);
  // Synthesize a unique client endpoint. Client id space is large enough
  // that collisions within a run are vanishingly rare; ports cycle through
  // the ephemeral range.
  const std::uint32_t client = next_client_id_++;
  net::Endpoint src;
  if (load.ipv6_clients) {
    src.ip = net::IpAddress::v6(0x20010DB800000000ULL | (client >> 16),
                                (static_cast<std::uint64_t>(client) << 32) |
                                    rng.next() % 0xFFFFFFFF);
  } else {
    src.ip = net::IpAddress::v4(0x0B000000 | (client & 0x00FFFFFF));
  }
  src.port =
      static_cast<std::uint16_t>(32768 + (rng.next() % 28000));
  flow.tuple = net::FiveTuple{src, load.vip, net::Protocol::kTcp};
  return flow;
}

void FlowGenerator::schedule_next_arrival(std::size_t vip_index) {
  const auto& load = vips_[vip_index];
  if (load.arrivals_per_min <= 0) return;
  double rate = load.arrivals_per_min;
  if (modulation_) {
    const double factor = modulation_(sim_.now());
    if (factor <= 0) return;  // load shed to zero: stream ends
    rate *= factor;
  }
  const double gap_s = rngs_[vip_index].exponential(60.0 / rate);
  const sim::Time at = sim_.now() + sim::from_seconds(gap_s);
  if (at >= horizon_) return;
  sim_.schedule_at(at, [this, vip_index] {
    const Flow flow = synthesize(vip_index);
    ++flows_generated_;
    if (on_start_) on_start_(flow);
    sim_.schedule_at(flow.end, [this, flow] {
      if (on_end_) on_end_(flow);
    });
    schedule_next_arrival(vip_index);
  });
}

}  // namespace silkroad::workload
