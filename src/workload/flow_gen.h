// Connection (flow) arrival generator (paper §3.2, §6.2).
//
// Per-VIP Poisson arrivals with heavy-tailed flow durations. Two built-in
// duration profiles match the traces the paper simulates: "Hadoop" (median
// flow duration 10 s) and "cache" (median 4.5 min), both from the Facebook
// datacenter study the paper cites. Each flow carries a rate so traffic
// volume (for SLB-load accounting) can be integrated over time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "sim/distributions.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace silkroad::workload {

/// Flow duration/size profile.
struct FlowProfile {
  std::string name = "hadoop";
  /// Duration distribution (seconds): log-normal by quantiles.
  double duration_median_s = 10.0;
  double duration_p99_s = 300.0;
  /// Per-flow average rate (bits/sec): log-normal by quantiles.
  double rate_median_bps = 1e6;
  double rate_p99_bps = 5e7;

  static FlowProfile hadoop() {
    return {"hadoop", 10.0, 300.0, 1e6, 5e7};
  }
  static FlowProfile cache() {
    return {"cache", 270.0, 3600.0, 4e5, 2e7};
  }
  /// Persistent connections (Frontends): few, long, high volume.
  static FlowProfile persistent() {
    return {"persistent", 1800.0, 36000.0, 2e7, 5e8};
  }
};

/// A generated connection.
struct Flow {
  net::FiveTuple tuple;
  sim::Time start = 0;
  sim::Time end = 0;
  double rate_bps = 0;
  std::size_t vip_index = 0;
};

/// Generates flows for a set of VIPs and feeds them to a consumer through
/// the simulator: `on_start` fires at each flow's start time and `on_end` at
/// its end time. Synthesis is lazy (event-driven), so multi-minute scenarios
/// with large aggregate arrival rates do not pre-materialize their flows.
class FlowGenerator {
 public:
  struct VipLoad {
    net::Endpoint vip;
    double arrivals_per_min = 1000;
    FlowProfile profile;
    bool ipv6_clients = false;
  };

  using FlowCallback = std::function<void(const Flow&)>;

  FlowGenerator(sim::Simulator& simulator, std::vector<VipLoad> vips,
                std::uint64_t seed);

  /// Starts generation: schedules arrivals in [0, horizon). `on_end` may
  /// fire after `horizon` (flows outlive the arrival window).
  void start(sim::Time horizon, FlowCallback on_start, FlowCallback on_end);

  /// Scales all arrival rates by `factor` (Fig. 17's sweep).
  void scale_arrivals(double factor);

  /// Time-varying rate multiplier (diurnal load: the paper sizes for "the
  /// peak hour of a day", §6.1). Applied on top of each VIP's base rate;
  /// must return a positive factor. Set before start().
  using RateModulation = std::function<double(sim::Time)>;
  void set_rate_modulation(RateModulation modulation) {
    modulation_ = std::move(modulation);
  }

  std::uint64_t flows_generated() const noexcept { return flows_generated_; }

 private:
  void schedule_next_arrival(std::size_t vip_index);
  Flow synthesize(std::size_t vip_index);

  sim::Simulator& sim_;
  std::vector<VipLoad> vips_;
  std::vector<sim::Rng> rngs_;
  std::vector<sim::LogNormalByQuantiles> duration_dists_;
  std::vector<sim::LogNormalByQuantiles> rate_dists_;
  sim::Time horizon_ = 0;
  FlowCallback on_start_;
  FlowCallback on_end_;
  RateModulation modulation_;
  std::uint64_t flows_generated_ = 0;
  std::uint32_t next_client_id_ = 1;
};

}  // namespace silkroad::workload
