// DIP-pool update generator (paper §3.1, Figs. 2-4).
//
// Produces timestamped add/remove events against a VIP's DIP pool with the
// root-cause mix the paper measured over a month of service-management logs:
// service upgrades dominate (82.7%) and proceed as *rolling reboots* — a
// fixed number of DIPs removed every period, each coming back after a
// downtime drawn from a heavy-tailed distribution (median 3 min, p99 100 min
// for upgrades). Failures/preemptions remove individual DIPs; provisioning
// and removal adjust capacity without downtime pairing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "sim/distributions.h"
#include "sim/random.h"
#include "sim/time.h"

namespace silkroad::workload {

enum class UpdateCause : std::uint8_t {
  kServiceUpgrade,
  kTesting,
  kFailure,
  kPreempting,
  kProvisioning,
  kRemoval,
};

constexpr const char* to_string(UpdateCause c) noexcept {
  switch (c) {
    case UpdateCause::kServiceUpgrade: return "service-upgrade";
    case UpdateCause::kTesting: return "testing";
    case UpdateCause::kFailure: return "failure";
    case UpdateCause::kPreempting: return "preempting";
    case UpdateCause::kProvisioning: return "provisioning";
    default: return "removal";
  }
}

inline constexpr UpdateCause kAllCauses[] = {
    UpdateCause::kServiceUpgrade, UpdateCause::kTesting, UpdateCause::kFailure,
    UpdateCause::kPreempting,     UpdateCause::kProvisioning,
    UpdateCause::kRemoval,
};

enum class UpdateAction : std::uint8_t { kAddDip, kRemoveDip };

/// One DIP-pool change event.
struct DipUpdate {
  sim::Time at = 0;
  net::Endpoint vip;
  net::Endpoint dip;
  UpdateAction action = UpdateAction::kRemoveDip;
  UpdateCause cause = UpdateCause::kServiceUpgrade;
  /// Fleet-unique causal-trace id stamped by obs::SpanCollector when the
  /// controller mints the update intent; 0 = untraced. Survives retransmits
  /// and duplicate deliveries because it rides inside the payload.
  std::uint64_t update_id = 0;
  /// Monotone fleet-journal position stamped by the controller when the
  /// mutation is journaled (DESIGN.md §16); 0 = unjournaled. A switch's
  /// applied-through watermark advances to this on in-order delivery.
  std::uint64_t log_pos = 0;
};

struct UpdateGenConfig {
  /// Probability mass of each root cause among *removal-initiating* events
  /// (Fig. 3; upgrades dominate at 82.7%).
  double upgrade_share = 0.827;
  double testing_share = 0.044;
  double failure_share = 0.030;
  double preempting_share = 0.026;
  double provisioning_share = 0.035;
  double removal_share = 0.038;

  /// DIP downtime (removal -> re-addition) distributions per cause (Fig. 4),
  /// as (median, p99) seconds. Provisioning causes no downtime (pure add);
  /// removal is permanent (pure remove).
  double upgrade_downtime_median_s = 180;     // 3 minutes
  double upgrade_downtime_p99_s = 6000;       // 100 minutes
  double testing_downtime_median_s = 300;
  double testing_downtime_p99_s = 7200;
  double failure_downtime_median_s = 600;
  double failure_downtime_p99_s = 20000;
  double preempting_downtime_median_s = 420;
  double preempting_downtime_p99_s = 10000;

  /// Rolling-reboot batch: DIPs upgraded per step ("e.g., two DIPs every
  /// five minutes").
  int rolling_batch = 2;

  std::uint64_t seed = 1;
};

/// Generates an update stream for one VIP with a target average event rate.
///
/// `rate_per_min` counts individual add/remove events (the unit Fig. 2 plots).
/// Events are sorted by time. Upgrades/testing/failures/preemptions emit a
/// remove at t and an add at t+downtime (the add may fall past `horizon` and
/// is then dropped, as in a truncated log).
class UpdateGenerator {
 public:
  UpdateGenerator(const UpdateGenConfig& config, net::Endpoint vip,
                  std::vector<net::Endpoint> initial_dips);

  std::vector<DipUpdate> generate(double rate_per_min, sim::Time horizon);

  /// Samples a root cause from the configured mix.
  UpdateCause sample_cause(sim::Rng& rng) const;

  /// Samples the downtime for a cause; nullopt when the cause has no
  /// re-addition (kRemoval) or no downtime (kProvisioning).
  std::optional<sim::Time> sample_downtime(UpdateCause cause,
                                           sim::Rng& rng) const;

 private:
  UpdateGenConfig config_;
  net::Endpoint vip_;
  std::vector<net::Endpoint> dips_;
  sim::Rng rng_;
};

}  // namespace silkroad::workload
