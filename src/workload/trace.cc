#include "workload/trace.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace silkroad::workload {
namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  // Endpoints contain no commas in our formats ([v6]:port uses brackets),
  // so a plain comma split is unambiguous.
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::string flow_to_csv(const Flow& flow) {
  std::ostringstream out;
  out << flow.start << ',' << flow.end << ','
      << flow.tuple.src.to_string() << ',' << flow.tuple.dst.to_string() << ','
      << (flow.tuple.proto == net::Protocol::kTcp ? "tcp" : "udp") << ','
      << flow.rate_bps;
  return out.str();
}

std::optional<Flow> flow_from_csv(const std::string& line) {
  const auto fields = split_csv(line);
  if (fields.size() != 6) return std::nullopt;
  const auto start = parse_u64(fields[0]);
  const auto end = parse_u64(fields[1]);
  const auto src = net::Endpoint::parse(fields[2]);
  const auto dst = net::Endpoint::parse(fields[3]);
  const auto rate = parse_double(fields[5]);
  if (!start || !end || !src || !dst || !rate || *end < *start) {
    return std::nullopt;
  }
  net::Protocol proto;
  if (fields[4] == "tcp") {
    proto = net::Protocol::kTcp;
  } else if (fields[4] == "udp") {
    proto = net::Protocol::kUdp;
  } else {
    return std::nullopt;
  }
  Flow flow;
  flow.start = *start;
  flow.end = *end;
  flow.tuple = net::FiveTuple{*src, *dst, proto};
  flow.rate_bps = *rate;
  return flow;
}

std::optional<UpdateCause> cause_from_string(const std::string& text) {
  for (const auto cause : kAllCauses) {
    if (text == to_string(cause)) return cause;
  }
  return std::nullopt;
}

std::string update_to_csv(const DipUpdate& update) {
  std::ostringstream out;
  out << update.at << ',' << update.vip.to_string() << ','
      << update.dip.to_string() << ','
      << (update.action == UpdateAction::kAddDip ? "add" : "remove") << ','
      << to_string(update.cause);
  return out.str();
}

std::optional<DipUpdate> update_from_csv(const std::string& line) {
  const auto fields = split_csv(line);
  if (fields.size() != 5) return std::nullopt;
  const auto at = parse_u64(fields[0]);
  const auto vip = net::Endpoint::parse(fields[1]);
  const auto dip = net::Endpoint::parse(fields[2]);
  const auto cause = cause_from_string(fields[4]);
  if (!at || !vip || !dip || !cause) return std::nullopt;
  UpdateAction action;
  if (fields[3] == "add") {
    action = UpdateAction::kAddDip;
  } else if (fields[3] == "remove") {
    action = UpdateAction::kRemoveDip;
  } else {
    return std::nullopt;
  }
  return DipUpdate{*at, *vip, *dip, action, *cause};
}

void write_flow_trace(std::ostream& out, const std::vector<Flow>& flows) {
  out << "start_ns,end_ns,src,dst,proto,rate_bps\n";
  for (const auto& flow : flows) out << flow_to_csv(flow) << '\n';
}

std::optional<std::vector<Flow>> read_flow_trace(std::istream& in,
                                                 std::string* error) {
  std::vector<Flow> flows;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("start_ns", 0) == 0) continue;  // header
    }
    const auto flow = flow_from_csv(line);
    if (!flow) {
      if (error != nullptr) {
        *error = "malformed flow record at line " + std::to_string(line_no);
      }
      return std::nullopt;
    }
    flows.push_back(*flow);
  }
  return flows;
}

void write_update_trace(std::ostream& out,
                        const std::vector<DipUpdate>& updates) {
  out << "at_ns,vip,dip,action,cause\n";
  for (const auto& update : updates) out << update_to_csv(update) << '\n';
}

std::optional<std::vector<DipUpdate>> read_update_trace(std::istream& in,
                                                        std::string* error) {
  std::vector<DipUpdate> updates;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("at_ns", 0) == 0) continue;  // header
    }
    const auto update = update_from_csv(line);
    if (!update) {
      if (error != nullptr) {
        *error = "malformed update record at line " + std::to_string(line_no);
      }
      return std::nullopt;
    }
    updates.push_back(*update);
  }
  return updates;
}

}  // namespace silkroad::workload
