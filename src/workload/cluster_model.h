// Synthetic population of data-center clusters (substitute for the paper's
// proprietary study of ~100 production clusters, §3.1/§6.1).
//
// Three cluster types with distinct characteristics:
//  * PoPs       — user-facing points of presence: many short connections,
//                 high arrival rates, DIPs shared across most VIPs (one DIP
//                 change fans out into a burst of per-VIP updates).
//  * Frontends  — serve PoPs over few persistent connections: small
//                 ConnTables, moderate update rates.
//  * Backends   — service-to-service traffic: frequent service upgrades
//                 (rolling reboots), largest connection counts, mostly IPv6.
//
// Each distribution below is parameterized and calibrated so the generated
// CDFs match the shapes of Figs. 2, 6, and 8; the calibration targets are
// quoted inline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/distributions.h"
#include "sim/random.h"

namespace silkroad::workload {

enum class ClusterType : std::uint8_t { kPoP, kFrontend, kBackend };

constexpr const char* to_string(ClusterType t) noexcept {
  switch (t) {
    case ClusterType::kPoP: return "PoP";
    case ClusterType::kFrontend: return "Frontend";
    default: return "Backend";
  }
}

/// Summary of one cluster, the unit over which the paper draws its CDFs.
struct ClusterSpec {
  std::string name;
  ClusterType type = ClusterType::kPoP;
  int tor_switches = 48;
  int vips = 150;
  int dips = 2000;
  bool ipv6 = false;

  /// Active connections per ToR switch (Fig. 6): median and p99 minute
  /// snapshots over a month.
  std::uint64_t active_conns_per_tor_p50 = 0;
  std::uint64_t active_conns_per_tor_p99 = 0;

  /// New connections per minute for the busiest VIP / median VIP (Fig. 8).
  std::uint64_t new_conns_per_min_vip_p50 = 0;
  std::uint64_t new_conns_per_min_vip_max = 0;

  /// DIP-pool updates per minute: the cluster's median minute and 99th
  /// percentile minute over a month (Fig. 2).
  double updates_per_min_p50 = 0;
  double updates_per_min_p99 = 0;

  /// Peak load-balanced traffic through the cluster (for Fig. 13 sizing).
  double peak_gbps = 0;
  double peak_mpps = 0;
};

/// Tunable distribution parameters for one cluster type.
struct TypeProfile {
  int count = 33;  ///< clusters of this type in the population

  // Active connections per ToR at the p99 minute, log-normal across clusters
  // (Fig. 6 calibration: PoP peak ~11M, Backend peak ~15M, Frontend small).
  double conns_p99_median = 1e6;
  double conns_p99_p99 = 1e7;
  /// Ratio p50-minute / p99-minute connections within a cluster.
  double conns_p50_ratio = 0.55;

  // Busiest-VIP new-connection arrivals per minute, log-normal across
  // clusters (Fig. 8 calibration: tail beyond 50M/min).
  double arrivals_median = 2e5;
  double arrivals_p99 = 3e7;
  double arrivals_p50_ratio = 0.05;  ///< median VIP vs busiest VIP

  // Updates per minute at the p99 minute, log-normal across clusters
  // (Fig. 2 calibration: 32% of clusters >10, 3% >50; Backends half >16).
  double updates_p99_median = 6;
  double updates_p99_p99 = 80;
  double updates_p50_ratio = 0.12;

  // Traffic envelope.
  double gbps_median = 400;
  double gbps_p99 = 4000;

  int tor_switches = 48;
  int vips = 150;
  int dips = 2500;
  double ipv6_fraction = 0.1;
};

/// Parameters of the whole population. Defaults reproduce the paper's
/// qualitative statements; every knob is exposed for sensitivity studies.
struct PopulationConfig {
  TypeProfile pop = {
      .count = 34,
      .conns_p99_median = 4.0e6,
      .conns_p99_p99 = 1.1e7,
      .conns_p50_ratio = 0.55,
      .arrivals_median = 2.5e6,
      .arrivals_p99 = 5.5e7,
      .arrivals_p50_ratio = 0.02,
      .updates_p99_median = 4,
      .updates_p99_p99 = 200,
      .updates_p50_ratio = 0.08,
      .gbps_median = 600,
      .gbps_p99 = 5000,
      .tor_switches = 32,
      .vips = 149,
      .dips = 1500,
      .ipv6_fraction = 0.15,
  };
  TypeProfile frontend = {
      .count = 33,
      .conns_p99_median = 8e4,
      .conns_p99_p99 = 5e5,
      .conns_p50_ratio = 0.6,
      .arrivals_median = 2e4,
      .arrivals_p99 = 8e5,
      .arrivals_p50_ratio = 0.1,
      .updates_p99_median = 4,
      .updates_p99_p99 = 170,
      .updates_p50_ratio = 0.08,
      .gbps_median = 800,
      .gbps_p99 = 6000,
      .tor_switches = 48,
      .vips = 120,
      .dips = 2000,
      .ipv6_fraction = 0.3,
  };
  TypeProfile backend = {
      .count = 33,
      .conns_p99_median = 4.3e6,
      .conns_p99_p99 = 1.5e7,
      .conns_p50_ratio = 0.5,
      .arrivals_median = 4e5,
      .arrivals_p99 = 2e7,
      .arrivals_p50_ratio = 0.05,
      .updates_p99_median = 16,
      .updates_p99_p99 = 60,
      .updates_p50_ratio = 0.2,
      .gbps_median = 1200,
      .gbps_p99 = 9000,
      .tor_switches = 64,
      .vips = 200,
      .dips = 4200,
      .ipv6_fraction = 0.9,
  };
  std::uint64_t seed = 20170821;  // SIGCOMM'17 opening day
};

/// Generates the cluster population.
std::vector<ClusterSpec> generate_population(const PopulationConfig& config);

/// Convenience: CDF of a projection across (a filtered subset of) clusters.
sim::EmpiricalCdf population_cdf(const std::vector<ClusterSpec>& clusters,
                                 double (*projection)(const ClusterSpec&));

}  // namespace silkroad::workload
