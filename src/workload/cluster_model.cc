#include "workload/cluster_model.h"

#include <algorithm>
#include <cmath>

namespace silkroad::workload {
namespace {

ClusterSpec make_cluster(ClusterType type, int index, const TypeProfile& profile,
                         sim::Rng& rng) {
  ClusterSpec spec;
  spec.type = type;
  spec.name = std::string(to_string(type)) + "-" + std::to_string(index);
  spec.tor_switches = profile.tor_switches;
  spec.vips = profile.vips;
  spec.dips = profile.dips;
  spec.ipv6 = rng.bernoulli(profile.ipv6_fraction);

  const auto conns = sim::LogNormalByQuantiles::from_median_p99(
      profile.conns_p99_median, profile.conns_p99_p99);
  spec.active_conns_per_tor_p99 =
      static_cast<std::uint64_t>(std::max(1.0, conns.sample(rng)));
  spec.active_conns_per_tor_p50 = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(spec.active_conns_per_tor_p99) *
               profile.conns_p50_ratio * rng.uniform(0.8, 1.2)));

  const auto arrivals = sim::LogNormalByQuantiles::from_median_p99(
      profile.arrivals_median, profile.arrivals_p99);
  spec.new_conns_per_min_vip_max =
      static_cast<std::uint64_t>(std::max(1.0, arrivals.sample(rng)));
  spec.new_conns_per_min_vip_p50 = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(spec.new_conns_per_min_vip_max) *
               profile.arrivals_p50_ratio * rng.uniform(0.5, 1.5)));

  const auto updates = sim::LogNormalByQuantiles::from_median_p99(
      profile.updates_p99_median, profile.updates_p99_p99);
  spec.updates_per_min_p99 = std::max(0.1, updates.sample(rng));
  spec.updates_per_min_p50 =
      spec.updates_per_min_p99 * profile.updates_p50_ratio * rng.uniform(0.5, 1.5);

  const auto gbps = sim::LogNormalByQuantiles::from_median_p99(
      profile.gbps_median, profile.gbps_p99);
  spec.peak_gbps = gbps.sample(rng);
  // Packet rate from byte rate with a small-packet-heavy mix: the paper's
  // SLB benchmark uses 52-byte minimum packets; production mixes average a
  // few hundred bytes. We use 350 B average.
  spec.peak_mpps = spec.peak_gbps * 1e9 / 8.0 / 350.0 / 1e6;
  return spec;
}

}  // namespace

std::vector<ClusterSpec> generate_population(const PopulationConfig& config) {
  sim::Rng rng(config.seed);
  std::vector<ClusterSpec> clusters;
  clusters.reserve(static_cast<std::size_t>(config.pop.count) +
                   static_cast<std::size_t>(config.frontend.count) +
                   static_cast<std::size_t>(config.backend.count));
  for (int i = 0; i < config.pop.count; ++i) {
    clusters.push_back(make_cluster(ClusterType::kPoP, i, config.pop, rng));
  }
  for (int i = 0; i < config.frontend.count; ++i) {
    clusters.push_back(
        make_cluster(ClusterType::kFrontend, i, config.frontend, rng));
  }
  for (int i = 0; i < config.backend.count; ++i) {
    clusters.push_back(
        make_cluster(ClusterType::kBackend, i, config.backend, rng));
  }
  return clusters;
}

sim::EmpiricalCdf population_cdf(const std::vector<ClusterSpec>& clusters,
                                 double (*projection)(const ClusterSpec&)) {
  std::vector<double> values;
  values.reserve(clusters.size());
  for (const auto& c : clusters) values.push_back(projection(c));
  return sim::EmpiricalCdf::from_samples(std::move(values));
}

}  // namespace silkroad::workload
