#include "workload/update_gen.h"

#include <algorithm>

namespace silkroad::workload {

UpdateGenerator::UpdateGenerator(const UpdateGenConfig& config,
                                 net::Endpoint vip,
                                 std::vector<net::Endpoint> initial_dips)
    : config_(config),
      vip_(vip),
      dips_(std::move(initial_dips)),
      rng_(config.seed) {}

namespace {

/// Raw add/remove events one *initiation* of a cause produces: rolling
/// batches double, remove+re-add pairs double again.
double events_per_initiation(UpdateCause cause, int rolling_batch) {
  switch (cause) {
    case UpdateCause::kServiceUpgrade:
    case UpdateCause::kTesting:
      return 2.0 * rolling_batch;  // batch x (remove + add)
    case UpdateCause::kFailure:
    case UpdateCause::kPreempting:
      return 2.0;  // remove + add
    case UpdateCause::kProvisioning:
    case UpdateCause::kRemoval:
      return 1.0;  // single event
  }
  return 1.0;
}

}  // namespace

UpdateCause UpdateGenerator::sample_cause(sim::Rng& rng) const {
  // The configured shares are *event* shares (what Fig. 3 plots). An
  // initiation of cause c yields e_c events, so initiations are sampled with
  // weight share_c / e_c to make the emitted event mix match the shares.
  const double shares[] = {config_.upgrade_share,    config_.testing_share,
                           config_.failure_share,    config_.preempting_share,
                           config_.provisioning_share, config_.removal_share};
  double weights[std::size(shares)];
  double total = 0;
  for (std::size_t i = 0; i < std::size(shares); ++i) {
    weights[i] = shares[i] / events_per_initiation(kAllCauses[i],
                                                   config_.rolling_batch);
    total += weights[i];
  }
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < std::size(weights); ++i) {
    if (u < weights[i]) return kAllCauses[i];
    u -= weights[i];
  }
  return UpdateCause::kServiceUpgrade;
}

std::optional<sim::Time> UpdateGenerator::sample_downtime(UpdateCause cause,
                                                          sim::Rng& rng) const {
  double median_s = 0;
  double p99_s = 0;
  switch (cause) {
    case UpdateCause::kServiceUpgrade:
      median_s = config_.upgrade_downtime_median_s;
      p99_s = config_.upgrade_downtime_p99_s;
      break;
    case UpdateCause::kTesting:
      median_s = config_.testing_downtime_median_s;
      p99_s = config_.testing_downtime_p99_s;
      break;
    case UpdateCause::kFailure:
      median_s = config_.failure_downtime_median_s;
      p99_s = config_.failure_downtime_p99_s;
      break;
    case UpdateCause::kPreempting:
      median_s = config_.preempting_downtime_median_s;
      p99_s = config_.preempting_downtime_p99_s;
      break;
    case UpdateCause::kProvisioning:
    case UpdateCause::kRemoval:
      return std::nullopt;
  }
  const auto dist =
      sim::LogNormalByQuantiles::from_median_p99(median_s, p99_s);
  return sim::from_seconds(dist.sample(rng));
}

std::vector<DipUpdate> UpdateGenerator::generate(double rate_per_min,
                                                 sim::Time horizon) {
  std::vector<DipUpdate> events;
  if (rate_per_min <= 0 || dips_.empty()) return events;
  // Scale the initiation rate so the emitted raw-event rate matches
  // rate_per_min: E[events/initiation] under the weighted cause sampling is
  //   sum(share_c) / sum(share_c / e_c).
  const double shares[] = {config_.upgrade_share,    config_.testing_share,
                           config_.failure_share,    config_.preempting_share,
                           config_.provisioning_share, config_.removal_share};
  double share_sum = 0;
  double weight_sum = 0;
  for (std::size_t i = 0; i < std::size(shares); ++i) {
    share_sum += shares[i];
    weight_sum += shares[i] / events_per_initiation(kAllCauses[i],
                                                    config_.rolling_batch);
  }
  const double mean_events =
      weight_sum <= 0 ? 1.0 : share_sum / weight_sum;
  const double initiations_per_min = rate_per_min / mean_events;
  const double mean_gap_s = 60.0 / initiations_per_min;

  sim::Time t = 0;
  int synthetic_dip = 0;
  while (true) {
    t += sim::from_seconds(rng_.exponential(mean_gap_s));
    if (t >= horizon) break;
    const UpdateCause cause = sample_cause(rng_);
    const bool is_batch = cause == UpdateCause::kServiceUpgrade ||
                          cause == UpdateCause::kTesting;
    const int batch = is_batch ? config_.rolling_batch : 1;
    for (int b = 0; b < batch; ++b) {
      const net::Endpoint dip =
          dips_[rng_.uniform_int(dips_.size())];
      if (cause == UpdateCause::kProvisioning) {
        // Capacity add: a brand-new DIP (same subnet, fresh host id).
        net::Endpoint fresh = dip;
        fresh.port = static_cast<std::uint16_t>(40000 + (synthetic_dip++ % 20000));
        events.push_back({t, vip_, fresh, UpdateAction::kAddDip, cause});
        continue;
      }
      events.push_back({t, vip_, dip, UpdateAction::kRemoveDip, cause});
      if (const auto downtime = sample_downtime(cause, rng_)) {
        const sim::Time back = t + *downtime;
        if (back < horizon) {
          events.push_back({back, vip_, dip, UpdateAction::kAddDip, cause});
        }
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const DipUpdate& a, const DipUpdate& b) { return a.at < b.at; });
  return events;
}

}  // namespace silkroad::workload
