// Discrete-event simulation engine.
//
// A binary-heap scheduler over (time, sequence) keys; ties execute in
// scheduling order so runs are fully deterministic. Events are arbitrary
// callables; a handle allows cancellation (e.g., a pending connection-timeout
// event canceled when the connection closes first).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace silkroad::sim {

/// Cancellation handle for a scheduled event. Copyable; cancel() is
/// idempotent and safe after the event has fired (it becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from running if it has not run yet.
  void cancel() const noexcept {
    if (canceled_) *canceled_ = true;
  }

  bool valid() const noexcept { return canceled_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> canceled)
      : canceled_(std::move(canceled)) {}
  std::shared_ptr<bool> canceled_;
};

/// The event loop. Not thread-safe by design (simulations are
/// single-threaded and deterministic).
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing across callbacks.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= now()). Returns a
  /// handle usable to cancel the event.
  EventHandle schedule_at(Time when, Callback fn);

  /// Schedules `fn` after `delay` from now.
  EventHandle schedule_after(Time delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `deadline` is passed; time stops
  /// at the last executed event (or `deadline` if it is beyond it and
  /// advance_to_deadline is true).
  void run_until(Time deadline);

  /// Runs to queue exhaustion.
  void run();

  /// Executes at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> canceled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace silkroad::sim
