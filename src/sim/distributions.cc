#include "sim/distributions.h"

#include "check/sr_check.h"

namespace silkroad::sim {

double inverse_normal_cdf(double p) noexcept {
  // Peter Acklam's algorithm.
  if (p <= 0.0) return -8.0;
  if (p >= 1.0) return 8.0;
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

EmpiricalCdf EmpiricalCdf::from_samples(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<Point> points;
  points.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    points.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return EmpiricalCdf(std::move(points));
}

double EmpiricalCdf::cdf(double value) const noexcept {
  if (points_.empty()) return 0.0;
  if (value < points_.front().value) return 0.0;
  if (value >= points_.back().value) return 1.0;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), value,
      [](double v, const Point& p) { return v < p.value; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.value == lo.value) return hi.cum_prob;
  const double t = (value - lo.value) / (hi.value - lo.value);
  return lo.cum_prob + t * (hi.cum_prob - lo.cum_prob);
}

double EmpiricalCdf::quantile(double p) const noexcept {
  if (points_.empty()) return 0.0;
  if (p <= points_.front().cum_prob) return points_.front().value;
  if (p >= points_.back().cum_prob) return points_.back().value;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), p,
      [](double v, const Point& pt) { return v < pt.cum_prob; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.cum_prob == lo.cum_prob) return hi.value;
  const double t = (p - lo.cum_prob) / (hi.cum_prob - lo.cum_prob);
  return lo.value + t * (hi.value - lo.value);
}

Zipf::Zipf(std::size_t n, double s) {
  SR_CHECKF(n > 0, "Zipf needs a non-empty support");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double Zipf::pmf(std::size_t k) const noexcept {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace silkroad::sim
