#include "sim/event_queue.h"

#include <utility>

#include "check/sr_check.h"

namespace silkroad::sim {

EventHandle Simulator::schedule_at(Time when, Callback fn) {
  SR_CHECKF(when >= now_, "cannot schedule in the past (when=%llu now=%llu)",
            static_cast<unsigned long long>(when),
            static_cast<unsigned long long>(now_));
  auto canceled = std::make_shared<bool>(false);
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn),
                    canceled});
  return EventHandle{std::move(canceled)};
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast, standard
    // pattern for move-only payloads in a heap we immediately pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.canceled) continue;
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time deadline) {
  for (;;) {
    // Drain canceled events first so a canceled head does not let step()
    // execute an event scheduled beyond the deadline.
    while (!queue_.empty() && *queue_.top().canceled) queue_.pop();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace silkroad::sim
