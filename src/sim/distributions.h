// Distribution helpers used to calibrate synthetic workloads against the
// summary statistics the paper reports (medians, p99s, CDF shapes).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/random.h"

namespace silkroad::sim {

/// Inverse of the standard normal CDF (Acklam's rational approximation;
/// relative error < 1.15e-9 — far tighter than workload calibration needs).
double inverse_normal_cdf(double p) noexcept;

/// Log-normal distribution parameterized by two quantiles, the natural way to
/// match the paper's "median X, p99 Y" statements (e.g., DIP downtime:
/// median 3 min, p99 100 min — Fig. 4).
class LogNormalByQuantiles {
 public:
  /// Requires 0 < p_lo < p_hi < 1 and 0 < value_lo <= value_hi.
  LogNormalByQuantiles(double value_lo, double p_lo, double value_hi,
                       double p_hi) noexcept {
    const double z_lo = inverse_normal_cdf(p_lo);
    const double z_hi = inverse_normal_cdf(p_hi);
    sigma_ = (std::log(value_hi) - std::log(value_lo)) / (z_hi - z_lo);
    if (sigma_ < 0) sigma_ = 0;
    mu_ = std::log(value_lo) - sigma_ * z_lo;
  }

  /// Common case: parameterize by median (p=0.5) and p99.
  static LogNormalByQuantiles from_median_p99(double median,
                                              double p99) noexcept {
    return {median, 0.5, p99, 0.99};
  }

  double sample(Rng& rng) const noexcept { return rng.lognormal(mu_, sigma_); }
  double quantile(double p) const noexcept {
    return std::exp(mu_ + sigma_ * inverse_normal_cdf(p));
  }
  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Piecewise-linear empirical CDF over sorted (value, cumulative-probability)
/// points; used both to *define* input distributions from paper plot shapes
/// and to *summarize* simulation outputs for the bench harnesses.
class EmpiricalCdf {
 public:
  struct Point {
    double value;
    double cum_prob;  // in [0, 1], non-decreasing
  };

  EmpiricalCdf() = default;

  /// Builds from explicit CDF points (sorted by value, cum_prob ascending,
  /// last cum_prob should be 1.0).
  explicit EmpiricalCdf(std::vector<Point> points) : points_(std::move(points)) {}

  /// Builds the empirical CDF of a sample set.
  static EmpiricalCdf from_samples(std::vector<double> samples);

  /// P(X <= value).
  double cdf(double value) const noexcept;

  /// Quantile (inverse CDF) with linear interpolation.
  double quantile(double p) const noexcept;

  double sample(Rng& rng) const noexcept { return quantile(rng.uniform()); }

  bool empty() const noexcept { return points_.empty(); }
  std::span<const Point> points() const noexcept { return points_; }

 private:
  std::vector<Point> points_;
};

/// Zipf(s) over ranks 1..n — used for skewed per-VIP traffic shares
/// ("most traffic concentrates on a few VIPs").
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Samples a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of rank k (0-based).
  double pmf(std::size_t k) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses
};

}  // namespace silkroad::sim
