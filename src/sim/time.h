// Simulated time: 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace silkroad::sim {

/// Simulation timestamp / duration in nanoseconds.
using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;
inline constexpr Time kMinute = 60 * kSecond;
inline constexpr Time kHour = 60 * kMinute;

/// Far-future sentinel (roughly 584 years).
inline constexpr Time kTimeInfinity = ~Time{0};

constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr Time from_seconds(double s) noexcept {
  return s <= 0 ? Time{0}
                : static_cast<Time>(s * static_cast<double>(kSecond));
}

}  // namespace silkroad::sim
