// Deterministic random number generation for simulations.
//
// xoshiro256** seeded via SplitMix64. Every workload generator takes an
// explicit Rng so runs are reproducible from a single seed, and independent
// streams can be forked per VIP/cluster without correlation.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace silkroad::sim {

/// xoshiro256** PRNG. Cheap, high quality, and fully deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00DCAFEBABEULL) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Forks an independent stream (e.g., one per VIP).
  Rng fork() noexcept { return Rng(next() ^ 0xF0E1D2C3B4A59687ULL); }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // simulation does not need exact uniformity beyond 2^-64 bias.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller.
  double normal() noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with underlying normal(mu, sigma).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto with scale xm and shape alpha (heavy-tailed sizes/volumes).
  double pareto(double xm, double alpha) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace silkroad::sim
