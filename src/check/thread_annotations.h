// Clang thread-safety annotations (DESIGN.md §13) and the annotated mutex
// wrappers every library mutex must use (lint rule R9).
//
// The macros expand to Clang's capability attributes when the compiler
// supports them and to nothing otherwise, so annotated code builds
// identically under gcc. Turn the analysis on with
// -DSILKROAD_THREAD_SAFETY=ON (requires Clang); it adds
// -Wthread-safety -Werror=thread-safety-analysis, making every guarded-field
// access without its lock a compile error before worker threads exist to hit
// the race at runtime.
//
// Convention: a class owning shared state declares one `sr::Mutex mu_`
// (mutable when const accessors lock), marks each field it protects
// `SR_GUARDED_BY(mu_)`, and takes `sr::MutexLock lock(mu_)` in every public
// entry point. Private helpers called under the lock are annotated
// `SR_REQUIRES(mu_)` instead of re-locking. Never call back out of the class
// (user callbacks, other subsystems that may re-enter) while holding mu_ —
// collect the work under the lock, release, then call.
#pragma once

#include <mutex>

// Attribute dispatch: Clang defines these capability attributes; other
// compilers see empty macros. __has_attribute keeps ancient clangs working.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SR_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef SR_THREAD_ANNOTATION_ATTRIBUTE
#define SR_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define SR_CAPABILITY(x) SR_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor.
#define SR_SCOPED_CAPABILITY SR_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
/// Field access requires holding `x`.
#define SR_GUARDED_BY(x) SR_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
/// Dereferencing this pointer/smart-pointer field requires holding `x`.
#define SR_PT_GUARDED_BY(x) SR_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
/// The function must be called with the listed capabilities held.
#define SR_REQUIRES(...) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// The function acquires the listed capabilities (held on return).
#define SR_ACQUIRE(...) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// The function releases the listed capabilities.
#define SR_RELEASE(...) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
/// The function tries to acquire; first argument is the success value.
#define SR_TRY_ACQUIRE(...) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// The function must be called with the listed capabilities NOT held
/// (deadlock documentation for callbacks-under-lock hazards).
#define SR_EXCLUDES(...) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// The function returns a reference to the capability guarding its result.
#define SR_RETURN_CAPABILITY(x) \
  SR_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis. Every use needs a comment explaining why.
#define SR_NO_THREAD_SAFETY_ANALYSIS \
  SR_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace silkroad::sr {

/// std::mutex with capability annotations. Library code must use this (and
/// MutexLock below) instead of bare std::mutex/std::lock_guard — lint rule
/// R9 — so -Wthread-safety coverage cannot silently decay as code is added.
class SR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SR_ACQUIRE() { mu_.lock(); }
  void unlock() SR_RELEASE() { mu_.unlock(); }
  bool try_lock() SR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // The one bare std::mutex in the library (R9 manifest exemption): this is
  // the wrapper the rule points everyone at.
  std::mutex mu_;
};

/// RAII lock over sr::Mutex (std::lock_guard equivalent). Scoped acquisition
/// is the only locking style the analysis can follow across early returns.
class SR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace silkroad::sr
