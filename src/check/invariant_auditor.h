// Runtime invariant auditor for the SilkRoad PCC state machine.
//
// The paper's guarantees are structural: per-connection consistency holds
// because every ConnTable entry resolves through a DIP-pool version that is
// still alive (§4.2), version numbers are recycled only once no connection
// references them (§4.4), and the TransitTable is consulted only inside an
// open 3-step update window (§4.3). The auditor walks a SilkRoadSwitch and
// re-derives each of those facts from scratch, reporting every divergence it
// finds instead of aborting on the first — so tests can assert on the precise
// violation set.
//
// Invariant families (the `invariant` field of each Violation):
//   "version-liveness"    — every version referenced by a pending (non-dead)
//                           connection has a live pool in its VIP's manager.
//   "refcount-match"      — VersionManager refcounts equal the number of
//                           connections the switch CPU tracks per version,
//                           and every tracked flow is pending or installed.
//   "version-recycling"   — the free ring buffer and the live pool set
//                           partition the version space; a recycled version
//                           is never referenced by any entry or pending flow.
//   "transit-window"      — the TransitTable is empty whenever no 3-step
//                           update is in flight; in-flight state (update VIP,
//                           old/new versions, member sets) is coherent.
//   "sram-accounting"     — reported SRAM usage matches the table geometry
//                           and the physical slot occupancy matches the CPU
//                           shadow index (no phantom entries).
//   "dip-pool-coverage"   — every (VIP, version) pair a ConnTable entry can
//                           resolve to has a DIPPoolTable pool, including
//                           each VIP's current version.
//
// `SilkRoadSwitch::self_check()` (defined in invariant_auditor.cc) runs the
// auditor and SR_CHECK-fails on any violation; the scenario driver calls it
// after every pool-update step, so tier-1 audits continuously.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/silkroad_switch.h"
#include "net/five_tuple.h"

namespace silkroad::check {

struct Violation {
  std::string invariant;  ///< Family id, e.g. "refcount-match".
  std::string detail;     ///< Human-readable specifics.
  /// Offending VIP (its interned trace-scope name) when the violation is
  /// attributable to one; empty otherwise. self_check() uses it to dump the
  /// VIP's recent TraceRing events alongside the failure.
  std::string vip;
  /// Offending DIP-pool version, when one is implicated.
  std::optional<std::uint32_t> version;

  std::string to_string() const { return invariant + ": " + detail; }
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const core::SilkRoadSwitch& sw) : sw_(sw) {}

  /// Runs every invariant family; returns all violations found (empty on a
  /// healthy switch).
  std::vector<Violation> audit() const;

  // Individual families, each appending its findings to `out`.
  void check_version_liveness(std::vector<Violation>& out) const;
  void check_refcounts(std::vector<Violation>& out) const;
  void check_version_recycling(std::vector<Violation>& out) const;
  void check_transit_window(std::vector<Violation>& out) const;
  void check_sram_accounting(std::vector<Violation>& out) const;
  void check_dip_pool_coverage(std::vector<Violation>& out) const;

 private:
  const core::SilkRoadSwitch& sw_;
};

/// Deliberate state-corruption hooks for check_test.cc: the auditor must be
/// *proven* able to fail, so each hook plants one class of violation that a
/// subsequent audit() is asserted to report. Never use outside tests.
struct TestingHooks {
  /// Acquires a phantom reference on `vip`'s current version without
  /// tracking a connection (refcount skew).
  static void skew_refcount(core::SilkRoadSwitch& sw, const net::Endpoint& vip);

  /// Installs a ConnTable entry stamped with `version` without any
  /// control-plane tracking — pass a recycled (free) version number to plant
  /// a stale version reference (§4.4 hazard).
  static void inject_stale_conn_entry(core::SilkRoadSwitch& sw,
                                      const net::FiveTuple& flow,
                                      std::uint32_t version);

  /// Desynchronizes the physical slot array from the CPU shadow index
  /// (phantom SRAM accounting): clears one occupied slot's used bit if any
  /// entry exists, otherwise fabricates an occupied slot.
  static void corrupt_slot_accounting(core::SilkRoadSwitch& sw);

  /// Inserts `flow` into the TransitTable while no update window is open.
  static void pollute_transit(core::SilkRoadSwitch& sw,
                              const net::FiveTuple& flow);
};

}  // namespace silkroad::check
