#include "check/invariant_auditor.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "asic/sram.h"
#include "check/sr_check.h"
#include "obs/forensics.h"
#include "obs/trace.h"

namespace silkroad::check {

namespace {

using core::SilkRoadSwitch;

std::string flow_str(const net::FiveTuple& flow) {
  return flow.src.to_string() + "->" + flow.dst.to_string();
}

Violation make(std::string invariant, std::string detail,
               std::optional<net::Endpoint> vip = std::nullopt,
               std::optional<std::uint32_t> version = std::nullopt) {
  Violation v{std::move(invariant), std::move(detail), {}, version};
  if (vip) v.vip = vip->to_string();
  return v;
}

}  // namespace

std::vector<Violation> InvariantAuditor::audit() const {
  std::vector<Violation> out;
  check_version_liveness(out);
  check_refcounts(out);
  check_version_recycling(out);
  check_transit_window(out);
  check_sram_accounting(out);
  check_dip_pool_coverage(out);
  return out;
}

void InvariantAuditor::check_version_liveness(
    std::vector<Violation>& out) const {
  for (const auto& [flow, info] : sw_.pending_) {
    if (info.dead) continue;  // eviction may have destroyed its version
    const auto* state = sw_.find_vip(info.vip);
    if (state == nullptr) {
      out.push_back(make("version-liveness",
                         "pending flow " + flow_str(flow) +
                             " references unknown VIP " + info.vip.to_string(),
                         info.vip));
      continue;
    }
    if (state->versions->pool(info.version) == nullptr) {
      out.push_back(make("version-liveness",
                         "pending flow " + flow_str(flow) + " holds version " +
                             std::to_string(info.version) +
                             " which has no live pool",
                         info.vip, info.version));
    }
  }
  for (const auto& [flow, conn] : sw_.degraded_flows_) {
    const auto* state = sw_.find_vip(conn.vip);
    if (state == nullptr ||
        state->versions->pool(conn.version) == nullptr) {
      out.push_back(make("version-liveness",
                         "degraded flow " + flow_str(flow) +
                             " is pinned to version " +
                             std::to_string(conn.version) +
                             " which has no live pool",
                         conn.vip, conn.version));
    }
  }
}

void InvariantAuditor::check_refcounts(std::vector<Violation>& out) const {
  for (const auto& [vip, state] : sw_.vips_) {
    const auto& mgr = *state.versions;
    for (const std::uint32_t version : mgr.live_versions()) {
      const auto it = state.conns_by_version.find(version);
      const std::int64_t tracked =
          it == state.conns_by_version.end()
              ? 0
              : static_cast<std::int64_t>(it->second.size());
      const std::int64_t counted = mgr.refcount(version);
      if (counted != tracked) {
        out.push_back(make(
            "refcount-match",
            "vip " + vip.to_string() + " version " + std::to_string(version) +
                " refcount " + std::to_string(counted) + " != " +
                std::to_string(tracked) + " tracked connections",
            vip, version));
      }
    }
    // Tracking must reference live versions only, every tracked flow must
    // still exist somewhere (pending or installed), and no flow may be
    // tracked under two versions at once.
    std::unordered_set<net::FiveTuple, net::FiveTupleHash> seen;
    for (const auto& [version, flows] : state.conns_by_version) {
      if (mgr.pool(version) == nullptr) {
        out.push_back(make("refcount-match",
                           "vip " + vip.to_string() + " tracks " +
                               std::to_string(flows.size()) +
                               " connections under dead version " +
                               std::to_string(version),
                           vip, version));
      }
      for (const auto& flow : flows) {
        if (!seen.insert(flow).second) {
          out.push_back(make("refcount-match",
                             "flow " + flow_str(flow) +
                                 " tracked under two versions of vip " +
                                 vip.to_string(),
                             vip));
        }
        if (!sw_.pending_.contains(flow) && !sw_.conn_table_.contains(flow) &&
            !sw_.degraded_flows_.contains(flow)) {
          out.push_back(make(
              "refcount-match",
              "tracked flow " + flow_str(flow) + " (version " +
                  std::to_string(version) +
                  ") is neither pending, installed, nor degraded-pinned",
              vip, version));
        }
      }
    }
  }
}

void InvariantAuditor::check_version_recycling(
    std::vector<Violation>& out) const {
  // Versions referenced anywhere, keyed by VIP: ConnTable entries, non-dead
  // pending connections, and the CPU's per-version tracking.
  std::unordered_map<net::Endpoint,
                     std::unordered_set<std::uint32_t>, net::EndpointHash>
      referenced;
  for (const auto& entry : sw_.conn_table_.entries()) {
    referenced[entry.key.dst].insert(entry.value);
  }
  for (const auto& [flow, info] : sw_.pending_) {
    if (!info.dead) referenced[info.vip].insert(info.version);
  }
  for (const auto& [vip, state] : sw_.vips_) {
    for (const auto& [version, flows] : state.conns_by_version) {
      if (!flows.empty()) referenced[vip].insert(version);
    }
  }

  for (const auto& [vip, state] : sw_.vips_) {
    const auto& mgr = *state.versions;
    auto free = mgr.free_versions();
    const auto live = mgr.live_versions();

    std::sort(free.begin(), free.end());
    if (std::adjacent_find(free.begin(), free.end()) != free.end()) {
      out.push_back(make("version-recycling",
                         "vip " + vip.to_string() +
                             " has duplicate entries in the free ring",
                         vip));
    }
    for (const std::uint32_t version : live) {
      if (std::binary_search(free.begin(), free.end(), version)) {
        out.push_back(make("version-recycling",
                           "vip " + vip.to_string() + " version " +
                               std::to_string(version) +
                               " is simultaneously live and free",
                           vip, version));
      }
    }
    if (free.size() + live.size() != mgr.version_capacity()) {
      out.push_back(make(
          "version-recycling",
          "vip " + vip.to_string() + " leaks version numbers: " +
              std::to_string(free.size()) + " free + " +
              std::to_string(live.size()) + " live != capacity " +
              std::to_string(mgr.version_capacity()),
          vip));
    }
    // §4.4: a recycled version must never still be referenced.
    if (const auto it = referenced.find(vip); it != referenced.end()) {
      for (const std::uint32_t version : it->second) {
        if (std::binary_search(free.begin(), free.end(), version)) {
          out.push_back(make("version-recycling",
                             "recycled version " + std::to_string(version) +
                                 " of vip " + vip.to_string() +
                                 " is still referenced",
                             vip, version));
        }
      }
    }
  }
}

void InvariantAuditor::check_transit_window(std::vector<Violation>& out) const {
  using Phase = SilkRoadSwitch::Phase;
  if (sw_.phase_ == Phase::kIdle) {
    if (sw_.transit_.inserted() != 0 || sw_.transit_.fill_ratio() > 0.0) {
      out.push_back(make("transit-window",
                         "TransitTable holds state outside an update window (" +
                             std::to_string(sw_.transit_.inserted()) +
                             " inserts)"));
    }
    if (!sw_.transit_members_.empty()) {
      out.push_back(make("transit-window",
                         "transit member set non-empty while idle"));
    }
    if (!sw_.awaiting_pre_.empty()) {
      out.push_back(make("transit-window",
                         "pre-update wait set non-empty while idle"));
    }
    return;
  }

  const auto* state = sw_.find_vip(sw_.update_vip_);
  if (state == nullptr) {
    out.push_back(make("transit-window",
                       "update in flight for unknown VIP " +
                           sw_.update_vip_.to_string(),
                       sw_.update_vip_));
    return;
  }
  const auto& mgr = *state->versions;
  if (mgr.pool(sw_.update_new_version_) == nullptr) {
    out.push_back(make("transit-window",
                       "in-flight update targets dead version " +
                           std::to_string(sw_.update_new_version_),
                       sw_.update_vip_, sw_.update_new_version_));
  }
  if (sw_.phase_ == Phase::kStep1 &&
      mgr.current_version() != sw_.update_old_version_) {
    out.push_back(make("transit-window",
                       "Step1 but VIPTable already flipped away from version " +
                           std::to_string(sw_.update_old_version_),
                       sw_.update_vip_, sw_.update_old_version_));
  }
  if (sw_.phase_ == Phase::kStep2) {
    if (mgr.current_version() != sw_.update_new_version_) {
      out.push_back(make("transit-window",
                         "Step2 but VIPTable does not point at new version " +
                             std::to_string(sw_.update_new_version_),
                         sw_.update_vip_, sw_.update_new_version_));
    }
    if (!sw_.transit_members_.empty() &&
        mgr.pool(sw_.update_old_version_) == nullptr) {
      out.push_back(make("transit-window",
                         "flows pinned to old version " +
                             std::to_string(sw_.update_old_version_) +
                             " but its pool is gone",
                         sw_.update_vip_, sw_.update_old_version_));
    }
  }
  for (const auto& flow : sw_.transit_members_) {
    if (!sw_.pending_.contains(flow)) {
      out.push_back(make("transit-window",
                         "transit member " + flow_str(flow) +
                             " has no pending insertion and cannot resolve",
                         sw_.update_vip_));
    }
  }
  for (const auto& flow : sw_.awaiting_pre_) {
    if (!sw_.pending_.contains(flow)) {
      out.push_back(make("transit-window",
                         "pre-update flow " + flow_str(flow) +
                             " has no pending insertion and cannot resolve",
                         sw_.update_vip_));
    }
  }
}

void InvariantAuditor::check_sram_accounting(
    std::vector<Violation>& out) const {
  const auto usage = sw_.memory_usage();
  const auto& cfg = sw_.conn_table_.config();
  const std::size_t geometry_bytes = asic::bits_to_bytes(
      cfg.stages * cfg.buckets_per_stage * asic::kSramWordBits);
  if (usage.conn_table_bytes != geometry_bytes) {
    out.push_back(make("sram-accounting",
                       "reported ConnTable SRAM " +
                           std::to_string(usage.conn_table_bytes) +
                           " B != geometry " +
                           std::to_string(geometry_bytes) + " B"));
  }
  const std::size_t used = sw_.conn_table_.used_slot_count();
  if (used != sw_.conn_table_.size()) {
    out.push_back(make("sram-accounting",
                       "phantom SRAM occupancy: " + std::to_string(used) +
                           " used slots vs " +
                           std::to_string(sw_.conn_table_.size()) +
                           " indexed entries"));
  }
  std::size_t pool_bytes = 0;
  for (const auto& [vip, state] : sw_.vips_) {
    for (const std::uint32_t version : state.versions->live_versions()) {
      pool_bytes += state.versions->pool(version)->wire_bytes();
    }
  }
  if (usage.dip_pool_table_bytes != pool_bytes) {
    out.push_back(make("sram-accounting",
                       "reported DIPPoolTable SRAM " +
                           std::to_string(usage.dip_pool_table_bytes) +
                           " B != live pool total " +
                           std::to_string(pool_bytes) + " B"));
  }
  if (usage.transit_table_bytes != sw_.transit_.byte_count()) {
    out.push_back(make("sram-accounting",
                       "reported TransitTable SRAM " +
                           std::to_string(usage.transit_table_bytes) +
                           " B != filter size " +
                           std::to_string(sw_.transit_.byte_count()) + " B"));
  }
}

void InvariantAuditor::check_dip_pool_coverage(
    std::vector<Violation>& out) const {
  for (const auto& [vip, state] : sw_.vips_) {
    if (state.versions->pool(state.versions->current_version()) == nullptr) {
      out.push_back(make("dip-pool-coverage",
                         "vip " + vip.to_string() + " current version " +
                             std::to_string(state.versions->current_version()) +
                             " has no pool",
                         vip, state.versions->current_version()));
    }
  }
  for (const auto& entry : sw_.conn_table_.entries()) {
    const auto* state = sw_.find_vip(entry.key.dst);
    if (state == nullptr) {
      out.push_back(make("dip-pool-coverage",
                         "ConnTable entry " + flow_str(entry.key) +
                             " targets unknown VIP"));
      continue;
    }
    if (state->versions->pool(entry.value) == nullptr) {
      out.push_back(make("dip-pool-coverage",
                         "ConnTable entry " + flow_str(entry.key) +
                             " resolves to version " +
                             std::to_string(entry.value) +
                             " with no DIPPoolTable pool",
                         entry.key.dst, entry.value));
    }
  }
}

// ---------------------------------------------------------------------------
// Self-check entry point (declared in core/silkroad_switch.h).
// ---------------------------------------------------------------------------

void TestingHooks::skew_refcount(core::SilkRoadSwitch& sw,
                                 const net::Endpoint& vip) {
  auto* state = sw.find_vip(vip);
  SR_CHECK(state != nullptr);
  state->versions->acquire(state->versions->current_version());
}

void TestingHooks::inject_stale_conn_entry(core::SilkRoadSwitch& sw,
                                           const net::FiveTuple& flow,
                                           std::uint32_t version) {
  sw.conn_table_.insert(flow, version);
}

void TestingHooks::corrupt_slot_accounting(core::SilkRoadSwitch& sw) {
  auto& table = sw.conn_table_;
  for (auto& slot : table.slots_) {
    if (slot.used) {
      slot.used = false;  // the shadow index now points at a vacant slot
      return;
    }
  }
  SR_CHECK(!table.slots_.empty());
  table.slots_.front().used = true;  // phantom occupancy in an empty table
}

void TestingHooks::pollute_transit(core::SilkRoadSwitch& sw,
                                   const net::FiveTuple& flow) {
  sw.transit_.insert(flow);
}

}  // namespace silkroad::check

namespace silkroad::core {

void SilkRoadSwitch::self_check() const {
  const check::InvariantAuditor auditor(*this);
  const auto violations = auditor.audit();
  for (const auto& violation : violations) {
    std::fprintf(stderr, "invariant violation: %s\n",
                 violation.to_string().c_str());
  }
  if (!violations.empty()) {
    // Causal context for the failure: the offending VIP's (and version's)
    // recent TraceRing timeline, oldest first.
    constexpr std::size_t kTailEvents = 16;
    if (trace_.dropped() > 0) {
      std::fprintf(stderr,
                   "note: %llu trace events lost to ring wraparound; the "
                   "tails below may start mid-story\n",
                   static_cast<unsigned long long>(trace_.dropped()));
    }
    std::set<std::pair<std::string, std::optional<std::uint32_t>>> dumped;
    for (const auto& violation : violations) {
      if (violation.vip.empty()) continue;
      if (!dumped.insert({violation.vip, violation.version}).second) continue;
      const auto scope = trace_.find_scope(violation.vip);
      if (!scope) continue;
      const auto tail = trace_.tail_for(*scope, violation.version, kTailEvents);
      if (violation.version) {
        std::fprintf(stderr, "trace tail for vip %s version %u (%zu events):\n",
                     violation.vip.c_str(), *violation.version, tail.size());
      } else {
        std::fprintf(stderr, "trace tail for vip %s (%zu events):\n",
                     violation.vip.c_str(), tail.size());
      }
      for (const auto& event : tail) {
        std::fprintf(stderr, "  %s\n",
                     obs::format_event(trace_, event).c_str());
      }
    }
    if (dumped.empty()) {
      const auto all = trace_.events();
      const std::size_t start =
          all.size() > kTailEvents ? all.size() - kTailEvents : 0;
      std::fprintf(stderr, "trace tail (%zu events):\n", all.size() - start);
      for (std::size_t i = start; i < all.size(); ++i) {
        std::fprintf(stderr, "  %s\n",
                     obs::format_event(trace_, all[i]).c_str());
      }
    }
  }
  if (!violations.empty()) {
    // Durable incident record: the trace ring interleaved with every
    // overlapping update/resync span, written to SILKROAD_TELEMETRY_DIR
    // (no-op when the env var is unset or the switch is untraced).
    const std::string dir = obs::telemetry_dir_from_env();
    if (!dir.empty()) {
      std::string reason = "invariant auditor: " + violations.front().invariant;
      if (violations.size() > 1) {
        reason += " (+" + std::to_string(violations.size() - 1) + " more)";
      }
      const auto report =
          obs::assemble_forensics(trace_, spans_, 0, std::move(reason));
      const std::string stem =
          "forensics_invariant_sw" + std::to_string(span_switch_);
      if (obs::write_forensics(report, dir, stem)) {
        std::fprintf(stderr, "forensics report written to %s/%s.{txt,json}\n",
                     dir.c_str(), stem.c_str());
      }
    }
  }
  SR_CHECKF(violations.empty(), "invariant auditor found %zu violation(s)",
            violations.size());
}

}  // namespace silkroad::core
