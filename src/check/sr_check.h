// Always-on runtime check macros — the repo's replacement for raw assert().
//
// The default build type is RelWithDebInfo, which defines NDEBUG, so a plain
// assert() silently vanishes exactly where we need it most: long randomized
// property runs and production-scale simulations. SilkRoad's core claim is an
// *invariant* (per-connection consistency under pool updates, paper §4.3), so
// invariant checks must survive release builds and fail loudly with context.
//
//   SR_CHECK(cond)            — always compiled in; aborts with file:line and
//                               the failed expression.
//   SR_CHECKF(cond, fmt, ...) — same, plus a printf-style context message.
//   SR_DCHECK / SR_DCHECKF    — compiled in only in debug builds (or when
//                               SILKROAD_FORCE_DCHECKS is defined): for hot
//                               per-packet/per-slot checks too expensive for
//                               release, but still checked under `scripts/
//                               check.sh`'s Debug+sanitizer leg.
//
// scripts/lint.py enforces that library code under src/ uses these instead of
// raw assert() (static_assert is fine).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace silkroad::check {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr) {
  std::fprintf(stderr, "SR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace silkroad::check

#define SR_CHECK(cond)                                              \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::silkroad::check::check_failed(__FILE__, __LINE__, #cond);   \
    }                                                               \
  } while (false)

#define SR_CHECKF(cond, ...)                                        \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "SR_CHECK context: " __VA_ARGS__);       \
      std::fputc('\n', stderr);                                     \
      ::silkroad::check::check_failed(__FILE__, __LINE__, #cond);   \
    }                                                               \
  } while (false)

#if !defined(NDEBUG) || defined(SILKROAD_FORCE_DCHECKS)
#define SR_DCHECK(cond) SR_CHECK(cond)
#define SR_DCHECKF(cond, ...) SR_CHECKF(cond, __VA_ARGS__)
#else
// sizeof keeps the condition parsed (and its operands "used") without
// evaluating it.
#define SR_DCHECK(cond)           \
  do {                            \
    (void)sizeof(!(cond));        \
  } while (false)
#define SR_DCHECKF(cond, ...)     \
  do {                            \
    (void)sizeof(!(cond));        \
  } while (false)
#endif
