// Sharded (striped) hot-path metric primitives (DESIGN.md §14).
//
// A plain Counter is already a relaxed atomic, but every data-plane shard
// bumping the *same* cache line serializes on coherence traffic, and fetching
// a handle from MetricsRegistry takes the registry mutex. ShardedCounter and
// ShardedHistogram stripe their state across cache-line-padded cells indexed
// by a per-thread stripe id, so a bump from any thread is one uncontended
// relaxed add — no mutex, no shared line — and aggregation happens only when
// a reader asks (value() / snapshot()).
//
// Memory model: all writes are std::memory_order_relaxed. Readers see a sum
// that is "eventually exact": every increment that happened-before the read
// is included, concurrent increments may or may not be. There is no
// cross-metric ordering — a snapshot can show N packets but N-1 table hits
// even if the code always bumps both. That is the same contract the plain
// Counter already offers, weakened only in that the per-stripe loads are not
// a single atomic read. Counters are monotone, so sums never go backwards
// between snapshots taken by the same reader thread.
//
// Thread-stripe assignment: threads draw a stripe id on first use
// (lazily registered per thread via a thread_local, see sharded.cc) and keep
// it for their lifetime. Stripes wrap modulo kStripes, so more than kStripes
// threads share stripes — still correct, merely more coherence traffic.
//
// These types are lock-free and need no SR_GUARDED_BY annotations; the
// registry that hands them out (MetricsRegistry::sharded_counter /
// sharded_histogram) keeps its own mutex for registration and snapshot only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace silkroad::obs {

namespace detail {
/// Small dense id for the calling thread, assigned on first call and stable
/// for the thread's lifetime. Monotonically allocated, so the first
/// kStripes threads get private stripes.
std::size_t this_thread_stripe() noexcept;
}  // namespace detail

/// Monotone event count striped across cache-line-padded cells. inc() is one
/// uncontended relaxed fetch_add; value() sums the stripes.
class ShardedCounter {
 public:
  static constexpr std::size_t kStripes = 16;
  static_assert((kStripes & (kStripes - 1)) == 0, "stripe mask needs pow2");

  void inc(std::uint64_t delta = 1) noexcept {
    cells_[detail::this_thread_stripe() & (kStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over all stripes (see the memory-model note in the file header).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kStripes];
};

/// Log-linear HDR-style histogram (same bucket geometry as Histogram, shared
/// via hdr_bucket_*) with per-stripe bucket arrays. record() touches only the
/// calling thread's stripe; the aggregated view (bucket_value/count/sum) sums
/// stripes and is rendered by MetricsRegistry::snapshot() exactly like a
/// plain Histogram, so exporters and quantile math are unchanged.
class ShardedHistogram {
 public:
  static constexpr std::size_t kStripes = 8;
  static_assert((kStripes & (kStripes - 1)) == 0, "stripe mask needs pow2");

  explicit ShardedHistogram(const Histogram::Options& options);

  void record(std::uint64_t value) noexcept {
    Stripe& stripe = stripes_[detail::this_thread_stripe() & (kStripes - 1)];
    stripe.buckets[hdr_bucket_index(value, log2_sub_)].fetch_add(
        1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
  }

  std::size_t bucket_count() const noexcept { return bucket_total_; }
  /// Count in bucket `index`, summed over stripes.
  std::uint64_t bucket_value(std::size_t index) const noexcept;
  std::uint64_t bucket_lower_bound(std::size_t index) const noexcept {
    return hdr_bucket_lower_bound(index, log2_sub_);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

 private:
  struct Stripe {
    // Each stripe's bucket array is its own allocation, so stripes never
    // share a cache line; the per-stripe sum rides in front of the pointer.
    alignas(64) std::atomic<std::uint64_t> sum{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  };

  unsigned log2_sub_;
  std::size_t bucket_total_;
  Stripe stripes_[kStripes];
};

}  // namespace silkroad::obs
