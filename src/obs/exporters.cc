#include "obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace silkroad::obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string series_name(const MetricSample& sample, const char* suffix = "",
                        const std::string& extra_label = "") {
  std::string out = sample.name;
  out += suffix;
  std::string labels = sample.labels;
  if (!extra_label.empty()) {
    if (!labels.empty()) labels += ",";
    labels += extra_label;
  }
  if (!labels.empty()) {
    out += "{";
    out += labels;
    out += "}";
  }
  return out;
}

}  // namespace

std::string format_number(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  const std::string* last_family = nullptr;
  for (const auto& sample : snapshot.samples) {
    // HELP/TYPE once per family (label variants share the headers).
    if (last_family == nullptr || *last_family != sample.name) {
      if (!sample.help.empty()) {
        append(out, "# HELP %s %s\n", sample.name.c_str(),
               sample.help.c_str());
      }
      append(out, "# TYPE %s %s\n", sample.name.c_str(),
             to_string(sample.kind));
      last_family = &sample.name;
    }
    if (sample.kind == MetricKind::kHistogram) {
      for (const auto& bucket : sample.buckets) {
        append(out, "%s %" PRIu64 "\n",
               series_name(sample, "_bucket",
                           "le=\"" + std::to_string(bucket.upper_bound) + "\"")
                   .c_str(),
               bucket.cumulative_count);
      }
      append(out, "%s %" PRIu64 "\n",
             series_name(sample, "_bucket", "le=\"+Inf\"").c_str(),
             sample.count);
      append(out, "%s %s\n", series_name(sample, "_sum").c_str(),
             format_number(sample.sum).c_str());
      append(out, "%s %" PRIu64 "\n", series_name(sample, "_count").c_str(),
             sample.count);
    } else {
      append(out, "%s %s\n", series_name(sample).c_str(),
             format_number(sample.value).c_str());
    }
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& sample : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    append(out, "\n  {\"name\":\"%s\",\"labels\":\"%s\",\"kind\":\"%s\"",
           json_escape(sample.name).c_str(),
           json_escape(sample.labels).c_str(), to_string(sample.kind));
    if (sample.kind == MetricKind::kHistogram) {
      append(out, ",\"count\":%" PRIu64 ",\"sum\":%s,\"buckets\":[",
             sample.count, format_number(sample.sum).c_str());
      bool first_bucket = true;
      for (const auto& bucket : sample.buckets) {
        if (!first_bucket) out += ",";
        first_bucket = false;
        append(out, "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
               bucket.upper_bound, bucket.cumulative_count);
      }
      out += "]}";
    } else {
      append(out, ",\"value\":%s}", format_number(sample.value).c_str());
    }
  }
  out += "\n]}\n";
  return out;
}

std::string to_profile_json(const Snapshot& snapshot) {
  const auto ends_with = [](const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  std::string out = "{\"histograms\":[";
  bool first = true;
  for (const auto& sample : snapshot.samples) {
    if (sample.kind != MetricKind::kHistogram || sample.count == 0) continue;
    if (!first) out += ",";
    first = false;
    const double mean = sample.sum / static_cast<double>(sample.count);
    append(out,
           "\n  {\"name\":\"%s\",\"labels\":\"%s\",\"count\":%" PRIu64
           ",\"sum\":%s,\"mean\":%s",
           json_escape(sample.name).c_str(),
           json_escape(sample.labels).c_str(), sample.count,
           format_number(sample.sum).c_str(), format_number(mean).c_str());
    for (const auto& [key, q] : {std::pair<const char*, double>{"p50", 0.50},
                                 {"p90", 0.90},
                                 {"p99", 0.99},
                                 {"p999", 0.999}}) {
      append(out, ",\"%s\":%s", key,
             format_number(histogram_quantile(sample, q)).c_str());
    }
    out += "}";
  }
  out += "\n],\"sampling\":[";
  first = true;
  for (const auto& sample : snapshot.samples) {
    if (sample.kind != MetricKind::kCounter ||
        (!ends_with(sample.name, "_sampled_packets_total") &&
         !ends_with(sample.name, "_profiler_reentry_total"))) {
      continue;
    }
    if (!first) out += ",";
    first = false;
    append(out, "\n  {\"name\":\"%s\",\"labels\":\"%s\",\"value\":%s}",
           json_escape(sample.name).c_str(),
           json_escape(sample.labels).c_str(),
           format_number(sample.value).c_str());
  }
  out += "\n]}\n";
  return out;
}

std::string to_chrome_trace(const TraceRing& ring) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const char* fmt, auto... args) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append(out, fmt, args...);
  };

  // Track names: pid 0 is the switch; each scope (VIP) is a tid.
  std::vector<bool> seen_scope;
  for (const auto& event : ring.events()) {
    if (event.scope >= seen_scope.size()) seen_scope.resize(event.scope + 1);
    if (!seen_scope[event.scope]) {
      seen_scope[event.scope] = true;
      const std::string name = event.scope == kNoScope
                                   ? std::string("switch")
                                   : ring.scope_name(event.scope);
      emit("{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"%s\"}}",
           event.scope, json_escape(name).c_str());
    }
  }

  for (const auto& event : ring.events()) {
    const double us = static_cast<double>(event.at) / 1e3;
    const char* name = to_string(event.kind);
    const std::string args =
        "{\"version\":" +
        (event.version == kNoVersion ? std::string("null")
                                     : std::to_string(event.version)) +
        ",\"arg0\":" + std::to_string(event.arg0) +
        ",\"arg1\":" + std::to_string(event.arg1) + "}";
    switch (event.kind) {
      case TraceEventKind::kUpdateStep1Open:
        emit("{\"ph\":\"B\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
             "\"name\":\"pcc-update\",\"args\":%s}",
             event.scope, us, args.c_str());
        break;
      case TraceEventKind::kUpdateFinish:
        emit("{\"ph\":\"E\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
             "\"name\":\"pcc-update\",\"args\":%s}",
             event.scope, us, args.c_str());
        break;
      default:
        emit("{\"ph\":\"i\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
             "\"name\":\"%s\",\"s\":\"t\",\"args\":%s}",
             event.scope, us, name, args.c_str());
        break;
    }
  }
  append(out, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
              "{\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64 "}}\n",
         ring.total_recorded(), ring.dropped());
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace silkroad::obs
