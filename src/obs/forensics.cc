#include "obs/forensics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string span_source(const UpdateSpan& span) {
  std::string out;
  append(out, "%s#%" PRIu64, span.resync ? "resync" : "update", span.id);
  return out;
}

std::string span_event_line(const UpdateSpan& span, const SpanEvent& event) {
  std::string out = to_string(event.kind);
  if (event.switch_index != kControllerLeg) {
    append(out, " sw=%u", event.switch_index);
  }
  switch (event.kind) {
    case SpanEventKind::kIntent:
      if (!span.resync) {
        append(out, " %s dip=%s vip=%s cause=%s",
               span.intent.action == workload::UpdateAction::kAddDip
                   ? "add-dip"
                   : "remove-dip",
               span.intent.dip.to_string().c_str(),
               span.intent.vip.to_string().c_str(),
               workload::to_string(span.intent.cause));
      }
      if (span.parent_id != 0) {
        append(out, " parent=%" PRIu64, span.parent_id);
      }
      break;
    case SpanEventKind::kSubsume:
      append(out, " update#%" PRIu64, event.arg0);
      break;
    case SpanEventKind::kChannelXmit:
    case SpanEventKind::kChannelRetry:
      append(out, " attempt=%" PRIu64, event.arg0);
      break;
    case SpanEventKind::kChannelDrop:
      out += event.arg1 == 1   ? " (ack)"
             : event.arg1 == 2 ? " (offline)"
                               : " (message)";
      break;
    case SpanEventKind::kSkipped:
      out += event.arg1 == 0 ? " (unprovisioned)" : " (already applied)";
      break;
    case SpanEventKind::kStep1Open:
    case SpanEventKind::kFlip:
    case SpanEventKind::kCommit:
      append(out, " v=%" PRIu64 "->%" PRIu64, event.arg0, event.arg1);
      break;
    case SpanEventKind::kAbandon:
      out += event.arg1 == 0   ? " (unknown vip)"
             : event.arg1 == 1 ? " (stage failure)"
             : event.arg1 == 2 ? " (crash wipe)"
                               : " (window wipe)";
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

ForensicsReport assemble_forensics(const TraceRing& ring,
                                   const SpanCollector* spans,
                                   std::uint64_t flow_id, std::string reason) {
  ForensicsReport report;
  report.reason = std::move(reason);
  report.flow_id = flow_id;

  if (flow_id != 0) {
    report.journey = FlowJourneyTracer::journey_of(ring, flow_id);
  }
  if (report.journey) {
    report.window_first = report.journey->first;
    report.window_last = report.journey->last;
  } else {
    const auto all = ring.events();
    report.window_first = all.empty() ? 0 : all.front().at;
    report.window_last = all.empty() ? 0 : all.back().at;
    for (const auto& event : all) {
      report.window_first = std::min(report.window_first, event.at);
      report.window_last = std::max(report.window_last, event.at);
    }
  }

  if (spans != nullptr) {
    for (const UpdateSpan* span :
         spans->overlapping(report.window_first, report.window_last)) {
      report.spans.push_back(*span);
    }
  }

  if (report.journey) {
    for (const auto& event : report.journey->events) {
      report.timeline.push_back(
          {event.at, "flow", format_event(ring, event)});
    }
    for (const auto& event : report.journey->context) {
      report.timeline.push_back({event.at, "ctx", format_event(ring, event)});
    }
  }
  for (const auto& span : report.spans) {
    const std::string source = span_source(span);
    for (const auto& event : span.events) {
      report.timeline.push_back({event.at, source,
                                 span_event_line(span, event)});
    }
  }
  std::stable_sort(report.timeline.begin(), report.timeline.end(),
                   [](const ForensicsReport::Entry& a,
                      const ForensicsReport::Entry& b) { return a.at < b.at; });
  return report;
}

std::string ForensicsReport::to_text() const {
  std::string out;
  append(out, "=== silkroad forensics report ===\nreason: %s\n",
         reason.c_str());
  if (flow_id != 0) {
    append(out, "flow: 0x%016" PRIx64 "%s\n", flow_id,
           journey ? "" : " (no journey in the trace ring)");
  }
  append(out, "window: [%.6f s, %.6f s] sim time\n",
         sim::to_seconds(window_first), sim::to_seconds(window_last));
  if (journey) {
    append(out,
           "journey: %zu events, installed=%d install_failed=%d "
           "software_fallback=%d aged_out=%d\n",
           journey->events.size(), journey->installed ? 1 : 0,
           journey->install_failed ? 1 : 0, journey->software_fallback ? 1 : 0,
           journey->aged_out ? 1 : 0);
  }
  append(out, "overlapping spans: %zu\n", spans.size());
  for (const auto& span : spans) {
    append(out, "  %s", span_source(span).c_str());
    if (span.resync) {
      append(out, " switch=%u subsumes %zu update(s)", span.resync_switch,
             span.subsumed.size());
    } else {
      append(out, " %s dip=%s vip=%s",
             span.intent.action == workload::UpdateAction::kAddDip
                 ? "add-dip"
                 : "remove-dip",
             span.intent.dip.to_string().c_str(),
             span.intent.vip.to_string().c_str());
      if (span.parent_id != 0) append(out, " parent=%" PRIu64, span.parent_id);
    }
    out += "\n";
  }
  out += "timeline (ordered by sim time):\n";
  for (const auto& entry : timeline) {
    append(out, "  [%12.6f ms] %-10s %s\n",
           static_cast<double>(entry.at) / 1e6, entry.source.c_str(),
           entry.line.c_str());
  }
  if (!divergence_text.empty()) {
    out += "\n";
    out += divergence_text;
  }
  if (!capacity_text.empty()) {
    out += "\n";
    out += capacity_text;
  }
  return out;
}

std::string ForensicsReport::to_json() const {
  std::string out;
  append(out, "{\"reason\":\"%s\",\"flow_id\":\"0x%016" PRIx64 "\","
              "\"window_first_ns\":%" PRIu64 ",\"window_last_ns\":%" PRIu64,
         json_escape(reason).c_str(), flow_id, window_first, window_last);
  append(out, ",\"journey_found\":%s", journey ? "true" : "false");
  if (journey) {
    append(out, ",\"journey\":{\"events\":%zu,\"installed\":%s,"
                "\"software_fallback\":%s}",
           journey->events.size(), journey->installed ? "true" : "false",
           journey->software_fallback ? "true" : "false");
  }
  out += ",\"span_ids\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    append(out, "%" PRIu64, span.id);
  }
  out += "],\"timeline\":[";
  first = true;
  for (const auto& entry : timeline) {
    if (!first) out += ",";
    first = false;
    append(out, "\n  {\"at_ns\":%" PRIu64 ",\"source\":\"%s\",\"line\":\"%s\"}",
           entry.at, json_escape(entry.source).c_str(),
           json_escape(entry.line).c_str());
  }
  out += "\n]";
  if (!divergence_json.empty()) {
    // divergence_json is a DivergenceFinding::to_json() document; embed it
    // as a sub-object rather than re-encoding.
    out += ",\"divergence\":";
    out += divergence_json;
  }
  if (!capacity_json.empty()) {
    // capacity_json is the ResourceLedger's own JSON document; embed it as a
    // sub-object (trimming its trailing newline) rather than re-encoding.
    std::string trimmed = capacity_json;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == ' ')) {
      trimmed.pop_back();
    }
    out += ",\"capacity\":";
    out += trimmed;
  }
  out += "}\n";
  return out;
}

std::string telemetry_dir_from_env() {
  // srlint: allow(R8) output-directory config for failure artifacts; never
  // branches protocol behavior, so seed reproducibility is unaffected.
  const char* dir = std::getenv("SILKROAD_TELEMETRY_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

bool write_forensics(const ForensicsReport& report, const std::string& dir,
                     const std::string& stem) {
  if (dir.empty()) return false;
  const bool text_ok =
      write_file(dir + "/" + stem + ".txt", report.to_text());
  const bool json_ok =
      write_file(dir + "/" + stem + ".json", report.to_json());
  return text_ok && json_ok;
}

}  // namespace silkroad::obs
