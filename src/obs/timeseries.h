// Time-series recorder over the metrics registry (DESIGN.md §10).
//
// A Snapshot is a point in time; SilkRoad's interesting behavior is temporal
// (occupancy ramps while DIP pools churn, insert-latency tails during update
// bursts). TimeSeriesRecorder samples any snapshot source at a fixed sim-time
// interval into bounded ring-buffered series and derives per-interval series
// on the fly:
//
//   <name>            raw counter/gauge value at each sample
//   <name>:rate       counter delta per second over the last interval
//   <name>:pNN        histogram quantile of values recorded in the interval
//                     (NN from Options::quantile_lo/hi, default p50 and p99)
//   <name>:mean       mean of values recorded in the interval
//   <name>:count_rate histogram recordings per second over the interval
//
// Derived histogram series are computed from cumulative-bucket deltas between
// consecutive snapshots, so they describe only the traffic of that interval,
// not the since-boot distribution. Intervals in which a histogram saw no
// recordings produce no :pNN/:mean points (gaps, not zeros).
//
// Storage is a bounded deque per series (Options::capacity points); sampling
// is O(series). All public methods are thread-safe (internal mutex), so a
// ScrapeServer thread may export while the simulation thread samples.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/thread_annotations.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace silkroad::obs {

class TimeSeriesRecorder {
 public:
  /// Produces the snapshot to sample; typically MetricsRegistry::snapshot or
  /// a fleet-wide aggregate (deploy::SilkRoadFleet::snapshot_source).
  using Source = std::function<Snapshot()>;

  struct Options {
    sim::Time interval = sim::kSecond;  ///< sampling period (sim time)
    std::size_t capacity = 1024;        ///< max points retained per series
    double quantile_lo = 0.50;          ///< lower derived quantile (":p50")
    double quantile_hi = 0.99;          ///< upper derived quantile (":p99")
    /// Metrics carrying per-DIP series labeled vip="..",dip=".." whose
    /// cross-DIP spread is summarized per VIP at each sample: gauges
    /// contribute their level, counters their per-interval delta. Each
    /// (metric, vip) with a nonzero mean yields two derived series —
    /// `<name>:imbalance_maxmean{vip=...}` (max/mean across DIPs, 1.0 =
    /// perfectly balanced) and `<name>:imbalance_cv{vip=...}` (coefficient
    /// of variation, 0.0 = perfectly balanced) — plus the latest stats in
    /// imbalance_json().
    std::vector<std::string> imbalance_metrics = {
        "silkroad_dip_active_conns", "silkroad_dip_new_conns_total"};
  };

  /// One (time, value) observation. Times are sim-time nanoseconds.
  struct Point {
    sim::Time at = 0;
    double value = 0;
  };

  /// Aggregate over the most recent points of one series.
  struct WindowStats {
    std::size_t count = 0;
    double min = 0;
    double mean = 0;
    double max = 0;
  };

  /// Latest per-(metric, vip) load-imbalance summary across that VIP's DIPs
  /// (Options::imbalance_metrics).
  struct ImbalanceStat {
    sim::Time at = 0;
    std::size_t dips = 0;   ///< DIP series contributing to the sample
    double mean = 0;        ///< mean per-DIP value
    double max = 0;         ///< hottest DIP's value
    double max_mean = 0;    ///< max/mean — 1.0 is perfectly balanced
    double cv = 0;          ///< stddev/mean — 0.0 is perfectly balanced
  };

  TimeSeriesRecorder(Source source, const Options& options);
  explicit TimeSeriesRecorder(Source source)
      : TimeSeriesRecorder(std::move(source), Options{}) {}
  /// Convenience: records `registry.snapshot()`. The registry must outlive
  /// the recorder.
  TimeSeriesRecorder(const MetricsRegistry& registry, const Options& options);
  explicit TimeSeriesRecorder(const MetricsRegistry& registry)
      : TimeSeriesRecorder(registry, Options{}) {}
  ~TimeSeriesRecorder() { detach(); }

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Takes one sample at sim-time `at`. Usable directly (tests, custom
  /// drivers) or indirectly via attach().
  void sample(sim::Time at);

  /// Samples immediately at sim.now(), then re-samples every interval until
  /// `until` (inclusive bound on sample times). With the default unbounded
  /// `until` the recorder keeps one event pending forever: drive the sim with
  /// run_until(), not run(), and detach() when done.
  void attach(sim::Simulator& sim, sim::Time until = sim::kTimeInfinity);

  /// Cancels the pending self-scheduled sample, if any. Idempotent.
  void detach();

  /// Points of one series, oldest first (a copy; series names include the
  /// derived suffixes, e.g. "silkroad_conn_table_inserts_total:rate").
  std::vector<Point> find(const std::string& name,
                          const std::string& labels = "") const;

  /// Min/mean/max over the last `last_n` points of a series (0 = all
  /// retained points). count == 0 when the series is absent or empty.
  WindowStats window(const std::string& name, const std::string& labels = "",
                     std::size_t last_n = 0) const;

  std::size_t sample_count() const;
  std::size_t series_count() const;
  sim::Time interval() const noexcept { return options_.interval; }

  /// CSV with header "t_seconds,name,labels,value"; one row per point,
  /// series in (name, labels) order, points oldest first.
  std::string to_csv() const;

  /// {"interval_ns":..,"samples":..,"series":[{"name","labels",
  ///  "points":[[t_seconds,value],...]},...]} — served by the ScrapeServer
  /// as /timeseries.json.
  std::string to_json() const;

  /// Latest imbalance stats for (metric, vip), or a zero-count default when
  /// that pair never produced a sample.
  ImbalanceStat imbalance(const std::string& metric,
                          const std::string& vip) const;

  /// Per-metric, per-VIP imbalance report — latest stats plus windowed
  /// max/mean of the :imbalance_maxmean and :imbalance_cv series — served by
  /// the ScrapeServer as /imbalance.json.
  std::string imbalance_json() const;

 private:
  using SeriesKey = std::pair<std::string, std::string>;  // (name, labels)

  void push(const SeriesKey& key, sim::Time at, double value)
      SR_REQUIRES(mu_);
  void compute_imbalance(const Snapshot& snap, sim::Time at, bool derive)
      SR_REQUIRES(mu_);
  /// Windowed mean/max over a derived series' retained points.
  void window_of(const std::string& name, const std::string& labels,
                 double& mean, double& max, std::size_t& points) const
      SR_REQUIRES(mu_);
  void schedule_next();

  Source source_;
  Options options_;

  mutable sr::Mutex mu_;
  std::map<SeriesKey, std::deque<Point>> series_ SR_GUARDED_BY(mu_);
  /// Latest imbalance stats keyed by (metric, vip).
  std::map<SeriesKey, ImbalanceStat> imbalance_ SR_GUARDED_BY(mu_);
  Snapshot prev_ SR_GUARDED_BY(mu_);
  sim::Time prev_at_ SR_GUARDED_BY(mu_) = 0;
  bool have_prev_ SR_GUARDED_BY(mu_) = false;
  std::size_t samples_ SR_GUARDED_BY(mu_) = 0;

  // Attach/detach state is touched only from the simulation thread (the
  // event loop that fires the self-scheduled sample), never from scrapers.
  sim::Simulator* sim_ = nullptr;
  sim::Time until_ = sim::kTimeInfinity;
  sim::EventHandle pending_;
};

}  // namespace silkroad::obs
