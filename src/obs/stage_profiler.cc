#include "obs/stage_profiler.h"

namespace silkroad::obs {

StageProfiler::StageProfiler(MetricsRegistry& registry,
                             const std::string& prefix, std::size_t stages) {
  stages_.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string label = "stage=\"" + std::to_string(i) + "\"";
    Stage stage;
    stage.packets =
        registry.sharded_counter(prefix + "_stage_packets_total",
                                 "packets examined by the stage", label);
    stage.hits = registry.sharded_counter(prefix + "_stage_hits_total",
                                          "table hits at the stage", label);
    stage.misses = registry.sharded_counter(prefix + "_stage_misses_total",
                                            "table misses at the stage", label);
    stage.latency_ns = registry.sharded_counter(
        prefix + "_stage_latency_ns_total",
        "modeled processing latency charged to the stage", label);
    stage.reentries = registry.sharded_counter(
        prefix + "_profiler_reentry_total",
        "nested enter() on an already-open stage scope (double-accounting "
        "avoided and counted here)",
        label);
    stages_.push_back(stage);
  }
}

}  // namespace silkroad::obs
