// Causal update-span tracing across the fleet (DESIGN.md §12).
//
// Every controller DIP-update intent is assigned a fleet-unique update_id
// that rides inside the ControlChannel payload — surviving retransmits,
// duplicate deliveries, and resync escalation — and is stamped onto the
// switch-side 3-step protocol execution it causes. The SpanCollector gathers
// these observations into one UpdateSpan per intent, forming a tree:
//
//   intent (controller)
//     ├─ per-switch channel leg: send → transmit/drop/retry* → deliver|dup
//     ├─ per-switch CPU queue wait: queue-stage → step1-open
//     └─ per-switch protocol execution: step1 → flip → commit → finish
//
// Resync escalations mint their own spans that link (subsume) every update
// the bulk transfer supersedes; the diff updates a resync synthesizes are
// child spans (parent_id = the resync span's id). Per-hop durations feed the
// silkroad_update_propagation_ns{hop=...} histograms (the issue's
// update_propagation_seconds family, in this repo's integer-nanosecond
// histogram convention) through the existing metrics registry.
//
// The collector is deliberately not a ring: spans are evicted oldest-first
// past `capacity`, and audit_complete() can prove that every observed leg
// ran to a terminal state (finish / skip / abandon / subsumed-by-resync) —
// the chaos suite asserts that over every seed it runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"
#include "workload/update_gen.h"

namespace silkroad::obs {

/// switch_index value for events that happen at the controller, not on any
/// particular switch leg (intent minting, resync synthesis).
inline constexpr std::uint32_t kControllerLeg = ~std::uint32_t{0};

enum class SpanEventKind : std::uint8_t {
  kIntent,         ///< controller minted the update (root of the tree)
  kResyncBegin,    ///< retry exhaustion / restore escalated to a bulk resync
  kSubsume,        ///< resync span absorbed an in-flight update (arg0 = id)
  kChannelSend,    ///< sender queued the message on this switch's channel
  kChannelXmit,    ///< one transmission attempt left the sender (arg0 = retry#)
  kChannelDrop,    ///< a transmission was lost (arg1: 0=msg, 1=ack, 2=offline)
  kChannelRetry,   ///< ack timeout fired; retransmission follows (arg0 = retry#)
  kChannelDeliver, ///< receiver delivered the message in order
  kChannelDup,     ///< duplicate delivery suppressed (the ack was lost)
  kSkipped,        ///< receiver agent dropped it (arg1: 0=unprovisioned,
                   ///< 1=already applied — duplicate content after a resync)
  kQueueStage,     ///< switch queued the update behind the one in flight
  kStep1Open,      ///< t_req: TransitTable opened (arg0=old, arg1=new version)
  kFlip,           ///< t_exec: VIPTable flipped (arg0=old, arg1=new version)
  kCommit,         ///< version transition durable (arg0=old, arg1=new version)
  kFinish,         ///< TransitTable cleared; the 3-step window closed
  kAbandon,        ///< leg terminated without effect (arg1: 0=unknown VIP,
                   ///< 1=stage failure, 2=crash wipe, 3=channel window wipe)
  kResyncApply,    ///< a resync chunk (or, on the session span, the final
                   ///< chunk) landed and was applied at the switch agent
  kChunkBegin,     ///< controller packed one resync chunk (arg0 = chunk
                   ///< index, arg1 = journal entries carried)
};

const char* to_string(SpanEventKind kind) noexcept;

struct SpanEvent {
  sim::Time at = 0;
  SpanEventKind kind = SpanEventKind::kIntent;
  std::uint32_t switch_index = kControllerLeg;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// One update intent's (or resync escalation's) full causal record.
struct UpdateSpan {
  std::uint64_t id = 0;
  /// For resync-synthesized diff updates and chunk spans: the resync
  /// session span that caused them.
  std::uint64_t parent_id = 0;
  bool resync = false;  ///< true for resync-escalation (session) spans
  /// True for one chunk leg of a resync session (parent_id = the session);
  /// its channel leg must end in kResyncApply, abandonment, or subsumption.
  bool chunk = false;
  /// For resync/chunk spans: the switch whose channel escalated.
  std::uint32_t resync_switch = kControllerLeg;
  /// The intent as minted (resync spans leave this zeroed).
  workload::DipUpdate intent;
  sim::Time intent_at = 0;
  std::vector<SpanEvent> events;  ///< record order == causal order per leg
  /// Resync spans: ids of the updates the bulk transfer superseded.
  std::vector<std::uint64_t> subsumed;

  /// This span's events on one switch leg, in record order.
  std::vector<SpanEvent> leg(std::uint32_t switch_index) const;
  bool has(SpanEventKind kind, std::uint32_t switch_index) const;
  sim::Time first() const;
  sim::Time last() const;
};

class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 8192);

  /// Tracing master switch (bench/span_overhead.cc measures the delta).
  /// While disabled, begin_update() returns 0 (payloads stay untraced) and
  /// record() is a cheap early-out.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Mints a fleet-unique id, stamps it into `update`, and opens the span
  /// with a kIntent event. `parent_id` links resync-synthesized children.
  std::uint64_t begin_update(workload::DipUpdate& update, sim::Time now,
                             std::uint64_t parent_id = 0);

  /// Opens a resync span for `switch_index`, recording one kSubsume event
  /// per superseded update id.
  std::uint64_t begin_resync(std::uint32_t switch_index, sim::Time now,
                             const std::vector<std::uint64_t>& subsumed);

  /// Opens a chunk span: one channel leg of resync session `parent_id`
  /// toward `switch_index`, carrying `entries` journal records as chunk
  /// number `chunk_index`. The returned id rides inside the ResyncChunk
  /// payload so the channel records every transmission/drop/retry on it.
  std::uint64_t begin_chunk(std::uint32_t switch_index, sim::Time now,
                            std::uint64_t parent_id, std::uint64_t chunk_index,
                            std::uint64_t entries);

  /// Appends one event to span `id`; no-op when id is 0, tracing is
  /// disabled, or the span was evicted. kFinish feeds the per-hop histograms.
  void record(std::uint64_t id, SpanEventKind kind, std::uint32_t switch_index,
              sim::Time at, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// Registers silkroad_update_propagation_ns{hop=...} histograms plus the
  /// silkroad_spans_active gauge in `registry`.
  void bind_metrics(MetricsRegistry& registry);

  const UpdateSpan* find(std::uint64_t id) const;
  /// All retained spans, ascending id (== creation order).
  std::vector<const UpdateSpan*> all() const;
  /// Spans whose [first(), last()] interval intersects [lo, hi].
  std::vector<const UpdateSpan*> overlapping(sim::Time lo, sim::Time hi) const;

  std::size_t size() const noexcept { return spans_.size(); }
  std::uint64_t total_started() const noexcept { return next_id_ - 1; }
  std::uint64_t evicted() const noexcept { return evicted_; }
  std::uint64_t events_recorded() const noexcept { return events_recorded_; }

  /// Structural audit over every retained span: each observed channel leg
  /// must reach a terminal state (delivered→staged→finished, skipped,
  /// abandoned, or subsumed by a resync of the same switch), every finished
  /// leg must carry the full step1/flip/commit chain, and every resync chunk
  /// leg must end applied (kResyncApply), abandoned, or subsumed. Returns one
  /// human-readable problem per violation; empty == complete. Call only at
  /// quiesce (an in-flight update is legitimately incomplete).
  std::vector<std::string> audit_complete() const;

  /// {"spans": [...]} — every retained span with its event list.
  std::string to_json() const;
  /// One span as a JSON object, or "null" for an unknown id.
  std::string span_json(std::uint64_t id) const;
  /// Chrome trace-event JSON: one track per span, a duration event from
  /// intent to the last leg event, instants for every span event.
  std::string to_chrome_trace() const;

 private:
  void finish_histograms(const UpdateSpan& span, std::uint32_t switch_index,
                         sim::Time finish_at);

  bool enabled_ = true;
  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t evicted_ = 0;
  std::uint64_t events_recorded_ = 0;
  std::map<std::uint64_t, UpdateSpan> spans_;
  Histogram* h_channel_ = nullptr;
  Histogram* h_queue_ = nullptr;
  Histogram* h_execute_ = nullptr;
  Histogram* h_total_ = nullptr;
};

}  // namespace silkroad::obs
