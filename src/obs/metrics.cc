#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "check/sr_check.h"
#include "obs/sharded.h"

namespace silkroad::obs {

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    default: return "histogram";
  }
}

// ---------------------------------------------------------------------------
// HDR bucket geometry (shared by Histogram and ShardedHistogram)
// ---------------------------------------------------------------------------

std::size_t hdr_bucket_count(unsigned log2_sub) noexcept {
  // Values < 2^(log2_sub+1) get exact/linear buckets; each higher power-of-two
  // range [2^e, 2^(e+1)) contributes 2^log2_sub buckets, up to e = 63.
  const std::size_t sub = std::size_t{1} << log2_sub;
  return 2 * sub + (63 - (log2_sub + 1) + 1) * sub;
}

std::size_t hdr_bucket_index(std::uint64_t value, unsigned log2_sub) noexcept {
  const std::uint64_t sub = std::uint64_t{1} << log2_sub;
  if (value < 2 * sub) return static_cast<std::size_t>(value);
  const unsigned exponent = std::bit_width(value) - 1;  // >= log2_sub + 1
  const unsigned shift = exponent - log2_sub;
  const std::uint64_t mantissa = (value >> shift) & (sub - 1);
  return static_cast<std::size_t>((exponent - log2_sub + 1) * sub + mantissa);
}

std::uint64_t hdr_bucket_lower_bound(std::size_t index,
                                     unsigned log2_sub) noexcept {
  const std::uint64_t sub = std::uint64_t{1} << log2_sub;
  if (index < 2 * sub) return index;
  const std::uint64_t exponent = index / sub + log2_sub - 1;
  const std::uint64_t mantissa = index % sub;
  return (std::uint64_t{1} << exponent) +
         (mantissa << (exponent - log2_sub));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const Options& options)
    : log2_sub_(std::min(options.log2_subdivisions, 6u)),
      buckets_(hdr_bucket_count(log2_sub_)) {}

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  return hdr_bucket_index(value, log2_sub_);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) const noexcept {
  return hdr_bucket_lower_bound(index, log2_sub_);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

double histogram_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricKind::kHistogram || sample.count == 0 ||
      sample.buckets.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank =
      std::max(1.0, q * static_cast<double>(sample.count));
  std::uint64_t prev_cumulative = 0;
  std::uint64_t lower = 0;  // upper edge of the previous non-empty bucket
  for (const auto& bucket : sample.buckets) {
    if (static_cast<double>(bucket.cumulative_count) >= rank) {
      if (bucket.upper_bound == ~std::uint64_t{0}) {
        // Unbounded top bucket: no upper edge to interpolate toward.
        return static_cast<double>(lower);
      }
      const std::uint64_t in_bucket =
          bucket.cumulative_count - prev_cumulative;
      if (in_bucket == 0) return static_cast<double>(bucket.upper_bound);
      const double pos = (rank - static_cast<double>(prev_cumulative)) /
                         static_cast<double>(in_bucket);
      return static_cast<double>(lower) +
             (static_cast<double>(bucket.upper_bound) -
              static_cast<double>(lower)) *
                 pos;
    }
    prev_cumulative = bucket.cumulative_count;
    lower = bucket.upper_bound;
  }
  return static_cast<double>(lower);
}

const MetricSample* Snapshot::find(const std::string& name,
                                   const std::string& labels) const {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

double Snapshot::value_of(const std::string& name, const std::string& labels,
                          double fallback) const {
  const MetricSample* sample = find(name, labels);
  return sample == nullptr ? fallback : sample->value;
}

double Snapshot::quantile(const std::string& name, const std::string& labels,
                          double q) const {
  const MetricSample* sample = find(name, labels);
  if (sample == nullptr) return std::numeric_limits<double>::quiet_NaN();
  return histogram_quantile(*sample, q);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

// Out of line: Series holds unique_ptrs to the sharded types, which metrics.h
// only forward-declares (sharded.h includes metrics.h, not the reverse).
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series* MetricsRegistry::find_or_create(
    const std::string& name, const std::string& labels,
    const std::string& help, MetricKind kind) {
  for (auto& series : series_) {
    if (series.name == name && series.labels == labels) {
      SR_CHECKF(series.kind == kind,
                "metric %s{%s} re-registered as %s but exists as %s",
                name.c_str(), labels.c_str(), to_string(kind),
                to_string(series.kind));
      return &series;
    }
  }
  Series& series = series_.emplace_back();
  series.name = name;
  series.labels = labels;
  series.help = help;
  series.kind = kind;
  return &series;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  const sr::MutexLock lock(mu_);
  Series* series = find_or_create(name, labels, help, MetricKind::kCounter);
  SR_CHECKF(!series->sharded_counter,
            "metric %s{%s} exists as a sharded counter; use sharded_counter()",
            name.c_str(), labels.c_str());
  series->plain_counter = true;
  return &series->counter;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  const sr::MutexLock lock(mu_);
  return &find_or_create(name, labels, help, MetricKind::kGauge)->gauge;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      const Histogram::Options& options) {
  const sr::MutexLock lock(mu_);
  Series* series = find_or_create(name, labels, help, MetricKind::kHistogram);
  SR_CHECKF(
      !series->sharded_histogram,
      "metric %s{%s} exists as a sharded histogram; use sharded_histogram()",
      name.c_str(), labels.c_str());
  if (!series->histogram) {
    series->histogram = std::make_unique<Histogram>(options);
  }
  return series->histogram.get();
}

ShardedCounter* MetricsRegistry::sharded_counter(const std::string& name,
                                                 const std::string& help,
                                                 const std::string& labels) {
  const sr::MutexLock lock(mu_);
  Series* series = find_or_create(name, labels, help, MetricKind::kCounter);
  if (!series->sharded_counter) {
    SR_CHECKF(!series->plain_counter && !series->callback,
              "metric %s{%s} already registered as a plain counter",
              name.c_str(), labels.c_str());
    series->sharded_counter = std::make_unique<ShardedCounter>();
  }
  return series->sharded_counter.get();
}

ShardedHistogram* MetricsRegistry::sharded_histogram(
    const std::string& name, const std::string& help,
    const std::string& labels, const Histogram::Options& options) {
  const sr::MutexLock lock(mu_);
  Series* series = find_or_create(name, labels, help, MetricKind::kHistogram);
  if (!series->sharded_histogram) {
    SR_CHECKF(!series->histogram,
              "metric %s{%s} already registered as a plain histogram",
              name.c_str(), labels.c_str());
    series->sharded_histogram = std::make_unique<ShardedHistogram>(options);
  }
  return series->sharded_histogram.get();
}

void MetricsRegistry::register_callback(const std::string& name,
                                        MetricKind kind,
                                        std::function<double()> fn,
                                        const std::string& help,
                                        const std::string& labels) {
  SR_CHECK(kind != MetricKind::kHistogram);
  const sr::MutexLock lock(mu_);
  Series* series = find_or_create(name, labels, help, kind);
  series->callback = std::move(fn);
}

std::size_t MetricsRegistry::series_count() const {
  const sr::MutexLock lock(mu_);
  return series_.size();
}

namespace {

/// Renders a histogram (plain or sharded — identical aggregated API) into a
/// sample's cumulative bucket list.
template <typename H>
void render_histogram(const H& hist, MetricSample& sample) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    const std::uint64_t n = hist.bucket_value(i);
    if (n == 0) continue;
    // A zero-delta floor marker at the bucket's lower edge keeps
    // quantile interpolation inside the true bucket: without it a run
    // of empty buckets would stretch the interpolation span down to
    // the previous occupied bucket.
    const std::uint64_t lower = hist.bucket_lower_bound(i);
    if (lower > 0 && (sample.buckets.empty() ||
                      sample.buckets.back().upper_bound < lower - 1)) {
      sample.buckets.push_back({lower - 1, cumulative});
    }
    cumulative += n;
    const std::uint64_t upper = i + 1 < hist.bucket_count()
                                    ? hist.bucket_lower_bound(i + 1) - 1
                                    : ~std::uint64_t{0};
    sample.buckets.push_back({upper, cumulative});
  }
  sample.count = cumulative;
  sample.sum = static_cast<double>(hist.sum());
}

}  // namespace

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  {
    const sr::MutexLock lock(mu_);
    snap.samples.reserve(series_.size());
    for (const auto& series : series_) {
      MetricSample sample;
      sample.name = series.name;
      sample.labels = series.labels;
      sample.help = series.help;
      sample.kind = series.kind;
      if (series.callback) {
        sample.value = series.callback();
      } else if (series.sharded_counter) {
        sample.value = static_cast<double>(series.sharded_counter->value());
      } else if (series.kind == MetricKind::kCounter) {
        sample.value = static_cast<double>(series.counter.value());
      } else if (series.kind == MetricKind::kGauge) {
        sample.value = series.gauge.value();
      } else if (series.sharded_histogram) {
        render_histogram(*series.sharded_histogram, sample);
      } else if (series.histogram) {
        render_histogram(*series.histogram, sample);
      }
      snap.samples.push_back(std::move(sample));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

Snapshot MetricsRegistry::aggregate(const std::vector<Snapshot>& parts) {
  Snapshot merged;
  for (const auto& part : parts) {
    for (const auto& sample : part.samples) {
      MetricSample* existing = nullptr;
      for (auto& candidate : merged.samples) {
        if (candidate.name == sample.name &&
            candidate.labels == sample.labels &&
            candidate.kind == sample.kind) {
          existing = &candidate;
          break;
        }
      }
      if (existing == nullptr) {
        merged.samples.push_back(sample);
        continue;
      }
      existing->value += sample.value;
      existing->count += sample.count;
      existing->sum += sample.sum;
      if (!sample.buckets.empty()) {
        // Merge cumulative bucket lists: union of bounds, counts summed.
        // De-cumulate, add, re-cumulate over the merged bound set.
        std::vector<HistogramBucket> out;
        std::size_t i = 0, j = 0;
        std::uint64_t prev_a = 0, prev_b = 0, cumulative = 0;
        const auto& a = existing->buckets;
        const auto& b = sample.buckets;
        while (i < a.size() || j < b.size()) {
          std::uint64_t bound = 0;
          std::uint64_t delta = 0;
          const bool take_a =
              j >= b.size() ||
              (i < a.size() && a[i].upper_bound <= b[j].upper_bound);
          const bool take_b =
              i >= a.size() ||
              (j < b.size() && b[j].upper_bound <= a[i].upper_bound);
          if (take_a) {
            bound = a[i].upper_bound;
            delta += a[i].cumulative_count - prev_a;
            prev_a = a[i].cumulative_count;
            ++i;
          }
          if (take_b) {
            bound = b[j].upper_bound;
            delta += b[j].cumulative_count - prev_b;
            prev_b = b[j].cumulative_count;
            ++j;
          }
          cumulative += delta;
          out.push_back({bound, cumulative});
        }
        existing->buckets = std::move(out);
      }
    }
  }
  std::sort(merged.samples.begin(), merged.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return merged;
}

}  // namespace silkroad::obs
