#include "obs/journey.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

bool is_update_step(TraceEventKind kind) noexcept {
  return kind == TraceEventKind::kUpdateStep1Open ||
         kind == TraceEventKind::kUpdateFlip ||
         kind == TraceEventKind::kUpdateFinish;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string track_name(const TraceRing& ring, const FlowJourney& journey) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "flow 0x%016" PRIx64, journey.flow_id);
  std::string name = buf;
  if (journey.scope != kNoScope) {
    name += " vip=";
    name += ring.scope_name(journey.scope);
  }
  return name;
}

}  // namespace

std::uint64_t FlowJourneyTracer::flow_id_of(const TraceEvent& event) noexcept {
  switch (event.kind) {
    // Flow id rides in arg0 (arg1 free for kind-specific detail).
    case TraceEventKind::kLearn:
    case TraceEventKind::kTransitFalsePositive:
    case TraceEventKind::kSoftwareFallback:
    case TraceEventKind::kAgedOut:
      return event.arg0;
    // arg0 already carries moves/digest; flow id rides in arg1.
    case TraceEventKind::kCuckooInsert:
    case TraceEventKind::kCuckooEvict:
    case TraceEventKind::kCuckooInsertFail:
    case TraceEventKind::kDigestCollision:
      return event.arg1;
    default:
      return 0;
  }
}

std::vector<FlowJourney> FlowJourneyTracer::reconstruct(
    const TraceRing& ring, const JourneyOptions& options) {
  std::vector<FlowJourney> journeys;
  std::unordered_map<std::uint64_t, std::size_t> index;
  const std::vector<TraceEvent> events = ring.events();
  for (const TraceEvent& event : events) {
    const std::uint64_t fid = flow_id_of(event);
    if (fid == 0) continue;
    auto it = index.find(fid);
    if (it == index.end()) {
      if (journeys.size() >= options.max_flows) continue;
      it = index.emplace(fid, journeys.size()).first;
      FlowJourney& j = journeys.emplace_back();
      j.flow_id = fid;
      j.first = event.at;
    }
    FlowJourney& j = journeys[it->second];
    j.last = event.at;
    if (j.scope == kNoScope) j.scope = event.scope;
    if (j.version == kNoVersion) j.version = event.version;
    switch (event.kind) {
      case TraceEventKind::kCuckooInsert: j.installed = true; break;
      case TraceEventKind::kCuckooInsertFail: j.install_failed = true; break;
      case TraceEventKind::kSoftwareFallback: j.software_fallback = true; break;
      case TraceEventKind::kAgedOut: j.aged_out = true; break;
      default: break;
    }
    j.events.push_back(event);
  }
  // Second pass: attach each VIP's update-protocol steps to the journeys
  // they overlap (a flip inside [first, last] is exactly the window in which
  // the flow's version could have been pulled out from under it).
  for (const TraceEvent& event : events) {
    if (!is_update_step(event.kind)) continue;
    for (FlowJourney& j : journeys) {
      if (j.scope == event.scope && event.at >= j.first &&
          event.at <= j.last) {
        j.context.push_back(event);
      }
    }
  }
  return journeys;
}

std::optional<FlowJourney> FlowJourneyTracer::journey_of(
    const TraceRing& ring, std::uint64_t flow_id) {
  // No cap: scan everything so the requested flow cannot be crowded out.
  JourneyOptions options;
  options.max_flows = ~std::size_t{0};
  for (FlowJourney& j : reconstruct(ring, options)) {
    if (j.flow_id == flow_id) return std::move(j);
  }
  return std::nullopt;
}

std::string FlowJourneyTracer::to_chrome_trace(
    const TraceRing& ring, const std::vector<FlowJourney>& journeys) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const char* fmt, auto... args) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append(out, fmt, args...);
  };

  for (std::size_t i = 0; i < journeys.size(); ++i) {
    const FlowJourney& j = journeys[i];
    const unsigned tid = static_cast<unsigned>(i + 1);
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"%s\"}}",
         tid, json_escape(track_name(ring, j)).c_str());

    // The learn→install span: from the first learn to the first terminal
    // placement (ConnTable entry or software pin).
    const TraceEvent* learn = nullptr;
    const TraceEvent* placed = nullptr;
    for (const TraceEvent& event : j.events) {
      if (learn == nullptr && event.kind == TraceEventKind::kLearn) {
        learn = &event;
      }
      if (learn != nullptr && placed == nullptr &&
          (event.kind == TraceEventKind::kCuckooInsert ||
           event.kind == TraceEventKind::kSoftwareFallback)) {
        placed = &event;
      }
    }
    if (learn != nullptr && placed != nullptr) {
      emit("{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
           "\"name\":\"install\",\"args\":{\"outcome\":\"%s\"}}",
           tid, static_cast<double>(learn->at) / 1e3,
           static_cast<double>(placed->at - learn->at) / 1e3,
           to_string(placed->kind));
    }
    for (const TraceEvent& event : j.events) {
      emit("{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"name\":\"%s\","
           "\"s\":\"t\",\"args\":{\"version\":%s}}",
           tid, static_cast<double>(event.at) / 1e3, to_string(event.kind),
           event.version == kNoVersion
               ? "null"
               : std::to_string(event.version).c_str());
    }
    for (const TraceEvent& event : j.context) {
      emit("{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
           "\"name\":\"ctx:%s\",\"s\":\"t\",\"args\":{\"arg0\":%" PRIu64
           ",\"arg1\":%" PRIu64 "}}",
           tid, static_cast<double>(event.at) / 1e3, to_string(event.kind),
           event.arg0, event.arg1);
    }
  }
  append(out, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
              "{\"flows\":%zu,\"dropped\":%" PRIu64 "}}\n",
         journeys.size(), ring.dropped());
  return out;
}

std::string FlowJourneyTracer::format(const TraceRing& ring,
                                      const FlowJourney& journey) {
  std::string out;
  append(out, "flow 0x%016" PRIx64 " (%zu events", journey.flow_id,
         journey.events.size());
  if (journey.installed) out += ", installed";
  if (journey.install_failed) out += ", insert-fail";
  if (journey.software_fallback) out += ", software-fallback";
  if (journey.aged_out) out += ", aged-out";
  out += ")\n";
  for (const TraceEvent& event : journey.events) {
    out += "  ";
    out += format_event(ring, event);
    out += "\n";
  }
  for (const TraceEvent& event : journey.context) {
    out += "  ctx ";
    out += format_event(ring, event);
    out += "\n";
  }
  return out;
}

}  // namespace silkroad::obs
