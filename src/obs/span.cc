#include "obs/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "check/sr_check.h"
#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

const char* to_string(SpanEventKind kind) noexcept {
  switch (kind) {
    case SpanEventKind::kIntent: return "intent";
    case SpanEventKind::kResyncBegin: return "resync-begin";
    case SpanEventKind::kSubsume: return "subsume";
    case SpanEventKind::kChannelSend: return "channel-send";
    case SpanEventKind::kChannelXmit: return "channel-xmit";
    case SpanEventKind::kChannelDrop: return "channel-drop";
    case SpanEventKind::kChannelRetry: return "channel-retry";
    case SpanEventKind::kChannelDeliver: return "channel-deliver";
    case SpanEventKind::kChannelDup: return "channel-duplicate";
    case SpanEventKind::kSkipped: return "skipped";
    case SpanEventKind::kQueueStage: return "queue-stage";
    case SpanEventKind::kStep1Open: return "step1-open";
    case SpanEventKind::kFlip: return "flip";
    case SpanEventKind::kCommit: return "commit";
    case SpanEventKind::kFinish: return "finish";
    case SpanEventKind::kAbandon: return "abandon";
    case SpanEventKind::kResyncApply: return "resync-apply";
    case SpanEventKind::kChunkBegin: return "chunk-begin";
  }
  return "?";
}

std::vector<SpanEvent> UpdateSpan::leg(std::uint32_t switch_index) const {
  std::vector<SpanEvent> out;
  for (const auto& event : events) {
    if (event.switch_index == switch_index) out.push_back(event);
  }
  return out;
}

bool UpdateSpan::has(SpanEventKind kind, std::uint32_t switch_index) const {
  for (const auto& event : events) {
    if (event.kind == kind && event.switch_index == switch_index) return true;
  }
  return false;
}

sim::Time UpdateSpan::first() const {
  sim::Time t = intent_at;
  for (const auto& event : events) t = std::min(t, event.at);
  return t;
}

sim::Time UpdateSpan::last() const {
  sim::Time t = intent_at;
  for (const auto& event : events) t = std::max(t, event.at);
  return t;
}

SpanCollector::SpanCollector(std::size_t capacity) : capacity_(capacity) {
  SR_CHECK(capacity_ > 0);
}

std::uint64_t SpanCollector::begin_update(workload::DipUpdate& update,
                                          sim::Time now,
                                          std::uint64_t parent_id) {
  if (!enabled_) {
    update.update_id = 0;
    return 0;
  }
  const std::uint64_t id = next_id_++;
  update.update_id = id;
  UpdateSpan& span = spans_[id];
  span.id = id;
  span.parent_id = parent_id;
  span.intent = update;
  span.intent_at = now;
  span.events.push_back({now, SpanEventKind::kIntent, kControllerLeg,
                         parent_id, 0});
  ++events_recorded_;
  while (spans_.size() > capacity_) {
    spans_.erase(spans_.begin());
    ++evicted_;
  }
  return id;
}

std::uint64_t SpanCollector::begin_resync(
    std::uint32_t switch_index, sim::Time now,
    const std::vector<std::uint64_t>& subsumed) {
  if (!enabled_) return 0;
  const std::uint64_t id = next_id_++;
  UpdateSpan& span = spans_[id];
  span.id = id;
  span.resync = true;
  span.resync_switch = switch_index;
  span.intent_at = now;
  span.events.push_back(
      {now, SpanEventKind::kResyncBegin, switch_index, 0, 0});
  for (const std::uint64_t sub : subsumed) {
    span.subsumed.push_back(sub);
    span.events.push_back({now, SpanEventKind::kSubsume, switch_index, sub, 0});
  }
  events_recorded_ += 1 + subsumed.size();
  while (spans_.size() > capacity_) {
    spans_.erase(spans_.begin());
    ++evicted_;
  }
  return id;
}

std::uint64_t SpanCollector::begin_chunk(std::uint32_t switch_index,
                                         sim::Time now,
                                         std::uint64_t parent_id,
                                         std::uint64_t chunk_index,
                                         std::uint64_t entries) {
  if (!enabled_) return 0;
  const std::uint64_t id = next_id_++;
  UpdateSpan& span = spans_[id];
  span.id = id;
  span.parent_id = parent_id;
  span.chunk = true;
  span.resync_switch = switch_index;
  span.intent_at = now;
  span.events.push_back(
      {now, SpanEventKind::kChunkBegin, switch_index, chunk_index, entries});
  ++events_recorded_;
  while (spans_.size() > capacity_) {
    spans_.erase(spans_.begin());
    ++evicted_;
  }
  return id;
}

void SpanCollector::record(std::uint64_t id, SpanEventKind kind,
                           std::uint32_t switch_index, sim::Time at,
                           std::uint64_t arg0, std::uint64_t arg1) {
  if (id == 0 || !enabled_) return;
  const auto it = spans_.find(id);
  if (it == spans_.end()) return;  // evicted — the tail of a long run
  it->second.events.push_back({at, kind, switch_index, arg0, arg1});
  ++events_recorded_;
  if (kind == SpanEventKind::kFinish) {
    finish_histograms(it->second, switch_index, at);
  }
}

void SpanCollector::finish_histograms(const UpdateSpan& span,
                                      std::uint32_t switch_index,
                                      sim::Time finish_at) {
  if (h_total_ == nullptr) return;
  // Earliest occurrence of each hop boundary on this leg; a resync-child
  // span has no channel leg, so those hops are simply not recorded for it.
  constexpr sim::Time kUnset = sim::kTimeInfinity;
  sim::Time send = kUnset;
  sim::Time deliver = kUnset;
  sim::Time stage = kUnset;
  sim::Time step1 = kUnset;
  for (const auto& event : span.events) {
    if (event.switch_index != switch_index) continue;
    switch (event.kind) {
      case SpanEventKind::kChannelSend:
        if (send == kUnset) send = event.at;
        break;
      case SpanEventKind::kChannelDeliver:
        if (deliver == kUnset) deliver = event.at;
        break;
      case SpanEventKind::kQueueStage:
        if (stage == kUnset) stage = event.at;
        break;
      case SpanEventKind::kStep1Open:
        if (step1 == kUnset) step1 = event.at;
        break;
      default:
        break;
    }
  }
  if (send != kUnset && deliver != kUnset && deliver >= send) {
    h_channel_->record(deliver - send);
  }
  if (stage != kUnset && step1 != kUnset && step1 >= stage) {
    h_queue_->record(step1 - stage);
  }
  if (step1 != kUnset && finish_at >= step1) {
    h_execute_->record(finish_at - step1);
  }
  if (finish_at >= span.intent_at) {
    h_total_->record(finish_at - span.intent_at);
  }
}

void SpanCollector::bind_metrics(MetricsRegistry& registry) {
  const char* help =
      "Per-(update, switch) propagation latency by hop; total = controller "
      "intent to 3-step finish";
  h_channel_ = registry.histogram("silkroad_update_propagation_ns", help,
                                  "hop=\"channel\"");
  h_queue_ = registry.histogram("silkroad_update_propagation_ns", help,
                                "hop=\"queue\"");
  h_execute_ = registry.histogram("silkroad_update_propagation_ns", help,
                                  "hop=\"execute\"");
  h_total_ = registry.histogram("silkroad_update_propagation_ns", help,
                                "hop=\"total\"");
  registry.register_callback(
      "silkroad_spans_retained", MetricKind::kGauge,
      [this] { return static_cast<double>(spans_.size()); },
      "update/resync spans currently retained by the collector");
  registry.register_callback(
      "silkroad_spans_started_total", MetricKind::kCounter,
      [this] { return static_cast<double>(total_started()); },
      "update/resync spans opened since construction");
}

const UpdateSpan* SpanCollector::find(std::uint64_t id) const {
  const auto it = spans_.find(id);
  return it == spans_.end() ? nullptr : &it->second;
}

std::vector<const UpdateSpan*> SpanCollector::all() const {
  std::vector<const UpdateSpan*> out;
  out.reserve(spans_.size());
  for (const auto& [id, span] : spans_) out.push_back(&span);
  return out;
}

std::vector<const UpdateSpan*> SpanCollector::overlapping(sim::Time lo,
                                                          sim::Time hi) const {
  std::vector<const UpdateSpan*> out;
  for (const auto& [id, span] : spans_) {
    if (span.first() <= hi && span.last() >= lo) out.push_back(&span);
  }
  return out;
}

std::vector<std::string> SpanCollector::audit_complete() const {
  std::vector<std::string> problems;
  // (switch, update id) pairs some resync span of that switch subsumed.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>>
      subsumed_by;
  for (const auto& [id, span] : spans_) {
    if (!span.resync) continue;
    auto& set = subsumed_by[span.resync_switch];
    set.insert(span.subsumed.begin(), span.subsumed.end());
  }
  const auto complain = [&problems](const UpdateSpan& span,
                                    std::uint32_t leg_index,
                                    const char* what) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "span %" PRIu64 " switch %u: %s", span.id,
                  leg_index, what);
    problems.emplace_back(buf);
  };
  for (const auto& [id, span] : spans_) {
    if (span.resync) continue;
    std::unordered_set<std::uint32_t> legs;
    for (const auto& event : span.events) {
      if (event.switch_index != kControllerLeg) legs.insert(event.switch_index);
    }
    if (span.chunk) {
      // A chunk leg has no 3-step protocol of its own: its terminal states
      // are applied at the receiver (kResyncApply), abandoned by a window
      // wipe, or subsumed by the switch's next resync session.
      for (const std::uint32_t leg : legs) {
        const bool delivered = span.has(SpanEventKind::kChannelDeliver, leg);
        const bool applied = span.has(SpanEventKind::kResyncApply, leg);
        const bool abandoned = span.has(SpanEventKind::kAbandon, leg);
        const bool sent = span.has(SpanEventKind::kChannelSend, leg);
        if (delivered && !applied) {
          complain(span, leg, "chunk delivered but never applied");
        }
        if (sent && !delivered && !abandoned) {
          const auto it = subsumed_by.find(leg);
          if (it == subsumed_by.end() || !it->second.contains(span.id)) {
            complain(span, leg,
                     "chunk sent but never delivered, abandoned, or "
                     "resync-subsumed");
          }
        }
      }
      continue;
    }
    for (const std::uint32_t leg : legs) {
      const bool finished = span.has(SpanEventKind::kFinish, leg);
      const bool staged = span.has(SpanEventKind::kQueueStage, leg);
      const bool abandoned = span.has(SpanEventKind::kAbandon, leg);
      const bool delivered = span.has(SpanEventKind::kChannelDeliver, leg);
      const bool skipped = span.has(SpanEventKind::kSkipped, leg);
      const bool sent = span.has(SpanEventKind::kChannelSend, leg);
      if (finished) {
        if (!staged) complain(span, leg, "finished without queue-stage");
        if (!span.has(SpanEventKind::kStep1Open, leg)) {
          complain(span, leg, "finished without step1-open");
        }
        if (!span.has(SpanEventKind::kFlip, leg)) {
          complain(span, leg, "finished without flip");
        }
        if (!span.has(SpanEventKind::kCommit, leg)) {
          complain(span, leg, "finished without commit");
        }
      } else if (staged && !abandoned) {
        complain(span, leg, "staged but neither finished nor abandoned");
      }
      if (delivered && !staged && !skipped) {
        complain(span, leg, "delivered but neither staged nor skipped");
      }
      if (sent && !delivered && !abandoned) {
        const auto it = subsumed_by.find(leg);
        if (it == subsumed_by.end() || !it->second.contains(span.id)) {
          complain(span, leg,
                   "sent but never delivered, abandoned, or resync-subsumed");
        }
      }
    }
  }
  return problems;
}

namespace {

void append_span_json(std::string& out, const UpdateSpan& span) {
  append(out, "{\"id\":%" PRIu64 ",\"parent_id\":%" PRIu64
              ",\"resync\":%s,\"chunk\":%s,\"intent_at_ns\":%" PRId64,
         span.id, span.parent_id, span.resync ? "true" : "false",
         span.chunk ? "true" : "false",
         static_cast<std::int64_t>(span.intent_at));
  if (span.chunk) {
    append(out, ",\"resync_switch\":%u", span.resync_switch);
  } else if (span.resync) {
    append(out, ",\"resync_switch\":%u,\"subsumed\":[", span.resync_switch);
    bool first = true;
    for (const std::uint64_t sub : span.subsumed) {
      if (!first) out += ",";
      first = false;
      append(out, "%" PRIu64, sub);
    }
    out += "]";
  } else {
    append(out, ",\"vip\":\"%s\",\"dip\":\"%s\",\"action\":\"%s\","
                "\"cause\":\"%s\"",
           json_escape(span.intent.vip.to_string()).c_str(),
           json_escape(span.intent.dip.to_string()).c_str(),
           span.intent.action == workload::UpdateAction::kAddDip ? "add-dip"
                                                                 : "remove-dip",
           workload::to_string(span.intent.cause));
  }
  out += ",\"events\":[";
  bool first = true;
  for (const auto& event : span.events) {
    if (!first) out += ",";
    first = false;
    append(out, "{\"at_ns\":%" PRId64 ",\"kind\":\"%s\",",
           static_cast<std::int64_t>(event.at), to_string(event.kind));
    if (event.switch_index == kControllerLeg) {
      out += "\"switch\":null";
    } else {
      append(out, "\"switch\":%u", event.switch_index);
    }
    append(out, ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}", event.arg0,
           event.arg1);
  }
  out += "]}";
}

}  // namespace

std::string SpanCollector::to_json() const {
  std::string out;
  append(out, "{\"spans_started\":%" PRIu64 ",\"spans_evicted\":%" PRIu64
              ",\"spans\":[",
         total_started(), evicted_);
  bool first = true;
  for (const auto& [id, span] : spans_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_span_json(out, span);
  }
  out += "\n]}\n";
  return out;
}

std::string SpanCollector::span_json(std::uint64_t id) const {
  const UpdateSpan* span = find(id);
  if (span == nullptr) return "null\n";
  std::string out;
  append_span_json(out, *span);
  out += "\n";
  return out;
}

std::string SpanCollector::to_chrome_trace() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const char* fmt, auto... args) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append(out, fmt, args...);
  };
  for (const auto& [id, span] : spans_) {
    std::string name;
    if (span.chunk) {
      append(name, "chunk#%" PRIu64 " switch=%u", span.id, span.resync_switch);
    } else if (span.resync) {
      append(name, "resync#%" PRIu64 " switch=%u", span.id, span.resync_switch);
    } else {
      append(name, "update#%" PRIu64 " %s %s", span.id,
             span.intent.action == workload::UpdateAction::kAddDip
                 ? "add"
                 : "remove",
             span.intent.dip.to_string().c_str());
    }
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":%" PRIu64
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
         span.id, json_escape(name).c_str());
    const double begin_us = static_cast<double>(span.first()) / 1e3;
    const double dur_us =
        static_cast<double>(span.last() - span.first()) / 1e3;
    emit("{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64 ",\"ts\":%.3f,"
         "\"dur\":%.3f,\"name\":\"%s\"}",
         span.id, begin_us, dur_us,
         span.chunk ? "chunk" : (span.resync ? "resync" : "update"));
    for (const auto& event : span.events) {
      const double us = static_cast<double>(event.at) / 1e3;
      std::string args;
      if (event.switch_index == kControllerLeg) {
        args = "{\"switch\":null";
      } else {
        append(args, "{\"switch\":%u", event.switch_index);
      }
      append(args, ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}", event.arg0,
             event.arg1);
      emit("{\"ph\":\"i\",\"pid\":1,\"tid\":%" PRIu64 ",\"ts\":%.3f,"
           "\"name\":\"%s\",\"s\":\"t\",\"args\":%s}",
           span.id, us, to_string(event.kind), args.c_str());
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace silkroad::obs
