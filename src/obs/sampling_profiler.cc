#include "obs/sampling_profiler.h"

#include <utility>

namespace silkroad::obs {

SamplingProfiler::SamplingProfiler(MetricsRegistry& registry,
                                   std::string prefix,
                                   std::vector<std::string> stage_names,
                                   const Options& options)
    : registry_(registry),
      prefix_(std::move(prefix)),
      period_(options.period),
      histogram_options_(options.histogram),
      rng_(options.seed) {
  stages_.reserve(stage_names.size());
  for (const std::string& name : stage_names) {
    const std::string label = "stage=\"" + name + "\"";
    Stage stage;
    stage.latency = registry_.sharded_histogram(
        prefix_ + "_stage_latency_ns",
        "sampled per-packet latency at the stage, ns", label,
        histogram_options_);
    stage.reentries = registry_.sharded_counter(
        prefix_ + "_profiler_reentry_total",
        "nested enter() on an already-open stage scope (double-accounting "
        "avoided and counted here)",
        label);
    stages_.push_back(stage);
  }
  sampled_packets_ = registry_.sharded_counter(
      prefix_ + "_sampled_packets_total",
      "packets selected by the deterministic 1-in-N sampler");
  countdown_ = next_gap();
}

SamplingProfiler::SamplingProfiler(MetricsRegistry& registry,
                                   std::string prefix,
                                   std::vector<std::string> stage_names)
    : SamplingProfiler(registry, std::move(prefix), std::move(stage_names),
                       Options{}) {}

Histogram* SamplingProfiler::vip_series(const std::string& vip) {
  return registry_.histogram(prefix_ + "_vip_latency_ns",
                             "sampled per-packet latency for the VIP, ns",
                             "vip=\"" + vip + "\"", histogram_options_);
}

}  // namespace silkroad::obs
