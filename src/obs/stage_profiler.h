// Per-pipeline-stage profiling hooks (DESIGN.md §9).
//
// A PISA pipeline's cost structure is per-stage: each stage sees every
// packet, matches or misses its tables, and contributes a fixed slice of the
// pipeline latency. The profiler materializes that as labeled registry
// series — `<prefix>_stage_packets_total{stage="2"}` etc. — so a snapshot
// answers "which stage is the bottleneck" directly. Handles are resolved
// once at construction; the per-event cost is one counter increment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace silkroad::obs {

class StageProfiler {
 public:
  /// Registers packets/hits/misses/latency series for `stages` stages under
  /// `prefix` (e.g. "silkroad_conn_table") in `registry`.
  StageProfiler(MetricsRegistry& registry, const std::string& prefix,
                std::size_t stages);

  std::size_t stages() const noexcept { return stages_.size(); }

  /// One lookup probe at `stage`: the stage examined the packet and hit or
  /// missed its table.
  void record_lookup(std::size_t stage, bool hit) noexcept {
    if (stage >= stages_.size()) return;
    stages_[stage].packets->inc();
    (hit ? stages_[stage].hits : stages_[stage].misses)->inc();
  }

  /// Modeled processing latency charged to `stage`, in nanoseconds.
  void add_latency(std::size_t stage, std::uint64_t ns) noexcept {
    if (stage >= stages_.size()) return;
    stages_[stage].latency_ns->inc(ns);
  }

 private:
  struct Stage {
    Counter* packets = nullptr;
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* latency_ns = nullptr;
  };
  std::vector<Stage> stages_;
};

}  // namespace silkroad::obs
