// Per-pipeline-stage profiling hooks (DESIGN.md §9).
//
// A PISA pipeline's cost structure is per-stage: each stage sees every
// packet, matches or misses its tables, and contributes a fixed slice of the
// pipeline latency. The profiler materializes that as labeled registry
// series — `<prefix>_stage_packets_total{stage="2"}` etc. — so a snapshot
// answers "which stage is the bottleneck" directly. Handles are resolved
// once at construction; the per-event cost is one sharded counter increment
// (these series sit on the per-lookup data path, so they use ShardedCounter —
// DESIGN.md §14).
//
// Timing scopes: enter()/exit() bracket a stage's latency charge. A nested
// enter() on an already-open stage would double-charge the stage sum, so it
// is counted in `<prefix>_profiler_reentry_total{stage="i"}` and ignored —
// the open scope keeps its single charge. The open flags are plain bools:
// a StageProfiler instance's scopes belong to one data-plane thread at a
// time (the counters underneath remain thread-safe).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sharded.h"

namespace silkroad::obs {

class StageProfiler {
 public:
  /// Registers packets/hits/misses/latency series for `stages` stages under
  /// `prefix` (e.g. "silkroad_conn_table") in `registry`.
  StageProfiler(MetricsRegistry& registry, const std::string& prefix,
                std::size_t stages);

  std::size_t stages() const noexcept { return stages_.size(); }

  /// One lookup probe at `stage`: the stage examined the packet and hit or
  /// missed its table.
  void record_lookup(std::size_t stage, bool hit) noexcept {
    if (stage >= stages_.size()) return;
    stages_[stage].packets->inc();
    (hit ? stages_[stage].hits : stages_[stage].misses)->inc();
  }

  /// Modeled processing latency charged to `stage`, in nanoseconds.
  void add_latency(std::size_t stage, std::uint64_t ns) noexcept {
    if (stage >= stages_.size()) return;
    stages_[stage].latency_ns->inc(ns);
  }

  /// Opens a timing scope on `stage`. Returns false — and bumps the
  /// re-entry counter — when the stage is already open (nested enter without
  /// exit), so a buggy caller skews a diagnostic counter instead of the
  /// stage sums.
  bool enter(std::size_t stage) noexcept {
    if (stage >= stages_.size()) return false;
    Stage& s = stages_[stage];
    if (s.open) {
      s.reentries->inc();
      return false;
    }
    s.open = true;
    return true;
  }

  /// Closes the scope opened by enter() and charges `ns` to the stage.
  /// An exit without a matching open scope is ignored.
  void exit(std::size_t stage, std::uint64_t ns) noexcept {
    if (stage >= stages_.size()) return;
    Stage& s = stages_[stage];
    if (!s.open) return;
    s.open = false;
    s.latency_ns->inc(ns);
  }

 private:
  struct Stage {
    ShardedCounter* packets = nullptr;
    ShardedCounter* hits = nullptr;
    ShardedCounter* misses = nullptr;
    ShardedCounter* latency_ns = nullptr;
    ShardedCounter* reentries = nullptr;
    bool open = false;
  };
  std::vector<Stage> stages_;
};

}  // namespace silkroad::obs
