// Fleet convergence observatory (DESIGN.md §17): watermark-lag SLOs and
// state-digest divergence detection over the incremental sync layer (§16).
//
// The fleet feeds a FleetObserver on every journal append, every in-order
// delivery, and every resync-session transition. From that stream the
// observer derives two fleet-level answers the per-switch InvariantAuditor
// structurally cannot give:
//
//   1. "How far behind is each replica?" — per-switch watermark lag in
//      journal positions and in sim-time age, folded into a fleet lag
//      histogram and a hysteretic convergence SLO ("at least `slo_target`
//      of the live switches within `lag_enter` positions of the journal
//      head"). SLO burn is exported as a counter so the existing
//      TimeSeriesRecorder derives burn rate for free.
//
//   2. "Do two switches silently disagree?" — an order-independent 64-bit
//      digest of each switch's applied VIP→DIP mirror, maintained
//      incrementally (XOR-fold of per-VIP digests, O(changed VIPs) per
//      mutation, with a periodic full-recompute self-check), compared
//      against the controller's desired-state digest *at the switch's
//      effective watermark*. A digest mismatch at an equal position is
//      silent divergence: the replica confirmed the same history the
//      controller journaled yet holds different state. Each detection
//      produces a DivergenceFinding with per-VIP attribution of the
//      differing memberships, ready to be embedded in a ForensicsReport.
//
// Digest scheme (the only sanctioned membership-digest implementation —
// srlint R14 bans ad-hoc hashing of membership vectors elsewhere in
// src/deploy and src/obs): each provisioned VIP contributes a presence
// token XOR the fold of its member tokens, so an empty-but-provisioned
// pool is distinguishable from an absent VIP, and member tokens are salted
// with the VIP's own key so identical DIP sets under different VIPs cannot
// cancel. All tokens come from net::mix64 over net::EndpointHash values;
// XOR-folding makes every digest order-independent and every mutation an
// O(1) toggle.
//
// Checkability model: in-order delivery advances a switch's contiguous
// watermark W, while synchronous provisioning (add_vip on a live switch)
// applies journal positions out of band without advancing W. The observer
// tracks those out-of-band positions and extends W through any contiguous
// run W+1, W+2, … to the *effective* watermark E. The digest comparison is
// performed only when the out-of-band set has no member beyond E (the
// switch's state then equals the desired state at exactly position E) and
// the switch is live and not mid-resync. Everything else — down, restoring,
// resyncing, or gapped — is reported as unverifiable-at-the-moment rather
// than checked against the wrong reference.
//
// Hot-path cost model (the <5% bench budget): the four update-heavy feeds
// — journal append, in-order delivery, mirror toggle, watermark advance —
// do not fold state synchronously. Each appends one compact FeedEvent to a
// feed journal and returns; the journal is simulation-thread-only, so the
// buffered fast path is a plain sequential store and a threshold test —
// no lock, no hashing, no fold. Once the buffer reaches `drain_every`
// events the fold replays it in one batched drain under the mutex, which
// keeps the observer's working set cache-resident instead of re-faulting
// it on every feed between the fleet's own work. Replay applies events in
// feed order with their recorded timestamps, so the result is
// bit-identical to the synchronous fold; the only observable difference is
// detection latency, bounded by `drain_every` feed events. Configuration,
// lifecycle, and resync-session feeds drain first and then apply
// synchronously (they are rare and order-sensitive); every
// simulation-thread query — evaluate(), verify_digests(), the getters —
// also drains first, so nothing read on the feeding thread is ever stale.
//
// Concurrency (DESIGN.md §13): the observer is fed and queried from the
// simulation thread; the scrape thread pulls the bound metric callbacks
// and renders to_text()/to_json(). The folded state lives behind the
// observer's sr::Mutex; the feed journal does not — it belongs to the
// simulation thread alone, which is what makes the buffered feed lock-free.
// The scrape surface therefore renders the last drained fold rather than
// draining itself: its staleness is bounded by `drain_every` feed events,
// the same bound the detection latency already carries. The divergence
// callback is invoked after the mutex is released, and only from
// simulation-thread entry points (feeds, evaluate(), verify_digests(),
// getters) — findings detected during a drain triggered elsewhere are
// queued and delivered at the next such entry. The observer never calls
// back into the fleet while holding mu_.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/thread_annotations.h"
#include "net/endpoint.h"
#include "net/hash.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace silkroad::obs {

/// The sanctioned per-VIP membership digest (srlint R14). Stateless token
/// algebra; FleetObserver composes these into switch- and fleet-level
/// digests by XOR-fold.
struct VipDigest {
  /// Salted key for the VIP itself; feeds both tokens below.
  static std::uint64_t vip_key(const net::Endpoint& vip);
  /// Token contributed by the VIP existing at all (empty pool ≠ absent VIP).
  static std::uint64_t presence_token(const net::Endpoint& vip);
  /// Token contributed by `dip` being a member of `vip`'s pool. Salted with
  /// the VIP key so equal DIP sets under different VIPs cannot cancel.
  static std::uint64_t member_token(const net::Endpoint& vip,
                                    const net::Endpoint& dip);
  /// From-scratch digest of one VIP's pool: presence XOR member fold.
  template <typename Container>
  static std::uint64_t of(const net::Endpoint& vip, const Container& dips) {
    std::uint64_t digest = presence_token(vip);
    for (const auto& dip : dips) digest ^= member_token(vip, dip);
    return digest;
  }
};

/// One detected silent divergence: switch `switch_index`'s applied mirror
/// digest disagreed with the controller's desired-state digest at the same
/// effective journal position.
struct DivergenceFinding {
  struct VipDelta {
    net::Endpoint vip;
    /// In desired-now but not in the switch mirror (sorted by to_string).
    std::vector<net::Endpoint> missing;
    /// In the switch mirror but not in desired-now (sorted by to_string).
    std::vector<net::Endpoint> extra;
    /// True when only this VIP's provisioning differs (present on exactly
    /// one side with equal member sets).
    bool presence_only = false;
  };
  struct SessionRecord {
    std::uint64_t session_id = 0;  ///< Resync span id (0 = none yet minted).
    int kind = 0;                  ///< FleetObserver::ResyncKind value.
    sim::Time began = 0;
    sim::Time ended = 0;  ///< 0 while still open.
  };

  std::size_t switch_index = 0;
  /// Effective watermark the mismatch was observed at.
  std::uint64_t position = 0;
  std::uint64_t expected_digest = 0;  ///< Desired-state digest at `position`.
  std::uint64_t actual_digest = 0;    ///< The switch mirror's digest.
  sim::Time at = 0;
  /// Attribution against the *current* desired state: exact at quiescence,
  /// approximate while updates past `position` are still in flight (§17).
  std::vector<VipDelta> deltas;
  /// Recent resync sessions on this switch (newest last) — the usual
  /// suspects when an apply path corrupted the mirror.
  std::vector<SessionRecord> sessions;

  std::string to_text() const;
  std::string to_json() const;
};

class FleetObserver {
 public:
  struct Options {
    /// Hysteresis: a switch becomes "lagging" above `lag_enter` positions
    /// and stops lagging at or below `lag_exit`.
    std::uint64_t lag_enter = 64;
    std::uint64_t lag_exit = 16;
    /// SLO: fraction of live switches that must not be lagging.
    double slo_target = 0.99;
    /// Desired-digest history retained, in journal positions; a switch
    /// whose effective watermark fell off the ring is unverifiable until
    /// it catches up.
    std::size_t digest_history = 4096;
    /// Full-recompute digest self-check cadence, in feed events (0 = off).
    std::size_t selfcheck_every = 1024;
    /// Lag/SLO re-evaluation cadence, in feed events. Divergence checks run
    /// alongside every evaluation; explicit evaluate() and switch-lifecycle
    /// edges always re-evaluate.
    std::size_t eval_every = 64;
    /// Feed-journal drain threshold, in buffered hot-path feed events (see
    /// the cost model above; 1 = fold synchronously). Detection latency for
    /// a delivery-path divergence is bounded by this many feed events;
    /// simulation-thread queries always drain first, while the scrape
    /// surface renders the last drained fold (staleness bounded by the same
    /// threshold).
    std::size_t drain_every = 256;
    /// Resync-session records retained per switch for forensics.
    std::size_t session_history = 16;
  };

  enum class ResyncKind { kEmpty = 0, kDelta = 1, kFull = 2 };
  enum class SwitchState { kLive = 0, kDown = 1, kRestoring = 2,
                           kResyncing = 3 };

  using DivergenceCallback = std::function<void(const DivergenceFinding&)>;

  explicit FleetObserver(std::size_t switches);
  FleetObserver(std::size_t switches, const Options& options);

  // --- Feed: controller journal appends --------------------------------------

  /// A VipConfig was journaled at `pos` (desired state now provisions `vip`
  /// with exactly `dips`).
  void on_append_config(std::uint64_t pos, sim::Time now,
                        const net::Endpoint& vip,
                        const std::vector<net::Endpoint>& dips);
  /// A DipUpdate was journaled at `pos`. Hot path: deferred via the feed
  /// journal.
  void on_append_update(std::uint64_t pos, sim::Time now,
                        const net::Endpoint& vip, const net::Endpoint& dip,
                        bool add) {
    enqueue({FeedEvent::Kind::kAppendUpdate, add, 0, pos, now, vip, dip});
  }

  // --- Feed: per-switch mirror mutations --------------------------------------

  /// Switch `sw`'s applied mirror now holds exactly `dips` for `vip`.
  /// `pos` != 0 marks a synchronous out-of-band provisioning at that journal
  /// position (does not advance the contiguous watermark); 0 means a resync
  /// replay or restore preload whose position lands via on_watermark.
  void on_mirror_config(std::size_t sw, const net::Endpoint& vip,
                        const std::vector<net::Endpoint>& dips,
                        std::uint64_t pos, sim::Time now);
  /// One member toggled in switch `sw`'s mirror. `pos` != 0 for in-order
  /// journaled deliveries; 0 for resync replays and fault injection. Hot
  /// path: deferred via the feed journal.
  void on_mirror_update(std::size_t sw, const net::Endpoint& vip,
                        const net::Endpoint& dip, bool add, std::uint64_t pos,
                        sim::Time now) {
    enqueue({FeedEvent::Kind::kMirrorUpdate, add,
             static_cast<std::uint32_t>(sw), pos, now, vip, dip});
  }
  /// Fusion of on_mirror_update(pos) + on_watermark(pos): one journaled
  /// in-order delivery, applied and confirmed, as a single feed event.
  void on_delivery(std::size_t sw, const net::Endpoint& vip,
                   const net::Endpoint& dip, bool add, std::uint64_t pos,
                   sim::Time now) {
    enqueue({FeedEvent::Kind::kDelivery, add, static_cast<std::uint32_t>(sw),
             pos, now, vip, dip});
  }
  /// Switch `sw` confirmed the in-order stream (or a chunk boundary)
  /// through `watermark`. Hot path: deferred via the feed journal.
  void on_watermark(std::size_t sw, std::uint64_t watermark, sim::Time now) {
    enqueue({FeedEvent::Kind::kWatermark, false,
             static_cast<std::uint32_t>(sw), watermark, now, net::Endpoint{},
             net::Endpoint{}});
  }

  // --- Feed: switch / resync-session lifecycle --------------------------------

  void on_switch_down(std::size_t sw, sim::Time now);
  /// Restore began: mirror reset to the snapshot, contiguous watermark
  /// rewound to the snapshot's. The preloaded VIPs arrive as
  /// on_mirror_config(pos=0) calls after this.
  void on_restore_begin(std::size_t sw, std::uint64_t snapshot_watermark,
                        sim::Time now);
  /// A resync session opened on `sw`'s channel (the window-wipe edge, fed
  /// from fault::ControlChannel's session hook). Suspends divergence checks.
  void on_session_open(std::size_t sw, std::uint64_t session_id,
                       sim::Time now);
  /// The controller chose the session's escalation rung.
  void on_resync_begin(std::size_t sw, std::uint64_t session_id,
                       ResyncKind kind, sim::Time now);
  /// The session's final chunk landed; the switch is checkable again.
  void on_resync_end(std::size_t sw, std::uint64_t session_id, sim::Time now);

  // --- Evaluation -------------------------------------------------------------

  /// Drains the feed journal, recomputes per-switch lags, updates the SLO
  /// hysteresis + burn, records the fleet lag histogram, and runs the
  /// digest comparison on every checkable switch. Call it at quiescence
  /// before asserting.
  void evaluate(sim::Time now);

  /// Full-recompute self-check of every incrementally-maintained digest
  /// (all switches + desired). Returns false (and counts a failure) on any
  /// mismatch. Also invoked round-robin every `selfcheck_every` feeds.
  bool verify_digests();

  // --- Introspection ----------------------------------------------------------
  // Queries drain the feed journal first, so they always observe every feed
  // delivered so far (and are therefore non-const).

  std::size_t switches() const noexcept { return switch_count_; }
  std::uint64_t head();
  std::uint64_t watermark(std::size_t sw);
  /// Contiguous watermark extended through out-of-band applied positions.
  std::uint64_t effective_watermark(std::size_t sw);
  std::uint64_t lag_positions(std::size_t sw);
  sim::Time lag_age(std::size_t sw);
  SwitchState state(std::size_t sw);
  std::uint64_t desired_digest();
  std::uint64_t switch_digest(std::size_t sw);

  bool slo_ok();
  std::uint64_t slo_transitions();
  sim::Time slo_burn_ns();
  std::uint64_t divergences();
  std::vector<DivergenceFinding> findings();
  std::uint64_t selfchecks();
  std::uint64_t selfcheck_failures();
  std::uint64_t unverifiable_checks();

  void set_divergence_callback(DivergenceCallback cb);

  /// Registers the observer's pull metrics (lag gauges per switch, SLO
  /// state/burn/transitions, divergence + self-check counters) and the
  /// fleet lag histogram on `registry`.
  void bind_metrics(MetricsRegistry& registry);

  /// /fleet scrape body: lag distribution, per-switch table, SLO, alarms.
  std::string to_text();
  /// /fleet.json scrape body (machine-readable mirror of to_text()).
  std::string to_json();

 private:
  /// One deferred hot-path feed (see the cost model above): the four
  /// update-heavy feeds buffer one of these and return; drain_locked()
  /// replays them in order with their recorded timestamps.
  struct FeedEvent {
    enum class Kind : std::uint8_t {
      kAppendUpdate = 0,
      kMirrorUpdate = 1,
      kDelivery = 2,
      kWatermark = 3,
    };
    Kind kind;
    bool add;
    std::uint32_t sw;   ///< Unused for kAppendUpdate.
    std::uint64_t pos;  ///< Journal position (kWatermark: the watermark).
    sim::Time at;
    net::Endpoint vip;  ///< Unused for kWatermark.
    net::Endpoint dip;  ///< Unused for kWatermark.
  };
  /// One DIP slot in a mirror. Slots are never removed, only tombstoned
  /// (`present = false`): churn re-adds the same DIPs, so a steady-state
  /// toggle costs one probe of the mirror's open-addressed slot index, a
  /// flag flip, and an XOR of the token cached in the slot — the
  /// member-token hash is paid once per (vip, dip) at first insertion,
  /// never on the toggle path. Slots keep first-insertion order; the
  /// XOR-fold digests are order-independent and the cold paths sort what
  /// they render.
  struct Member {
    net::Endpoint dip;
    std::uint64_t token = 0;  ///< Cached VipDigest::member_token.
    bool present = false;
  };
  struct VipMirror {
    std::uint64_t key = 0;  ///< Cached VipDigest::vip_key (hot-path tokens).
    std::uint64_t digest = 0;
    /// Flat storage: pools are small (tens of DIPs), so a flat vector
    /// beats node-based sets on the feed path. Membership = entries with
    /// `present` set.
    std::vector<Member> members;
    /// Open-addressed DIP→slot index over `members` (entry = slot + 1,
    /// 0 = empty; power-of-two capacity, load kept at or below 1/2, linear
    /// probing, no deletions). A toggle probes this instead of comparing
    /// endpoints: one word-mix of the address, one load, usually one hit.
    std::vector<std::uint32_t> buckets;
  };
  /// Flat VIP table for the same reason: deployments track a handful of
  /// VIPs, and a linear scan over inline pairs beats hashing the endpoint
  /// on every feed.
  using VipTable = std::vector<std::pair<net::Endpoint, VipMirror>>;
  struct SwitchCell {
    SwitchState state = SwitchState::kLive;
    std::uint64_t watermark = 0;      ///< Contiguous, from on_watermark.
    std::set<std::uint64_t> oob;      ///< Out-of-band applied positions > W.
    std::uint64_t digest = 0;         ///< XOR-fold of vips[*].digest.
    VipTable vips;
    std::uint64_t active_session = 0;
    std::deque<DivergenceFinding::SessionRecord> sessions;
    /// Dedup latch: one finding per divergence episode; re-arms when the
    /// digests agree again at a checkable position.
    bool divergent = false;
    bool lagging = false;             ///< SLO hysteresis state.
    // Cached by evaluate() for the pull gauges.
    std::uint64_t cached_lag = 0;
    sim::Time cached_age = 0;
  };
  struct HistoryEntry {
    std::uint64_t digest_after = 0;
    sim::Time appended_at = 0;
  };

  /// The hot-path append: one sequential store and a threshold test, no
  /// lock (pending_ is simulation-thread-only). Inline so a buffered feed
  /// costs no out-of-line call.
  void enqueue(const FeedEvent& ev) {
    pending_.push_back(ev);
    if (pending_.size() < drain_batch_) return;
    std::vector<DivergenceFinding> fired;
    {
      const sr::MutexLock lock(mu_);
      drain_locked();
      fired = std::exchange(unfired_, {});
    }
    if (!fired.empty()) fire(std::move(fired));
  }
  /// Replays every buffered feed event in order (recorded timestamps) and
  /// clears the buffer. Simulation thread only (it consumes pending_);
  /// detected findings land in unfired_.
  void drain_locked() SR_REQUIRES(mu_);
  /// Locks, drains, and delivers pending findings — the getter prologue.
  void drain() SR_EXCLUDES(mu_);

  /// Linear lookup in a flat VIP table (nullptr when absent).
  static VipMirror* find_mirror(VipTable& table, const net::Endpoint& vip);
  static const VipMirror* find_mirror(const VipTable& table,
                                      const net::Endpoint& vip);
  /// Set-semantics membership toggle using the cached-token slots; stores
  /// the toggled member token in `*token` and reports whether membership
  /// actually changed.
  static bool toggle_cached(VipMirror& mirror, const net::Endpoint& dip,
                            bool add, std::uint64_t* token);
  /// (Re)builds `mirror.buckets` over all current slots (insertion path).
  static void rebuild_index(VipMirror& mirror);
  /// Declarative reset of a mirror's membership (config / snapshot paths).
  static void assign_members(VipMirror& mirror,
                             const std::vector<net::Endpoint>& dips);
  /// The present DIPs of a mirror (cold paths: recompute, attribution).
  static std::vector<net::Endpoint> present_members(const VipMirror& mirror);
  /// Shared mirror mutation of the delivery/mirror-update replay: toggles
  /// `dip` in `cell`'s mirror for `vip`, maintaining both digests
  /// incrementally.
  void toggle_member_locked(SwitchCell& cell, const net::Endpoint& vip,
                            const net::Endpoint& dip, bool add)
      SR_REQUIRES(mu_);
  void drain_oob_locked(SwitchCell& cell) SR_REQUIRES(mu_);
  std::uint64_t effective_locked(const SwitchCell& cell) const
      SR_REQUIRES(mu_);
  /// True when `cell`'s mirror must equal desired state at exactly
  /// effective_locked(cell).
  bool checkable_locked(const SwitchCell& cell) const SR_REQUIRES(mu_);
  /// Desired digest at `pos` from the history ring; false when compacted
  /// out of the retained window.
  bool digest_at_locked(std::uint64_t pos, std::uint64_t* digest) const
      SR_REQUIRES(mu_);
  void append_history_locked(sim::Time now) SR_REQUIRES(mu_);
  /// Ring entry at offset `off` (< history_size_) from the oldest retained.
  const HistoryEntry& history_entry_locked(std::size_t off) const
      SR_REQUIRES(mu_);
  /// Runs the digest comparison for switch `sw` if checkable; fills
  /// `finding` and returns true on a fresh mismatch.
  bool check_switch_locked(std::size_t sw, sim::Time now,
                           DivergenceFinding* finding) SR_REQUIRES(mu_);
  void attribute_locked(const SwitchCell& cell, DivergenceFinding* finding)
      const SR_REQUIRES(mu_);
  void evaluate_locked(sim::Time now) SR_REQUIRES(mu_);
  /// Shared tail of every replayed/synchronous feed: self-check cadence +
  /// evaluation + divergence checks (into unfired_). `touched` bounds the
  /// digest comparison to the switch the feed mutated (kAll for explicit
  /// evaluate(), kNone for pure journal appends, which cannot change any
  /// switch's checkable digest).
  static constexpr std::size_t kAllSwitches = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoSwitch = static_cast<std::size_t>(-2);
  void tick_locked(sim::Time now, std::size_t touched) SR_REQUIRES(mu_);
  /// Round-robin full-recompute self-check when its countdown expires.
  void maybe_selfcheck_locked() SR_REQUIRES(mu_);
  /// Decrements the evaluation countdown; true when it expired (reloads).
  bool eval_due_locked() SR_REQUIRES(mu_);
  /// Digest comparisons for the switches selected by `touched`; fresh
  /// findings land in unfired_.
  void check_switches_locked(sim::Time now, std::size_t touched)
      SR_REQUIRES(mu_);
  void fire(std::vector<DivergenceFinding> findings);

  const std::size_t switch_count_;
  const Options options_;

  // Hot fields first: a buffered feed touches only pending_ and
  // drain_batch_ — adjacent so the fast path faults at most one line of
  // the object plus the sequential event store.
  /// Feed journal. Simulation-thread-only (deliberately NOT guarded by
  /// mu_): written by the inline feeds without a lock, consumed by
  /// drain_locked() from simulation-thread entry points. The scrape thread
  /// never touches it — to_text()/to_json()/bound metrics render the last
  /// drained fold instead.
  std::vector<FeedEvent> pending_;
  /// max(1, options_.drain_every), cached beside pending_.
  std::size_t drain_batch_ = 1;
  mutable sr::Mutex mu_;
  /// Findings detected under the lock and not yet delivered: fired by the
  /// next feed-path/evaluate entry point (never by queries — DESIGN.md §13
  /// keeps the divergence callback on the simulation thread).
  std::vector<DivergenceFinding> unfired_ SR_GUARDED_BY(mu_);

  std::vector<SwitchCell> cells_ SR_GUARDED_BY(mu_);
  /// Controller desired state mirror + digest.
  VipTable desired_
      SR_GUARDED_BY(mu_);
  std::uint64_t desired_digest_ SR_GUARDED_BY(mu_) = 0;
  std::uint64_t head_ SR_GUARDED_BY(mu_) = 0;
  /// Digest history ring (fixed flat storage — no per-append allocation or
  /// deque node churn): the entry for journal position p, for p in
  /// [history_base_, history_base_ + history_size_), lives at ring offset
  /// p - history_base_ from history_start_.
  std::uint64_t history_base_ SR_GUARDED_BY(mu_) = 1;
  std::vector<HistoryEntry> history_ SR_GUARDED_BY(mu_);
  std::size_t history_start_ SR_GUARDED_BY(mu_) = 0;
  std::size_t history_size_ SR_GUARDED_BY(mu_) = 0;

  // SLO.
  bool slo_ok_ SR_GUARDED_BY(mu_) = true;
  std::uint64_t slo_transitions_ SR_GUARDED_BY(mu_) = 0;
  sim::Time slo_burn_ns_ SR_GUARDED_BY(mu_) = 0;
  sim::Time last_eval_ SR_GUARDED_BY(mu_) = 0;
  double lagging_fraction_ SR_GUARDED_BY(mu_) = 0.0;

  // Divergence + self-check accounting.
  std::vector<DivergenceFinding> findings_ SR_GUARDED_BY(mu_);
  std::uint64_t divergences_ SR_GUARDED_BY(mu_) = 0;
  std::uint64_t selfchecks_ SR_GUARDED_BY(mu_) = 0;
  std::uint64_t selfcheck_failures_ SR_GUARDED_BY(mu_) = 0;
  std::uint64_t unverifiable_ SR_GUARDED_BY(mu_) = 0;
  std::uint64_t feed_events_ SR_GUARDED_BY(mu_) = 0;
  /// Cadence countdowns (reloaded from Options): a decrement-and-test per
  /// feed instead of two 64-bit modulo ops on the replay path.
  std::size_t selfcheck_countdown_ SR_GUARDED_BY(mu_) = 0;
  std::size_t eval_countdown_ SR_GUARDED_BY(mu_) = 0;
  std::size_t selfcheck_cursor_ SR_GUARDED_BY(mu_) = 0;

  Histogram* h_lag_ = nullptr;  ///< Bound fleet lag histogram (positions).
  DivergenceCallback divergence_cb_;
};

}  // namespace silkroad::obs
