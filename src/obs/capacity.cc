#include "obs/capacity.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "check/sr_check.h"
#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

double enter_threshold(const CapacityThresholds& t, CapacityLevel level) {
  switch (level) {
    case CapacityLevel::kWatch: return t.watch_enter;
    case CapacityLevel::kPressure: return t.pressure_enter;
    case CapacityLevel::kCritical: return t.critical_enter;
    case CapacityLevel::kOk: break;
  }
  return 0;
}

double exit_threshold(const CapacityThresholds& t, CapacityLevel level) {
  switch (level) {
    case CapacityLevel::kWatch: return t.watch_exit;
    case CapacityLevel::kPressure: return t.pressure_exit;
    case CapacityLevel::kCritical: return t.critical_exit;
    case CapacityLevel::kOk: break;
  }
  return 0;
}

}  // namespace

const char* to_string(CapacityLevel level) noexcept {
  switch (level) {
    case CapacityLevel::kOk: return "ok";
    case CapacityLevel::kWatch: return "watch";
    case CapacityLevel::kPressure: return "pressure";
    case CapacityLevel::kCritical: return "critical";
  }
  return "unknown";
}

ResourceLedger::ResourceLedger(Options options) : options_(options) {
  SR_CHECK(options_.history >= 2);
  const CapacityThresholds& t = options_.thresholds;
  SR_CHECK(t.watch_exit < t.watch_enter);
  SR_CHECK(t.pressure_exit < t.pressure_enter);
  SR_CHECK(t.critical_exit < t.critical_enter);
  SR_CHECK(t.watch_enter < t.pressure_enter);
  SR_CHECK(t.pressure_enter < t.critical_enter);
}

const ResourceLedger::Table* ResourceLedger::find_table(
    const std::string& name) const {
  for (const auto& table : tables_) {
    if (table.name == name) return &table;
  }
  return nullptr;
}

ResourceLedger::Table* ResourceLedger::find_table(const std::string& name) {
  for (auto& table : tables_) {
    if (table.name == name) return &table;
  }
  return nullptr;
}

std::size_t ResourceLedger::register_table(const std::string& name,
                                           TableProbe probe) {
  SR_CHECK(probe.entries != nullptr);
  SR_CHECK(probe.bytes != nullptr);
  if (Table* existing = find_table(name)) {
    existing->probe = std::move(probe);
    return static_cast<std::size_t>(existing - tables_.data());
  }
  Table table;
  table.name = name;
  table.probe = std::move(probe);
  table.thresholds = options_.thresholds;
  if (trace_ != nullptr) table.trace_scope = trace_->intern(name);
  tables_.push_back(std::move(table));
  const std::size_t index = tables_.size() - 1;
  if (registry_ != nullptr) publish_table_metrics(index);
  return index;
}

void ResourceLedger::set_thresholds(const std::string& name,
                                    const CapacityThresholds& thresholds) {
  Table* table = find_table(name);
  SR_CHECKF(table != nullptr, "capacity: unknown table '%s'", name.c_str());
  table->thresholds = thresholds;
}

void ResourceLedger::add_pressure(const std::string& table_name,
                                  const std::string& name,
                                  std::function<std::uint64_t()> value) {
  Table* table = find_table(table_name);
  SR_CHECKF(table != nullptr, "capacity: unknown table '%s'",
            table_name.c_str());
  for (auto& pressure : table->pressures) {
    if (pressure.name == name) {
      pressure.value = std::move(value);
      return;
    }
  }
  table->pressures.push_back({name, std::move(value)});
}

void ResourceLedger::register_vip(const std::string& vip,
                                  std::function<std::uint64_t()> entries,
                                  std::function<std::uint64_t()> bytes) {
  for (auto& existing : vips_) {
    if (existing.vip == vip) {
      existing.entries = std::move(entries);
      existing.bytes = std::move(bytes);
      return;
    }
  }
  vips_.push_back({vip, std::move(entries), std::move(bytes)});
  if (registry_ != nullptr) publish_vip_metrics(vips_.size() - 1);
}

void ResourceLedger::bind_trace(TraceRing* ring) {
  trace_ = ring;
  if (trace_ == nullptr) return;
  for (auto& table : tables_) {
    table.trace_scope = trace_->intern(table.name);
  }
}

void ResourceLedger::bind_metrics(MetricsRegistry& registry) {
  registry_ = &registry;
  for (std::size_t i = 0; i < tables_.size(); ++i) publish_table_metrics(i);
  for (std::size_t i = 0; i < vips_.size(); ++i) publish_vip_metrics(i);
}

double ResourceLedger::sample_occupancy(const Table& table) const {
  if (table.probe.occupancy) return table.probe.occupancy();
  if (table.probe.capacity_entries) {
    const std::uint64_t capacity = table.probe.capacity_entries();
    if (capacity > 0) {
      return static_cast<double>(table.probe.entries()) /
             static_cast<double>(capacity);
    }
  }
  if (table.probe.capacity_bytes) {
    const std::uint64_t budget = table.probe.capacity_bytes();
    if (budget > 0) {
      return static_cast<double>(table.probe.bytes()) /
             static_cast<double>(budget);
    }
  }
  return 0;
}

void ResourceLedger::run_alarm(Table& table, double occupancy) {
  // Hysteresis: raise through every enter threshold occupancy clears, then
  // lower while at or below the current level's exit threshold. One trace
  // event per level crossed — a sample hovering inside a band changes
  // nothing (same idiom as the switch's degraded-mode gate).
  while (table.level < CapacityLevel::kCritical) {
    const auto next =
        static_cast<CapacityLevel>(static_cast<std::uint8_t>(table.level) + 1);
    if (occupancy < enter_threshold(table.thresholds, next)) break;
    table.level = next;
    ++table.transitions;
    ++transitions_;
    if (trace_ != nullptr) {
      trace_->record(TraceEventKind::kCapacityAlarmRaise, table.trace_scope,
                     kNoVersion, static_cast<std::uint64_t>(table.level),
                     static_cast<std::uint64_t>(occupancy * 10000));
    }
  }
  while (table.level > CapacityLevel::kOk &&
         occupancy <= exit_threshold(table.thresholds, table.level)) {
    table.level =
        static_cast<CapacityLevel>(static_cast<std::uint8_t>(table.level) - 1);
    ++table.transitions;
    ++transitions_;
    if (trace_ != nullptr) {
      trace_->record(TraceEventKind::kCapacityAlarmClear, table.trace_scope,
                     kNoVersion, static_cast<std::uint64_t>(table.level),
                     static_cast<std::uint64_t>(occupancy * 10000));
    }
  }
}

void ResourceLedger::poll(sim::Time now) {
  for (auto& table : tables_) {
    const double occupancy = sample_occupancy(table);
    table.last_occupancy = occupancy;
    if (!table.history.empty() && table.history.back().first == now) {
      table.history.back().second = occupancy;
    } else {
      table.history.emplace_back(now, occupancy);
      while (table.history.size() > options_.history) {
        table.history.pop_front();
      }
    }
    run_alarm(table, occupancy);
  }
  polled_ = true;
  last_poll_ = now;
}

CapacityLevel ResourceLedger::level(const std::string& name) const {
  const Table* table = find_table(name);
  SR_CHECKF(table != nullptr, "capacity: unknown table '%s'", name.c_str());
  return table->level;
}

std::uint64_t ResourceLedger::transitions(const std::string& name) const {
  const Table* table = find_table(name);
  SR_CHECKF(table != nullptr, "capacity: unknown table '%s'", name.c_str());
  return table->transitions;
}

CapacityLevel ResourceLedger::worst_level() const {
  CapacityLevel worst = CapacityLevel::kOk;
  for (const auto& table : tables_) {
    worst = std::max(worst, table.level);
  }
  return worst;
}

CapacityForecast ResourceLedger::forecast(const std::string& name) const {
  const Table* table = find_table(name);
  SR_CHECKF(table != nullptr, "capacity: unknown table '%s'", name.c_str());
  const std::vector<std::pair<sim::Time, double>> points(
      table->history.begin(), table->history.end());
  return linear_forecast(points, options_.forecast_min_samples);
}

CapacityForecast ResourceLedger::linear_forecast(
    const std::vector<std::pair<sim::Time, double>>& points,
    std::size_t min_samples) {
  CapacityForecast out;
  if (points.empty()) return out;
  out.occupancy = points.back().second;
  if (points.size() < std::max<std::size_t>(min_samples, 2)) return out;
  if (points.back().first <= points.front().first) return out;

  // Least-squares slope of occupancy over seconds, anchored at the window
  // start to keep the sums small.
  const double t0 = sim::to_seconds(points.front().first);
  double sum_t = 0, sum_y = 0, sum_tt = 0, sum_ty = 0;
  for (const auto& [at, value] : points) {
    const double t = sim::to_seconds(at) - t0;
    sum_t += t;
    sum_y += value;
    sum_tt += t * t;
    sum_ty += t * value;
  }
  const double n = static_cast<double>(points.size());
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom <= 0) return out;
  out.valid = true;
  out.slope_per_s = (n * sum_ty - sum_t * sum_y) / denom;
  if (out.occupancy >= 1.0) {
    out.seconds_to_full = 0;
  } else if (out.slope_per_s > 1e-12) {
    out.seconds_to_full = (1.0 - out.occupancy) / out.slope_per_s;
  }
  return out;
}

double ResourceLedger::fragmentation_of(const std::vector<StageUsage>& stages) {
  // Stage skew: the spread between the fullest and emptiest stage's
  // occupancy. A skewed cuckoo table fails inserts well before its global
  // occupancy says it should, so this is the "wasted headroom" gauge.
  double lo = 1.0, hi = 0.0;
  std::size_t counted = 0;
  for (const auto& stage : stages) {
    if (stage.capacity == 0) continue;
    const double occ = static_cast<double>(stage.used) /
                       static_cast<double>(stage.capacity);
    lo = std::min(lo, occ);
    hi = std::max(hi, occ);
    ++counted;
  }
  return counted < 2 ? 0.0 : hi - lo;
}

void ResourceLedger::publish_table_metrics(std::size_t index) {
  const std::string labels = "table=\"" + tables_[index].name + "\"";
  auto& registry = *registry_;
  registry.register_callback(
      "silkroad_capacity_occupancy", MetricKind::kGauge,
      [this, index] { return sample_occupancy(tables_[index]); },
      "Live fill fraction of the table (0..1)", labels);
  registry.register_callback(
      "silkroad_capacity_used_entries", MetricKind::kGauge,
      [this, index] {
        return static_cast<double>(tables_[index].probe.entries());
      },
      "Live entries installed in the table", labels);
  registry.register_callback(
      "silkroad_capacity_headroom_entries", MetricKind::kGauge,
      [this, index] {
        const auto& probe = tables_[index].probe;
        if (!probe.capacity_entries) return 0.0;
        const std::uint64_t capacity = probe.capacity_entries();
        const std::uint64_t used = probe.entries();
        return capacity > used ? static_cast<double>(capacity - used) : 0.0;
      },
      "Entries still insertable before the table is full", labels);
  registry.register_callback(
      "silkroad_capacity_used_bytes", MetricKind::kGauge,
      [this, index] {
        return static_cast<double>(tables_[index].probe.bytes());
      },
      "Live SRAM bytes the table occupies", labels);
  registry.register_callback(
      "silkroad_capacity_fragmentation", MetricKind::kGauge,
      [this, index] {
        const auto& probe = tables_[index].probe;
        return probe.stages ? fragmentation_of(probe.stages()) : 0.0;
      },
      "Occupancy spread between fullest and emptiest stage (0 = even)",
      labels);
  registry.register_callback(
      "silkroad_capacity_alarm_level", MetricKind::kGauge,
      [this, index] {
        return static_cast<double>(tables_[index].level);
      },
      "Capacity alarm level as of the last poll (0=ok..3=critical)", labels);
  registry.register_callback(
      "silkroad_capacity_alarm_transitions_total", MetricKind::kCounter,
      [this, index] {
        return static_cast<double>(tables_[index].transitions);
      },
      "Alarm level crossings (raise + clear) since start", labels);
  registry.register_callback(
      "silkroad_capacity_exhaustion_s", MetricKind::kGauge,
      [this, index] {
        const std::vector<std::pair<sim::Time, double>> points(
            tables_[index].history.begin(), tables_[index].history.end());
        const CapacityForecast f =
            linear_forecast(points, options_.forecast_min_samples);
        return f.valid ? f.seconds_to_full : -1.0;
      },
      "Straight-line seconds until the table is full (-1 = not filling)",
      labels);
}

void ResourceLedger::publish_vip_metrics(std::size_t index) {
  const std::string labels = "vip=\"" + vips_[index].vip + "\"";
  auto& registry = *registry_;
  registry.register_callback(
      "silkroad_capacity_vip_entries", MetricKind::kGauge,
      [this, index] {
        return static_cast<double>(vips_[index].entries());
      },
      "Live ConnTable entries attributed to the VIP", labels);
  registry.register_callback(
      "silkroad_capacity_vip_bytes", MetricKind::kGauge,
      [this, index] {
        return static_cast<double>(vips_[index].bytes());
      },
      "SRAM bytes attributed to the VIP (ConnTable share + pool table)",
      labels);
}

std::string ResourceLedger::to_text() const {
  std::string out;
  append(out, "=== silkroad capacity ledger ===\n");
  append(out, "%-18s %-9s %7s %22s %12s %6s %12s\n", "table", "level", "occ",
         "used/capacity", "bytes", "frag", "exhaustion");
  for (const auto& table : tables_) {
    const double occupancy = sample_occupancy(table);
    const std::uint64_t entries = table.probe.entries();
    const std::uint64_t capacity =
        table.probe.capacity_entries ? table.probe.capacity_entries() : 0;
    const double fragmentation =
        table.probe.stages ? fragmentation_of(table.probe.stages()) : 0.0;
    const std::vector<std::pair<sim::Time, double>> points(
        table.history.begin(), table.history.end());
    const CapacityForecast forecast =
        linear_forecast(points, options_.forecast_min_samples);
    char used_cap[32];
    if (capacity > 0) {
      std::snprintf(used_cap, sizeof used_cap, "%" PRIu64 "/%" PRIu64, entries,
                    capacity);
    } else {
      std::snprintf(used_cap, sizeof used_cap, "%" PRIu64, entries);
    }
    char exhaustion[24];
    if (forecast.valid && forecast.seconds_to_full >= 0) {
      std::snprintf(exhaustion, sizeof exhaustion, "%.1fs",
                    forecast.seconds_to_full);
    } else {
      std::snprintf(exhaustion, sizeof exhaustion, "-");
    }
    append(out, "%-18s %-9s %6.1f%% %22s %10" PRIu64 " B %6.2f %12s\n",
           table.name.c_str(), to_string(table.level), occupancy * 100,
           used_cap, table.probe.bytes(), fragmentation, exhaustion);
    if (!table.pressures.empty()) {
      append(out, "  pressure:");
      for (const auto& pressure : table.pressures) {
        append(out, " %s=%" PRIu64, pressure.name.c_str(), pressure.value());
      }
      out += "\n";
    }
    if (table.probe.stages) {
      const auto stages = table.probe.stages();
      if (!stages.empty()) {
        append(out, "  stages:");
        for (const auto& stage : stages) {
          const double occ =
              stage.capacity == 0
                  ? 0.0
                  : static_cast<double>(stage.used) /
                        static_cast<double>(stage.capacity);
          append(out, " s%u=%.1f%%", stage.stage, occ * 100);
        }
        out += "\n";
      }
    }
  }
  if (!vips_.empty()) {
    append(out, "per-VIP attribution:\n");
    for (const auto& vip : vips_) {
      append(out, "  %-22s entries=%-8" PRIu64 " bytes=%" PRIu64 "\n",
             vip.vip.c_str(), vip.entries(), vip.bytes());
    }
  }
  append(out, "alarm transitions: %" PRIu64 " (worst level: %s)\n",
         transitions_, to_string(worst_level()));
  return out;
}

std::string ResourceLedger::to_json() const {
  std::string out = "{\"tables\":[";
  bool first_table = true;
  for (const auto& table : tables_) {
    if (!first_table) out += ",";
    first_table = false;
    const std::uint64_t capacity =
        table.probe.capacity_entries ? table.probe.capacity_entries() : 0;
    const std::uint64_t entries = table.probe.entries();
    const std::vector<std::pair<sim::Time, double>> points(
        table.history.begin(), table.history.end());
    const CapacityForecast forecast =
        linear_forecast(points, options_.forecast_min_samples);
    append(out,
           "\n  {\"name\":\"%s\",\"level\":\"%s\",\"occupancy\":%s,"
           "\"entries\":%" PRIu64 ",\"capacity_entries\":%" PRIu64
           ",\"headroom_entries\":%" PRIu64 ",\"bytes\":%" PRIu64
           ",\"fragmentation\":%s,\"alarm_transitions\":%" PRIu64,
           json_escape(table.name).c_str(), to_string(table.level),
           format_number(sample_occupancy(table)).c_str(), entries, capacity,
           capacity > entries ? capacity - entries : 0, table.probe.bytes(),
           format_number(table.probe.stages
                             ? fragmentation_of(table.probe.stages())
                             : 0.0)
               .c_str(),
           table.transitions);
    append(out,
           ",\"forecast\":{\"valid\":%s,\"slope_per_s\":%s,"
           "\"seconds_to_full\":%s}",
           forecast.valid ? "true" : "false",
           format_number(forecast.slope_per_s).c_str(),
           format_number(forecast.seconds_to_full).c_str());
    out += ",\"pressure\":{";
    bool first_pressure = true;
    for (const auto& pressure : table.pressures) {
      if (!first_pressure) out += ",";
      first_pressure = false;
      append(out, "\"%s\":%" PRIu64, json_escape(pressure.name).c_str(),
             pressure.value());
    }
    out += "}";
    if (table.probe.stages) {
      out += ",\"stages\":[";
      bool first_stage = true;
      for (const auto& stage : table.probe.stages()) {
        if (!first_stage) out += ",";
        first_stage = false;
        append(out, "{\"stage\":%u,\"used\":%" PRIu64 ",\"capacity\":%" PRIu64
                    "}",
               stage.stage, stage.used, stage.capacity);
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n],\"vips\":[";
  bool first_vip = true;
  for (const auto& vip : vips_) {
    if (!first_vip) out += ",";
    first_vip = false;
    append(out, "\n  {\"vip\":\"%s\",\"entries\":%" PRIu64 ",\"bytes\":%" PRIu64
                "}",
           json_escape(vip.vip).c_str(), vip.entries(), vip.bytes());
  }
  append(out, "\n],\"alarm_transitions_total\":%" PRIu64
              ",\"worst_level\":\"%s\"}\n",
         transitions_, to_string(worst_level()));
  return out;
}

}  // namespace silkroad::obs
