// Live SRAM capacity ledger (DESIGN.md §15).
//
// The static models (asic/sram.h, asic/resources.h, core/memory_model.h)
// answer "does this layout fit?"; the ledger answers the runtime questions
// the paper's whole premise turns on (§4.4, figs. 12/18): how full is each
// SRAM-bearing table *right now*, how hard is the insertion machinery
// working to keep it that way, which VIP owns the bytes, and when — at the
// current fill trend — does the table exhaust.
//
// The ledger lives below asic/core in the link order, so it knows nothing
// about cuckoo tables or blooms: owners register a named table with a set of
// probe callbacks (entries / capacity / bytes / per-stage usage) plus any
// number of named pressure probes (kick chains, failed inserts, filter
// churn). SilkRoadSwitch registers its ConnTable, transit bloom, learning
// filter, and DIP-pool tables in init_metrics(); anything else that owns
// SRAM can do the same.
//
// poll(now) samples every probe: it refreshes the per-table occupancy
// history ring that feeds the exhaustion forecast and runs the alarm state
// machine. Alarms have three raised levels (kWatch/kPressure/kCritical) with
// hysteresis — a level is entered at its enter threshold and left only at
// the lower exit threshold, so an occupancy hovering on a boundary yields
// exactly one transition per true crossing, never a flap (same idiom as the
// switch's degraded-mode gate). Each transition records one
// kCapacityAlarmRaise/kCapacityAlarmClear trace event in the bound ring —
// the same ring the degradation machinery and forensics reports consume.
//
// bind_metrics() publishes everything as pull callbacks on the registry
// (silkroad_capacity_* gauges/counters), so /metrics, TimeSeriesRecorder
// retention, and the JSON exporters see the ledger with no double-counting:
// the ledger never re-registers a series an owner already exports, it only
// adds the capacity view. to_text()/to_json() render the /capacity and
// /capacity.json scrape routes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace silkroad::obs {

/// Alarm severity. Ordering is meaningful: higher = worse.
enum class CapacityLevel : std::uint8_t {
  kOk = 0,
  kWatch = 1,
  kPressure = 2,
  kCritical = 3,
};

const char* to_string(CapacityLevel level) noexcept;

/// Enter/exit occupancy fractions per raised level. enter > exit for every
/// level (hysteresis band); levels must be ordered kWatch < kPressure <
/// kCritical on both edges.
struct CapacityThresholds {
  double watch_enter = 0.70;
  double watch_exit = 0.65;
  double pressure_enter = 0.85;
  double pressure_exit = 0.80;
  double critical_enter = 0.95;
  double critical_exit = 0.90;
};

/// Straight-line fill forecast from the occupancy history window.
struct CapacityForecast {
  bool valid = false;           ///< enough history and a meaningful trend
  double occupancy = 0;         ///< latest sampled occupancy (0..1)
  double slope_per_s = 0;       ///< d(occupancy)/dt over the window
  double seconds_to_full = -1;  ///< time until occupancy 1.0; -1 = not filling
};

class ResourceLedger {
 public:
  struct StageUsage {
    unsigned stage = 0;
    std::uint64_t used = 0;
    std::uint64_t capacity = 0;
  };

  /// Probe callbacks for one SRAM-bearing table. `entries`/`bytes` are
  /// required; `capacity_entries` of 0 means the structure is byte-sized
  /// rather than slot-sized (occupancy then comes from `occupancy` if set,
  /// else stays 0). All callbacks run on the caller of poll()/render — they
  /// must be cheap and touch only state safe to read from there.
  struct TableProbe {
    std::function<std::uint64_t()> entries;
    std::function<std::uint64_t()> capacity_entries;
    std::function<std::uint64_t()> bytes;
    std::function<std::uint64_t()> capacity_bytes;      ///< optional budget
    std::function<double()> occupancy;                  ///< optional override
    std::function<std::vector<StageUsage>()> stages;    ///< optional
  };

  struct Options {
    CapacityThresholds thresholds;
    /// Occupancy samples retained per table for the forecast window.
    std::size_t history = 64;
    /// Minimum samples before a forecast is offered.
    std::size_t forecast_min_samples = 8;
  };

  ResourceLedger() : ResourceLedger(Options{}) {}
  explicit ResourceLedger(Options options);

  /// Registers a table under `name` (unique; re-registering replaces the
  /// probes but keeps alarm state and history — a reconfigured owner does
  /// not reset its trend). Returns the table index.
  std::size_t register_table(const std::string& name, TableProbe probe);
  /// Per-table threshold override (e.g. a bloom that should alarm earlier).
  void set_thresholds(const std::string& name,
                      const CapacityThresholds& thresholds);

  /// Adds a named pressure probe under a registered table: a monotonic
  /// counter the insertion machinery exposes (kick chains, failed inserts,
  /// evictions, filter false-positive churn). Rendered with per-table
  /// context in /capacity; never re-registered on the metrics registry.
  void add_pressure(const std::string& table, const std::string& name,
                    std::function<std::uint64_t()> value);

  /// Registers per-VIP attribution probes (live entries and attributed
  /// bytes). Re-registering a VIP replaces its probes.
  void register_vip(const std::string& vip,
                    std::function<std::uint64_t()> entries,
                    std::function<std::uint64_t()> bytes);

  /// Alarm transitions are recorded here (scope = interned table name).
  void bind_trace(TraceRing* ring);

  /// Publishes the capacity view as pull callbacks: per-table
  /// silkroad_capacity_{occupancy,headroom_entries,used_bytes,
  /// fragmentation,alarm_level,exhaustion_s} gauges,
  /// silkroad_capacity_alarm_transitions_total counters, and per-VIP
  /// silkroad_capacity_vip_{entries,bytes} gauges. Tables/VIPs registered
  /// *after* bind_metrics are picked up on their registration.
  void bind_metrics(MetricsRegistry& registry);

  /// Samples every table: appends to the occupancy history (at most one
  /// sample per distinct `now`) and runs the alarm state machine. Cheap
  /// enough to call from control-plane paths; hot paths should rate-limit
  /// (SilkRoadSwitch polls at most once per Config::capacity_poll_interval).
  void poll(sim::Time now);

  // --- introspection (all reflect the last poll) ---------------------------
  CapacityLevel level(const std::string& table) const;
  std::uint64_t transitions(const std::string& table) const;
  std::uint64_t total_transitions() const noexcept { return transitions_; }
  CapacityForecast forecast(const std::string& table) const;
  std::size_t table_count() const noexcept { return tables_.size(); }
  /// Worst level across all tables.
  CapacityLevel worst_level() const;

  /// Straight-line least-squares fit over (t, occupancy) points; shared by
  /// the ledger and by anything forecasting from TimeSeriesRecorder series.
  static CapacityForecast linear_forecast(
      const std::vector<std::pair<sim::Time, double>>& points,
      std::size_t min_samples);

  /// Human rendering (the /capacity scrape route).
  std::string to_text() const;
  /// Machine rendering (the /capacity.json scrape route + telemetry dump).
  std::string to_json() const;

 private:
  struct Pressure {
    std::string name;
    std::function<std::uint64_t()> value;
  };

  struct Table {
    std::string name;
    TableProbe probe;
    CapacityThresholds thresholds;
    std::vector<Pressure> pressures;
    CapacityLevel level = CapacityLevel::kOk;
    std::uint64_t transitions = 0;
    std::uint32_t trace_scope = kNoScope;
    std::deque<std::pair<sim::Time, double>> history;
    double last_occupancy = 0;
  };

  struct Vip {
    std::string vip;
    std::function<std::uint64_t()> entries;
    std::function<std::uint64_t()> bytes;
  };

  const Table* find_table(const std::string& name) const;
  Table* find_table(const std::string& name);
  double sample_occupancy(const Table& table) const;
  void run_alarm(Table& table, double occupancy);
  void publish_table_metrics(std::size_t index);
  void publish_vip_metrics(std::size_t index);
  static double fragmentation_of(const std::vector<StageUsage>& stages);

  Options options_;
  std::vector<Table> tables_;
  std::vector<Vip> vips_;
  TraceRing* trace_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t transitions_ = 0;
  bool polled_ = false;
  sim::Time last_poll_ = 0;
};

}  // namespace silkroad::obs
