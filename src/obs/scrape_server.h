// Minimal loopback HTTP scrape endpoint (DESIGN.md §10).
//
// Long-running sims and benches should be observable while they run:
// `SILKROAD_SCRAPE_PORT=9100 ./quickstart` then `curl
// localhost:9100/metrics`. This is deliberately the smallest server that
// Prometheus and curl can talk to — HTTP/1.0, GET only, exact-path routing,
// Connection: close, one request per connection, served sequentially on one
// background thread. It binds 127.0.0.1 only and is off unless explicitly
// started, so it never widens the attack surface of a batch run.
//
// Handlers are std::function<std::string()> registered per path before
// start(); they run on the server thread, so they must only touch
// thread-safe state (MetricsRegistry::snapshot() and every TimeSeriesRecorder
// accessor qualify). Registry pull callbacks read plain fields of the
// simulated switch; scraping while the simulation thread is mid-event is a
// benign telemetry race — tests scrape only while the sim is idle so
// sanitizer runs stay clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "check/thread_annotations.h"

namespace silkroad::obs {

class ScrapeServer {
 public:
  /// Body producer for one path; runs on the server thread per request.
  using Handler = std::function<std::string()>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral (query via port())
    int backlog = 8;
  };

  explicit ScrapeServer(const Options& options);
  ScrapeServer() : ScrapeServer(Options{}) {}
  ~ScrapeServer() { stop(); }

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Registers `handler` for exact path `path` (e.g. "/metrics"). Must be
  /// called before start(); later registrations are ignored.
  void handle(const std::string& path, const std::string& content_type,
              Handler handler);

  /// Body producer for a path family; receives the part of the request path
  /// after the registered prefix (no leading '/'). An empty return serves a
  /// 404 — the handler decides what suffixes exist.
  using PrefixHandler = std::function<std::string(const std::string& suffix)>;

  /// Registers `handler` for every path starting with `prefix` + "/" (e.g.
  /// prefix "/update" serves "/update/17"). Exact routes win over prefixes;
  /// among prefixes the longest match wins. Must be called before start().
  void handle_prefix(const std::string& prefix, const std::string& content_type,
                     PrefixHandler handler);

  /// Binds 127.0.0.1:<port>, spawns the server thread. Registers a default
  /// "/healthz" ("ok\n") if none was added. Returns false if the socket
  /// could not be bound (port taken, sandbox).
  bool start();

  /// Shuts the listening socket and joins the thread. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(); }
  /// The bound port (resolves ephemeral port 0); 0 before start().
  std::uint16_t port() const noexcept { return port_; }
  std::uint64_t requests_served() const noexcept { return requests_.load(); }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };
  struct PrefixRoute {
    std::string content_type;
    PrefixHandler handler;
  };

  void serve_loop();
  void serve_one(int fd);

  Options options_;
  /// Written by handle()/handle_prefix()/start() on the owning thread, read
  /// per request on the server thread; mu_ makes late registration a benign
  /// no-op instead of a race once multi-threaded drivers appear.
  mutable sr::Mutex mu_;
  std::map<std::string, Route> routes_ SR_GUARDED_BY(mu_);
  std::map<std::string, PrefixRoute> prefix_routes_ SR_GUARDED_BY(mu_);
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

/// Reads SILKROAD_SCRAPE_PORT; returns true and sets `port` when the
/// variable is present and a valid port number (0 = ephemeral is allowed).
bool scrape_port_from_env(std::uint16_t& port);

}  // namespace silkroad::obs
