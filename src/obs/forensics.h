// PCC incident forensics (DESIGN.md §12).
//
// When the invariant auditor trips or a chaos run fails its PCC audit, the
// question is always causal: which update window was in flight while this
// flow's packets were being mapped, and what did the lossy control channel
// do to it? A ForensicsReport answers that offline: it interleaves the
// offending flow's journey (journey.h) with every update/resync span
// (span.h) that overlapped it — including dropped and retransmitted channel
// legs — into one timeline ordered by sim time, rendered as text and JSON
// and written to SILKROAD_TELEMETRY_DIR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/journey.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace silkroad::obs {

struct ForensicsReport {
  std::string reason;
  std::uint64_t flow_id = 0;  ///< five-tuple hash; 0 = no specific flow
  /// The report window: the flow journey's [first, last] when a journey was
  /// found, otherwise the whole trace-ring range.
  sim::Time window_first = 0;
  sim::Time window_last = 0;
  std::optional<FlowJourney> journey;
  /// Copies of every span overlapping the window, ascending id.
  std::vector<UpdateSpan> spans;

  struct Entry {
    sim::Time at = 0;
    std::string source;  ///< "flow", "ctx", "update#<id>", "resync#<id>"
    std::string line;
  };
  /// The merged story, ordered by sim time (stable: flow events before span
  /// events at equal timestamps).
  std::vector<Entry> timeline;

  /// SRAM capacity-ledger snapshot at assembly time (DESIGN.md §15): the
  /// human table (ResourceLedger::to_text) and the /capacity.json document
  /// (ResourceLedger::to_json). Both empty when the failing component
  /// carries no ledger; callers fill them via attach_capacity().
  std::string capacity_text;
  std::string capacity_json;
  void attach_capacity(std::string text, std::string json) {
    capacity_text = std::move(text);
    capacity_json = std::move(json);
  }

  /// Silent-divergence attribution (DESIGN.md §17): the DivergenceFinding's
  /// per-VIP membership deltas and resync-session records, as text and JSON
  /// (DivergenceFinding::to_text/to_json). Both empty unless the report was
  /// assembled by the convergence observatory's divergence callback.
  std::string divergence_text;
  std::string divergence_json;
  void attach_divergence(std::string text, std::string json) {
    divergence_text = std::move(text);
    divergence_json = std::move(json);
  }

  std::string to_text() const;
  std::string to_json() const;
};

/// Builds the report from one switch's trace ring and the fleet's span
/// collector. `flow_id` of 0 (no specific flow — e.g. an invariant-audit
/// failure) widens the window to the whole ring and omits the journey.
/// `spans` may be null (report then carries trace events only).
ForensicsReport assemble_forensics(const TraceRing& ring,
                                   const SpanCollector* spans,
                                   std::uint64_t flow_id, std::string reason);

/// $SILKROAD_TELEMETRY_DIR, or "" when unset/empty.
std::string telemetry_dir_from_env();

/// Writes <dir>/<stem>.txt and <dir>/<stem>.json. Returns false if either
/// write failed (missing directory, permissions).
bool write_forensics(const ForensicsReport& report, const std::string& dir,
                     const std::string& stem);

}  // namespace silkroad::obs
