#include "obs/trace.h"

#include <cstdio>

#include "check/sr_check.h"

namespace silkroad::obs {

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kUpdateStep1Open: return "update-step1-open";
    case TraceEventKind::kUpdateFlip: return "update-flip";
    case TraceEventKind::kUpdateFinish: return "update-finish";
    case TraceEventKind::kVersionAllocate: return "version-allocate";
    case TraceEventKind::kVersionReuse: return "version-reuse";
    case TraceEventKind::kVersionRecycle: return "version-recycle";
    case TraceEventKind::kVersionEvict: return "version-evict";
    case TraceEventKind::kCuckooInsert: return "cuckoo-insert";
    case TraceEventKind::kCuckooEvict: return "cuckoo-evict";
    case TraceEventKind::kCuckooInsertFail: return "cuckoo-insert-fail";
    case TraceEventKind::kDigestCollision: return "digest-collision";
    case TraceEventKind::kRelocationFail: return "relocation-fail";
    case TraceEventKind::kTransitFalsePositive: return "transit-false-positive";
    case TraceEventKind::kMeterColor: return "meter-color";
    case TraceEventKind::kLearn: return "learn";
    case TraceEventKind::kSoftwareFallback: return "software-fallback";
    case TraceEventKind::kAgedOut: return "aged-out";
    case TraceEventKind::kDegradedEnter: return "degraded-enter";
    case TraceEventKind::kDegradedExit: return "degraded-exit";
    case TraceEventKind::kInsertShed: return "insert-shed";
    case TraceEventKind::kRelearn: return "relearn";
    case TraceEventKind::kCapacityAlarmRaise: return "capacity-alarm-raise";
    case TraceEventKind::kCapacityAlarmClear: return "capacity-alarm-clear";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity, Clock clock)
    : clock_(std::move(clock)),
      buffer_(capacity == 0 ? 1 : capacity),
      scopes_{""} {}

std::uint32_t TraceRing::intern(std::string_view name) {
  for (std::size_t i = 1; i < scopes_.size(); ++i) {
    if (scopes_[i] == name) return static_cast<std::uint32_t>(i);
  }
  scopes_.emplace_back(name);
  return static_cast<std::uint32_t>(scopes_.size() - 1);
}

std::optional<std::uint32_t> TraceRing::find_scope(
    std::string_view name) const {
  for (std::size_t i = 1; i < scopes_.size(); ++i) {
    if (scopes_[i] == name) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

const std::string& TraceRing::scope_name(std::uint32_t id) const {
  SR_CHECK(id < scopes_.size());
  return scopes_[id];
}

void TraceRing::record_at(sim::Time at, TraceEventKind kind,
                          std::uint32_t scope, std::uint32_t version,
                          std::uint64_t arg0, std::uint64_t arg1) {
  buffer_[next_] = TraceEvent{at, kind, scope, version, arg0, arg1};
  next_ = (next_ + 1) % buffer_.size();
  if (count_ < buffer_.size()) ++count_;
  ++total_;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start = (next_ + buffer_.size() - count_) % buffer_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRing::tail_for(
    std::uint32_t scope, std::optional<std::uint32_t> version,
    std::size_t limit) const {
  std::vector<TraceEvent> matched;
  for (const auto& event : events()) {
    if (event.scope != scope) continue;
    if (version && event.version != kNoVersion && event.version != *version) {
      continue;
    }
    matched.push_back(event);
  }
  if (matched.size() > limit) {
    matched.erase(matched.begin(),
                  matched.begin() +
                      static_cast<std::ptrdiff_t>(matched.size() - limit));
  }
  return matched;
}

void TraceRing::clear() {
  next_ = 0;
  count_ = 0;
  total_ = 0;
}

std::string format_event(const TraceRing& ring, const TraceEvent& event) {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof buf, "[%.6fs] %-22s", sim::to_seconds(event.at),
                to_string(event.kind));
  out += buf;
  if (event.scope != kNoScope) {
    out += " vip=";
    out += ring.scope_name(event.scope);
  }
  if (event.version != kNoVersion) {
    std::snprintf(buf, sizeof buf, " v=%u", event.version);
    out += buf;
  }
  if (event.arg0 != 0 || event.arg1 != 0) {
    std::snprintf(buf, sizeof buf, " args=%llu,%llu",
                  static_cast<unsigned long long>(event.arg0),
                  static_cast<unsigned long long>(event.arg1));
    out += buf;
  }
  return out;
}

}  // namespace silkroad::obs
