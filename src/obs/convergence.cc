#include "obs/convergence.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "check/sr_check.h"
#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

const char* state_name(FleetObserver::SwitchState s) {
  switch (s) {
    case FleetObserver::SwitchState::kLive:
      return "live";
    case FleetObserver::SwitchState::kDown:
      return "down";
    case FleetObserver::SwitchState::kRestoring:
      return "restoring";
    case FleetObserver::SwitchState::kResyncing:
      return "resyncing";
  }
  return "?";
}

const char* kind_name(int kind) {
  switch (static_cast<FleetObserver::ResyncKind>(kind)) {
    case FleetObserver::ResyncKind::kEmpty:
      return "empty";
    case FleetObserver::ResyncKind::kDelta:
      return "delta";
    case FleetObserver::ResyncKind::kFull:
      return "full";
  }
  return "?";
}

// Distinct salts keep the three token families in disjoint codomains: a
// presence token can never cancel against a member token.
constexpr std::uint64_t kVipSalt = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kPresenceSalt = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kMemberSalt = 0x165667B19E3779F9ULL;

std::uint64_t endpoint_hash(const net::Endpoint& ep) {
  return static_cast<std::uint64_t>(net::EndpointHash{}(ep));
}

// Token helpers over a precomputed vip_key — the replay paths cache the
// key in VipMirror so per-mutation tokens cost one endpoint hash, not two.
std::uint64_t keyed_presence_token(std::uint64_t vip_key) {
  return net::mix64(vip_key ^ kPresenceSalt);
}

std::uint64_t keyed_member_token(std::uint64_t vip_key,
                                 const net::Endpoint& dip) {
  return net::mix64(vip_key ^ net::mix64(endpoint_hash(dip) ^ kMemberSalt));
}

// Bucket key for the per-mirror slot index: two word loads, one multiply.
// This is NOT a membership digest (those are the salted VipDigest tokens,
// srlint R14) — it only has to spread DIPs across the power-of-two bucket
// array; full Endpoint equality confirms every probe hit.
std::uint64_t slot_key(const net::Endpoint& dip) {
  const std::uint8_t* p = dip.ip.bytes().data();
  std::uint64_t w0;
  std::uint64_t w1;
  std::memcpy(&w0, p, sizeof w0);
  std::memcpy(&w1, p + 8, sizeof w1);
  const std::uint64_t h =
      (w0 ^ (w1 + 0x9E3779B97F4A7C15ULL) ^ dip.port) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 32);
}

}  // namespace

// --- Flat-table helpers ------------------------------------------------------

FleetObserver::VipMirror* FleetObserver::find_mirror(VipTable& table,
                                                     const net::Endpoint& vip) {
  for (auto& [ep, mirror] : table) {
    if (ep == vip) return &mirror;
  }
  return nullptr;
}

const FleetObserver::VipMirror* FleetObserver::find_mirror(
    const VipTable& table, const net::Endpoint& vip) {
  for (const auto& [ep, mirror] : table) {
    if (ep == vip) return &mirror;
  }
  return nullptr;
}

void FleetObserver::rebuild_index(VipMirror& mirror) {
  std::size_t cap = 8;
  while (cap < mirror.members.size() * 2) cap <<= 1;
  mirror.buckets.assign(cap, 0);
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < mirror.members.size(); ++i) {
    std::size_t b = slot_key(mirror.members[i].dip) & mask;
    while (mirror.buckets[b] != 0) b = (b + 1) & mask;
    mirror.buckets[b] = static_cast<std::uint32_t>(i + 1);
  }
}

bool FleetObserver::toggle_cached(VipMirror& mirror, const net::Endpoint& dip,
                                  bool add, std::uint64_t* token) {
  // One probe of the slot index, token read from the slot: the member token
  // (an out-of-line FNV pass over the 16 address bytes plus two mix rounds)
  // is computed exactly once per (vip, dip) — on first insertion — and
  // cached forever after. Churn re-adds the same DIPs, so the steady-state
  // toggle is a probe, a flag flip, and a cached-token read; binary search
  // (ordering branches mispredict on random keys) and linear scans both
  // measured slower on realistic pools.
  std::size_t b = 0;
  if (!mirror.buckets.empty()) {
    const std::size_t mask = mirror.buckets.size() - 1;
    b = slot_key(dip) & mask;
    for (std::uint32_t slot; (slot = mirror.buckets[b]) != 0;
         b = (b + 1) & mask) {
      Member& m = mirror.members[slot - 1];
      if (m.dip == dip) {
        *token = m.token;
        if (m.present == add) return false;
        m.present = add;
        return true;
      }
    }
  }
  if (!add) {
    *token = 0;  // Unused: membership did not change.
    return false;
  }
  const std::uint64_t tok = keyed_member_token(mirror.key, dip);
  *token = tok;
  mirror.members.push_back({dip, tok, true});
  if (mirror.members.size() * 2 > mirror.buckets.size()) {
    rebuild_index(mirror);  // Also places the slot just appended.
  } else {
    mirror.buckets[b] = static_cast<std::uint32_t>(mirror.members.size());
  }
  return true;
}

void FleetObserver::assign_members(VipMirror& mirror,
                                   const std::vector<net::Endpoint>& dips) {
  for (Member& m : mirror.members) m.present = false;
  std::uint64_t token = 0;
  for (const net::Endpoint& dip : dips) toggle_cached(mirror, dip, true, &token);
}

std::vector<net::Endpoint> FleetObserver::present_members(
    const VipMirror& mirror) {
  std::vector<net::Endpoint> out;
  for (const Member& m : mirror.members) {
    if (m.present) out.push_back(m.dip);
  }
  return out;
}

// --- VipDigest ---------------------------------------------------------------

std::uint64_t VipDigest::vip_key(const net::Endpoint& vip) {
  return net::mix64(endpoint_hash(vip) ^ kVipSalt);
}

std::uint64_t VipDigest::presence_token(const net::Endpoint& vip) {
  return keyed_presence_token(vip_key(vip));
}

std::uint64_t VipDigest::member_token(const net::Endpoint& vip,
                                      const net::Endpoint& dip) {
  return keyed_member_token(vip_key(vip), dip);
}

// --- DivergenceFinding -------------------------------------------------------

std::string DivergenceFinding::to_text() const {
  std::string out;
  append(out,
         "=== silent divergence ===\n"
         "switch: %zu\n"
         "position: %" PRIu64 " (effective watermark; digests compared at "
         "equal history)\n"
         "expected digest: 0x%016" PRIx64 "\n"
         "actual digest:   0x%016" PRIx64 "\n"
         "detected at: %.6f s sim time\n",
         switch_index, position, expected_digest, actual_digest,
         sim::to_seconds(at));
  append(out, "per-VIP attribution (vs current desired state; exact at "
              "quiescence):\n");
  if (deltas.empty()) {
    out += "  (none — digests differ but memberships reconverged since)\n";
  }
  for (const auto& delta : deltas) {
    append(out, "  vip %s%s\n", delta.vip.to_string().c_str(),
           delta.presence_only ? " [provisioning differs]" : "");
    for (const auto& dip : delta.missing) {
      append(out, "    missing %s\n", dip.to_string().c_str());
    }
    for (const auto& dip : delta.extra) {
      append(out, "    extra   %s\n", dip.to_string().c_str());
    }
  }
  append(out, "recent resync sessions on this switch: %zu\n",
         sessions.size());
  for (const auto& s : sessions) {
    append(out, "  session#%" PRIu64 " kind=%s began=%.6fs %s\n",
           s.session_id, kind_name(s.kind), sim::to_seconds(s.began),
           s.ended == 0
               ? "(open)"
               : ("ended=" + std::to_string(sim::to_seconds(s.ended)) + "s")
                     .c_str());
  }
  return out;
}

std::string DivergenceFinding::to_json() const {
  std::string out;
  append(out,
         "{\"switch\":%zu,\"position\":%" PRIu64
         ",\"expected_digest\":\"0x%016" PRIx64
         "\",\"actual_digest\":\"0x%016" PRIx64 "\",\"at_ns\":%" PRIu64,
         switch_index, position, expected_digest, actual_digest, at);
  out += ",\"deltas\":[";
  bool first = true;
  for (const auto& delta : deltas) {
    if (!first) out += ",";
    first = false;
    append(out, "{\"vip\":\"%s\",\"presence_only\":%s,\"missing\":[",
           json_escape(delta.vip.to_string()).c_str(),
           delta.presence_only ? "true" : "false");
    for (std::size_t i = 0; i < delta.missing.size(); ++i) {
      append(out, "%s\"%s\"", i == 0 ? "" : ",",
             json_escape(delta.missing[i].to_string()).c_str());
    }
    out += "],\"extra\":[";
    for (std::size_t i = 0; i < delta.extra.size(); ++i) {
      append(out, "%s\"%s\"", i == 0 ? "" : ",",
             json_escape(delta.extra[i].to_string()).c_str());
    }
    out += "]}";
  }
  out += "],\"sessions\":[";
  first = true;
  for (const auto& s : sessions) {
    if (!first) out += ",";
    first = false;
    append(out,
           "{\"session_id\":%" PRIu64 ",\"kind\":\"%s\",\"began_ns\":%" PRIu64
           ",\"ended_ns\":%" PRIu64 "}",
           s.session_id, kind_name(s.kind), s.began, s.ended);
  }
  out += "]}";
  return out;
}

// --- FleetObserver -----------------------------------------------------------

FleetObserver::FleetObserver(std::size_t switches)
    : FleetObserver(switches, Options()) {}

FleetObserver::FleetObserver(std::size_t switches, const Options& options)
    : switch_count_(switches), options_(options) {
  SR_CHECKF(options_.lag_exit <= options_.lag_enter,
            "SLO hysteresis requires lag_exit <= lag_enter");
  const sr::MutexLock lock(mu_);
  cells_.resize(switches);
  selfcheck_countdown_ = options_.selfcheck_every;
  eval_countdown_ = options_.eval_every;
  drain_batch_ = std::max<std::size_t>(1, options_.drain_every);
  pending_.reserve(drain_batch_);
  history_.resize(std::max<std::size_t>(1, options_.digest_history));
}

// --- Feed journal ------------------------------------------------------------

void FleetObserver::drain_locked() {
  // Replay in feed order with each event's recorded timestamp: the fold is
  // bit-identical to having applied every feed synchronously, only batched
  // so the observer's working set stays cache-resident (header cost model).
  for (const FeedEvent& ev : pending_) {
    switch (ev.kind) {
      case FeedEvent::Kind::kAppendUpdate: {
        SR_DCHECKF(ev.pos > head_, "journal positions are monotone");
        head_ = ev.pos;
        VipMirror* mirror = find_mirror(desired_, ev.vip);
        if (mirror == nullptr && ev.add) {
          // First sighting of this VIP through an update (configs normally
          // precede traffic): it exists now, so account its presence token.
          desired_.push_back({ev.vip, VipMirror{}});
          mirror = &desired_.back().second;
          mirror->key = VipDigest::vip_key(ev.vip);
          mirror->digest = keyed_presence_token(mirror->key);
          desired_digest_ ^= mirror->digest;
        }
        if (mirror != nullptr) {
          std::uint64_t token = 0;
          if (toggle_cached(*mirror, ev.dip, ev.add, &token)) {
            mirror->digest ^= token;
            desired_digest_ ^= token;
          }
        }
        append_history_locked(ev.at);
        tick_locked(ev.at, kNoSwitch);
        break;
      }
      case FeedEvent::Kind::kMirrorUpdate: {
        toggle_member_locked(cells_[ev.sw], ev.vip, ev.dip, ev.add);
        // A journaled delivery (pos != 0) is immediately followed — same
        // feed order, no intervening event — by on_watermark(pos) (or
        // arrives fused as kDelivery), which runs the digest check at the
        // advanced position. Out-of-band mutations (pos == 0: resync
        // replays, fault injection) are checked right away against the
        // unchanged effective watermark.
        tick_locked(ev.at, ev.pos == 0 ? ev.sw : kNoSwitch);
        break;
      }
      case FeedEvent::Kind::kDelivery: {
        SwitchCell& cell = cells_[ev.sw];
        toggle_member_locked(cell, ev.vip, ev.dip, ev.add);
        if (ev.pos > cell.watermark) cell.watermark = ev.pos;
        if (!cell.oob.empty()) drain_oob_locked(cell);
        // Lean tail for the update-heavy delivery stream: the digest
        // comparison (a history-ring lookup per switch) runs on the
        // evaluation cadence, all switches at once, instead of per
        // delivery. Detection latency for a delivery-path divergence is
        // therefore bounded by eval_every feed events on top of the drain
        // batching; out-of-band mutations, lifecycle edges, and explicit
        // evaluate() still check immediately (DESIGN.md §17).
        ++feed_events_;
        maybe_selfcheck_locked();
        if (eval_due_locked()) {
          evaluate_locked(ev.at);
          check_switches_locked(ev.at, kAllSwitches);
        }
        break;
      }
      case FeedEvent::Kind::kWatermark: {
        SwitchCell& cell = cells_[ev.sw];
        cell.watermark = std::max(cell.watermark, ev.pos);
        drain_oob_locked(cell);
        tick_locked(ev.at, ev.sw);
        break;
      }
    }
  }
  pending_.clear();
}

// --- Feed: appends -----------------------------------------------------------

void FleetObserver::on_append_config(std::uint64_t pos, sim::Time now,
                                     const net::Endpoint& vip,
                                     const std::vector<net::Endpoint>& dips) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SR_DCHECKF(pos > head_, "journal positions are monotone");
    head_ = pos;
    VipMirror* mirror = find_mirror(desired_, vip);
    if (mirror == nullptr) {
      desired_.push_back({vip, VipMirror{}});
      mirror = &desired_.back().second;
      mirror->key = VipDigest::vip_key(vip);
    }
    desired_digest_ ^= mirror->digest;
    assign_members(*mirror, dips);
    mirror->digest = VipDigest::of(vip, present_members(*mirror));
    desired_digest_ ^= mirror->digest;
    append_history_locked(now);
    tick_locked(now, kNoSwitch);
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

// --- Feed: mirrors -----------------------------------------------------------

void FleetObserver::on_mirror_config(std::size_t sw, const net::Endpoint& vip,
                                     const std::vector<net::Endpoint>& dips,
                                     std::uint64_t pos, sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SwitchCell& cell = cells_.at(sw);
    VipMirror* mirror = find_mirror(cell.vips, vip);
    if (mirror == nullptr) {
      cell.vips.push_back({vip, VipMirror{}});
      mirror = &cell.vips.back().second;
      mirror->key = VipDigest::vip_key(vip);
    }
    cell.digest ^= mirror->digest;
    assign_members(*mirror, dips);
    mirror->digest = VipDigest::of(vip, present_members(*mirror));
    cell.digest ^= mirror->digest;
    if (pos != 0 && pos > cell.watermark) cell.oob.insert(pos);
    tick_locked(now, sw);
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

void FleetObserver::toggle_member_locked(SwitchCell& cell,
                                         const net::Endpoint& vip,
                                         const net::Endpoint& dip, bool add) {
  VipMirror* mirror = find_mirror(cell.vips, vip);
  if (mirror == nullptr && add) {
    cell.vips.push_back({vip, VipMirror{}});
    mirror = &cell.vips.back().second;
    mirror->key = VipDigest::vip_key(vip);
    mirror->digest = keyed_presence_token(mirror->key);
    cell.digest ^= mirror->digest;
  }
  if (mirror != nullptr) {
    std::uint64_t token = 0;
    if (toggle_cached(*mirror, dip, add, &token)) {
      mirror->digest ^= token;
      cell.digest ^= token;
    }
  }
}

// --- Feed: lifecycle ---------------------------------------------------------

void FleetObserver::on_switch_down(std::size_t sw, sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SwitchCell& cell = cells_.at(sw);
    cell.state = SwitchState::kDown;
    cell.active_session = 0;
    cell.vips.clear();
    cell.digest = 0;
    cell.oob.clear();
    cell.watermark = 0;
    cell.divergent = false;
    cell.lagging = false;
    tick_locked(now, kAllSwitches);  // Live set changed: re-evaluate.
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

void FleetObserver::on_restore_begin(std::size_t sw,
                                     std::uint64_t snapshot_watermark,
                                     sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SwitchCell& cell = cells_.at(sw);
    cell.state = SwitchState::kRestoring;
    cell.vips.clear();
    cell.digest = 0;
    cell.oob.clear();
    cell.watermark = snapshot_watermark;
    cell.divergent = false;
    tick_locked(now, kAllSwitches);  // Live set changed: re-evaluate.
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

void FleetObserver::on_session_open(std::size_t sw, std::uint64_t session_id,
                                    sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();  // Deliveries that preceded the wipe stay ordered.
    SwitchCell& cell = cells_.at(sw);
    if (cell.state == SwitchState::kLive) cell.state = SwitchState::kResyncing;
    cell.active_session = session_id;
    cell.sessions.push_back({session_id, 0, now, 0});
    while (cell.sessions.size() > options_.session_history) {
      cell.sessions.pop_front();
    }
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

void FleetObserver::on_resync_begin(std::size_t sw, std::uint64_t session_id,
                                    ResyncKind kind, sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SwitchCell& cell = cells_.at(sw);
    if (cell.state == SwitchState::kLive) cell.state = SwitchState::kResyncing;
    cell.active_session = session_id;
    if (cell.sessions.empty() ||
        cell.sessions.back().session_id != session_id) {
      cell.sessions.push_back({session_id, static_cast<int>(kind), now, 0});
      while (cell.sessions.size() > options_.session_history) {
        cell.sessions.pop_front();
      }
    } else {
      cell.sessions.back().kind = static_cast<int>(kind);
    }
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

void FleetObserver::on_resync_end(std::size_t sw, std::uint64_t session_id,
                                  sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    SwitchCell& cell = cells_.at(sw);
    if (cell.active_session != session_id) {
      // A newer session won; the replayed backlog still gets its findings
      // delivered.
      fired = std::exchange(unfired_, {});
    } else {
      cell.active_session = 0;
      cell.state = SwitchState::kLive;
      for (auto it = cell.sessions.rbegin(); it != cell.sessions.rend();
           ++it) {
        if (it->session_id == session_id) {
          it->ended = now;
          break;
        }
      }
      tick_locked(now, sw);
      fired = std::exchange(unfired_, {});
    }
  }
  fire(std::move(fired));
}

// --- Checkability + digests --------------------------------------------------

void FleetObserver::drain_oob_locked(SwitchCell& cell) {
  while (!cell.oob.empty() && *cell.oob.begin() <= cell.watermark) {
    cell.oob.erase(cell.oob.begin());
  }
}

std::uint64_t FleetObserver::effective_locked(const SwitchCell& cell) const {
  std::uint64_t effective = cell.watermark;
  for (const std::uint64_t pos : cell.oob) {
    if (pos != effective + 1) break;
    effective = pos;
  }
  return effective;
}

bool FleetObserver::checkable_locked(const SwitchCell& cell) const {
  if (cell.state != SwitchState::kLive) return false;
  if (cell.oob.empty()) return true;
  // Every out-of-band position must be inside the contiguous extension.
  return *cell.oob.rbegin() <= effective_locked(cell);
}

bool FleetObserver::digest_at_locked(std::uint64_t pos,
                                     std::uint64_t* digest) const {
  if (pos == 0) {
    // Before the first journaled mutation the desired state is empty —
    // unless history already scrolled past retention.
    if (history_base_ > 1) return false;
    *digest = 0;
    return true;
  }
  if (pos < history_base_ || pos >= history_base_ + history_size_) {
    return false;
  }
  *digest = history_entry_locked(pos - history_base_).digest_after;
  return true;
}

const FleetObserver::HistoryEntry& FleetObserver::history_entry_locked(
    std::size_t off) const {
  std::size_t idx = history_start_ + off;
  if (idx >= history_.size()) idx -= history_.size();
  return history_[idx];
}

void FleetObserver::append_history_locked(sim::Time now) {
  // Caller just advanced head_ to the appended position.
  const std::size_t cap = history_.size();
  if (history_size_ == 0) history_base_ = head_;
  std::size_t idx;
  if (history_size_ == cap) {
    idx = history_start_;  // Full: the oldest entry is recycled.
    history_start_ = history_start_ + 1 == cap ? 0 : history_start_ + 1;
    ++history_base_;
  } else {
    idx = history_start_ + history_size_;
    if (idx >= cap) idx -= cap;
    ++history_size_;
  }
  history_[idx] = {desired_digest_, now};
}

bool FleetObserver::check_switch_locked(std::size_t sw, sim::Time now,
                                        DivergenceFinding* finding) {
  SwitchCell& cell = cells_[sw];
  if (!checkable_locked(cell)) return false;
  const std::uint64_t effective = effective_locked(cell);
  std::uint64_t expected = 0;
  if (!digest_at_locked(effective, &expected)) {
    ++unverifiable_;  // Compacted past retention; catches up or stays flagged.
    return false;
  }
  if (cell.digest == expected) {
    cell.divergent = false;  // Re-arm the episode latch.
    return false;
  }
  if (cell.divergent) return false;  // Already reported this episode.
  cell.divergent = true;
  ++divergences_;
  finding->switch_index = sw;
  finding->position = effective;
  finding->expected_digest = expected;
  finding->actual_digest = cell.digest;
  finding->at = now;
  attribute_locked(cell, finding);
  finding->sessions.assign(cell.sessions.begin(), cell.sessions.end());
  findings_.push_back(*finding);
  return true;
}

void FleetObserver::attribute_locked(const SwitchCell& cell,
                                     DivergenceFinding* finding) const {
  // Diff the switch mirror against the *current* desired state. At
  // quiescence (where the chaos harness asserts) the two references are the
  // same; mid-stream the attribution may include in-flight churn and is
  // labeled approximate (§17).
  std::vector<net::Endpoint> vips;
  for (const auto& [vip, mirror] : desired_) vips.push_back(vip);
  for (const auto& [vip, mirror] : cell.vips) {
    if (find_mirror(desired_, vip) == nullptr) vips.push_back(vip);
  }
  std::sort(vips.begin(), vips.end());
  for (const auto& vip : vips) {
    const VipMirror* want_m = find_mirror(desired_, vip);
    const VipMirror* have_m = find_mirror(cell.vips, vip);
    const std::vector<net::Endpoint> want =
        want_m == nullptr ? std::vector<net::Endpoint>{}
                          : present_members(*want_m);
    const std::vector<net::Endpoint> have =
        have_m == nullptr ? std::vector<net::Endpoint>{}
                          : present_members(*have_m);
    DivergenceFinding::VipDelta delta;
    delta.vip = vip;
    for (const auto& dip : want) {
      if (std::find(have.begin(), have.end(), dip) == have.end()) {
        delta.missing.push_back(dip);
      }
    }
    for (const auto& dip : have) {
      if (std::find(want.begin(), want.end(), dip) == want.end()) {
        delta.extra.push_back(dip);
      }
    }
    std::sort(delta.missing.begin(), delta.missing.end());
    std::sort(delta.extra.begin(), delta.extra.end());
    delta.presence_only = delta.missing.empty() && delta.extra.empty() &&
                          (want_m == nullptr) != (have_m == nullptr);
    if (!delta.missing.empty() || !delta.extra.empty() ||
        delta.presence_only) {
      finding->deltas.push_back(std::move(delta));
    }
  }
}

// --- Evaluation --------------------------------------------------------------

void FleetObserver::evaluate_locked(sim::Time now) {
  std::size_t live = 0;
  std::size_t lagging = 0;
  for (SwitchCell& cell : cells_) {
    if (cell.state == SwitchState::kDown) {
      cell.cached_lag = 0;
      cell.cached_age = 0;
      continue;
    }
    ++live;
    const std::uint64_t effective = effective_locked(cell);
    const std::uint64_t lag = head_ > effective ? head_ - effective : 0;
    cell.cached_lag = lag;
    if (lag == 0 || history_size_ == 0) {
      cell.cached_age = 0;
    } else {
      // Age of the oldest unapplied mutation. When it predates the retained
      // history the oldest entry's timestamp is a (documented) lower bound.
      const std::uint64_t next = effective + 1;
      const HistoryEntry& entry =
          next < history_base_ ? history_entry_locked(0)
          : next >= history_base_ + history_size_
              ? history_entry_locked(history_size_ - 1)
              : history_entry_locked(next - history_base_);
      cell.cached_age = now > entry.appended_at ? now - entry.appended_at : 0;
    }
    if (cell.lagging) {
      if (lag <= options_.lag_exit) cell.lagging = false;
    } else {
      if (lag > options_.lag_enter) cell.lagging = true;
    }
    if (cell.lagging) ++lagging;
    if (h_lag_ != nullptr) h_lag_->record(lag);
  }
  lagging_fraction_ = live == 0 ? 0.0
                                : static_cast<double>(lagging) /
                                      static_cast<double>(live);
  const bool ok =
      live == 0 ||
      (static_cast<double>(live - lagging) / static_cast<double>(live)) >=
          options_.slo_target;
  if (!slo_ok_ && now > last_eval_) slo_burn_ns_ += now - last_eval_;
  if (ok != slo_ok_) ++slo_transitions_;
  slo_ok_ = ok;
  last_eval_ = std::max(last_eval_, now);
}

void FleetObserver::maybe_selfcheck_locked() {
  if (options_.selfcheck_every == 0 || cells_.empty() ||
      --selfcheck_countdown_ != 0) {
    return;
  }
  selfcheck_countdown_ = options_.selfcheck_every;
  // Round-robin one switch (plus the desired mirror) per cadence hit —
  // bounded work per drain, full coverage over time.
  ++selfchecks_;
  const SwitchCell& cell = cells_[selfcheck_cursor_ % cells_.size()];
  selfcheck_cursor_ = (selfcheck_cursor_ + 1) % cells_.size();
  std::uint64_t recomputed = 0;
  for (const auto& [vip, mirror] : cell.vips) {
    recomputed ^= VipDigest::of(vip, present_members(mirror));
  }
  std::uint64_t desired = 0;
  for (const auto& [vip, mirror] : desired_) {
    desired ^= VipDigest::of(vip, present_members(mirror));
  }
  if (recomputed != cell.digest || desired != desired_digest_) {
    ++selfcheck_failures_;
  }
}

bool FleetObserver::eval_due_locked() {
  if (options_.eval_every == 0 || --eval_countdown_ == 0) {
    eval_countdown_ = options_.eval_every;
    return true;
  }
  return false;
}

void FleetObserver::check_switches_locked(sim::Time now, std::size_t touched) {
  if (touched == kNoSwitch) return;  // Pure appends check nothing.
  for (std::size_t sw = 0; sw < cells_.size(); ++sw) {
    if (touched != kAllSwitches && touched != sw) continue;
    DivergenceFinding finding;
    if (check_switch_locked(sw, now, &finding)) {
      unfired_.push_back(std::move(finding));
    }
  }
}

void FleetObserver::tick_locked(sim::Time now, std::size_t touched) {
  ++feed_events_;
  maybe_selfcheck_locked();
  // The O(switches) lag/SLO recompute is amortized over the feed stream;
  // explicit evaluate() and lifecycle edges (kAllSwitches) always run it.
  if (eval_due_locked() || touched == kAllSwitches) {
    evaluate_locked(now);
  }
  check_switches_locked(now, touched);
}

void FleetObserver::fire(std::vector<DivergenceFinding> findings) {
  if (!divergence_cb_) return;
  for (const auto& finding : findings) divergence_cb_(finding);
}

void FleetObserver::evaluate(sim::Time now) {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    tick_locked(now, kAllSwitches);
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

bool FleetObserver::verify_digests() {
  bool ok = true;
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    for (const SwitchCell& cell : cells_) {
      std::uint64_t recomputed = 0;
      for (const auto& [vip, mirror] : cell.vips) {
        std::uint64_t vip_digest = VipDigest::of(vip, present_members(mirror));
        if (vip_digest != mirror.digest) ok = false;
        recomputed ^= vip_digest;
      }
      if (recomputed != cell.digest) ok = false;
    }
    std::uint64_t desired = 0;
    for (const auto& [vip, mirror] : desired_) {
      std::uint64_t vip_digest = VipDigest::of(vip, present_members(mirror));
      if (vip_digest != mirror.digest) ok = false;
      desired ^= vip_digest;
    }
    if (desired != desired_digest_) ok = false;
    ++selfchecks_;
    if (!ok) ++selfcheck_failures_;
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
  return ok;
}

// --- Introspection -----------------------------------------------------------

void FleetObserver::drain() {
  std::vector<DivergenceFinding> fired;
  {
    const sr::MutexLock lock(mu_);
    drain_locked();
    fired = std::exchange(unfired_, {});
  }
  fire(std::move(fired));
}

std::uint64_t FleetObserver::head() {
  drain();
  const sr::MutexLock lock(mu_);
  return head_;
}

std::uint64_t FleetObserver::watermark(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return cells_.at(sw).watermark;
}

std::uint64_t FleetObserver::effective_watermark(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return effective_locked(cells_.at(sw));
}

std::uint64_t FleetObserver::lag_positions(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return cells_.at(sw).cached_lag;
}

sim::Time FleetObserver::lag_age(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return cells_.at(sw).cached_age;
}

FleetObserver::SwitchState FleetObserver::state(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return cells_.at(sw).state;
}

std::uint64_t FleetObserver::desired_digest() {
  drain();
  const sr::MutexLock lock(mu_);
  return desired_digest_;
}

std::uint64_t FleetObserver::switch_digest(std::size_t sw) {
  drain();
  const sr::MutexLock lock(mu_);
  return cells_.at(sw).digest;
}

bool FleetObserver::slo_ok() {
  drain();
  const sr::MutexLock lock(mu_);
  return slo_ok_;
}

std::uint64_t FleetObserver::slo_transitions() {
  drain();
  const sr::MutexLock lock(mu_);
  return slo_transitions_;
}

sim::Time FleetObserver::slo_burn_ns() {
  drain();
  const sr::MutexLock lock(mu_);
  return slo_burn_ns_;
}

std::uint64_t FleetObserver::divergences() {
  drain();
  const sr::MutexLock lock(mu_);
  return divergences_;
}

std::vector<DivergenceFinding> FleetObserver::findings() {
  drain();
  const sr::MutexLock lock(mu_);
  return findings_;
}

std::uint64_t FleetObserver::selfchecks() {
  drain();
  const sr::MutexLock lock(mu_);
  return selfchecks_;
}

std::uint64_t FleetObserver::selfcheck_failures() {
  drain();
  const sr::MutexLock lock(mu_);
  return selfcheck_failures_;
}

std::uint64_t FleetObserver::unverifiable_checks() {
  drain();
  const sr::MutexLock lock(mu_);
  return unverifiable_;
}

void FleetObserver::set_divergence_callback(DivergenceCallback cb) {
  divergence_cb_ = std::move(cb);
}

void FleetObserver::bind_metrics(MetricsRegistry& registry) {
  registry.register_callback(
      "silkroad_fleet_journal_lag_slo_ok", MetricKind::kGauge,
      [this] {
        const sr::MutexLock lock(mu_);
        return slo_ok_ ? 1.0 : 0.0;
      },
      "1 while the convergence SLO holds (lagging fraction within target)");
  registry.register_callback(
      "silkroad_fleet_lagging_fraction", MetricKind::kGauge,
      [this] {
        const sr::MutexLock lock(mu_);
        return lagging_fraction_;
      },
      "Fraction of live switches currently in the lagging hysteresis state");
  registry.register_callback(
      "silkroad_fleet_slo_burn_ns_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(slo_burn_ns_);
      },
      "Sim-time nanoseconds spent with the convergence SLO violated");
  registry.register_callback(
      "silkroad_fleet_slo_transitions_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(slo_transitions_);
      },
      "Convergence SLO ok<->violated flips");
  registry.register_callback(
      "silkroad_fleet_divergences_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(divergences_);
      },
      "Silent divergences detected (digest mismatch at equal watermark)");
  registry.register_callback(
      "silkroad_fleet_digest_selfchecks_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(selfchecks_);
      },
      "Full-recompute digest self-checks performed");
  registry.register_callback(
      "silkroad_fleet_digest_selfcheck_failures_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(selfcheck_failures_);
      },
      "Digest self-checks where incremental and recomputed values disagreed");
  registry.register_callback(
      "silkroad_fleet_unverifiable_checks_total", MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(unverifiable_);
      },
      "Digest checks skipped because history was compacted past the "
      "switch's watermark");
  h_lag_ = registry.histogram(
      "silkroad_fleet_lag_positions",
      "Per-switch watermark lag in journal positions, recorded per "
      "evaluation");
  for (std::size_t sw = 0; sw < switch_count_; ++sw) {
    const std::string labels = "switch=\"" + std::to_string(sw) + "\"";
    registry.register_callback(
        "silkroad_fleet_switch_lag_positions", MetricKind::kGauge,
        [this, sw] {
          const sr::MutexLock lock(mu_);
          return static_cast<double>(cells_[sw].cached_lag);
        },
        "Journal positions between the head and this switch's effective "
        "watermark",
        labels);
    registry.register_callback(
        "silkroad_fleet_switch_lag_age_ns", MetricKind::kGauge,
        [this, sw] {
          const sr::MutexLock lock(mu_);
          return static_cast<double>(cells_[sw].cached_age);
        },
        "Sim-time age of this switch's oldest unapplied journal mutation",
        labels);
  }
}

// --- Rendering ---------------------------------------------------------------

std::string FleetObserver::to_text() {
  // Render surface: may run on the scrape thread, so it must not touch the
  // simulation-thread-only feed journal. It renders the last drained fold
  // (staleness bounded by drain_every — header concurrency contract).
  const sr::MutexLock lock(mu_);
  std::string out;
  out += "=== fleet convergence observatory (DESIGN.md \xC2\xA7"
         "17) ===\n";
  append(out, "journal head: %" PRIu64 "\n", head_);
  // Lag distribution over the current cells (order statistics, not the
  // bound histogram, so the text view needs no registry).
  std::vector<std::uint64_t> lags;
  std::size_t live = 0, lagging = 0;
  for (const SwitchCell& cell : cells_) {
    if (cell.state == SwitchState::kDown) continue;
    ++live;
    lags.push_back(cell.cached_lag);
    if (cell.lagging) ++lagging;
  }
  std::sort(lags.begin(), lags.end());
  const auto quantile = [&lags](double q) -> std::uint64_t {
    if (lags.empty()) return 0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(lags.size() - 1) + 0.5);
    return lags[std::min(idx, lags.size() - 1)];
  };
  append(out,
         "lag positions: p50=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64
         " (over %zu live switches)\n",
         quantile(0.50), quantile(0.99), lags.empty() ? 0 : lags.back(),
         live);
  append(out,
         "slo: %s (target %.2f%% within enter=%" PRIu64 "/exit=%" PRIu64
         " positions; lagging %zu/%zu)\n",
         slo_ok_ ? "ok" : "VIOLATED", 100.0 * options_.slo_target,
         options_.lag_enter, options_.lag_exit, lagging, live);
  append(out, "slo burn: %.6f s over %" PRIu64 " transition(s)\n",
         sim::to_seconds(slo_burn_ns_), slo_transitions_);
  append(out,
         "digests: desired=0x%016" PRIx64 " selfchecks=%" PRIu64
         " failures=%" PRIu64 " unverifiable=%" PRIu64 "\n",
         desired_digest_, selfchecks_, selfcheck_failures_, unverifiable_);
  append(out, "divergences: %" PRIu64 "%s\n", divergences_,
         divergences_ == 0 ? "" : "  << SILENT DIVERGENCE");
  out += "switch  state      watermark  effective  lag  age_ms   digest"
         "              resync\n";
  for (std::size_t sw = 0; sw < cells_.size(); ++sw) {
    const SwitchCell& cell = cells_[sw];
    std::string resync = "-";
    if (!cell.sessions.empty()) {
      const auto& last = cell.sessions.back();
      resync = std::string(kind_name(last.kind)) +
               (last.ended == 0 ? " (open)" : "");
    }
    append(out,
           "%-7zu %-10s %-10" PRIu64 " %-10" PRIu64 " %-4" PRIu64
           " %-8.3f 0x%016" PRIx64 "  %s%s\n",
           sw, state_name(cell.state), cell.watermark,
           effective_locked(cell), cell.cached_lag,
           static_cast<double>(cell.cached_age) / 1e6, cell.digest,
           resync.c_str(), cell.divergent ? "  DIVERGED" : "");
  }
  for (const auto& finding : findings_) {
    out += "\n";
    out += finding.to_text();
  }
  return out;
}

std::string FleetObserver::to_json() {
  // Render surface: last drained fold, no feed-journal access — see
  // to_text().
  const sr::MutexLock lock(mu_);
  std::string out;
  append(out, "{\"journal_head\":%" PRIu64, head_);
  std::vector<std::uint64_t> lags;
  std::size_t live = 0, lagging = 0;
  for (const SwitchCell& cell : cells_) {
    if (cell.state == SwitchState::kDown) continue;
    ++live;
    lags.push_back(cell.cached_lag);
    if (cell.lagging) ++lagging;
  }
  std::sort(lags.begin(), lags.end());
  const auto quantile = [&lags](double q) -> std::uint64_t {
    if (lags.empty()) return 0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(lags.size() - 1) + 0.5);
    return lags[std::min(idx, lags.size() - 1)];
  };
  append(out,
         ",\"lag\":{\"p50\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64
         ",\"live\":%zu,\"lagging\":%zu}",
         quantile(0.50), quantile(0.99), lags.empty() ? 0 : lags.back(), live,
         lagging);
  append(out,
         ",\"slo\":{\"ok\":%s,\"target\":%s,\"lag_enter\":%" PRIu64
         ",\"lag_exit\":%" PRIu64 ",\"burn_ns\":%" PRIu64
         ",\"transitions\":%" PRIu64 "}",
         slo_ok_ ? "true" : "false",
         format_number(options_.slo_target).c_str(), options_.lag_enter,
         options_.lag_exit, slo_burn_ns_, slo_transitions_);
  append(out,
         ",\"digest\":{\"desired\":\"0x%016" PRIx64
         "\",\"selfchecks\":%" PRIu64 ",\"selfcheck_failures\":%" PRIu64
         ",\"unverifiable\":%" PRIu64 "}",
         desired_digest_, selfchecks_, selfcheck_failures_, unverifiable_);
  append(out, ",\"divergences\":%" PRIu64, divergences_);
  out += ",\"switches\":[";
  for (std::size_t sw = 0; sw < cells_.size(); ++sw) {
    const SwitchCell& cell = cells_[sw];
    if (sw != 0) out += ",";
    append(out,
           "\n  {\"index\":%zu,\"state\":\"%s\",\"watermark\":%" PRIu64
           ",\"effective_watermark\":%" PRIu64 ",\"lag_positions\":%" PRIu64
           ",\"lag_age_ns\":%" PRIu64 ",\"digest\":\"0x%016" PRIx64
           "\",\"lagging\":%s,\"divergent\":%s",
           sw, state_name(cell.state), cell.watermark,
           effective_locked(cell), cell.cached_lag, cell.cached_age,
           cell.digest, cell.lagging ? "true" : "false",
           cell.divergent ? "true" : "false");
    out += ",\"sessions\":[";
    for (std::size_t i = 0; i < cell.sessions.size(); ++i) {
      const auto& s = cell.sessions[i];
      if (i != 0) out += ",";
      append(out,
             "{\"session_id\":%" PRIu64 ",\"kind\":\"%s\",\"began_ns\":%"
             PRIu64 ",\"ended_ns\":%" PRIu64 "}",
             s.session_id, kind_name(s.kind), s.began, s.ended);
    }
    out += "]}";
  }
  out += "\n],\"findings\":[";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  " + findings_[i].to_json();
  }
  out += "\n]}\n";
  return out;
}

}  // namespace silkroad::obs
