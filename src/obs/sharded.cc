#include "obs/sharded.h"

#include <algorithm>

namespace silkroad::obs {

namespace detail {

namespace {
std::atomic<std::size_t> next_thread_slot{0};
}  // namespace

std::size_t this_thread_stripe() noexcept {
  // Lazy per-thread registration: the first bump a thread makes claims the
  // next dense slot; the thread_local caches it so subsequent calls are one
  // TLS load. Slots are never recycled — a counter only wraps past kStripes
  // if a run churns through more threads than stripes, which merely shares
  // stripes (correct, just more coherence traffic).
  thread_local const std::size_t slot =
      next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

ShardedHistogram::ShardedHistogram(const Histogram::Options& options)
    : log2_sub_(std::min(options.log2_subdivisions, 6u)),
      bucket_total_(hdr_bucket_count(log2_sub_)) {
  for (Stripe& stripe : stripes_) {
    stripe.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bucket_total_);
  }
}

std::uint64_t ShardedHistogram::bucket_value(std::size_t index) const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.buckets[index].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ShardedHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_total_; ++i) total += bucket_value(i);
  return total;
}

std::uint64_t ShardedHistogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace silkroad::obs
