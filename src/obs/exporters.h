// Exporters for the telemetry layer (DESIGN.md §9): render a metrics
// Snapshot as Prometheus text-format or JSON, and a TraceRing as Chrome
// trace-event JSON loadable in chrome://tracing / https://ui.perfetto.dev.
//
// All exporters are pure string builders over immutable snapshots — safe to
// call at any point of a run; write_file() is the only one touching the
// filesystem (cstdio, atomicity not required for telemetry dumps).
//
// Concurrency (DESIGN.md §13): exporters hold no state, so they carry no
// SR_GUARDED_BY annotations — thread safety comes from their inputs.
// Snapshot/TraceRing values passed in must be owned by the calling thread
// (MetricsRegistry::snapshot() returns a private copy, which is why the
// ScrapeServer may render one while the simulation keeps counting).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace silkroad::obs {

/// Formats a double the way Prometheus/JSON expect: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string format_number(double v);

/// Minimal JSON string escaping (quotes, backslash, newline, tab).
std::string json_escape(std::string_view s);

/// Prometheus exposition text format (version 0.0.4): "# HELP"/"# TYPE"
/// headers per metric family, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`.
std::string to_prometheus(const Snapshot& snapshot);

/// JSON object {"metrics": [{"name", "labels", "kind", "value", ...}]}.
/// Histograms carry "count", "sum", and a "buckets" array of {le, count}.
std::string to_json(const Snapshot& snapshot);

/// Latency-profile summary served as /profile: every non-empty histogram
/// series rendered as {"name","labels","count","sum","mean","p50","p90",
/// "p99","p999"}, plus a "sampling" array of the sampling-profiler counters
/// (*_sampled_packets_total, *_profiler_reentry_total) so the sampled
/// population and any re-entry anomalies are visible next to the quantiles.
std::string to_profile_json(const Snapshot& snapshot);

/// Chrome trace-event JSON. The 3-step PCC protocol renders as duration
/// events (update-step1-open opens a span on the VIP's track, update-finish
/// closes it, the flip is an instant marker inside); all other events are
/// instants on their scope's track. Timestamps are sim-time microseconds.
std::string to_chrome_trace(const TraceRing& ring);

/// Writes `content` to `path` (truncating). Returns false on I/O error.
bool write_file(const std::string& path, std::string_view content);

}  // namespace silkroad::obs
