#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

/// ":p50"-style suffix for a derived quantile series (q in [0,1]).
std::string quantile_suffix(double q) {
  char buf[16];
  std::snprintf(buf, sizeof buf, ":p%g", q * 100.0);
  return buf;
}

/// Cumulative count of `buckets` at inclusive bound `upper` (the count of
/// recorded values <= upper).
std::uint64_t cumulative_at(const std::vector<HistogramBucket>& buckets,
                            std::uint64_t upper) {
  std::uint64_t cumulative = 0;
  for (const auto& bucket : buckets) {
    if (bucket.upper_bound > upper) break;
    cumulative = bucket.cumulative_count;
  }
  return cumulative;
}

/// Extracts `key`'s value from a pre-rendered label string like
/// vip="20.0.0.1:80",dip="10.0.0.1:20". Returns false when the key is
/// absent. Values are assumed quote-free (endpoints and identifiers are).
bool label_value(const std::string& labels, const std::string& key,
                 std::string& out) {
  const std::string needle = key + "=\"";
  std::size_t pos = 0;
  while ((pos = labels.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || labels[pos - 1] == ',') {
      const std::size_t start = pos + needle.size();
      const std::size_t end = labels.find('"', start);
      if (end == std::string::npos) return false;
      out = labels.substr(start, end - start);
      return true;
    }
    ++pos;
  }
  return false;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(Source source, const Options& options)
    : source_(std::move(source)), options_(options) {
  if (options_.interval == 0) options_.interval = 1;
  if (options_.capacity == 0) options_.capacity = 1;
}

TimeSeriesRecorder::TimeSeriesRecorder(const MetricsRegistry& registry,
                                       const Options& options)
    : TimeSeriesRecorder([&registry] { return registry.snapshot(); },
                         options) {}

void TimeSeriesRecorder::push(const SeriesKey& key, sim::Time at,
                              double value) {
  std::deque<Point>& points = series_[key];
  points.push_back({at, value});
  while (points.size() > options_.capacity) points.pop_front();
}

void TimeSeriesRecorder::sample(sim::Time at) {
  Snapshot snap = source_();  // outside the lock: sources take their own
  const sr::MutexLock lock(mu_);
  const bool derive = have_prev_ && at > prev_at_;
  const double dt = derive ? sim::to_seconds(at - prev_at_) : 0.0;
  for (const auto& sample : snap.samples) {
    if (sample.kind != MetricKind::kHistogram) {
      push({sample.name, sample.labels}, at, sample.value);
      if (sample.kind == MetricKind::kCounter && derive) {
        const MetricSample* prev = prev_.find(sample.name, sample.labels);
        const double before = prev == nullptr ? 0.0 : prev->value;
        const double delta = std::max(0.0, sample.value - before);
        push({sample.name + ":rate", sample.labels}, at, delta / dt);
      }
      continue;
    }
    if (!derive) continue;
    const MetricSample* prev = prev_.find(sample.name, sample.labels);
    const std::uint64_t prev_count = prev == nullptr ? 0 : prev->count;
    const double prev_sum = prev == nullptr ? 0.0 : prev->sum;
    if (sample.count <= prev_count) continue;  // quiet interval: leave a gap
    const std::uint64_t delta_count = sample.count - prev_count;
    push({sample.name + ":count_rate", sample.labels}, at,
         static_cast<double>(delta_count) / dt);
    push({sample.name + ":mean", sample.labels}, at,
         (sample.sum - prev_sum) / static_cast<double>(delta_count));
    // Interval-local distribution: de-cumulate against the previous
    // snapshot bound-by-bound (the bucket set only grows, so every previous
    // bound appears in the current list).
    MetricSample delta;
    delta.kind = MetricKind::kHistogram;
    delta.count = delta_count;
    std::uint64_t prev_delta_cum = 0;
    std::uint64_t prev_bound = 0;
    bool have_prev_bound = false;
    for (const auto& bucket : sample.buckets) {
      const std::uint64_t before =
          prev == nullptr ? 0 : cumulative_at(prev->buckets, bucket.upper_bound);
      const std::uint64_t delta_cum = bucket.cumulative_count - before;
      if (delta_cum > prev_delta_cum) {
        // This bucket gained mass in the interval. Emit a zero-delta floor
        // marker at the preceding bound first (same trick as the snapshot's
        // floor markers) so quantile interpolation stays inside this bucket
        // even when the buckets below it only held previous-interval mass.
        if (have_prev_bound &&
            (delta.buckets.empty() ||
             delta.buckets.back().upper_bound < prev_bound)) {
          delta.buckets.push_back({prev_bound, prev_delta_cum});
        }
        delta.buckets.push_back({bucket.upper_bound, delta_cum});
      }
      prev_delta_cum = delta_cum;
      prev_bound = bucket.upper_bound;
      have_prev_bound = true;
    }
    for (const double q : {options_.quantile_lo, options_.quantile_hi}) {
      push({sample.name + quantile_suffix(q), sample.labels}, at,
           histogram_quantile(delta, q));
    }
  }
  compute_imbalance(snap, at, derive);
  prev_ = std::move(snap);
  prev_at_ = at;
  have_prev_ = true;
  ++samples_;
}

void TimeSeriesRecorder::compute_imbalance(const Snapshot& snap, sim::Time at,
                                           bool derive) {
  for (const std::string& metric : options_.imbalance_metrics) {
    // Group the metric's per-DIP samples by VIP. Gauges contribute their
    // level; counters the per-interval delta (so the index describes this
    // interval's arrivals, not since-boot totals).
    std::map<std::string, std::vector<double>> by_vip;
    for (const auto& sample : snap.samples) {
      if (sample.name != metric ||
          sample.kind == MetricKind::kHistogram) {
        continue;
      }
      std::string vip;
      std::string dip;
      if (!label_value(sample.labels, "vip", vip) ||
          !label_value(sample.labels, "dip", dip)) {
        continue;
      }
      double v = sample.value;
      if (sample.kind == MetricKind::kCounter) {
        if (!derive) continue;
        const MetricSample* prev = prev_.find(sample.name, sample.labels);
        v = std::max(0.0, sample.value - (prev == nullptr ? 0.0 : prev->value));
      }
      by_vip[vip].push_back(v);
    }
    for (const auto& [vip, values] : by_vip) {
      double sum = 0;
      double max = 0;
      for (const double v : values) {
        sum += v;
        max = std::max(max, v);
      }
      const double n = static_cast<double>(values.size());
      const double mean = sum / n;
      if (mean <= 0.0) continue;  // idle interval: gap, not a 0/0 spike
      double var = 0;
      for (const double v : values) var += (v - mean) * (v - mean);
      var /= n;
      ImbalanceStat stat;
      stat.at = at;
      stat.dips = values.size();
      stat.mean = mean;
      stat.max = max;
      stat.max_mean = max / mean;
      stat.cv = std::sqrt(var) / mean;
      const std::string label = "vip=\"" + vip + "\"";
      push({metric + ":imbalance_maxmean", label}, at, stat.max_mean);
      push({metric + ":imbalance_cv", label}, at, stat.cv);
      imbalance_[{metric, vip}] = stat;
    }
  }
}

void TimeSeriesRecorder::attach(sim::Simulator& sim, sim::Time until) {
  detach();
  sim_ = &sim;
  until_ = until;
  sample(sim.now());
  schedule_next();
}

void TimeSeriesRecorder::schedule_next() {
  const sim::Time now = sim_->now();
  if (now >= until_ || until_ - now < options_.interval) return;
  pending_ = sim_->schedule_after(options_.interval, [this] {
    sample(sim_->now());
    schedule_next();
  });
}

void TimeSeriesRecorder::detach() { pending_.cancel(); }

std::vector<TimeSeriesRecorder::Point> TimeSeriesRecorder::find(
    const std::string& name, const std::string& labels) const {
  const sr::MutexLock lock(mu_);
  const auto it = series_.find({name, labels});
  if (it == series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

TimeSeriesRecorder::WindowStats TimeSeriesRecorder::window(
    const std::string& name, const std::string& labels,
    std::size_t last_n) const {
  const sr::MutexLock lock(mu_);
  WindowStats stats;
  const auto it = series_.find({name, labels});
  if (it == series_.end() || it->second.empty()) return stats;
  const std::deque<Point>& points = it->second;
  const std::size_t n =
      last_n == 0 ? points.size() : std::min(last_n, points.size());
  double sum = 0;
  for (std::size_t i = points.size() - n; i < points.size(); ++i) {
    const double v = points[i].value;
    if (stats.count == 0 || v < stats.min) stats.min = v;
    if (stats.count == 0 || v > stats.max) stats.max = v;
    sum += v;
    ++stats.count;
  }
  stats.mean = sum / static_cast<double>(stats.count);
  return stats;
}

std::size_t TimeSeriesRecorder::sample_count() const {
  const sr::MutexLock lock(mu_);
  return samples_;
}

std::size_t TimeSeriesRecorder::series_count() const {
  const sr::MutexLock lock(mu_);
  return series_.size();
}

std::string TimeSeriesRecorder::to_csv() const {
  const sr::MutexLock lock(mu_);
  std::string out = "t_seconds,name,labels,value\n";
  for (const auto& [key, points] : series_) {
    std::string labels = "\"";
    for (const char c : key.second) {
      labels += c;
      if (c == '"') labels += '"';  // CSV escaping doubles quotes
    }
    labels += "\"";
    for (const Point& point : points) {
      out += format_number(sim::to_seconds(point.at));
      out += ",";
      out += key.first;
      out += ",";
      out += labels;
      out += ",";
      out += format_number(point.value);
      out += "\n";
    }
  }
  return out;
}

TimeSeriesRecorder::ImbalanceStat TimeSeriesRecorder::imbalance(
    const std::string& metric, const std::string& vip) const {
  const sr::MutexLock lock(mu_);
  const auto it = imbalance_.find({metric, vip});
  return it == imbalance_.end() ? ImbalanceStat{} : it->second;
}

void TimeSeriesRecorder::window_of(const std::string& name,
                                   const std::string& labels, double& mean,
                                   double& max, std::size_t& points) const {
  mean = 0;
  max = 0;
  points = 0;
  const auto it = series_.find({name, labels});
  if (it == series_.end() || it->second.empty()) return;
  double sum = 0;
  for (const Point& point : it->second) {
    sum += point.value;
    max = std::max(max, point.value);
  }
  points = it->second.size();
  mean = sum / static_cast<double>(points);
}

std::string TimeSeriesRecorder::imbalance_json() const {
  const sr::MutexLock lock(mu_);
  std::string out = "{\"interval_ns\":";
  out += std::to_string(options_.interval);
  out += ",\"metrics\":[";
  bool first_metric = true;
  for (const std::string& metric : options_.imbalance_metrics) {
    if (!first_metric) out += ",";
    first_metric = false;
    out += "\n  {\"metric\":\"";
    out += json_escape(metric);
    out += "\",\"vips\":[";
    bool first_vip = true;
    for (const auto& [key, stat] : imbalance_) {
      if (key.first != metric) continue;
      if (!first_vip) out += ",";
      first_vip = false;
      const std::string label = "vip=\"" + key.second + "\"";
      double mm_mean = 0, mm_max = 0, cv_mean = 0, cv_max = 0;
      std::size_t mm_points = 0, cv_points = 0;
      window_of(metric + ":imbalance_maxmean", label, mm_mean, mm_max,
                mm_points);
      window_of(metric + ":imbalance_cv", label, cv_mean, cv_max, cv_points);
      out += "\n    {\"vip\":\"";
      out += json_escape(key.second);
      out += "\",\"at_seconds\":";
      out += format_number(sim::to_seconds(stat.at));
      out += ",\"dips\":";
      out += std::to_string(stat.dips);
      out += ",\"mean\":";
      out += format_number(stat.mean);
      out += ",\"max\":";
      out += format_number(stat.max);
      out += ",\"max_mean\":";
      out += format_number(stat.max_mean);
      out += ",\"cv\":";
      out += format_number(stat.cv);
      out += ",\"window\":{\"points\":";
      out += std::to_string(mm_points);
      out += ",\"maxmean_mean\":";
      out += format_number(mm_mean);
      out += ",\"maxmean_max\":";
      out += format_number(mm_max);
      out += ",\"cv_mean\":";
      out += format_number(cv_mean);
      out += ",\"cv_max\":";
      out += format_number(cv_max);
      out += "}}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string TimeSeriesRecorder::to_json() const {
  const sr::MutexLock lock(mu_);
  std::string out = "{\"interval_ns\":";
  out += std::to_string(options_.interval);
  out += ",\"samples\":";
  out += std::to_string(samples_);
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [key, points] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"";
    out += json_escape(key.first);
    out += "\",\"labels\":\"";
    out += json_escape(key.second);
    out += "\",\"points\":[";
    bool first_point = true;
    for (const Point& point : points) {
      if (!first_point) out += ",";
      first_point = false;
      out += "[";
      out += format_number(sim::to_seconds(point.at));
      out += ",";
      out += format_number(point.value);
      out += "]";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace silkroad::obs
