#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "obs/exporters.h"

namespace silkroad::obs {

namespace {

/// ":p50"-style suffix for a derived quantile series (q in [0,1]).
std::string quantile_suffix(double q) {
  char buf[16];
  std::snprintf(buf, sizeof buf, ":p%g", q * 100.0);
  return buf;
}

/// Cumulative count of `buckets` at inclusive bound `upper` (the count of
/// recorded values <= upper).
std::uint64_t cumulative_at(const std::vector<HistogramBucket>& buckets,
                            std::uint64_t upper) {
  std::uint64_t cumulative = 0;
  for (const auto& bucket : buckets) {
    if (bucket.upper_bound > upper) break;
    cumulative = bucket.cumulative_count;
  }
  return cumulative;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(Source source, const Options& options)
    : source_(std::move(source)), options_(options) {
  if (options_.interval == 0) options_.interval = 1;
  if (options_.capacity == 0) options_.capacity = 1;
}

TimeSeriesRecorder::TimeSeriesRecorder(const MetricsRegistry& registry,
                                       const Options& options)
    : TimeSeriesRecorder([&registry] { return registry.snapshot(); },
                         options) {}

void TimeSeriesRecorder::push(const SeriesKey& key, sim::Time at,
                              double value) {
  std::deque<Point>& points = series_[key];
  points.push_back({at, value});
  while (points.size() > options_.capacity) points.pop_front();
}

void TimeSeriesRecorder::sample(sim::Time at) {
  Snapshot snap = source_();  // outside the lock: sources take their own
  const sr::MutexLock lock(mu_);
  const bool derive = have_prev_ && at > prev_at_;
  const double dt = derive ? sim::to_seconds(at - prev_at_) : 0.0;
  for (const auto& sample : snap.samples) {
    if (sample.kind != MetricKind::kHistogram) {
      push({sample.name, sample.labels}, at, sample.value);
      if (sample.kind == MetricKind::kCounter && derive) {
        const MetricSample* prev = prev_.find(sample.name, sample.labels);
        const double before = prev == nullptr ? 0.0 : prev->value;
        const double delta = std::max(0.0, sample.value - before);
        push({sample.name + ":rate", sample.labels}, at, delta / dt);
      }
      continue;
    }
    if (!derive) continue;
    const MetricSample* prev = prev_.find(sample.name, sample.labels);
    const std::uint64_t prev_count = prev == nullptr ? 0 : prev->count;
    const double prev_sum = prev == nullptr ? 0.0 : prev->sum;
    if (sample.count <= prev_count) continue;  // quiet interval: leave a gap
    const std::uint64_t delta_count = sample.count - prev_count;
    push({sample.name + ":count_rate", sample.labels}, at,
         static_cast<double>(delta_count) / dt);
    push({sample.name + ":mean", sample.labels}, at,
         (sample.sum - prev_sum) / static_cast<double>(delta_count));
    // Interval-local distribution: de-cumulate against the previous
    // snapshot bound-by-bound (the bucket set only grows, so every previous
    // bound appears in the current list).
    MetricSample delta;
    delta.kind = MetricKind::kHistogram;
    delta.count = delta_count;
    std::uint64_t prev_delta_cum = 0;
    std::uint64_t prev_bound = 0;
    bool have_prev_bound = false;
    for (const auto& bucket : sample.buckets) {
      const std::uint64_t before =
          prev == nullptr ? 0 : cumulative_at(prev->buckets, bucket.upper_bound);
      const std::uint64_t delta_cum = bucket.cumulative_count - before;
      if (delta_cum > prev_delta_cum) {
        // This bucket gained mass in the interval. Emit a zero-delta floor
        // marker at the preceding bound first (same trick as the snapshot's
        // floor markers) so quantile interpolation stays inside this bucket
        // even when the buckets below it only held previous-interval mass.
        if (have_prev_bound &&
            (delta.buckets.empty() ||
             delta.buckets.back().upper_bound < prev_bound)) {
          delta.buckets.push_back({prev_bound, prev_delta_cum});
        }
        delta.buckets.push_back({bucket.upper_bound, delta_cum});
      }
      prev_delta_cum = delta_cum;
      prev_bound = bucket.upper_bound;
      have_prev_bound = true;
    }
    for (const double q : {options_.quantile_lo, options_.quantile_hi}) {
      push({sample.name + quantile_suffix(q), sample.labels}, at,
           histogram_quantile(delta, q));
    }
  }
  prev_ = std::move(snap);
  prev_at_ = at;
  have_prev_ = true;
  ++samples_;
}

void TimeSeriesRecorder::attach(sim::Simulator& sim, sim::Time until) {
  detach();
  sim_ = &sim;
  until_ = until;
  sample(sim.now());
  schedule_next();
}

void TimeSeriesRecorder::schedule_next() {
  const sim::Time now = sim_->now();
  if (now >= until_ || until_ - now < options_.interval) return;
  pending_ = sim_->schedule_after(options_.interval, [this] {
    sample(sim_->now());
    schedule_next();
  });
}

void TimeSeriesRecorder::detach() { pending_.cancel(); }

std::vector<TimeSeriesRecorder::Point> TimeSeriesRecorder::find(
    const std::string& name, const std::string& labels) const {
  const sr::MutexLock lock(mu_);
  const auto it = series_.find({name, labels});
  if (it == series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

TimeSeriesRecorder::WindowStats TimeSeriesRecorder::window(
    const std::string& name, const std::string& labels,
    std::size_t last_n) const {
  const sr::MutexLock lock(mu_);
  WindowStats stats;
  const auto it = series_.find({name, labels});
  if (it == series_.end() || it->second.empty()) return stats;
  const std::deque<Point>& points = it->second;
  const std::size_t n =
      last_n == 0 ? points.size() : std::min(last_n, points.size());
  double sum = 0;
  for (std::size_t i = points.size() - n; i < points.size(); ++i) {
    const double v = points[i].value;
    if (stats.count == 0 || v < stats.min) stats.min = v;
    if (stats.count == 0 || v > stats.max) stats.max = v;
    sum += v;
    ++stats.count;
  }
  stats.mean = sum / static_cast<double>(stats.count);
  return stats;
}

std::size_t TimeSeriesRecorder::sample_count() const {
  const sr::MutexLock lock(mu_);
  return samples_;
}

std::size_t TimeSeriesRecorder::series_count() const {
  const sr::MutexLock lock(mu_);
  return series_.size();
}

std::string TimeSeriesRecorder::to_csv() const {
  const sr::MutexLock lock(mu_);
  std::string out = "t_seconds,name,labels,value\n";
  for (const auto& [key, points] : series_) {
    std::string labels = "\"";
    for (const char c : key.second) {
      labels += c;
      if (c == '"') labels += '"';  // CSV escaping doubles quotes
    }
    labels += "\"";
    for (const Point& point : points) {
      out += format_number(sim::to_seconds(point.at));
      out += ",";
      out += key.first;
      out += ",";
      out += labels;
      out += ",";
      out += format_number(point.value);
      out += "\n";
    }
  }
  return out;
}

std::string TimeSeriesRecorder::to_json() const {
  const sr::MutexLock lock(mu_);
  std::string out = "{\"interval_ns\":";
  out += std::to_string(options_.interval);
  out += ",\"samples\":";
  out += std::to_string(samples_);
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [key, points] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"";
    out += json_escape(key.first);
    out += "\",\"labels\":\"";
    out += json_escape(key.second);
    out += "\",\"points\":[";
    bool first_point = true;
    for (const Point& point : points) {
      if (!first_point) out += ",";
      first_point = false;
      out += "[";
      out += format_number(sim::to_seconds(point.at));
      out += ",";
      out += format_number(point.value);
      out += "]";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace silkroad::obs
