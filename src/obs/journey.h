// Flow-journey reconstruction from the trace ring (DESIGN.md §10).
//
// The TraceRing is a flat event stream; a PCC question ("did flow X keep its
// DIP across the update?") is per-connection. Flow-identified events carry
// the connection's 64-bit five-tuple hash in an arg slot (arg0 for
// learn/fallback/aging/transit events, arg1 for ConnTable cuckoo events —
// see trace.h); FlowJourneyTracer groups the ring by that id into
// chronological journeys:
//
//   learn → transit-false-positive? → cuckoo-insert | insert-fail →
//   software-fallback? → aged-out
//
// and attaches the VIP's 3-step update-protocol events that overlapped the
// journey as context, so one flow's timeline reads directly against the
// version flips that could have broken it. Journeys export as Chrome
// trace-event JSON (one track per flow, a duration span from learn to
// install) or as auditor-style text.
//
// Reconstruction is a pure function of the ring contents — sampled by
// nature: events lost to ring wraparound simply truncate journeys.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace silkroad::obs {

/// One connection's event timeline plus overlapping VIP update context.
struct FlowJourney {
  std::uint64_t flow_id = 0;           ///< five-tuple hash, never 0
  std::uint32_t scope = kNoScope;      ///< VIP scope, first one seen
  std::uint32_t version = kNoVersion;  ///< DIP-pool version, first one seen
  sim::Time first = 0;                 ///< timestamp of the first event
  sim::Time last = 0;                  ///< timestamp of the last event
  std::vector<TraceEvent> events;      ///< this flow's events, oldest first
  /// VIP update-protocol events (step1-open / flip / finish) on the same
  /// scope within [first, last], oldest first.
  std::vector<TraceEvent> context;

  bool installed = false;          ///< reached the ConnTable (cuckoo insert)
  bool install_failed = false;     ///< BFS budget exhausted at least once
  bool software_fallback = false;  ///< pinned to the slow-path exact table
  bool aged_out = false;           ///< collected by the aging sweep
};

struct JourneyOptions {
  /// Max distinct flows reconstructed (first-seen order); the ring holds a
  /// sample of traffic anyway, so this bounds work, not fidelity.
  std::size_t max_flows = 256;
};

class FlowJourneyTracer {
 public:
  /// The flow id carried by `event`, or 0 when the event kind has no
  /// per-flow identity (update protocol, version lifecycle, meter events).
  static std::uint64_t flow_id_of(const TraceEvent& event) noexcept;

  /// Groups the ring's flow-identified events into journeys, first-seen
  /// order, at most `options.max_flows` of them.
  static std::vector<FlowJourney> reconstruct(
      const TraceRing& ring, const JourneyOptions& options = {});

  /// The single journey of `flow_id`, or nullopt if the ring has no events
  /// for it.
  static std::optional<FlowJourney> journey_of(const TraceRing& ring,
                                               std::uint64_t flow_id);

  /// Chrome trace-event JSON: pid 1, one track (tid) per journey named
  /// "flow 0x<id> vip=<name>", a "install" duration span from the learn
  /// event to the install/fallback outcome, instants for every event, and
  /// "ctx:" instants for overlapping update-protocol steps.
  static std::string to_chrome_trace(const TraceRing& ring,
                                     const std::vector<FlowJourney>& journeys);

  /// Multi-line human rendering of one journey (format_event() per line,
  /// context lines marked with "ctx").
  static std::string format(const TraceRing& ring, const FlowJourney& journey);
};

}  // namespace silkroad::obs
