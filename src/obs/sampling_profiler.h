// Deterministic 1-in-N packet latency profiler (DESIGN.md §14).
//
// The StageProfiler charges every packet; on a hot data path that always-on
// cost is exactly the overhead this layer exists to avoid. SamplingProfiler
// instead samples roughly one packet in `period`: begin_packet() is a single
// non-atomic countdown decrement on the fast path, and only a sampled packet
// pays for stage bookkeeping and histogram records. The gap between samples
// is drawn uniformly from [1, 2*period) out of a seeded sim::Rng, so the
// mean sampling rate is 1/period, periodic traffic patterns cannot alias
// with the sampler, and two runs with the same seed sample the exact same
// packet indices — determinism is a first-class property (tested).
//
// Sampled latencies land in log-scaled HDR-style histograms
// (`<prefix>_stage_latency_ns{stage="<name>"}`, sharded) plus optional
// per-VIP histograms from vip_series(); /profile renders their
// p50/p99/p999. Stage scopes carry the same re-entry guard as StageProfiler:
// a nested enter() bumps `<prefix>_profiler_reentry_total{stage=...}` and is
// ignored.
//
// Thread model: one SamplingProfiler instance belongs to one data-plane
// thread (the countdown and open flags are plain fields); the registry
// series it writes are sharded/atomic and safe to scrape from any thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sharded.h"
#include "sim/random.h"

namespace silkroad::obs {

class SamplingProfiler {
 public:
  struct Options {
    /// Mean packets per sample; <= 1 samples every packet.
    std::uint64_t period = 64;
    /// Seed for the gap stream — same seed, same sampled packet indices.
    std::uint64_t seed = 0x5A3D1E5ULL;
    Histogram::Options histogram;
  };

  /// Registers per-stage latency histograms (`stage` labeled with the given
  /// names), the sampled-packet counter, and re-entry counters under
  /// `prefix` in `registry`.
  SamplingProfiler(MetricsRegistry& registry, std::string prefix,
                   std::vector<std::string> stage_names,
                   const Options& options);
  SamplingProfiler(MetricsRegistry& registry, std::string prefix,
                   std::vector<std::string> stage_names);

  /// Call once per packet. Returns true when this packet is sampled; only
  /// then do enter()/exit()/vip histograms record anything. One countdown
  /// decrement when not sampled.
  bool begin_packet() noexcept {
    if (--countdown_ > 0) {
      sampling_ = false;
      return false;
    }
    countdown_ = next_gap();
    sampling_ = true;
    sampled_packets_->inc();
    return true;
  }

  /// Whether the current packet (last begin_packet()) is being sampled.
  bool sampling() const noexcept { return sampling_; }

  /// Opens a timing scope on `stage` for a sampled packet. No-op when not
  /// sampling; a nested enter bumps the stage's re-entry counter and returns
  /// false so the scope cannot double-record.
  bool enter(std::size_t stage) noexcept {
    if (!sampling_ || stage >= stages_.size()) return false;
    Stage& s = stages_[stage];
    if (s.open) {
      s.reentries->inc();
      return false;
    }
    s.open = true;
    return true;
  }

  /// Closes the scope and records `ns` into the stage's latency histogram.
  /// Ignored without a matching open scope.
  void exit(std::size_t stage, std::uint64_t ns) noexcept {
    if (!sampling_ || stage >= stages_.size()) return;
    Stage& s = stages_[stage];
    if (!s.open) return;
    s.open = false;
    s.latency->record(ns);
  }

  /// Per-VIP sampled-latency histogram (`<prefix>_vip_latency_ns{vip=...}`),
  /// registered on first use. Plain (unsharded) on purpose: it is written at
  /// the sampling rate, not per packet. Call at VIP-add time and cache the
  /// handle; record into it only when sampling().
  Histogram* vip_series(const std::string& vip);

  std::uint64_t period() const noexcept { return period_; }
  std::uint64_t sampled_packets() const noexcept {
    return sampled_packets_->value();
  }

 private:
  struct Stage {
    ShardedHistogram* latency = nullptr;
    ShardedCounter* reentries = nullptr;
    bool open = false;
  };

  std::uint64_t next_gap() noexcept {
    if (period_ <= 1) return 1;
    return 1 + rng_.uniform_int(2 * period_ - 1);
  }

  MetricsRegistry& registry_;
  std::string prefix_;
  std::uint64_t period_;
  Histogram::Options histogram_options_;
  sim::Rng rng_;
  std::uint64_t countdown_ = 1;
  bool sampling_ = false;
  std::vector<Stage> stages_;
  ShardedCounter* sampled_packets_ = nullptr;
};

}  // namespace silkroad::obs
