// Unified metrics registry — the single source of truth for every counter,
// gauge, and histogram in the repository (DESIGN.md §9).
//
// Hot-path cost is one relaxed atomic add on a pre-resolved handle; nothing
// is formatted, hashed, or allocated per event. Aggregation happens only at
// snapshot() time, which walks the registry and materializes a Snapshot the
// exporters (exporters.h) render as Prometheus text or JSON.
//
// Naming scheme (Prometheus conventions):
//   silkroad_<subsystem>_<quantity>[_total|_bytes|_ns]   e.g.
//   silkroad_conn_table_hits_total, silkroad_cpu_queue_depth.
// Labels are pre-rendered strings ('stage="2"'); a (name, labels) pair
// identifies a time series. Requesting the same pair twice returns the same
// handle, so independent subsystems can share a series without
// double-counting.
//
// Counters wrap modulo 2^64 (overflow is defined, not checked): at one
// increment per simulated nanosecond that is ~584 years of sim time.
// Handles stay valid for the registry's lifetime (deque storage, no
// reallocation); increments are thread-safe, registration and snapshot take
// a mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/thread_annotations.h"

namespace silkroad::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind) noexcept;

class ShardedCounter;    // sharded.h
class ShardedHistogram;  // sharded.h

/// Shared log-linear (HdrHistogram-style) bucket geometry used by both
/// Histogram and ShardedHistogram: values below 2^(log2_sub+1) get exact
/// unit buckets; each higher power-of-two range [2^e, 2^(e+1)) is split into
/// 2^log2_sub linear buckets, covering the full 64-bit range.
std::size_t hdr_bucket_count(unsigned log2_subdivisions) noexcept;
/// Bucket holding `value`.
std::size_t hdr_bucket_index(std::uint64_t value,
                             unsigned log2_subdivisions) noexcept;
/// Smallest value mapping to bucket `index` (inclusive); the bucket covers
/// [lower_bound(i), lower_bound(i+1)).
std::uint64_t hdr_bucket_lower_bound(std::size_t index,
                                     unsigned log2_subdivisions) noexcept;

/// Monotone event count. Increments are relaxed atomics: cheap, thread-safe,
/// and wrap modulo 2^64.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, occupancy). Set/add are thread-safe.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear histogram over unsigned 64-bit values (HdrHistogram-style):
/// each power-of-two range is subdivided into 2^log2_subdivisions linear
/// buckets, giving a bounded relative error of 1/subdivisions across the
/// whole 64-bit range with ~256 buckets. record() is branch-light bit
/// arithmetic plus one relaxed atomic add.
class Histogram {
 public:
  struct Options {
    /// log2 of the linear subdivisions per power-of-two range (2 -> 4
    /// sub-buckets, ~25% worst-case relative bucket width).
    unsigned log2_subdivisions = 2;
  };

  explicit Histogram(const Options& options);

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket holding `value`. Values below the subdivision count get exact
  /// unit buckets; above, the index combines the exponent with the top
  /// `log2_subdivisions` mantissa bits.
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  /// Smallest value mapping to bucket `index` (inclusive). The bucket covers
  /// [lower_bound(i), lower_bound(i+1)).
  std::uint64_t bucket_lower_bound(std::size_t index) const noexcept;
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::uint64_t bucket_value(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  unsigned log2_sub_;
  std::deque<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> sum_{0};
};

/// One non-empty histogram bucket in a snapshot: cumulative count of values
/// <= `upper_bound` (the bucket's inclusive upper edge).
struct HistogramBucket {
  std::uint64_t upper_bound = 0;
  std::uint64_t cumulative_count = 0;
};

/// One rendered time series. Counter/gauge carry `value`; histograms carry
/// cumulative `buckets` + count + sum.
struct MetricSample {
  std::string name;
  std::string labels;  ///< pre-rendered, e.g. R"(stage="2")"; may be empty
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;
  std::vector<HistogramBucket> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

/// Quantile `q` (in [0,1]) of a histogram sample: finds the log-linear bucket
/// holding rank max(1, q*count) and interpolates linearly inside it, so the
/// result inherits the histogram's bounded relative error. Values below the
/// subdivision count sit in exact unit buckets and come back exact. Returns
/// NaN when `sample` is not a histogram or is empty; the unbounded top
/// bucket resolves to its lower edge.
double histogram_quantile(const MetricSample& sample, double q);

struct Snapshot {
  std::vector<MetricSample> samples;

  /// First sample matching (name, labels), or nullptr.
  const MetricSample* find(const std::string& name,
                           const std::string& labels = "") const;
  /// Convenience: the counter/gauge value of (name, labels), or `fallback`.
  double value_of(const std::string& name, const std::string& labels = "",
                  double fallback = 0) const;
  /// histogram_quantile() of the (name, labels) series; NaN when the series
  /// is absent, empty, or not a histogram.
  double quantile(const std::string& name, const std::string& labels,
                  double q) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. SR_CHECK-fails if the pair is already registered as a
  /// different kind.
  Counter* counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge* gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  Histogram* histogram(const std::string& name, const std::string& help = "",
                       const std::string& labels = "",
                       const Histogram::Options& options = {});

  /// Sharded hot-path variants (sharded.h, DESIGN.md §14): same (name,
  /// labels) identity and snapshot rendering as the plain kinds, but bumps
  /// cost one uncontended relaxed add with no shared cache line. A series is
  /// either plain or sharded for its whole life — requesting the other
  /// flavor for an existing pair SR_CHECK-fails.
  ShardedCounter* sharded_counter(const std::string& name,
                                  const std::string& help = "",
                                  const std::string& labels = "");
  ShardedHistogram* sharded_histogram(const std::string& name,
                                      const std::string& help = "",
                                      const std::string& labels = "",
                                      const Histogram::Options& options = {});

  /// Registers a pull metric: `fn` is evaluated at snapshot() time. Use for
  /// values another structure already maintains (table occupancy, queue
  /// depth) so there is exactly one source of truth and no double counting.
  void register_callback(const std::string& name, MetricKind kind,
                         std::function<double()> fn,
                         const std::string& help = "",
                         const std::string& labels = "");

  /// Materializes every registered series, sorted by (name, labels) so
  /// exporter output is deterministic.
  Snapshot snapshot() const;

  std::size_t series_count() const;

  /// Merges snapshots from several registries (e.g. one per fleet switch):
  /// samples with the same (name, labels, kind) are summed — counters,
  /// gauges, and histograms alike (gauge sums are the fleet-wide level).
  static Snapshot aggregate(const std::vector<Snapshot>& parts);

 private:
  struct Series {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
    /// Sharded flavors (mutually exclusive with the plain ones above);
    /// `plain_counter` records that counter() already handed out &counter so
    /// a later sharded_counter() call on the same pair fails loudly instead
    /// of silently forking the series.
    std::unique_ptr<ShardedCounter> sharded_counter;
    std::unique_ptr<ShardedHistogram> sharded_histogram;
    bool plain_counter = false;
    std::function<double()> callback;
  };

  Series* find_or_create(const std::string& name, const std::string& labels,
                         const std::string& help, MetricKind kind)
      SR_REQUIRES(mu_);

  mutable sr::Mutex mu_;
  /// Registration and snapshot walk take mu_; the handles the deque stores
  /// are lock-free (atomics), so increments never touch the mutex.
  std::deque<Series> series_ SR_GUARDED_BY(mu_);
};

}  // namespace silkroad::obs
