// Bounded ring of structured telemetry events with sim-time timestamps
// (DESIGN.md §9).
//
// The ring answers "what just happened to this VIP/version?" — the causal
// timeline behind a PCC violation or a failed insertion. Producers record
// fixed-size events (no strings on the hot path: scopes are interned once at
// bind time); the ring overwrites oldest-first, so the cost is O(1) per
// event and memory is capped at construction.
//
// Event coverage (the PCC update protocol of §4.3 plus the control-plane
// machinery around it):
//   kUpdateStep1Open / kUpdateFlip / kUpdateFinish  — the 3-step protocol
//   kVersionAllocate / kVersionReuse / kVersionRecycle / kVersionEvict
//   kCuckooInsert / kCuckooEvict / kCuckooInsertFail
//   kDigestCollision / kRelocationFail
//   kTransitFalsePositive, kMeterColor, kLearn, kSoftwareFallback, kAgedOut
//   kDegradedEnter / kDegradedExit / kInsertShed / kRelearn — degradation
//   kCapacityAlarmRaise / kCapacityAlarmClear — SRAM capacity ledger alarms
//
// Exporters (exporters.h) render the ring as Chrome trace-event JSON for
// chrome://tracing; format_event() gives the one-line human form used by the
// invariant auditor's failure dumps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace silkroad::obs {

enum class TraceEventKind : std::uint8_t {
  kUpdateStep1Open,       ///< t_req: TransitTable opens (arg0=old, arg1=new)
  kUpdateFlip,            ///< t_exec: VIPTable flip (arg0=old, arg1=new)
  kUpdateFinish,          ///< TransitTable cleared, window closed
  kVersionAllocate,       ///< fresh version number taken from the ring
  kVersionReuse,          ///< dead-slot substitution reused a version (§4.2)
  kVersionRecycle,        ///< refcount hit zero, number returned to the ring
  kVersionEvict,          ///< force-destroyed on exhaustion (flows migrated)
  kCuckooInsert,          ///< ConnTable entry landed (arg0=BFS moves, arg1=flow)
  kCuckooEvict,           ///< insertion displaced entries (arg0=moves, arg1=flow)
  kCuckooInsertFail,      ///< BFS budget exhausted (arg1=flow)
  kDigestCollision,       ///< SYN hit a colliding digest (arg0=digest, arg1=flow)
  kRelocationFail,        ///< no conflict-free relocation found
  kTransitFalsePositive,  ///< bloom FP steered a new flow (arg0=flow)
  kMeterColor,            ///< meter marked non-green (arg0=color)
  kLearn,                 ///< new flow entered the learning filter (arg0=flow)
  kSoftwareFallback,      ///< flow pinned to the slow-path table (arg0=flow)
  kAgedOut,               ///< idle entry aged out (arg0=flow)
  kDegradedEnter,         ///< degraded mode entered (arg0=backlog, arg1=pending)
  kDegradedExit,          ///< degraded mode left (arg0=backlog, arg1=pending)
  kInsertShed,            ///< pending queue full: flow shed (arg0=flow)
  kRelearn,               ///< dropped notification re-enqueued (arg0=flow)
  kCapacityAlarmRaise,    ///< ledger level rose (arg0=level, arg1=occ bps)
  kCapacityAlarmClear,    ///< ledger level fell (arg0=level, arg1=occ bps)
};
// Flow-identified kinds carry the connection's 64-bit five-tuple hash in the
// noted arg slot; journey.h reconstructs per-connection timelines from it.

const char* to_string(TraceEventKind kind) noexcept;

inline constexpr std::uint32_t kNoScope = 0;
inline constexpr std::uint32_t kNoVersion = ~std::uint32_t{0};

struct TraceEvent {
  sim::Time at = 0;
  TraceEventKind kind = TraceEventKind::kLearn;
  std::uint32_t scope = kNoScope;      ///< interned name id (VIP), 0 = none
  std::uint32_t version = kNoVersion;  ///< DIP-pool version, if applicable
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

class TraceRing {
 public:
  /// Time source consulted by record(); when null, events carry t=0 unless
  /// recorded via record_at(). A SilkRoadSwitch binds its simulator's clock.
  using Clock = std::function<sim::Time()>;

  explicit TraceRing(std::size_t capacity = 4096, Clock clock = nullptr);

  /// Interns `name` (idempotent) and returns its scope id (>= 1).
  std::uint32_t intern(std::string_view name);
  /// Scope id of an already-interned name; nullopt if never interned.
  std::optional<std::uint32_t> find_scope(std::string_view name) const;
  const std::string& scope_name(std::uint32_t id) const;

  void record(TraceEventKind kind, std::uint32_t scope = kNoScope,
              std::uint32_t version = kNoVersion, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    record_at(clock_ ? clock_() : sim::Time{0}, kind, scope, version, arg0,
              arg1);
  }
  void record_at(sim::Time at, TraceEventKind kind,
                 std::uint32_t scope = kNoScope,
                 std::uint32_t version = kNoVersion, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0);

  /// Retained events, oldest to newest.
  std::vector<TraceEvent> events() const;
  /// The last `limit` retained events matching `scope` (and `version` when
  /// given; version-less events of the scope always match), oldest first.
  std::vector<TraceEvent> tail_for(std::uint32_t scope,
                                   std::optional<std::uint32_t> version,
                                   std::size_t limit) const;

  std::size_t capacity() const noexcept { return buffer_.size(); }
  std::size_t size() const noexcept { return count_; }
  std::uint64_t total_recorded() const noexcept { return total_; }
  /// Events overwritten by ring wraparound.
  std::uint64_t dropped() const noexcept { return total_ - count_; }
  void clear();

 private:
  Clock clock_;
  std::vector<TraceEvent> buffer_;
  std::size_t next_ = 0;   ///< slot the next event lands in
  std::size_t count_ = 0;  ///< retained events (<= capacity)
  std::uint64_t total_ = 0;
  std::vector<std::string> scopes_;  ///< index 0 reserved for "none"
};

/// One-line human rendering: "[12.345ms] update-flip vip=20.0.0.1:80 v=3->4".
std::string format_event(const TraceRing& ring, const TraceEvent& event);

}  // namespace silkroad::obs
