#include "obs/scrape_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace silkroad::obs {

namespace {

/// "GET /path HTTP/1.0" -> "/path" (query strings stripped); empty on
/// anything that is not a GET request line.
std::string parse_get_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return "";
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return "";
  std::string path = request.substr(start, end - start);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // peer gone; telemetry is best-effort
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(const Options& options) : options_(options) {}

void ScrapeServer::handle(const std::string& path,
                          const std::string& content_type, Handler handler) {
  if (running_.load()) return;
  const sr::MutexLock lock(mu_);
  routes_[path] = {content_type, std::move(handler)};
}

void ScrapeServer::handle_prefix(const std::string& prefix,
                                 const std::string& content_type,
                                 PrefixHandler handler) {
  if (running_.load()) return;
  const sr::MutexLock lock(mu_);
  prefix_routes_[prefix] = {content_type, std::move(handler)};
}

bool ScrapeServer::start() {
  if (running_.load()) return true;
  {
    const sr::MutexLock lock(mu_);
    if (routes_.find("/healthz") == routes_.end()) {
      routes_["/healthz"] = {"text/plain", [] { return std::string("ok\n"); }};
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ScrapeServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept(): shutdown() wakes it on Linux; close() finishes the job.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void ScrapeServer::serve_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by stop()
    }
    timeval timeout{};
    timeout.tv_sec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    serve_one(fd);
    ::close(fd);
  }
}

void ScrapeServer::serve_one(int fd) {
  char buf[1024];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string path = parse_get_path(buf);
  requests_.fetch_add(1);
  if (path.empty()) {
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "GET only\n"));
    return;
  }
  // Held across the handler call: handlers only touch thread-safe snapshot
  // state (header contract), and route registration after start() is already
  // a documented no-op, so there is nothing to contend with.
  const sr::MutexLock lock(mu_);
  const auto it = routes_.find(path);
  if (it != routes_.end()) {
    send_all(fd, http_response(200, "OK", it->second.content_type,
                               it->second.handler()));
    return;
  }
  // Longest prefix route whose "<prefix>/" starts the path; the handler
  // receives the remainder and decides whether that suffix exists.
  const PrefixRoute* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, route] : prefix_routes_) {
    if (prefix.size() + 1 >= path.size()) continue;
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    if (path[prefix.size()] != '/') continue;
    if (prefix.size() >= best_len) {
      best = &route;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) {
    const std::string body = best->handler(path.substr(best_len + 1));
    if (!body.empty()) {
      send_all(fd, http_response(200, "OK", best->content_type, body));
      return;
    }
  }
  // Unknown path: answer with an index of every registered route instead of
  // a bare 404, so a mistyped scrape is self-correcting. routes_ is a
  // std::map, so the listing is sorted and deterministic.
  std::string body = "not found: " + path + "\nroutes:\n";
  for (const auto& entry : routes_) {
    body += "  " + entry.first + "\n";
  }
  for (const auto& entry : prefix_routes_) {
    body += "  " + entry.first + "/<id>\n";
  }
  send_all(fd, http_response(404, "Not Found", "text/plain", body));
}

bool scrape_port_from_env(std::uint16_t& port) {
  // srlint: allow(R8) telemetry endpoint config, read once at startup;
  // never feeds protocol decisions or the seeded simulation.
  const char* raw = std::getenv("SILKROAD_SCRAPE_PORT");
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0 || value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace silkroad::obs
