#include "core/memory_model.h"

#include <algorithm>
#include <cmath>

namespace silkroad::core {

EntryLayout naive_entry(bool ipv6) {
  EntryLayout layout;
  layout.match_bits = ipv6 ? 37 * 8 : 13 * 8;   // full 5-tuple
  layout.action_bits = ipv6 ? 18 * 8 : 6 * 8;   // DIP address + port
  layout.overhead_bits = 2 * 8;                 // "a couple bytes" of packing
  return layout;
}

EntryLayout digest_entry(bool ipv6, unsigned digest_bits) {
  EntryLayout layout;
  layout.match_bits = digest_bits;
  layout.action_bits = ipv6 ? 18 * 8 : 6 * 8;
  layout.overhead_bits = 6;
  return layout;
}

EntryLayout digest_version_entry(unsigned digest_bits, unsigned version_bits) {
  EntryLayout layout;
  layout.match_bits = digest_bits;
  layout.action_bits = version_bits;
  layout.overhead_bits = 6;
  return layout;
}

std::size_t conn_table_bytes(std::size_t connections,
                             const EntryLayout& layout) {
  return asic::sram_bytes_for_entries(connections, layout.total());
}

std::size_t dip_pool_table_bytes(std::size_t dips, std::size_t versions,
                                 bool ipv6) {
  const std::size_t member_bytes = (ipv6 ? 16u : 4u) + 2u /*port*/ + 2u /*slot*/;
  return dips * versions * member_bytes;
}

SilkRoadFootprint silkroad_footprint(std::size_t connections, std::size_t dips,
                                     std::size_t versions, bool ipv6,
                                     unsigned digest_bits,
                                     unsigned version_bits,
                                     std::size_t transit_bytes) {
  (void)ipv6;  // the digest+version entry is family-independent
  SilkRoadFootprint fp;
  fp.conn_table = conn_table_bytes(
      connections, digest_version_entry(digest_bits, version_bits));
  fp.dip_pool_table = dip_pool_table_bytes(dips, versions, ipv6);
  fp.transit_table = transit_bytes;
  return fp;
}

double memory_saving(std::size_t bytes_naive, std::size_t bytes_compact) {
  if (bytes_naive == 0) return 0.0;
  return 1.0 - static_cast<double>(bytes_compact) /
                   static_cast<double>(bytes_naive);
}

std::uint64_t slbs_required(double peak_mpps, const SlbModel& slb) {
  if (peak_mpps <= 0) return 0;
  return static_cast<std::uint64_t>(std::ceil(peak_mpps / slb.mpps));
}

std::uint64_t silkroads_required(std::uint64_t peak_connections,
                                 double peak_tbps, const SilkRoadModel& sr) {
  const std::uint64_t by_conns = sr.max_connections == 0
                                     ? 1
                                     : (peak_connections + sr.max_connections - 1) /
                                           sr.max_connections;
  const std::uint64_t by_tput = sr.capacity_tbps <= 0
                                    ? 1
                                    : static_cast<std::uint64_t>(
                                          std::ceil(peak_tbps / sr.capacity_tbps));
  return std::max<std::uint64_t>({1, by_conns, by_tput});
}

CostComparison cost_comparison(const SlbModel& slb, const SilkRoadModel& sr) {
  // Normalize to the packet rate one SilkRoad ASIC sustains.
  const double slbs_per_switch = sr.gpps * 1000.0 / slb.mpps;
  CostComparison cmp;
  cmp.power_ratio = slbs_per_switch * slb.watts / sr.watts;
  cmp.cost_ratio = slbs_per_switch * slb.cost_usd / sr.cost_usd;
  return cmp;
}

}  // namespace silkroad::core
