// DIP-pool version management for one VIP (paper §4.2).
//
// SilkRoad compresses ConnTable action data from an 18-byte DIP to a 6-bit
// *DIP-pool version*: every pool update creates (or reuses) a version, new
// connections are stamped with the newest version, and a pool is immutable
// while any connection still uses it. Version numbers are recycled through a
// ring buffer once their pool's reference count drops to zero, and — the key
// optimization Fig. 15 quantifies — an update that adds a DIP where one was
// previously removed *reuses* an existing version by substituting the dead
// slot in place, instead of burning a fresh number.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "lb/dip_pool.h"
#include "net/endpoint.h"
#include "obs/trace.h"
#include "workload/update_gen.h"

namespace silkroad::core {

class VipVersionManager {
 public:
  struct Config {
    /// Width of the version field (paper: 6 bits => 64 versions).
    unsigned version_bits = 6;
    /// Enable in-place dead-slot substitution (Fig. 15 ablation knob).
    bool enable_reuse = true;
    lb::PoolSemantics semantics = lb::PoolSemantics::kStableResilient;
  };

  VipVersionManager(net::Endpoint vip, std::vector<net::Endpoint> dips,
                    const Config& config);

  std::uint32_t current_version() const noexcept { return current_; }
  std::size_t version_capacity() const noexcept {
    return std::size_t{1} << config_.version_bits;
  }

  const lb::DipPool* pool(std::uint32_t version) const;
  std::optional<net::Endpoint> select(std::uint32_t version,
                                      const net::FiveTuple& flow) const;

  struct StagedUpdate {
    /// Version VIPTable should flip to when the update executes.
    std::uint32_t target_version = 0;
    /// True when an existing version was reused via dead-slot substitution.
    bool reused = false;
  };

  /// Builds the post-update pool and picks its version, without flipping
  /// `current_version()` (the 3-step protocol commits later). Returns
  /// nullopt on version-number exhaustion — the caller must evict a version
  /// (see release/force_destroy) and retry.
  std::optional<StagedUpdate> stage_update(const workload::DipUpdate& update);

  /// Atomic multi-DIP update: applies all changes to one staged pool so a
  /// burst (e.g., a rolling-reboot batch removing two DIPs, or one machine
  /// going down across many VIPs, §3.1) consumes a single version number.
  /// A singleton add still goes through the reuse path.
  std::optional<StagedUpdate> stage_update_batch(
      const std::vector<workload::DipUpdate>& updates);

  /// Flips the current version (t_exec of the 3-step update).
  void commit(std::uint32_t target_version);

  // --- Reference counting (one count per connection using the version) ----
  void acquire(std::uint32_t version);
  /// Releases one reference; destroys the pool and recycles the version when
  /// the count reaches zero and the version is not current.
  void release(std::uint32_t version);
  std::int64_t refcount(std::uint32_t version) const;

  /// Picks the best eviction victim on exhaustion: the non-current version
  /// with the fewest connections. nullopt when only the current version
  /// exists.
  std::optional<std::uint32_t> eviction_candidate() const;

  /// Destroys a version regardless of its reference count (its connections
  /// must have been migrated to exact DIP mappings first).
  void force_destroy(std::uint32_t version);

  /// DIP failure fast path (§7 alternative to version churn): marks the DIP
  /// dead in every version's pool so resilient hashing diverts its flows,
  /// without allocating a version or flipping VIPTable. Only meaningful with
  /// kStableResilient semantics. Returns the number of pools touched.
  std::size_t mark_dip_down(const net::Endpoint& dip);

  // --- Introspection --------------------------------------------------------
  const net::Endpoint& vip() const noexcept { return vip_; }
  std::size_t active_versions() const noexcept { return pools_.size(); }
  /// Version numbers with a live pool, ascending (invariant-auditor input).
  std::vector<std::uint32_t> live_versions() const;
  /// Snapshot of the recycling ring buffer: version numbers currently free
  /// for allocation. A free version must never be referenced anywhere.
  std::vector<std::uint32_t> free_versions() const {
    return {free_versions_.begin(), free_versions_.end()};
  }
  std::uint64_t versions_allocated() const noexcept { return allocations_; }
  std::uint64_t versions_reused() const noexcept { return reuses_; }
  std::uint64_t exhaustions() const noexcept { return exhaustions_; }
  const Config& config() const noexcept { return config_; }

  /// Wire bytes of all active pools (DIPPoolTable sizing input).
  std::size_t pool_table_bytes() const;

  /// Attaches structured event tracing: version allocate / reuse / recycle /
  /// evict events are recorded under `scope` (the interned VIP name of the
  /// owning switch's TraceRing). The ring must outlive the manager.
  void bind_trace(obs::TraceRing* ring, std::uint32_t scope) noexcept {
    trace_ = ring;
    trace_scope_ = scope;
  }

 private:
  struct PoolInfo {
    lb::DipPool pool;
    std::int64_t refcount = 0;
  };

  std::optional<std::uint32_t> allocate_version();

  net::Endpoint vip_;
  Config config_;
  std::uint32_t current_ = 0;
  std::map<std::uint32_t, PoolInfo> pools_;
  /// DIPs removed from the current pool whose servers are (presumed) down —
  /// the substitution targets version reuse may overwrite (§4.2).
  std::set<net::Endpoint> down_dips_;
  std::deque<std::uint32_t> free_versions_;  // the ring buffer
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t exhaustions_ = 0;
  obs::TraceRing* trace_ = nullptr;
  std::uint32_t trace_scope_ = obs::kNoScope;

  void trace_event(obs::TraceEventKind kind, std::uint32_t version) {
    if (trace_ != nullptr) trace_->record(kind, trace_scope_, version);
  }
};

}  // namespace silkroad::core
