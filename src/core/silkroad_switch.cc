#include "core/silkroad_switch.h"

#include <algorithm>
#include <cmath>

#include "check/sr_check.h"

namespace silkroad::core {

asic::CuckooConfig SilkRoadSwitch::conn_table_for(std::size_t connections,
                                                  unsigned digest_bits,
                                                  double occupancy) {
  asic::CuckooConfig config;
  config.digest_bits = digest_bits;
  config.value_bits = 6;
  config.overhead_bits = 6;
  config.stages = 4;
  const unsigned entry_bits =
      config.digest_bits + config.value_bits + config.overhead_bits;
  config.ways = asic::entries_per_word(entry_bits);
  if (config.ways == 0) config.ways = 1;
  const double slots_needed =
      static_cast<double>(connections) / (occupancy <= 0 ? 0.9 : occupancy);
  const std::size_t buckets_total = static_cast<std::size_t>(
      std::ceil(slots_needed / static_cast<double>(config.ways)));
  config.buckets_per_stage =
      std::max<std::size_t>(1, (buckets_total + config.stages - 1) / config.stages);
  return config;
}

SilkRoadSwitch::SilkRoadSwitch(sim::Simulator& simulator, const Config& config)
    : sim_(simulator),
      config_(config),
      conn_table_(config.conn_table),
      learning_filter_(simulator, config.learning,
                       [this](std::vector<asic::LearnEvent> batch) {
                         on_learning_flush(std::move(batch));
                       }),
      cpu_(simulator, config.cpu),
      transit_(config.transit_table_bytes, config.transit_hashes) {}

SilkRoadSwitch::VipState* SilkRoadSwitch::find_vip(const net::Endpoint& vip) {
  const auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

const SilkRoadSwitch::VipState* SilkRoadSwitch::find_vip(
    const net::Endpoint& vip) const {
  const auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

void SilkRoadSwitch::add_vip(const net::Endpoint& vip,
                             const std::vector<net::Endpoint>& dips) {
  VipVersionManager::Config vm_config;
  vm_config.version_bits = config_.version_bits;
  vm_config.enable_reuse = config_.enable_version_reuse;
  vm_config.semantics = config_.pool_semantics;
  VipState state;
  state.versions = std::make_unique<VipVersionManager>(vip, dips, vm_config);
  vips_.insert_or_assign(vip, std::move(state));
}

void SilkRoadSwitch::attach_meter(
    const net::Endpoint& vip, const asic::TwoRateThreeColorMeter::Config& meter,
    bool enforce) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  state->meter.emplace(meter);
  state->meter_enforce = enforce;
}

const VipVersionManager* SilkRoadSwitch::version_manager(
    const net::Endpoint& vip) const {
  const VipState* state = find_vip(vip);
  return state == nullptr ? nullptr : state->versions.get();
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

std::uint32_t SilkRoadSwitch::version_for_miss(const net::Endpoint& vip,
                                               VipState& state,
                                               const net::Packet& packet,
                                               bool* redirected_to_cpu) {
  const std::uint32_t current = state.versions->current_version();
  if (phase_ == Phase::kIdle || !(update_vip_ == vip)) return current;

  if (phase_ == Phase::kStep1) {
    // Write-only phase: remember every ConnTable-missing flow of this VIP so
    // it keeps resolving to the old version after the flip.
    if (config_.use_transit_table) {
      transit_.insert(packet.flow);
      transit_members_.insert(packet.flow);
    }
    return current;  // still the old version
  }

  // Step 2 (read-only): the flip is done, `current` is the new version.
  if (!config_.use_transit_table) return current;
  if (transit_.maybe_contains(packet.flow)) {
    if (transit_members_.contains(packet.flow) ||
        pending_.contains(packet.flow)) {
      return update_old_version_;  // genuine member: pinned to the old pool
    }
    // Bloom false positive: a brand-new flow matched the filter and is
    // routed via the *old* pool — stale routing that can land it on a
    // removed DIP. A SYN taking this path is additionally redirected to the
    // switch CPU (§4.3), which is the hook a production control plane uses
    // to repair it; the hazard this models is what Fig. 18 sizes the filter
    // against.
    ++stats_.transit_false_positives;
    if (packet.syn && redirected_to_cpu != nullptr) {
      *redirected_to_cpu = true;
    }
    return update_old_version_;
  }
  return update_new_version_;
}

void SilkRoadSwitch::learn_new_flow(const net::Endpoint& vip, VipState& state,
                                    const net::FiveTuple& flow,
                                    std::uint32_t version) {
  ++stats_.learns;
  learning_filter_.learn(flow, version);
  pending_.emplace(flow, PendingConn{vip, version, false});
  state.versions->acquire(version);
  state.conns_by_version[version].insert(flow);
  track_digest(flow);
}

void SilkRoadSwitch::track_digest(const net::FiveTuple& flow) {
  digest_groups_[conn_table_.digest_of(flow)].push_back(flow);
}

void SilkRoadSwitch::untrack_digest(const net::FiveTuple& flow) {
  const auto it = digest_groups_.find(conn_table_.digest_of(flow));
  if (it == digest_groups_.end()) return;
  auto& group = it->second;
  group.erase(std::remove(group.begin(), group.end(), flow), group.end());
  if (group.empty()) digest_groups_.erase(it);
}

void SilkRoadSwitch::resolve_digest_conflicts(const net::FiveTuple& inserted) {
  const auto it = digest_groups_.find(conn_table_.digest_of(inserted));
  if (it == digest_groups_.end()) return;
  // Digest collisions are rare (~1e-4 of flows at 16 bits), so this loop is
  // almost always a single iteration over the inserted flow itself.
  for (const auto& flow : it->second) {
    const auto hit = conn_table_.lookup(flow);
    if (hit && conn_table_.is_false_positive(flow, hit->slot)) {
      if (!conn_table_.relocate_for(flow, hit->slot)) {
        ++stats_.relocation_failures;
      }
    }
  }
}

lb::PacketResult SilkRoadSwitch::process_packet(const net::Packet& packet) {
  VipState* state = find_vip(packet.flow.dst);
  if (state == nullptr) return {};
  ++stats_.packets;
  lb::PacketResult result;
  result.added_latency = config_.pipeline_latency;

  if (state->meter) {
    const auto color = state->meter->mark(sim_.now(), packet.size_bytes);
    if (color == asic::MeterColor::kRed) {
      ++stats_.meter_drops;
      if (state->meter_enforce) return result;  // dropped
    }
  }

  const net::Endpoint vip = packet.flow.dst;

  if (auto hit = conn_table_.lookup(packet.flow)) {
    if (conn_table_.is_false_positive(packet.flow, hit->slot)) {
      if (packet.syn) {
        // §4.2: a SYN hitting an existing entry signals a digest collision.
        // The switch CPU relocates the resident entry to another stage and
        // re-injects the SYN, which then follows the normal miss path. The
        // few-ms redirect delays connection setup but packets before the
        // re-injected SYN do not exist, so consistency is unaffected.
        ++stats_.syn_false_positives;
        result.redirected_to_cpu = true;
        result.added_latency += config_.syn_redirect_delay;
        if (!conn_table_.relocate_for(packet.flow, hit->slot)) {
          ++stats_.relocation_failures;
          // No conflict-free placement: pin the new flow in the slow-path
          // exact table instead.
          const std::uint32_t version =
              version_for_miss(vip, *state, packet, nullptr);
          const auto dip = state->versions->select(version, packet.flow);
          if (dip) {
            software_table_[packet.flow] = *dip;
            ++stats_.software_fallback_conns;
          }
          result.dip = dip;
          return result;
        }
        // Fall through to the miss path below.
      } else {
        // Mid-flow false hit: the ASIC cannot distinguish it, so the packet
        // follows the collided entry's version (a pending flow's transient
        // mis-steering; vanishingly rare at 16-bit digests).
        ++stats_.non_syn_false_hits;
        auto dip = state->versions->select(hit->value, packet.flow);
        if (!dip) {
          dip = state->versions->select(state->versions->current_version(),
                                        packet.flow);
        }
        if (packet.fin) {
          if (const auto p = pending_.find(packet.flow); p != pending_.end()) {
            p->second.dead = true;
          }
        }
        result.dip = dip;
        return result;
      }
    } else {
      ++stats_.conn_table_hits;
      conn_table_.touch(hit->slot, sim_.now());  // hardware hit bit
      result.dip = state->versions->select(hit->value, packet.flow);
      if (packet.fin) enqueue_erase(packet.flow, vip, hit->value);
      return result;
    }
  }

  // --- ConnTable miss --------------------------------------------------------
  ++stats_.conn_table_misses;

  if (const auto sw = software_table_.find(packet.flow);
      sw != software_table_.end()) {
    result.dip = sw->second;
    result.redirected_to_cpu = true;  // slow-path flow: every packet via CPU
    result.added_latency += config_.syn_redirect_delay;
    if (packet.fin) software_table_.erase(sw);
    return result;
  }

  const bool was_redirected = result.redirected_to_cpu;
  const std::uint32_t version =
      version_for_miss(vip, *state, packet, &result.redirected_to_cpu);
  if (result.redirected_to_cpu && !was_redirected) {
    result.added_latency += config_.syn_redirect_delay;
  }
  const auto dip = state->versions->select(version, packet.flow);
  if (!dip) return result;  // empty pool: nothing to balance to
  result.dip = dip;

  if (packet.fin) {
    // Flow ended before its entry landed: cancel the pending insertion.
    if (const auto p = pending_.find(packet.flow); p != pending_.end()) {
      p->second.dead = true;
    }
    return result;
  }
  if (!pending_.contains(packet.flow)) {
    learn_new_flow(vip, *state, packet.flow, version);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Control plane: learning + insertion
// ---------------------------------------------------------------------------

void SilkRoadSwitch::on_learning_flush(std::vector<asic::LearnEvent> batch) {
  for (auto& event : batch) {
    // Shard by flow so multi-pipe CPUs keep per-flow operation order (§5.2).
    cpu_.enqueue([this, event] { complete_insertion(event); },
                 net::FiveTupleHash{}(event.flow));
  }
}

void SilkRoadSwitch::complete_insertion(const asic::LearnEvent& event) {
  const auto p = pending_.find(event.flow);
  if (p == pending_.end()) return;  // already resolved (evicted / duplicate)
  const PendingConn info = p->second;
  pending_.erase(p);
  VipState* state = find_vip(info.vip);
  if (state == nullptr) return;

  if (info.dead) {
    // The flow finished while queued; nothing to install.
    untrack_digest(event.flow);
    release_conn(info.vip, event.flow, info.version);
  } else {
    const auto res = conn_table_.insert(event.flow, info.version);
    if (res.inserted) {
      ++stats_.inserts;
      conn_table_.touch_exact(event.flow, sim_.now());
      resolve_digest_conflicts(event.flow);
      arm_aging_sweep();
    } else {
      ++stats_.insert_failures;
      untrack_digest(event.flow);
      const auto dip = state->versions->select(info.version, event.flow);
      if (dip) {
        software_table_[event.flow] = *dip;
        ++stats_.software_fallback_conns;
      }
      release_conn(info.vip, event.flow, info.version);
    }
  }
  note_pending_resolved(info.vip, event.flow);
}

void SilkRoadSwitch::enqueue_erase(const net::FiveTuple& flow,
                                   const net::Endpoint& vip,
                                   std::uint32_t version) {
  cpu_.enqueue(
      [this, flow, vip, version] {
        aging_queue_.erase(flow);
        if (conn_table_.erase(flow)) {
          ++stats_.erases;
          untrack_digest(flow);
          release_conn(vip, flow, version);
        }
      },
      net::FiveTupleHash{}(flow));
}

void SilkRoadSwitch::release_conn(const net::Endpoint& vip,
                                  const net::FiveTuple& flow,
                                  std::uint32_t version) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  state->versions->release(version);
  const auto it = state->conns_by_version.find(version);
  if (it != state->conns_by_version.end()) {
    it->second.erase(flow);
    if (it->second.empty()) state->conns_by_version.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Control plane: 3-step PCC update protocol
// ---------------------------------------------------------------------------

void SilkRoadSwitch::request_update(const workload::DipUpdate& update) {
  ++stats_.updates_requested;
  update_queue_.push_back(update);
  // Defer the start by one event: requests landing at the same instant
  // (rolling-reboot bursts) are then all queued before the control plane
  // picks them up and can be staged as one atomic batch.
  sim_.schedule_after(0, [this] { try_start_next_update(); });
}

void SilkRoadSwitch::try_start_next_update() {
  while (phase_ == Phase::kIdle && !update_queue_.empty()) {
    const workload::DipUpdate update = update_queue_.front();
    update_queue_.pop_front();
    VipState* state = find_vip(update.vip);
    if (state == nullptr) continue;

    // Coalesce a same-instant burst for the same VIP (e.g., a rolling-reboot
    // batch) into one atomic staged version — one flip, one version number.
    std::vector<workload::DipUpdate> batch{update};
    while (!update_queue_.empty() &&
           update_queue_.front().vip == update.vip &&
           update_queue_.front().at == update.at) {
      batch.push_back(update_queue_.front());
      update_queue_.pop_front();
    }

    auto staged = state->versions->stage_update_batch(batch);
    if (!staged) {
      // Version-number exhaustion: evict the least-used version by moving
      // its flows to exact DIP mappings (§4.2 fallback), then retry.
      if (evict_version_for(update.vip, *state)) {
        staged = state->versions->stage_update_batch(batch);
      }
      if (!staged) continue;  // cannot stage (degenerate config); drop
    }

    update_vip_ = update.vip;
    update_old_version_ = state->versions->current_version();
    update_new_version_ = staged->target_version;

    if (update_new_version_ == update_old_version_) {
      // Dead-slot substitution landed in the current version: the pool
      // mutation is already in place and no VIPTable flip is needed.
      ++stats_.updates_completed;
      if (risk_cb_) risk_cb_(update.vip);
      continue;
    }

    if (!config_.use_transit_table) {
      // Ablation (Figs. 16/17): flip immediately. Flows pending insertion
      // flap to the new version until their (old-version) entries land.
      state->versions->commit(update_new_version_);
      ++stats_.updates_completed;
      if (risk_cb_) risk_cb_(update.vip);
      continue;
    }

    // Step 1 (t_req): record new flows in the TransitTable; flip only after
    // every flow that arrived before t_req has its entry installed.
    phase_ = Phase::kStep1;
    awaiting_pre_.clear();
    transit_members_.clear();
    for (const auto& [flow, info] : pending_) {
      if (info.vip == update.vip && !info.dead) awaiting_pre_.insert(flow);
    }
    if (awaiting_pre_.empty()) {
      execute_flip();
      // execute_flip may already finish the update (no transit members), in
      // which case phase_ is Idle again and the loop continues naturally.
    }
  }
}

void SilkRoadSwitch::execute_flip() {
  VipState* state = find_vip(update_vip_);
  SR_CHECKF(state != nullptr, "update in flight for an unknown VIP %s",
            update_vip_.to_string().c_str());
  state->versions->commit(update_new_version_);
  phase_ = Phase::kStep2;
  if (risk_cb_) risk_cb_(update_vip_);
  if (transit_members_.empty()) finish_update();
}

void SilkRoadSwitch::finish_update() {
  transit_.clear();
  transit_members_.clear();
  awaiting_pre_.clear();
  phase_ = Phase::kIdle;
  ++stats_.updates_completed;
  try_start_next_update();
}

void SilkRoadSwitch::note_pending_resolved(const net::Endpoint& vip,
                                           const net::FiveTuple& flow) {
  if (phase_ == Phase::kIdle || !(update_vip_ == vip)) return;
  if (phase_ == Phase::kStep1) {
    transit_members_.erase(flow);
    awaiting_pre_.erase(flow);
    if (awaiting_pre_.empty()) execute_flip();
  } else {
    transit_members_.erase(flow);
    if (transit_members_.empty()) finish_update();
  }
}

bool SilkRoadSwitch::evict_version_for(const net::Endpoint& /*vip*/,
                                       VipState& state) {
  const auto victim = state.versions->eviction_candidate();
  if (!victim) return false;
  const auto it = state.conns_by_version.find(*victim);
  if (it != state.conns_by_version.end()) {
    for (const auto& flow : it->second) {
      const auto dip = state.versions->select(*victim, flow);
      if (dip) {
        software_table_[flow] = *dip;
        ++stats_.software_fallback_conns;
      }
      if (conn_table_.erase(flow)) {
        ++stats_.erases;
        untrack_digest(flow);
      }
      if (const auto p = pending_.find(flow); p != pending_.end()) {
        p->second.dead = true;  // insertion will be skipped
      }
    }
    state.conns_by_version.erase(it);
  }
  state.versions->force_destroy(*victim);
  ++stats_.versions_evicted;
  return true;
}

void SilkRoadSwitch::arm_aging_sweep() {
  if (config_.idle_timeout == 0 || aging_armed_) return;
  aging_armed_ = true;
  sim_.schedule_after(config_.aging_sweep_period, [this] { aging_sweep(); });
}

void SilkRoadSwitch::aging_sweep() {
  aging_armed_ = false;
  const sim::Time now = sim_.now();
  if (now > config_.idle_timeout) {
    const sim::Time cutoff = now - config_.idle_timeout;
    for (const auto& flow : conn_table_.collect_idle(cutoff)) {
      if (!aging_queue_.insert(flow).second) continue;  // erase already queued
      const auto version = conn_table_.exact_value(flow);
      if (!version) continue;
      ++stats_.aged_out;
      // The VIP is the flow's destination endpoint by construction.
      enqueue_erase(flow, flow.dst, *version);
    }
  }
  if (conn_table_.size() > 0 || !pending_.empty()) {
    arm_aging_sweep();
  }
}

void SilkRoadSwitch::handle_dip_failure(const net::Endpoint& vip,
                                        const net::Endpoint& dip,
                                        bool resilient_in_place) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  if (!resilient_in_place) {
    workload::DipUpdate update;
    update.at = sim_.now();
    update.vip = vip;
    update.dip = dip;
    update.action = workload::UpdateAction::kRemoveDip;
    update.cause = workload::UpdateCause::kFailure;
    request_update(update);
    return;
  }
  // §7 alternative: mark the DIP dead in every pool version; resilient
  // hashing diverts its flows without a version flip. Flows that targeted
  // the failed DIP re-map (they are broken by the server loss regardless).
  state->versions->mark_dip_down(dip);
  if (risk_cb_) risk_cb_(vip);
}

std::string SilkRoadSwitch::debug_report() const {
  char buf[256];
  std::string out;
  const auto usage = memory_usage();
  std::snprintf(buf, sizeof buf,
                "silkroad switch: %zu VIPs, %zu connections installed "
                "(%.1f%% of %zu slots), %zu pending, %zu software\n",
                vips_.size(), conn_table_.size(),
                100.0 * conn_table_.occupancy(), conn_table_.capacity(),
                pending_.size(), software_table_.size());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "memory: ConnTable %.2f MB, DIPPoolTable %.1f KB, "
                "TransitTable %zu B\n",
                usage.conn_table_bytes / 1e6,
                usage.dip_pool_table_bytes / 1e3, usage.transit_table_bytes);
  out += buf;
  const char* phase = phase_ == Phase::kIdle    ? "idle"
                      : phase_ == Phase::kStep1 ? "step1 (recording)"
                                                : "step2 (draining)";
  std::snprintf(buf, sizeof buf,
                "control plane: update %s, %zu queued, CPU queue %zu deep "
                "(%zu pipe%s)\n",
                phase, update_queue_.size(), cpu_.queue_depth(),
                cpu_.pipe_count(), cpu_.pipe_count() == 1 ? "" : "s");
  out += buf;
  for (const auto& [vip, state] : vips_) {
    const auto& mgr = *state.versions;
    const auto* pool = mgr.pool(mgr.current_version());
    std::snprintf(buf, sizeof buf,
                  "  vip %-24s version %2u (%zu live), %zu DIPs%s%s\n",
                  vip.to_string().c_str(), mgr.current_version(),
                  mgr.active_versions(), pool ? pool->live_count() : 0,
                  state.meter ? ", metered" : "",
                  (phase_ != Phase::kIdle && update_vip_ == vip)
                      ? ", UPDATING"
                      : "");
    out += buf;
  }
  std::snprintf(
      buf, sizeof buf,
      "counters: %llu pkts, %llu learns, %llu inserts (%llu failed), "
      "%llu erases, %llu aged, %llu syn-fp, %llu updates done\n",
      static_cast<unsigned long long>(stats_.packets),
      static_cast<unsigned long long>(stats_.learns),
      static_cast<unsigned long long>(stats_.inserts),
      static_cast<unsigned long long>(stats_.insert_failures),
      static_cast<unsigned long long>(stats_.erases),
      static_cast<unsigned long long>(stats_.aged_out),
      static_cast<unsigned long long>(stats_.syn_false_positives),
      static_cast<unsigned long long>(stats_.updates_completed));
  out += buf;
  return out;
}

SilkRoadSwitch::MemoryUsage SilkRoadSwitch::memory_usage() const {
  MemoryUsage usage;
  usage.conn_table_bytes = conn_table_.sram_bytes();
  for (const auto& [vip, state] : vips_) {
    usage.dip_pool_table_bytes += state.versions->pool_table_bytes();
  }
  usage.transit_table_bytes = transit_.byte_count();
  return usage;
}

}  // namespace silkroad::core
