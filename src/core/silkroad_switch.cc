#include "core/silkroad_switch.h"

#include <algorithm>
#include <cmath>

#include "check/sr_check.h"
#include "obs/exporters.h"

namespace silkroad::core {

asic::CuckooConfig SilkRoadSwitch::conn_table_for(std::size_t connections,
                                                  unsigned digest_bits,
                                                  double occupancy) {
  asic::CuckooConfig config;
  config.digest_bits = digest_bits;
  config.value_bits = 6;
  config.overhead_bits = 6;
  config.stages = 4;
  const unsigned entry_bits =
      config.digest_bits + config.value_bits + config.overhead_bits;
  config.ways = asic::entries_per_word(entry_bits);
  if (config.ways == 0) config.ways = 1;
  const double slots_needed =
      static_cast<double>(connections) / (occupancy <= 0 ? 0.9 : occupancy);
  const std::size_t buckets_total = static_cast<std::size_t>(
      std::ceil(slots_needed / static_cast<double>(config.ways)));
  config.buckets_per_stage =
      std::max<std::size_t>(1, (buckets_total + config.stages - 1) / config.stages);
  return config;
}

SilkRoadSwitch::SilkRoadSwitch(sim::Simulator& simulator, const Config& config)
    : sim_(simulator),
      config_(config),
      trace_(4096, [this] { return sim_.now(); }),
      conn_profiler_(metrics_, "silkroad_conn_table",
                     config.conn_table.stages),
      packet_profiler_(metrics_, "silkroad_packet",
                       {"pipeline", "slow_path"}, config.profiler),
      conn_table_(config.conn_table),
      learning_filter_(simulator, config.learning,
                       [this](const std::vector<asic::LearnEvent>& batch) {
                         on_learning_flush(batch);
                       }),
      cpu_(simulator, config.cpu),
      transit_(config.transit_table_bytes, config.transit_hashes),
      capacity_(config.capacity) {
  init_metrics();
  init_capacity();
  conn_table_.bind_observer(&conn_profiler_, &trace_);
  cpu_.bind_metrics(metrics_, "silkroad_cpu");
}

void SilkRoadSwitch::init_metrics() {
  // Per-packet counters are sharded (DESIGN.md §14): uncontended relaxed
  // adds even when data-plane shards run in parallel.
  c_.packets = metrics_.sharded_counter("silkroad_packets_total",
                                        "packets processed by the data plane");
  c_.conn_table_hits =
      metrics_.sharded_counter("silkroad_conn_table_hits_total",
                               "ConnTable lookups that matched");
  c_.conn_table_misses =
      metrics_.sharded_counter("silkroad_conn_table_misses_total",
                               "ConnTable lookups that missed");
  c_.learns = metrics_.counter("silkroad_learns_total",
                               "new flows entered into the learning filter");
  c_.inserts = metrics_.counter("silkroad_inserts_total",
                                "ConnTable entries installed by the CPU");
  c_.insert_failures =
      metrics_.counter("silkroad_insert_failures_total",
                       "insertions abandoned after BFS budget exhaustion");
  c_.erases = metrics_.counter("silkroad_erases_total",
                               "ConnTable entries erased (FIN or aging)");
  c_.syn_false_positives =
      metrics_.counter("silkroad_syn_false_positives_total",
                       "SYNs that hit a digest-colliding entry (#4.2)");
  c_.non_syn_false_hits =
      metrics_.counter("silkroad_non_syn_false_hits_total",
                       "mid-flow packets mis-steered by a digest collision");
  c_.relocation_failures =
      metrics_.counter("silkroad_relocation_failures_total",
                       "digest-collision repairs with no conflict-free slot");
  c_.transit_false_positives =
      metrics_.counter("silkroad_transit_false_positives_total",
                       "TransitTable bloom false positives during Step2");
  c_.updates_requested = metrics_.counter("silkroad_updates_requested_total",
                                          "DIP-pool updates requested");
  c_.updates_completed = metrics_.counter("silkroad_updates_completed_total",
                                          "DIP-pool updates fully executed");
  c_.versions_evicted =
      metrics_.counter("silkroad_versions_evicted_total",
                       "versions force-destroyed on number exhaustion");
  c_.software_fallback_conns =
      metrics_.counter("silkroad_software_fallback_total",
                       "flows pinned to the slow-path exact table");
  c_.meter_drops = metrics_.counter("silkroad_meter_drops_total",
                                    "packets marked red by a VIP meter");
  c_.aged_out = metrics_.counter("silkroad_aged_out_total",
                                 "idle entries collected by the aging sweep");
  c_.degraded_transitions =
      metrics_.counter("silkroad_degraded_mode_transitions_total",
                       "degraded-mode entries plus exits");
  c_.degraded_admits =
      metrics_.counter("silkroad_degraded_admits_total",
                       "flows admitted version-routed in degraded mode");
  c_.pending_shed =
      metrics_.counter("silkroad_pending_shed_total",
                       "flows shed by the bounded pending-insert queue");
  c_.relearns = metrics_.counter(
      "silkroad_relearns_total",
      "pending flows re-enqueued after a lost learning notification");
  c_.meter_green =
      metrics_.sharded_counter("silkroad_meter_packets_total",
                               "metered packets by color", "color=\"green\"");
  c_.meter_yellow =
      metrics_.sharded_counter("silkroad_meter_packets_total",
                               "metered packets by color", "color=\"yellow\"");
  c_.meter_red =
      metrics_.sharded_counter("silkroad_meter_packets_total",
                               "metered packets by color", "color=\"red\"");
  c_.packet_latency_ns = metrics_.sharded_histogram(
      "silkroad_packet_latency_ns",
      "per-packet added latency (pipeline + slow-path redirects)");
  c_.learn_batch_size = metrics_.histogram(
      "silkroad_learn_batch_size", "learning-filter flush batch sizes");
  c_.insert_latency_ns = metrics_.histogram(
      "silkroad_insert_latency_ns",
      "learn-to-ConnTable-entry-landed latency per installed connection");
  c_.update_duration_ns = metrics_.histogram(
      "silkroad_update_duration_ns",
      "staged-to-finished duration of the 3-step update protocol");

  // Pull gauges: derived from live structures at snapshot time, so they can
  // never double-count against the push counters above.
  metrics_.register_callback(
      "silkroad_connections_installed", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(conn_table_.size()); },
      "entries resident in the ConnTable");
  metrics_.register_callback(
      "silkroad_connections_pending", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(pending_.size()); },
      "flows awaiting CPU insertion");
  metrics_.register_callback(
      "silkroad_connections_software", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(software_table_.size()); },
      "flows served from the slow-path exact table");
  metrics_.register_callback(
      "silkroad_connections_degraded", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(degraded_flows_.size()); },
      "flows version-pinned by shed/degraded admission");
  metrics_.register_callback(
      "silkroad_degraded_mode", obs::MetricKind::kGauge,
      [this] { return degraded_ ? 1.0 : 0.0; },
      "1 while the switch refuses new ConnTable insertions");
  metrics_.register_callback(
      "silkroad_learn_drops_total", obs::MetricKind::kCounter,
      [this] {
        return static_cast<double>(learning_filter_.dropped_events());
      },
      "learning-filter notifications lost before reaching the CPU");
  metrics_.register_callback(
      "silkroad_conn_table_occupancy", obs::MetricKind::kGauge,
      [this] { return conn_table_.occupancy(); },
      "ConnTable fill fraction (0..1)");
  metrics_.register_callback(
      "silkroad_conn_table_moves_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(conn_table_.total_moves()); },
      "cuckoo BFS relocations performed");
  metrics_.register_callback(
      "silkroad_update_queue_depth", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(update_queue_.size()); },
      "pool updates queued behind the in-flight one");
  metrics_.register_callback(
      "silkroad_update_in_flight", obs::MetricKind::kGauge,
      [this] { return phase_ == Phase::kIdle ? 0.0 : 1.0; },
      "1 while the 3-step update protocol is running");
  metrics_.register_callback(
      "silkroad_learning_filter_pending", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(learning_filter_.pending_count()); },
      "learn events buffered in the learning filter");
  metrics_.register_callback(
      "silkroad_vips", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(vips_.size()); },
      "VIPs configured on the switch");
  metrics_.register_callback(
      "silkroad_versions_active", obs::MetricKind::kGauge,
      [this] {
        std::size_t total = 0;
        for (const auto& [vip, state] : vips_) {
          total += state.versions->active_versions();
        }
        return static_cast<double>(total);
      },
      "live DIP-pool versions across all VIPs");
  metrics_.register_callback(
      "silkroad_versions_allocated_total", obs::MetricKind::kCounter,
      [this] {
        std::uint64_t total = 0;
        for (const auto& [vip, state] : vips_) {
          total += state.versions->versions_allocated();
        }
        return static_cast<double>(total);
      },
      "version numbers taken from the ring, all VIPs");
  metrics_.register_callback(
      "silkroad_versions_reused_total", obs::MetricKind::kCounter,
      [this] {
        std::uint64_t total = 0;
        for (const auto& [vip, state] : vips_) {
          total += state.versions->versions_reused();
        }
        return static_cast<double>(total);
      },
      "updates satisfied by dead-slot substitution (#4.2)");
  metrics_.register_callback(
      "silkroad_version_exhaustions_total", obs::MetricKind::kCounter,
      [this] {
        std::uint64_t total = 0;
        for (const auto& [vip, state] : vips_) {
          total += state.versions->exhaustions();
        }
        return static_cast<double>(total);
      },
      "allocation attempts that found the version ring empty");
  metrics_.register_callback(
      "silkroad_sram_conn_table_bytes", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(memory_usage().conn_table_bytes); },
      "SRAM held by the ConnTable geometry");
  metrics_.register_callback(
      "silkroad_sram_dip_pool_bytes", obs::MetricKind::kGauge,
      [this] {
        return static_cast<double>(memory_usage().dip_pool_table_bytes);
      },
      "SRAM held by live DIPPoolTable versions");
  metrics_.register_callback(
      "silkroad_sram_transit_bytes", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(memory_usage().transit_table_bytes); },
      "SRAM held by the TransitTable bloom filter");
  for (std::uint32_t stage = 0; stage < config_.conn_table.stages; ++stage) {
    metrics_.register_callback(
        "silkroad_conn_table_stage_occupancy", obs::MetricKind::kGauge,
        [this, stage] {
          return static_cast<double>(conn_table_.used_in_stage(stage));
        },
        "occupied ConnTable slots per physical pipeline stage",
        "stage=\"" + std::to_string(stage) + "\"");
  }
  metrics_.register_callback(
      "obs_trace_dropped_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(trace_.dropped()); },
      "trace events lost to ring wraparound");
}

SilkRoadSwitch::Stats SilkRoadSwitch::stats() const noexcept {
  Stats s;
  s.packets = c_.packets->value();
  s.conn_table_hits = c_.conn_table_hits->value();
  s.conn_table_misses = c_.conn_table_misses->value();
  s.learns = c_.learns->value();
  s.inserts = c_.inserts->value();
  s.insert_failures = c_.insert_failures->value();
  s.erases = c_.erases->value();
  s.syn_false_positives = c_.syn_false_positives->value();
  s.non_syn_false_hits = c_.non_syn_false_hits->value();
  s.relocation_failures = c_.relocation_failures->value();
  s.transit_false_positives = c_.transit_false_positives->value();
  s.updates_requested = c_.updates_requested->value();
  s.updates_completed = c_.updates_completed->value();
  s.versions_evicted = c_.versions_evicted->value();
  s.software_fallback_conns = c_.software_fallback_conns->value();
  s.meter_drops = c_.meter_drops->value();
  s.aged_out = c_.aged_out->value();
  return s;
}

SilkRoadSwitch::VipState* SilkRoadSwitch::find_vip(const net::Endpoint& vip) {
  const auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

const SilkRoadSwitch::VipState* SilkRoadSwitch::find_vip(
    const net::Endpoint& vip) const {
  const auto it = vips_.find(vip);
  return it == vips_.end() ? nullptr : &it->second;
}

void SilkRoadSwitch::init_capacity() {
  if (!config_.capacity_telemetry) return;
  capacity_.bind_trace(&trace_);

  // ConnTable: the slot-sized cuckoo store, with per-stage usage so the
  // ledger can expose the stage-skew fragmentation gauge.
  obs::ResourceLedger::TableProbe conn;
  conn.entries = [this] {
    return static_cast<std::uint64_t>(conn_table_.size());
  };
  conn.capacity_entries = [this] {
    return static_cast<std::uint64_t>(conn_table_.capacity());
  };
  conn.bytes = [this] {
    return static_cast<std::uint64_t>(conn_table_.sram_bytes());
  };
  conn.stages = [this] {
    std::vector<obs::ResourceLedger::StageUsage> out;
    for (const auto& stage : conn_table_.stage_occupancy(1)) {
      out.push_back({stage.stage, stage.used, stage.capacity});
    }
    return out;
  };
  capacity_.register_table("conn_table", std::move(conn));
  capacity_.add_pressure("conn_table", "cuckoo_moves",
                         [this] { return conn_table_.total_moves(); });
  capacity_.add_pressure("conn_table", "failed_inserts",
                         [this] { return conn_table_.failed_inserts(); });
  capacity_.add_pressure("conn_table", "relocation_failures", [this] {
    return c_.relocation_failures->value();
  });
  capacity_.add_pressure("conn_table", "software_fallbacks", [this] {
    return c_.software_fallback_conns->value();
  });
  capacity_.add_pressure("conn_table", "insert_shed",
                         [this] { return c_.pending_shed->value(); });

  // TransitTable: byte-sized bloom; occupancy is the fill ratio, pressure is
  // the false-positive churn the fill produces.
  obs::ResourceLedger::TableProbe transit;
  transit.entries = [this] {
    return static_cast<std::uint64_t>(transit_.inserted());
  };
  transit.bytes = [this] {
    return static_cast<std::uint64_t>(transit_.byte_count());
  };
  transit.capacity_bytes = [this] {
    return static_cast<std::uint64_t>(transit_.byte_count());
  };
  transit.occupancy = [this] { return transit_.fill_ratio(); };
  capacity_.register_table("transit_table", std::move(transit));
  capacity_.add_pressure("transit_table", "false_positives", [this] {
    return c_.transit_false_positives->value();
  });

  // LearnTable cell store: pending notifications against the filter's flow
  // capacity. A cell carries the IPv6 five-tuple plus the pool version
  // (296 + 6 bits, §5.2's LearnTable record).
  constexpr std::uint64_t kLearnCellBytes = asic::bits_to_bytes(296 + 6);
  obs::ResourceLedger::TableProbe learn;
  learn.entries = [this] {
    return static_cast<std::uint64_t>(learning_filter_.pending_count());
  };
  learn.capacity_entries = [this] {
    return static_cast<std::uint64_t>(learning_filter_.config().capacity);
  };
  learn.bytes = [this] {
    return kLearnCellBytes *
           static_cast<std::uint64_t>(learning_filter_.pending_count());
  };
  capacity_.register_table("learning_filter", std::move(learn));
  capacity_.add_pressure("learning_filter", "dropped_events", [this] {
    return learning_filter_.dropped_events();
  });
  capacity_.add_pressure("learning_filter", "duplicate_events", [this] {
    return learning_filter_.duplicate_events();
  });

  // DIPPoolTable: live (VIP, version) pools against the version-number
  // space — its occupancy is version exhaustion, the §4.2 failure mode.
  obs::ResourceLedger::TableProbe pools;
  pools.entries = [this] {
    std::uint64_t versions = 0;
    for (const auto& [vip, state] : vips_) {
      versions += state.versions->active_versions();
    }
    return versions;
  };
  pools.capacity_entries = [this] {
    return static_cast<std::uint64_t>(vips_.size())
           << config_.version_bits;
  };
  pools.bytes = [this] {
    return static_cast<std::uint64_t>(memory_usage().dip_pool_table_bytes);
  };
  capacity_.register_table("dip_pool_table", std::move(pools));
  capacity_.add_pressure("dip_pool_table", "versions_evicted", [this] {
    return c_.versions_evicted->value();
  });

  // Publish last so every table's gauges register in one deterministic
  // order; VIP attribution series join as add_vip() registers them.
  capacity_.bind_metrics(metrics_);
}

void SilkRoadSwitch::poll_capacity() {
  if (!config_.capacity_telemetry) return;
  const sim::Time now = sim_.now();
  if (capacity_polled_ &&
      now - capacity_last_poll_ < config_.capacity_poll_interval) {
    return;
  }
  capacity_polled_ = true;
  capacity_last_poll_ = now;
  capacity_.poll(now);
}

void SilkRoadSwitch::add_vip(const net::Endpoint& vip,
                             const std::vector<net::Endpoint>& dips) {
  VipVersionManager::Config vm_config;
  vm_config.version_bits = config_.version_bits;
  vm_config.enable_reuse = config_.enable_version_reuse;
  vm_config.semantics = config_.pool_semantics;
  VipState state;
  state.versions = std::make_unique<VipVersionManager>(vip, dips, vm_config);
  state.trace_scope = trace_.intern(vip.to_string());
  state.versions->bind_trace(&trace_, state.trace_scope);
  if (config_.data_plane_telemetry) {
    state.sampled_latency = packet_profiler_.vip_series(vip.to_string());
    // Pre-register the initial DIPs so the imbalance denominators exist at
    // zero before any traffic (gauges count from the first sample).
    for (const net::Endpoint& dip : dips) dip_handles(state, vip, dip);
  }
  vips_.insert_or_assign(vip, std::move(state));

  if (config_.capacity_telemetry) {
    // Per-VIP SRAM attribution: version-tracked connections own their
    // ConnTable entry's share of a word, plus the VIP's live pool rows. The
    // probes survive reset()/re-provisioning by re-resolving the VIP.
    const unsigned entry_bits = conn_table_.entry_bits();
    auto vip_entries = [this, vip] {
      const VipState* vip_state = find_vip(vip);
      if (vip_state == nullptr) return std::uint64_t{0};
      std::uint64_t entries = 0;
      for (const auto& [version, flows] : vip_state->conns_by_version) {
        entries += flows.size();
      }
      return entries;
    };
    capacity_.register_vip(
        vip.to_string(), vip_entries,
        [this, vip, vip_entries, entry_bits] {
          const VipState* vip_state = find_vip(vip);
          if (vip_state == nullptr) return std::uint64_t{0};
          const std::uint64_t conn_bytes = static_cast<std::uint64_t>(
              asic::bits_to_bytes(vip_entries() * entry_bits));
          // srlint: allow(R12) per-VIP attribution feeding the ledger — the
          // one place live bytes are apportioned; reconciled in capacity_test.
          return conn_bytes + vip_state->versions->pool_table_bytes();
        });
  }
}

SilkRoadSwitch::DipConnHandles& SilkRoadSwitch::dip_handles(
    VipState& state, const net::Endpoint& vip, const net::Endpoint& dip) {
  const auto it = state.dip_conns.find(dip);
  if (it != state.dip_conns.end()) return it->second;
  const std::string labels =
      "dip=\"" + dip.to_string() + "\",vip=\"" + vip.to_string() + "\"";
  DipConnHandles handles;
  handles.new_conns = metrics_.sharded_counter(
      "silkroad_dip_new_conns_total",
      "connections admitted for the DIP (learned, shed, or degraded)",
      labels);
  handles.active = metrics_.gauge(
      "silkroad_dip_active_conns",
      "version-tracked connections currently mapped to the DIP", labels);
  return state.dip_conns.emplace(dip, handles).first->second;
}

void SilkRoadSwitch::release_dip_conn(VipState& state, const net::Endpoint&,
                                      std::uint32_t version,
                                      const net::FiveTuple& flow) {
  const auto dip = state.versions->select(version, flow);
  if (!dip) return;
  const auto it = state.dip_conns.find(*dip);
  if (it != state.dip_conns.end()) it->second.active->add(-1.0);
}

void SilkRoadSwitch::attach_meter(
    const net::Endpoint& vip, const asic::TwoRateThreeColorMeter::Config& meter,
    bool enforce) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  state->meter.emplace(meter);
  state->meter_enforce = enforce;
}

const VipVersionManager* SilkRoadSwitch::version_manager(
    const net::Endpoint& vip) const {
  const VipState* state = find_vip(vip);
  return state == nullptr ? nullptr : state->versions.get();
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

std::uint32_t SilkRoadSwitch::version_for_miss(const net::Endpoint& vip,
                                               VipState& state,
                                               const net::Packet& packet,
                                               bool* redirected_to_cpu) {
  const std::uint32_t current = state.versions->current_version();
  if (phase_ == Phase::kIdle || !(update_vip_ == vip)) return current;

  if (phase_ == Phase::kStep1) {
    // Write-only phase: remember every ConnTable-missing flow of this VIP so
    // it keeps resolving to the old version after the flip.
    if (config_.use_transit_table) {
      transit_.insert(packet.flow);
      // The CPU-side completion gate only tracks flows that will resolve via
      // a pending insertion: a FIN of an untracked flow still lands in the
      // bloom (the ASIC cannot tell), but it must not wedge Step2.
      if (!packet.fin || pending_.contains(packet.flow)) {
        transit_members_.insert(packet.flow);
      }
    }
    return current;  // still the old version
  }

  // Step 2 (read-only): the flip is done, `current` is the new version.
  if (!config_.use_transit_table) return current;
  if (transit_.maybe_contains(packet.flow)) {
    if (transit_members_.contains(packet.flow) ||
        pending_.contains(packet.flow)) {
      return update_old_version_;  // genuine member: pinned to the old pool
    }
    // Bloom false positive: a brand-new flow matched the filter and is
    // routed via the *old* pool — stale routing that can land it on a
    // removed DIP. A SYN taking this path is additionally redirected to the
    // switch CPU (§4.3), which is the hook a production control plane uses
    // to repair it; the hazard this models is what Fig. 18 sizes the filter
    // against.
    c_.transit_false_positives->inc();
    trace_.record(obs::TraceEventKind::kTransitFalsePositive, state.trace_scope,
                  update_old_version_, net::FiveTupleHash{}(packet.flow));
    if (packet.syn && redirected_to_cpu != nullptr) {
      *redirected_to_cpu = true;
    }
    return update_old_version_;
  }
  return update_new_version_;
}

void SilkRoadSwitch::learn_new_flow(const net::Endpoint& vip, VipState& state,
                                    const net::FiveTuple& flow,
                                    std::uint32_t version,
                                    const net::Endpoint& dip) {
  c_.learns->inc();
  trace_.record(obs::TraceEventKind::kLearn, state.trace_scope, version,
                net::FiveTupleHash{}(flow));
  learning_filter_.learn(flow, version);
  pending_.emplace(flow, PendingConn{vip, version, false, sim_.now()});
  state.versions->acquire(version);
  state.conns_by_version[version].insert(flow);
  if (config_.data_plane_telemetry) {
    DipConnHandles& handles = dip_handles(state, vip, dip);
    handles.new_conns->inc();
    handles.active->add(1.0);
  }
  track_digest(flow);
  arm_relearn_sweep();
}

void SilkRoadSwitch::track_digest(const net::FiveTuple& flow) {
  digest_groups_[conn_table_.digest_of(flow)].push_back(flow);
}

void SilkRoadSwitch::untrack_digest(const net::FiveTuple& flow) {
  const auto it = digest_groups_.find(conn_table_.digest_of(flow));
  if (it == digest_groups_.end()) return;
  auto& group = it->second;
  group.erase(std::remove(group.begin(), group.end(), flow), group.end());
  if (group.empty()) digest_groups_.erase(it);
}

void SilkRoadSwitch::resolve_digest_conflicts(const net::FiveTuple& inserted) {
  const auto it = digest_groups_.find(conn_table_.digest_of(inserted));
  if (it == digest_groups_.end()) return;
  // Digest collisions are rare (~1e-4 of flows at 16 bits), so this loop is
  // almost always a single iteration over the inserted flow itself.
  for (const auto& flow : it->second) {
    const auto hit = conn_table_.lookup(flow);
    if (hit && conn_table_.is_false_positive(flow, hit->slot)) {
      if (!conn_table_.relocate_for(flow, hit->slot)) {
        c_.relocation_failures->inc();
        trace_.record(obs::TraceEventKind::kRelocationFail);
      }
    }
  }
}

lb::PacketResult SilkRoadSwitch::process_packet(const net::Packet& packet) {
  // Telemetry off: the sampler costs nothing; on: one countdown decrement
  // per packet, full stage/VIP recording only for the 1-in-N sampled ones.
  const bool sampled =
      config_.data_plane_telemetry && packet_profiler_.begin_packet();
  const lb::PacketResult result = process_packet_impl(packet);
  // Capacity-ledger poll: one time comparison per packet, full sampling at
  // most once per capacity_poll_interval of sim time.
  poll_capacity();
  // Unknown-VIP packets return a zero result; everything else was charged at
  // least the pipeline latency, so this records exactly the counted packets.
  if (result.added_latency > 0) {
    c_.packet_latency_ns->record(result.added_latency);
    if (sampled) {
      // Split the charge into the fixed pipeline slice and the slow-path
      // remainder (SYN redirects), matching the modeled cost structure.
      const std::uint64_t total =
          static_cast<std::uint64_t>(result.added_latency);
      const std::uint64_t pipeline = std::min(
          total, static_cast<std::uint64_t>(config_.pipeline_latency));
      packet_profiler_.enter(kStagePipeline);
      packet_profiler_.exit(kStagePipeline, pipeline);
      if (total > pipeline) {
        packet_profiler_.enter(kStageSlowPath);
        packet_profiler_.exit(kStageSlowPath, total - pipeline);
      }
      if (const VipState* state = find_vip(packet.flow.dst);
          state != nullptr && state->sampled_latency != nullptr) {
        state->sampled_latency->record(total);
      }
    }
  }
  return result;
}

lb::PacketResult SilkRoadSwitch::process_packet_impl(
    const net::Packet& packet) {
  VipState* state = find_vip(packet.flow.dst);
  if (state == nullptr) return {};
  c_.packets->inc();
  lb::PacketResult result;
  result.added_latency = config_.pipeline_latency;

  if (state->meter) {
    const auto color = state->meter->mark(sim_.now(), packet.size_bytes);
    switch (color) {
      case asic::MeterColor::kGreen:
        c_.meter_green->inc();
        break;
      case asic::MeterColor::kYellow:
        c_.meter_yellow->inc();
        trace_.record(obs::TraceEventKind::kMeterColor, state->trace_scope,
                      obs::kNoVersion, static_cast<std::uint64_t>(color));
        break;
      case asic::MeterColor::kRed:
        c_.meter_red->inc();
        trace_.record(obs::TraceEventKind::kMeterColor, state->trace_scope,
                      obs::kNoVersion, static_cast<std::uint64_t>(color));
        break;
    }
    if (color == asic::MeterColor::kRed) {
      c_.meter_drops->inc();
      if (state->meter_enforce) return result;  // dropped
    }
  }

  const net::Endpoint vip = packet.flow.dst;

  if (auto hit = conn_table_.lookup(packet.flow)) {
    if (conn_table_.is_false_positive(packet.flow, hit->slot)) {
      if (packet.syn) {
        // §4.2: a SYN hitting an existing entry signals a digest collision.
        // The switch CPU relocates the resident entry to another stage and
        // re-injects the SYN, which then follows the normal miss path. The
        // few-ms redirect delays connection setup but packets before the
        // re-injected SYN do not exist, so consistency is unaffected.
        c_.syn_false_positives->inc();
        trace_.record(obs::TraceEventKind::kDigestCollision,
                      state->trace_scope, hit->value,
                      conn_table_.digest_of(packet.flow),
                      net::FiveTupleHash{}(packet.flow));
        result.redirected_to_cpu = true;
        result.added_latency += config_.syn_redirect_delay;
        if (!conn_table_.relocate_for(packet.flow, hit->slot)) {
          c_.relocation_failures->inc();
          trace_.record(obs::TraceEventKind::kRelocationFail,
                        state->trace_scope);
          // No conflict-free placement: pin the new flow in the slow-path
          // exact table instead.
          const std::uint32_t version =
              version_for_miss(vip, *state, packet, nullptr);
          const auto dip = state->versions->select(version, packet.flow);
          if (dip) {
            software_table_[packet.flow] = *dip;
            c_.software_fallback_conns->inc();
            trace_.record(obs::TraceEventKind::kSoftwareFallback,
                          state->trace_scope, version,
                          net::FiveTupleHash{}(packet.flow));
          }
          // A Step1 record for this flow can never resolve (it has no
          // pending insertion): drop it from the completion gate.
          transit_members_.erase(packet.flow);
          result.dip = dip;
          return result;
        }
        // Fall through to the miss path below.
      } else {
        // Mid-flow false hit: the ASIC cannot distinguish it, so the packet
        // follows the collided entry's version (a pending flow's transient
        // mis-steering; vanishingly rare at 16-bit digests).
        c_.non_syn_false_hits->inc();
        auto dip = state->versions->select(hit->value, packet.flow);
        if (!dip) {
          dip = state->versions->select(state->versions->current_version(),
                                        packet.flow);
        }
        if (packet.fin) {
          if (const auto p = pending_.find(packet.flow); p != pending_.end()) {
            p->second.dead = true;
          }
        }
        result.dip = dip;
        return result;
      }
    } else {
      c_.conn_table_hits->inc();
      conn_table_.touch(hit->slot, sim_.now());  // hardware hit bit
      result.dip = state->versions->select(hit->value, packet.flow);
      if (packet.fin) enqueue_erase(packet.flow, vip, hit->value);
      return result;
    }
  }

  // --- ConnTable miss --------------------------------------------------------
  c_.conn_table_misses->inc();

  if (const auto sw = software_table_.find(packet.flow);
      sw != software_table_.end()) {
    result.dip = sw->second;
    result.redirected_to_cpu = true;  // slow-path flow: every packet via CPU
    result.added_latency += config_.syn_redirect_delay;
    if (packet.fin) software_table_.erase(sw);
    return result;
  }

  if (const auto dg = degraded_flows_.find(packet.flow);
      dg != degraded_flows_.end()) {
    // Shed/degraded admission under kPinVersion: served version-routed from
    // the pinned admission-time version, no ConnTable entry.
    result.dip = state->versions->select(dg->second.version, packet.flow);
    if (packet.fin) {
      const DegradedConn conn = dg->second;
      degraded_flows_.erase(dg);
      release_conn(conn.vip, packet.flow, conn.version);
    }
    return result;
  }

  if (packet.fin || pending_.contains(packet.flow)) {
    const bool was_redirected = result.redirected_to_cpu;
    const std::uint32_t version =
        version_for_miss(vip, *state, packet, &result.redirected_to_cpu);
    if (result.redirected_to_cpu && !was_redirected) {
      result.added_latency += config_.syn_redirect_delay;
    }
    result.dip = state->versions->select(version, packet.flow);
    if (packet.fin) {
      // Flow ended before its entry landed: cancel the pending insertion.
      if (const auto p = pending_.find(packet.flow); p != pending_.end()) {
        p->second.dead = true;
      }
    }
    return result;
  }

  // Brand-new flow: the admission decision comes *before* version_for_miss
  // so a shed/degraded flow never enters the TransitTable bookkeeping (it
  // would have no pending insertion to drain it back out).
  maybe_update_degraded();
  const bool queue_full = config_.max_pending_inserts > 0 &&
                          pending_.size() >= config_.max_pending_inserts;
  if (degraded_ || queue_full) {
    result.dip = admit_without_insert(vip, *state, packet.flow,
                                      /*shed=*/queue_full && !degraded_);
    return result;
  }

  const bool was_redirected = result.redirected_to_cpu;
  const std::uint32_t version =
      version_for_miss(vip, *state, packet, &result.redirected_to_cpu);
  if (result.redirected_to_cpu && !was_redirected) {
    result.added_latency += config_.syn_redirect_delay;
  }
  const auto dip = state->versions->select(version, packet.flow);
  if (!dip) {
    // Empty pool: the flow is not learned, so its Step1 record (if any) must
    // not gate the in-flight update's completion.
    transit_members_.erase(packet.flow);
    return result;
  }
  result.dip = dip;
  learn_new_flow(vip, *state, packet.flow, version, *dip);
  return result;
}

// ---------------------------------------------------------------------------
// Control plane: learning + insertion
// ---------------------------------------------------------------------------

void SilkRoadSwitch::on_learning_flush(
    const std::vector<asic::LearnEvent>& batch) {
  c_.learn_batch_size->record(batch.size());
  for (const auto& event : batch) {
    if (const auto p = pending_.find(event.flow); p != pending_.end()) {
      p->second.enqueued = true;  // notification survived the channel
    }
    // Shard by flow so multi-pipe CPUs keep per-flow operation order (§5.2).
    cpu_.enqueue([this, event] { complete_insertion(event); },
                 net::FiveTupleHash{}(event.flow));
  }
}

void SilkRoadSwitch::complete_insertion(const asic::LearnEvent& event) {
  const auto p = pending_.find(event.flow);
  if (p == pending_.end()) return;  // already resolved (evicted / duplicate)
  const PendingConn info = p->second;
  pending_.erase(p);
  VipState* state = find_vip(info.vip);
  if (state == nullptr) return;

  if (info.dead) {
    // The flow finished while queued; nothing to install.
    untrack_digest(event.flow);
    release_conn(info.vip, event.flow, info.version);
  } else {
    // The insert-fail fault hook forces the BFS-budget-exhausted outcome so
    // chaos runs exercise the software-fallback path deterministically.
    const auto res = (insert_fail_hook_ && insert_fail_hook_(event.flow))
                         ? asic::DigestCuckooTable::InsertResult{}
                         : conn_table_.insert(event.flow, info.version);
    if (res.inserted) {
      c_.inserts->inc();
      c_.insert_latency_ns->record(sim_.now() - info.learned_at);
      conn_table_.touch_exact(event.flow, sim_.now());
      resolve_digest_conflicts(event.flow);
      arm_aging_sweep();
    } else {
      c_.insert_failures->inc();
      untrack_digest(event.flow);
      const auto dip = state->versions->select(info.version, event.flow);
      if (dip) {
        software_table_[event.flow] = *dip;
        c_.software_fallback_conns->inc();
        trace_.record(obs::TraceEventKind::kSoftwareFallback,
                      state->trace_scope, info.version,
                      net::FiveTupleHash{}(event.flow));
      }
      release_conn(info.vip, event.flow, info.version);
    }
  }
  note_pending_resolved(info.vip, event.flow);
  // Insertions move occupancy without a packet in flight (sim.run() drains);
  // keep the ledger's fill-trend history sampled through such bursts.
  poll_capacity();
}

void SilkRoadSwitch::enqueue_erase(const net::FiveTuple& flow,
                                   const net::Endpoint& vip,
                                   std::uint32_t version) {
  cpu_.enqueue(
      [this, flow, vip, version] {
        aging_queue_.erase(flow);
        if (conn_table_.erase(flow)) {
          c_.erases->inc();
          untrack_digest(flow);
          release_conn(vip, flow, version);
        }
      },
      net::FiveTupleHash{}(flow));
}

void SilkRoadSwitch::release_conn(const net::Endpoint& vip,
                                  const net::FiveTuple& flow,
                                  std::uint32_t version) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  // Before release(): the (version, flow) -> DIP mapping must still be live
  // to attribute the departure to the right DIP gauge.
  if (config_.data_plane_telemetry) {
    release_dip_conn(*state, vip, version, flow);
  }
  state->versions->release(version);
  const auto it = state->conns_by_version.find(version);
  if (it != state->conns_by_version.end()) {
    it->second.erase(flow);
    if (it->second.empty()) state->conns_by_version.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Control plane: 3-step PCC update protocol
// ---------------------------------------------------------------------------

void SilkRoadSwitch::request_update(const workload::DipUpdate& update) {
  c_.updates_requested->inc();
  span_event(update.update_id, obs::SpanEventKind::kQueueStage);
  update_queue_.push_back(update);
  // Defer the start by one event: requests landing at the same instant
  // (rolling-reboot bursts) are then all queued before the control plane
  // picks them up and can be staged as one atomic batch.
  sim_.schedule_after(0, [this] { try_start_next_update(); });
}

void SilkRoadSwitch::try_start_next_update() {
  while (phase_ == Phase::kIdle && !update_queue_.empty()) {
    const workload::DipUpdate update = update_queue_.front();
    update_queue_.pop_front();
    VipState* state = find_vip(update.vip);
    if (state == nullptr) {
      span_event(update.update_id, obs::SpanEventKind::kAbandon, 0, 0);
      continue;
    }

    // Coalesce a same-instant burst for the same VIP (e.g., a rolling-reboot
    // batch) into one atomic staged version — one flip, one version number.
    std::vector<workload::DipUpdate> batch{update};
    while (!update_queue_.empty() &&
           update_queue_.front().vip == update.vip &&
           update_queue_.front().at == update.at) {
      batch.push_back(update_queue_.front());
      update_queue_.pop_front();
    }
    span_batch_.clear();
    for (const auto& queued : batch) {
      if (queued.update_id != 0) span_batch_.push_back(queued.update_id);
    }

    auto staged = state->versions->stage_update_batch(batch);
    if (!staged) {
      // Version-number exhaustion: evict the least-used version by moving
      // its flows to exact DIP mappings (§4.2 fallback), then retry.
      if (evict_version_for(update.vip, *state)) {
        staged = state->versions->stage_update_batch(batch);
      }
      if (!staged) {
        // cannot stage (degenerate config); drop
        span_batch_event(obs::SpanEventKind::kAbandon, 0, 1);
        span_batch_.clear();
        continue;
      }
    }

    update_vip_ = update.vip;
    update_old_version_ = state->versions->current_version();
    update_new_version_ = staged->target_version;
    update_started_at_ = sim_.now();

    if (update_new_version_ == update_old_version_) {
      // Dead-slot substitution landed in the current version: the pool
      // mutation is already in place and no VIPTable flip is needed. The
      // span still records the full quadruple (at one instant) so the
      // completeness audit is uniform across completion paths.
      c_.updates_completed->inc();
      c_.update_duration_ns->record(0);
      trace_.record(obs::TraceEventKind::kUpdateFinish, state->trace_scope,
                    update_new_version_, update_old_version_,
                    update_new_version_);
      span_batch_event(obs::SpanEventKind::kStep1Open, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kFlip, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kCommit, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kFinish);
      span_batch_.clear();
      if (risk_cb_) risk_cb_(update.vip);
      continue;
    }

    if (!config_.use_transit_table) {
      // Ablation (Figs. 16/17): flip immediately. Flows pending insertion
      // flap to the new version until their (old-version) entries land.
      state->versions->commit(update_new_version_);
      c_.updates_completed->inc();
      c_.update_duration_ns->record(0);
      trace_.record(obs::TraceEventKind::kUpdateFlip, state->trace_scope,
                    update_new_version_, update_old_version_,
                    update_new_version_);
      trace_.record(obs::TraceEventKind::kUpdateFinish, state->trace_scope,
                    update_new_version_, update_old_version_,
                    update_new_version_);
      span_batch_event(obs::SpanEventKind::kStep1Open, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kFlip, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kCommit, update_old_version_,
                       update_new_version_);
      span_batch_event(obs::SpanEventKind::kFinish);
      span_batch_.clear();
      if (risk_cb_) risk_cb_(update.vip);
      continue;
    }

    // Step 1 (t_req): record new flows in the TransitTable; flip only after
    // every flow that arrived before t_req has its entry installed.
    phase_ = Phase::kStep1;
    trace_.record(obs::TraceEventKind::kUpdateStep1Open, state->trace_scope,
                  update_new_version_, update_old_version_,
                  update_new_version_);
    span_batch_event(obs::SpanEventKind::kStep1Open, update_old_version_,
                     update_new_version_);
    awaiting_pre_.clear();
    transit_members_.clear();
    for (const auto& [flow, info] : pending_) {
      if (info.vip == update.vip && !info.dead) awaiting_pre_.insert(flow);
    }
    if (awaiting_pre_.empty()) {
      execute_flip();
      // execute_flip may already finish the update (no transit members), in
      // which case phase_ is Idle again and the loop continues naturally.
    }
  }
}

void SilkRoadSwitch::execute_flip() {
  VipState* state = find_vip(update_vip_);
  SR_CHECKF(state != nullptr, "update in flight for an unknown VIP %s",
            update_vip_.to_string().c_str());
  state->versions->commit(update_new_version_);
  phase_ = Phase::kStep2;
  trace_.record(obs::TraceEventKind::kUpdateFlip, state->trace_scope,
                update_new_version_, update_old_version_, update_new_version_);
  span_batch_event(obs::SpanEventKind::kFlip, update_old_version_,
                   update_new_version_);
  span_batch_event(obs::SpanEventKind::kCommit, update_old_version_,
                   update_new_version_);
  if (risk_cb_) risk_cb_(update_vip_);
  if (transit_members_.empty()) finish_update();
}

void SilkRoadSwitch::finish_update() {
  transit_.clear();
  transit_members_.clear();
  awaiting_pre_.clear();
  phase_ = Phase::kIdle;
  c_.updates_completed->inc();
  c_.update_duration_ns->record(sim_.now() - update_started_at_);
  if (const VipState* state = find_vip(update_vip_); state != nullptr) {
    trace_.record(obs::TraceEventKind::kUpdateFinish, state->trace_scope,
                  update_new_version_, update_old_version_,
                  update_new_version_);
  }
  span_batch_event(obs::SpanEventKind::kFinish);
  span_batch_.clear();
  try_start_next_update();
}

void SilkRoadSwitch::bind_spans(obs::SpanCollector* spans,
                                std::uint32_t switch_index) {
  spans_ = spans;
  span_switch_ = switch_index;
}

void SilkRoadSwitch::span_event(std::uint64_t id, obs::SpanEventKind kind,
                                std::uint64_t arg0, std::uint64_t arg1) {
  if (spans_ == nullptr || id == 0) return;
  spans_->record(id, kind, span_switch_, sim_.now(), arg0, arg1);
}

void SilkRoadSwitch::span_batch_event(obs::SpanEventKind kind,
                                      std::uint64_t arg0, std::uint64_t arg1) {
  for (const std::uint64_t id : span_batch_) span_event(id, kind, arg0, arg1);
}

void SilkRoadSwitch::note_pending_resolved(const net::Endpoint& vip,
                                           const net::FiveTuple& flow) {
  if (phase_ == Phase::kIdle || !(update_vip_ == vip)) return;
  if (phase_ == Phase::kStep1) {
    transit_members_.erase(flow);
    awaiting_pre_.erase(flow);
    if (awaiting_pre_.empty()) execute_flip();
  } else {
    transit_members_.erase(flow);
    if (transit_members_.empty()) finish_update();
  }
}

bool SilkRoadSwitch::evict_version_for(const net::Endpoint& /*vip*/,
                                       VipState& state) {
  const auto victim = state.versions->eviction_candidate();
  if (!victim) return false;
  const auto it = state.conns_by_version.find(*victim);
  if (it != state.conns_by_version.end()) {
    for (const auto& flow : it->second) {
      const auto dip = state.versions->select(*victim, flow);
      if (dip) {
        software_table_[flow] = *dip;
        c_.software_fallback_conns->inc();
        trace_.record(obs::TraceEventKind::kSoftwareFallback,
                      state.trace_scope, *victim,
                      net::FiveTupleHash{}(flow));
        // The flow leaves version tracking wholesale (no release_conn), so
        // settle its per-DIP active gauge here.
        if (config_.data_plane_telemetry) {
          const auto handles = state.dip_conns.find(*dip);
          if (handles != state.dip_conns.end()) {
            handles->second.active->add(-1.0);
          }
        }
      }
      if (conn_table_.erase(flow)) {
        c_.erases->inc();
        untrack_digest(flow);
      }
      if (const auto p = pending_.find(flow); p != pending_.end()) {
        p->second.dead = true;  // insertion will be skipped
      }
      degraded_flows_.erase(flow);  // now exact-pinned, not version-pinned
    }
    state.conns_by_version.erase(it);
  }
  state.versions->force_destroy(*victim);
  c_.versions_evicted->inc();
  return true;
}

void SilkRoadSwitch::arm_aging_sweep() {
  if (config_.idle_timeout == 0 || aging_armed_) return;
  aging_armed_ = true;
  sim_.schedule_after(config_.aging_sweep_period, [this] { aging_sweep(); });
}

void SilkRoadSwitch::aging_sweep() {
  aging_armed_ = false;
  const sim::Time now = sim_.now();
  if (now > config_.idle_timeout) {
    const sim::Time cutoff = now - config_.idle_timeout;
    for (const auto& flow : conn_table_.collect_idle(cutoff)) {
      if (!aging_queue_.insert(flow).second) continue;  // erase already queued
      const auto version = conn_table_.exact_value(flow);
      if (!version) continue;
      c_.aged_out->inc();
      if (const VipState* state = find_vip(flow.dst); state != nullptr) {
        trace_.record(obs::TraceEventKind::kAgedOut, state->trace_scope,
                      *version, net::FiveTupleHash{}(flow));
      }
      // The VIP is the flow's destination endpoint by construction.
      enqueue_erase(flow, flow.dst, *version);
    }
  }
  if (conn_table_.size() > 0 || !pending_.empty()) {
    arm_aging_sweep();
  }
}

void SilkRoadSwitch::handle_dip_failure(const net::Endpoint& vip,
                                        const net::Endpoint& dip,
                                        bool resilient_in_place) {
  VipState* state = find_vip(vip);
  if (state == nullptr) return;
  if (!resilient_in_place) {
    workload::DipUpdate update;
    update.at = sim_.now();
    update.vip = vip;
    update.dip = dip;
    update.action = workload::UpdateAction::kRemoveDip;
    update.cause = workload::UpdateCause::kFailure;
    request_update(update);
    return;
  }
  // §7 alternative: mark the DIP dead in every pool version; resilient
  // hashing diverts its flows without a version flip. Flows that targeted
  // the failed DIP re-map (they are broken by the server loss regardless).
  state->versions->mark_dip_down(dip);
  if (risk_cb_) risk_cb_(vip);
}

// ---------------------------------------------------------------------------
// Graceful degradation + fault hooks
// ---------------------------------------------------------------------------

void SilkRoadSwitch::set_fault_hooks(FaultHooks hooks) {
  cpu_.set_delay_hook(std::move(hooks.cpu_delay));
  learning_filter_.set_drop_hook(std::move(hooks.learn_drop));
  insert_fail_hook_ = std::move(hooks.insert_fail);
}

std::optional<net::Endpoint> SilkRoadSwitch::admit_without_insert(
    const net::Endpoint& vip, VipState& state, const net::FiveTuple& flow,
    bool shed) {
  // current_version() directly — never version_for_miss — so the flow leaves
  // no TransitTable record. Under kPinVersion the pin makes this equivalent
  // to a ConnTable entry for consistency purposes: during Step1 the pin holds
  // the old version; after a flip the pin still holds it.
  const std::uint32_t version = state.versions->current_version();
  const auto dip = state.versions->select(version, flow);
  if (!dip) return std::nullopt;
  if (config_.shed_policy == ShedPolicy::kPinVersion) {
    degraded_flows_.emplace(flow, DegradedConn{vip, version});
    state.versions->acquire(version);
    state.conns_by_version[version].insert(flow);
    if (config_.data_plane_telemetry) {
      DipConnHandles& handles = dip_handles(state, vip, *dip);
      handles.new_conns->inc();
      handles.active->add(1.0);
    }
  }
  if (shed) {
    c_.pending_shed->inc();
    trace_.record(obs::TraceEventKind::kInsertShed, state.trace_scope, version,
                  net::FiveTupleHash{}(flow));
  } else {
    c_.degraded_admits->inc();
  }
  return dip;
}

void SilkRoadSwitch::maybe_update_degraded() {
  // Keep the capacity alarms at least as fresh as the degradation gate: both
  // read the same occupancy, so a degradation transition always lands next
  // to an up-to-date ledger level in the trace ring.
  poll_capacity();
  const std::size_t backlog = cpu_.queue_depth();
  const double occupancy = conn_table_.occupancy();
  if (!degraded_) {
    const bool backlog_high = config_.degraded_enter_backlog > 0 &&
                              backlog >= config_.degraded_enter_backlog;
    const bool occupancy_high = occupancy >= config_.degraded_enter_occupancy;
    if (backlog_high || occupancy_high) {
      degraded_ = true;
      c_.degraded_transitions->inc();
      trace_.record(obs::TraceEventKind::kDegradedEnter, obs::kNoScope,
                    obs::kNoVersion, backlog, pending_.size());
      arm_degraded_poll();
    }
    return;
  }
  const bool backlog_ok = config_.degraded_enter_backlog == 0 ||
                          backlog <= config_.degraded_exit_backlog;
  const bool occupancy_ok = config_.degraded_enter_occupancy > 1.0 ||
                            occupancy <= config_.degraded_exit_occupancy;
  if (backlog_ok && occupancy_ok) {
    degraded_ = false;
    c_.degraded_transitions->inc();
    trace_.record(obs::TraceEventKind::kDegradedExit, obs::kNoScope,
                  obs::kNoVersion, backlog, pending_.size());
  }
}

void SilkRoadSwitch::arm_degraded_poll() {
  // Exit is re-checked on every admission; the poll covers the case where
  // traffic to this switch stops entirely while it is degraded.
  if (!degraded_ || degraded_poll_armed_ ||
      config_.degraded_poll_period == 0) {
    return;
  }
  degraded_poll_armed_ = true;
  sim_.schedule_after(config_.degraded_poll_period, [this] {
    degraded_poll_armed_ = false;
    maybe_update_degraded();
    arm_degraded_poll();
  });
}

void SilkRoadSwitch::arm_relearn_sweep() {
  if (config_.relearn_timeout == 0 || relearn_armed_) return;
  relearn_armed_ = true;
  sim_.schedule_after(config_.relearn_timeout, [this] { relearn_sweep(); });
}

void SilkRoadSwitch::relearn_sweep() {
  relearn_armed_ = false;
  const sim::Time now = sim_.now();
  const sim::Time cutoff =
      now >= config_.relearn_timeout ? now - config_.relearn_timeout : 0;
  for (auto& [flow, info] : pending_) {
    // Dead entries are re-enqueued too: a flow that FINs after its
    // notification was dropped still needs complete_insertion to release its
    // version refcount and drain the update completion gate.
    if (info.enqueued || info.learned_at > cutoff) continue;
    if (learning_filter_.pending(flow)) continue;  // still buffered, not lost
    // The notification was dropped between the filter and the CPU (the
    // filter clears its own state at flush time): re-enqueue the insertion
    // directly from the CPU's shadow record.
    info.enqueued = true;
    c_.relearns->inc();
    if (const VipState* state = find_vip(info.vip); state != nullptr) {
      trace_.record(obs::TraceEventKind::kRelearn, state->trace_scope,
                    info.version, net::FiveTupleHash{}(flow));
    }
    cpu_.enqueue(
        [this, event = asic::LearnEvent{flow, info.version, info.learned_at}] {
          complete_insertion(event);
        },
        net::FiveTupleHash{}(flow));
  }
  if (!pending_.empty()) arm_relearn_sweep();
}

void SilkRoadSwitch::reset() {
  // Updates dying with the crash are abandoned on this switch's span leg —
  // both the queued ones and the coalesced batch mid-protocol. The
  // controller's restore-time resync subsumes them.
  for (const auto& queued : update_queue_) {
    span_event(queued.update_id, obs::SpanEventKind::kAbandon, 0, 2);
  }
  span_batch_event(obs::SpanEventKind::kAbandon, 0, 2);
  span_batch_.clear();
  conn_table_.clear();
  learning_filter_.reset();
  transit_.clear();
  // The crash wipes connection state, so the per-DIP active gauges go to
  // zero with it (counters, being monotone, survive).
  for (auto& [vip, state] : vips_) {
    for (auto& [dip, handles] : state.dip_conns) handles.active->set(0.0);
  }
  vips_.clear();
  pending_.clear();
  software_table_.clear();
  degraded_flows_.clear();
  digest_groups_.clear();
  aging_queue_.clear();
  update_queue_.clear();
  awaiting_pre_.clear();
  transit_members_.clear();
  phase_ = Phase::kIdle;
  degraded_ = false;
}

std::vector<net::FiveTuple> SilkRoadSwitch::failover_blast_radius() const {
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> flows;
  for (const auto& [vip, state] : vips_) {
    const std::uint32_t current = state.versions->current_version();
    for (const auto& [version, conns] : state.conns_by_version) {
      if (version == current) continue;
      flows.insert(conns.begin(), conns.end());
    }
  }
  for (const auto& [flow, dip] : software_table_) flows.insert(flow);
  return {flows.begin(), flows.end()};
}

std::string SilkRoadSwitch::debug_report() const {
  char buf[256];
  std::string out;
  const auto usage = memory_usage();
  std::snprintf(buf, sizeof buf,
                "silkroad switch: %zu VIPs, %zu connections installed "
                "(%.1f%% of %zu slots), %zu pending, %zu software\n",
                vips_.size(), conn_table_.size(),
                100.0 * conn_table_.occupancy(), conn_table_.capacity(),
                pending_.size(), software_table_.size());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "memory: ConnTable %.2f MB, DIPPoolTable %.1f KB, "
                "TransitTable %zu B\n",
                usage.conn_table_bytes / 1e6,
                usage.dip_pool_table_bytes / 1e3, usage.transit_table_bytes);
  out += buf;
  const char* phase = phase_ == Phase::kIdle    ? "idle"
                      : phase_ == Phase::kStep1 ? "step1 (recording)"
                                                : "step2 (draining)";
  std::snprintf(buf, sizeof buf,
                "control plane: update %s, %zu queued, CPU queue %zu deep "
                "(%zu pipe%s)\n",
                phase, update_queue_.size(), cpu_.queue_depth(),
                cpu_.pipe_count(), cpu_.pipe_count() == 1 ? "" : "s");
  out += buf;
  for (const auto& [vip, state] : vips_) {
    const auto& mgr = *state.versions;
    const auto* pool = mgr.pool(mgr.current_version());
    std::snprintf(buf, sizeof buf,
                  "  vip %-24s version %2u (%zu live), %zu DIPs%s%s\n",
                  vip.to_string().c_str(), mgr.current_version(),
                  mgr.active_versions(), pool ? pool->live_count() : 0,
                  state.meter ? ", metered" : "",
                  (phase_ != Phase::kIdle && update_vip_ == vip)
                      ? ", UPDATING"
                      : "");
    out += buf;
  }
  // Counters render from a registry snapshot — the same data every exporter
  // sees — so the CLI line can never drift from the exported telemetry.
  const obs::Snapshot snap = metrics_.snapshot();
  const auto count = [&snap](const char* name) {
    return static_cast<unsigned long long>(snap.value_of(name));
  };
  std::snprintf(
      buf, sizeof buf,
      "counters: %llu pkts, %llu learns, %llu inserts (%llu failed), "
      "%llu erases, %llu aged, %llu syn-fp, %llu updates done\n",
      count("silkroad_packets_total"), count("silkroad_learns_total"),
      count("silkroad_inserts_total"), count("silkroad_insert_failures_total"),
      count("silkroad_erases_total"), count("silkroad_aged_out_total"),
      count("silkroad_syn_false_positives_total"),
      count("silkroad_updates_completed_total"));
  out += buf;
  const auto quantile_pair = [&snap, &buf, &out](const char* label,
                                                 const char* name) {
    const double p50 = snap.quantile(name, "", 0.50);
    const double p99 = snap.quantile(name, "", 0.99);
    if (std::isnan(p50)) return;  // histogram empty: nothing to report
    std::snprintf(buf, sizeof buf, "latency: %s p50 %.0f ns, p99 %.0f ns\n",
                  label, p50, p99);
    out += buf;
  };
  quantile_pair("packet", "silkroad_packet_latency_ns");
  quantile_pair("insert", "silkroad_insert_latency_ns");
  quantile_pair("update", "silkroad_update_duration_ns");
  if (config_.capacity_telemetry) {
    out += "\n";
    out += capacity_.to_text();
  }
  return out;
}

std::string SilkRoadSwitch::tables_json() const {
  std::string out = "{\"conn_table\":{\"size\":";
  out += std::to_string(conn_table_.size());
  out += ",\"capacity\":";
  out += std::to_string(conn_table_.capacity());
  out += ",\"occupancy\":";
  out += obs::format_number(conn_table_.occupancy());
  out += ",\"stages\":[";
  bool first = true;
  for (const auto& row : conn_table_.stage_occupancy()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"stage\":";
    out += std::to_string(row.stage);
    out += ",\"used\":";
    out += std::to_string(row.used);
    out += ",\"capacity\":";
    out += std::to_string(row.capacity);
    out += ",\"bin_capacity\":";
    out += std::to_string(row.bin_capacity);
    out += ",\"bins\":[";
    bool first_bin = true;
    for (const std::size_t bin : row.bins) {
      if (!first_bin) out += ",";
      first_bin = false;
      out += std::to_string(bin);
    }
    out += "]}";
  }
  out += "\n]},\"pending\":";
  out += std::to_string(pending_.size());
  out += ",\"software_table\":";
  out += std::to_string(software_table_.size());
  out += ",\"transit_table_bytes\":";
  out += std::to_string(transit_.byte_count());
  out += ",\"vips\":";
  out += std::to_string(vips_.size());
  out += "}\n";
  return out;
}

SilkRoadSwitch::MemoryUsage SilkRoadSwitch::memory_usage() const {
  MemoryUsage usage;
  usage.conn_table_bytes = conn_table_.sram_bytes();
  for (const auto& [vip, state] : vips_) {
    // srlint: allow(R12) the switch's own MemoryUsage snapshot — consumed by
    // the auditor and the ledger's dip_pool probe; reconciled in capacity_test.
    usage.dip_pool_table_bytes += state.versions->pool_table_bytes();
  }
  usage.transit_table_bytes = transit_.byte_count();
  return usage;
}

}  // namespace silkroad::core
