#include "core/version_manager.h"

#include <algorithm>
#include <limits>

#include "check/sr_check.h"

namespace silkroad::core {

VipVersionManager::VipVersionManager(net::Endpoint vip,
                                     std::vector<net::Endpoint> dips,
                                     const Config& config)
    : vip_(vip), config_(config) {
  for (std::uint32_t v = 1; v < version_capacity(); ++v) {
    free_versions_.push_back(v);
  }
  pools_.emplace(0u, PoolInfo{lb::DipPool(std::move(dips), config_.semantics),
                              0});
  current_ = 0;
  allocations_ = 1;
}

const lb::DipPool* VipVersionManager::pool(std::uint32_t version) const {
  const auto it = pools_.find(version);
  return it == pools_.end() ? nullptr : &it->second.pool;
}

std::optional<net::Endpoint> VipVersionManager::select(
    std::uint32_t version, const net::FiveTuple& flow) const {
  const lb::DipPool* p = pool(version);
  if (p == nullptr) return std::nullopt;
  return p->select(flow);
}

std::optional<std::uint32_t> VipVersionManager::allocate_version() {
  if (free_versions_.empty()) {
    ++exhaustions_;
    return std::nullopt;
  }
  const std::uint32_t v = free_versions_.front();
  free_versions_.pop_front();
  ++allocations_;
  trace_event(obs::TraceEventKind::kVersionAllocate, v);
  return v;
}

std::optional<VipVersionManager::StagedUpdate> VipVersionManager::stage_update(
    const workload::DipUpdate& update) {
  const auto cur_it = pools_.find(current_);
  SR_CHECK(cur_it != pools_.end());

  if (update.action == workload::UpdateAction::kAddDip) {
    if (config_.enable_reuse) {
      // Version reuse (paper §4.2, Fig. 7): substitute the returning DIP
      // into a version whose pool still holds a *down* DIP in some slot.
      // Connections of that version mapped to the down slot were already
      // broken by the server going away; every other slot is untouched; no
      // fresh version number is consumed. Candidate ranking:
      //   1. fewer residual down members after substitution is better (new
      //      connections must not land on down servers);
      //   2. substituting the new DIP itself into its old slot beats
      //      substituting a different down DIP;
      //   3. membership closer to the current pool's is better (less load
      //      drift for new connections).
      auto desired = cur_it->second.pool.members();
      std::sort(desired.begin(), desired.end());
      std::optional<std::uint32_t> best_version;
      net::Endpoint best_slot_dip;
      std::tuple<std::size_t, int, std::size_t> best_score{SIZE_MAX, 2,
                                                           SIZE_MAX};
      for (auto& [version, info] : pools_) {
        if (version == current_) continue;
        const auto members = info.pool.members();
        std::size_t down_members = 0;
        for (const auto& member : members) {
          if (down_dips_.contains(member)) ++down_members;
        }
        for (const auto& member : members) {
          if (!down_dips_.contains(member)) continue;
          const int self_substitution = member == update.dip ? 0 : 1;
          std::size_t drift = 0;  // members not in the desired set
          for (const auto& m : members) {
            if (!(m == member) &&
                !std::binary_search(desired.begin(), desired.end(), m)) {
              ++drift;
            }
          }
          const std::tuple<std::size_t, int, std::size_t> score{
              down_members - 1, self_substitution, drift};
          if (score < best_score) {
            best_score = score;
            best_version = version;
            best_slot_dip = member;
          }
        }
      }
      if (best_version) {
        pools_.at(*best_version).pool.replace_member(best_slot_dip, update.dip);
        ++reuses_;
        down_dips_.erase(update.dip);  // the server is back in service
        trace_event(obs::TraceEventKind::kVersionReuse, *best_version);
        return StagedUpdate{*best_version, true};
      }
    }
    down_dips_.erase(update.dip);
  }

  const auto version = allocate_version();
  if (!version) return std::nullopt;
  lb::DipPool next = cur_it->second.pool;
  if (update.action == workload::UpdateAction::kAddDip) {
    next.add(update.dip);
  } else {
    // The new version's pool simply omits the DIP (compacted); the old
    // version keeps it addressable so its ongoing connections are untouched.
    down_dips_.insert(update.dip);
    next.erase_member(update.dip);
  }
  pools_.emplace(*version, PoolInfo{std::move(next), 0});
  return StagedUpdate{*version, false};
}

std::optional<VipVersionManager::StagedUpdate>
VipVersionManager::stage_update_batch(
    const std::vector<workload::DipUpdate>& updates) {
  if (updates.empty()) return std::nullopt;
  if (updates.size() == 1) return stage_update(updates.front());
  const auto cur_it = pools_.find(current_);
  SR_CHECK(cur_it != pools_.end());
  const auto version = allocate_version();
  if (!version) return std::nullopt;
  lb::DipPool next = cur_it->second.pool;
  for (const auto& update : updates) {
    if (update.action == workload::UpdateAction::kAddDip) {
      next.add(update.dip);
      down_dips_.erase(update.dip);
    } else {
      down_dips_.insert(update.dip);
      next.erase_member(update.dip);
    }
  }
  pools_.emplace(*version, PoolInfo{std::move(next), 0});
  return StagedUpdate{*version, false};
}

void VipVersionManager::commit(std::uint32_t target_version) {
  SR_CHECKF(pools_.contains(target_version),
            "commit of version %u with no staged pool", target_version);
  const std::uint32_t previous = current_;
  current_ = target_version;
  // The displaced version may already be unreferenced.
  if (previous != current_) {
    const auto it = pools_.find(previous);
    if (it != pools_.end() && it->second.refcount == 0) {
      pools_.erase(it);
      free_versions_.push_back(previous);
      trace_event(obs::TraceEventKind::kVersionRecycle, previous);
    }
  }
}

void VipVersionManager::acquire(std::uint32_t version) {
  const auto it = pools_.find(version);
  SR_CHECKF(it != pools_.end(), "acquire of dead version %u", version);
  ++it->second.refcount;
}

void VipVersionManager::release(std::uint32_t version) {
  const auto it = pools_.find(version);
  if (it == pools_.end()) return;
  SR_CHECKF(it->second.refcount > 0, "release of version %u underflows its refcount", version);
  if (--it->second.refcount == 0 && version != current_) {
    pools_.erase(it);
    free_versions_.push_back(version);
    trace_event(obs::TraceEventKind::kVersionRecycle, version);
  }
}

std::int64_t VipVersionManager::refcount(std::uint32_t version) const {
  const auto it = pools_.find(version);
  return it == pools_.end() ? -1 : it->second.refcount;
}

std::optional<std::uint32_t> VipVersionManager::eviction_candidate() const {
  std::optional<std::uint32_t> best;
  std::int64_t best_count = std::numeric_limits<std::int64_t>::max();
  for (const auto& [version, info] : pools_) {
    if (version == current_) continue;
    if (info.refcount < best_count) {
      best = version;
      best_count = info.refcount;
    }
  }
  return best;
}

void VipVersionManager::force_destroy(std::uint32_t version) {
  SR_CHECKF(version != current_, "cannot destroy current version %u", version);
  const auto it = pools_.find(version);
  if (it == pools_.end()) return;
  pools_.erase(it);
  free_versions_.push_back(version);
  trace_event(obs::TraceEventKind::kVersionEvict, version);
}

std::size_t VipVersionManager::mark_dip_down(const net::Endpoint& dip) {
  down_dips_.insert(dip);
  std::size_t touched = 0;
  for (auto& [version, info] : pools_) {
    if (info.pool.remove(dip)) ++touched;
  }
  return touched;
}

std::vector<std::uint32_t> VipVersionManager::live_versions() const {
  std::vector<std::uint32_t> versions;
  versions.reserve(pools_.size());
  for (const auto& [version, info] : pools_) versions.push_back(version);
  return versions;
}

std::size_t VipVersionManager::pool_table_bytes() const {
  std::size_t total = 0;
  for (const auto& [version, info] : pools_) {
    total += info.pool.wire_bytes();
  }
  return total;
}

}  // namespace silkroad::core
