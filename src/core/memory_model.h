// Analytic SRAM / cost model (paper §4.2, §6.1 — Figs. 12, 13, 14, Table 1).
//
// Computes, for a given connection count and address family, the ConnTable
// memory under the three designs the paper compares (naive 5-tuple->DIP,
// digest->DIP, digest->version), DIPPoolTable overhead, how many SLB servers
// one SilkRoad switch replaces, and the power/cost ratios of §6.1.
#pragma once

#include <cstdint>

#include "asic/sram.h"

namespace silkroad::core {

struct EntryLayout {
  unsigned match_bits = 0;
  unsigned action_bits = 0;
  unsigned overhead_bits = 0;
  unsigned total() const noexcept {
    return match_bits + action_bits + overhead_bits;
  }
};

/// Naive ConnTable entry: full 5-tuple key -> full DIP action (37 B + 18 B
/// for IPv6, 13 B + 6 B for IPv4), plus ~2 B packing overhead ("a couple
/// bytes", paper footnote 1).
EntryLayout naive_entry(bool ipv6);

/// Digest compression only: 16-bit (default) digest key, full DIP action.
EntryLayout digest_entry(bool ipv6, unsigned digest_bits = 16);

/// SilkRoad entry: digest key + 6-bit version action + 6-bit overhead
/// (exactly 28 bits at the defaults: 4 entries per 112-bit word, §6.1).
EntryLayout digest_version_entry(unsigned digest_bits = 16,
                                 unsigned version_bits = 6);

/// SRAM bytes for `connections` entries of `layout`, word-packed.
std::size_t conn_table_bytes(std::size_t connections, const EntryLayout& layout);

/// DIPPoolTable bytes: `versions` concurrently-active pools over `dips`
/// members (address+port each, plus a 2-byte slot header).
std::size_t dip_pool_table_bytes(std::size_t dips, std::size_t versions,
                                 bool ipv6);

struct SilkRoadFootprint {
  std::size_t conn_table = 0;
  std::size_t dip_pool_table = 0;
  std::size_t transit_table = 0;
  std::size_t total() const noexcept {
    return conn_table + dip_pool_table + transit_table;
  }
};

/// Full SilkRoad SRAM footprint for a ToR switch carrying `connections`
/// across `dips` DIPs with `versions` active pool versions.
SilkRoadFootprint silkroad_footprint(std::size_t connections, std::size_t dips,
                                     std::size_t versions, bool ipv6,
                                     unsigned digest_bits = 16,
                                     unsigned version_bits = 6,
                                     std::size_t transit_bytes = 256);

/// Fractional memory saving of design B vs design A (Fig. 14).
double memory_saving(std::size_t bytes_naive, std::size_t bytes_compact);

// --- Fig. 13 / §6.1 cost math ----------------------------------------------

struct SlbModel {
  double mpps = 12.0;       ///< 8-core state of the art, 52-B packets [20]
  double watts = 200.0;     ///< Intel Xeon E5-2660 class
  double cost_usd = 3000.0;
};

struct SilkRoadModel {
  double capacity_tbps = 6.4;
  double gpps = 10.0;                 ///< ~10 Gpps at 52-B packets
  std::uint64_t max_connections = 10'000'000;
  double watts = 300.0;
  double cost_usd = 10'000.0;
};

/// SLB servers required for a cluster's peak packet rate.
std::uint64_t slbs_required(double peak_mpps, const SlbModel& slb = {});

/// SilkRoad switches required for peak connections and throughput.
std::uint64_t silkroads_required(std::uint64_t peak_connections,
                                 double peak_tbps,
                                 const SilkRoadModel& sr = {});

struct CostComparison {
  double power_ratio = 0;  ///< SLB watts per unit work / SilkRoad watts
  double cost_ratio = 0;   ///< SLB dollars per unit work / SilkRoad dollars
};

/// §6.1: processing the same packet rate in ASIC vs SLB — the paper derives
/// ~1/500 the power and ~1/250 the capital cost.
CostComparison cost_comparison(const SlbModel& slb = {},
                               const SilkRoadModel& sr = {});

}  // namespace silkroad::core
