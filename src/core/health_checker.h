// DIP health checking (paper §7, "Handle DIP failures").
//
// Switches already offload BFD-style liveness probing; SilkRoad leverages it
// to detect dead DIPs and pull them from their pools quickly. Probing 10K
// DIPs every 10 s with 100-byte packets costs ~800 Kbps — negligible. On a
// failure the checker either runs the normal removal update (new version) or
// the in-place resilient-hashing path (mark the slot down in every version,
// no version churn) depending on configuration.
//
// Recovery is hysteretic: a DIP must answer `recovery_threshold` consecutive
// probes before it is re-added, and a DIP that keeps dying accumulates a flap
// score that suppresses re-adds entirely until it decays — so an unstable
// server cannot drag its VIP through a version flip on every heartbeat.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "lb/load_balancer.h"
#include "net/endpoint.h"
#include "sim/event_queue.h"

namespace silkroad::core {

class HealthChecker {
 public:
  struct Config {
    /// Probe period per DIP.
    sim::Time probe_interval = 10 * sim::kSecond;
    /// Consecutive missed probes before a DIP is declared dead (BFD-style
    /// detect multiplier).
    int failure_threshold = 3;
    /// Probe packet size (for bandwidth accounting).
    std::uint32_t probe_bytes = 100;
    /// Use the §7 in-place resilient path instead of a removal update.
    bool resilient_in_place = true;
    /// Consecutive answered probes before a dead DIP is re-added.
    int recovery_threshold = 1;
    /// Flap damping: every dead declaration adds this to the DIP's flap
    /// score; each probe decays the score by `flap_decay`. While the score
    /// is at or above `flap_suppress_threshold`, recovery is withheld even
    /// when the DIP answers. 0 disables damping.
    double flap_penalty = 0.0;
    double flap_suppress_threshold = 1.0;
    double flap_decay = 0.0;
  };

  /// Liveness oracle: returns true when `dip` currently answers probes.
  /// In production this is the BFD session state; in simulation the test
  /// or scenario provides it.
  using LivenessProbe = std::function<bool(const net::Endpoint& dip)>;
  /// Notification on state transitions. Invoked *before* the load balancer
  /// is mutated, so a PCC harness can mark affected flows first.
  using FailureCallback =
      std::function<void(const net::Endpoint& vip, const net::Endpoint& dip)>;

  HealthChecker(sim::Simulator& simulator, lb::LoadBalancer& lb,
                const Config& config, LivenessProbe probe)
      : sim_(simulator), lb_(lb), config_(config), probe_(std::move(probe)) {}

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Registers a DIP of a VIP for monitoring and starts its probe cycle.
  void watch(const net::Endpoint& vip, const net::Endpoint& dip);

  /// Stops monitoring (e.g., the DIP was removed administratively).
  void unwatch(const net::Endpoint& vip, const net::Endpoint& dip);

  /// Cancels every scheduled probe so an otherwise-drained simulation can
  /// terminate; watch() re-arms.
  void stop();

  void set_failure_callback(FailureCallback cb) { on_failure_ = std::move(cb); }
  void set_recovery_callback(FailureCallback cb) { on_recovery_ = std::move(cb); }

  std::size_t watched() const noexcept { return targets_.size(); }
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  std::uint64_t failures_detected() const noexcept { return failures_; }
  std::uint64_t recoveries_detected() const noexcept { return recoveries_; }
  /// Probe rounds where a recovered DIP was withheld by flap damping.
  std::uint64_t recoveries_suppressed() const noexcept {
    return suppressed_recoveries_;
  }

  /// Probe bandwidth in bits/sec for the current watch set (the §7 estimate:
  /// 10K DIPs / 10 s / 100 B ~ 800 Kbps).
  double probe_bandwidth_bps() const;

  /// Worst-case failure detection latency (interval x threshold).
  sim::Time detection_latency() const noexcept {
    return config_.probe_interval *
           static_cast<sim::Time>(config_.failure_threshold);
  }

 private:
  struct Key {
    net::Endpoint vip;
    net::Endpoint dip;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return net::EndpointHash{}(k.vip) * 1000003u ^ net::EndpointHash{}(k.dip);
    }
  };
  struct Target {
    int missed = 0;
    int good = 0;
    bool declared_dead = false;
    double flap_score = 0.0;
    sim::EventHandle next_probe;
  };

  void probe_once(const Key& key);
  void schedule_probe(const Key& key);

  sim::Simulator& sim_;
  lb::LoadBalancer& lb_;
  Config config_;
  LivenessProbe probe_;
  FailureCallback on_failure_;
  FailureCallback on_recovery_;
  std::unordered_map<Key, Target, KeyHash> targets_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t suppressed_recoveries_ = 0;
};

}  // namespace silkroad::core
