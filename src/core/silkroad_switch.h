// SilkRoad: stateful L4 load balancing entirely inside a switching ASIC
// (paper §4, Figure 10).
//
// Data plane (per packet, line rate):
//   ConnTable (digest -> DIP-pool version, multi-stage cuckoo SRAM)
//     hit  -> DIPPoolTable[(VIP, version)] -> DIP
//     miss -> VIPTable[VIP] -> version (during an update: TransitTable bloom
//             filter decides old vs new version) -> DIPPoolTable -> DIP,
//             plus a learning-filter notification for new flows.
//
// Control plane (switch CPU, slow):
//   drains the learning filter, runs BFS cuckoo to insert ConnTable entries
//   (~200K/s), resolves digest false positives by relocating entries,
//   executes the 3-step PCC update protocol, and manages version lifecycle.
//
// The public API is the library's primary entry point: configure the switch,
// add VIPs, feed packets (or drive it through lb::Scenario), request pool
// updates, and read the statistics the paper's evaluation reports.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "asic/bloom_filter.h"
#include "asic/cuckoo_table.h"
#include "asic/learning_filter.h"
#include "asic/meter.h"
#include "asic/switch_cpu.h"
#include "core/version_manager.h"
#include "lb/load_balancer.h"
#include "obs/capacity.h"
#include "obs/metrics.h"
#include "obs/sampling_profiler.h"
#include "obs/sharded.h"
#include "obs/span.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace silkroad::check {
class InvariantAuditor;
struct TestingHooks;
}  // namespace silkroad::check

namespace silkroad::core {

class SilkRoadSwitch : public lb::LoadBalancer {
 public:
  /// How a flow the control plane cannot (or will not) insert is served.
  ///  * kPinVersion — the CPU tracks the flow in DRAM pinned to its
  ///    admission-time pool version (the §4.2 "small software table" applied
  ///    at version granularity): PCC-preserving, costs CPU memory only.
  ///  * kStateless — the flow is routed by the VIPTable's current version
  ///    with no record; cheap, but updates re-map it (the measurable PCC
  ///    blast radius of stateless degradation).
  enum class ShedPolicy : std::uint8_t { kPinVersion, kStateless };

  struct Config {
    asic::CuckooConfig conn_table;
    asic::LearningFilter::Config learning;
    asic::SwitchCpu::Config cpu;
    /// TransitTable bloom filter size (paper headline: 256 bytes).
    std::size_t transit_table_bytes = 256;
    unsigned transit_hashes = 3;
    unsigned version_bits = 6;
    /// Ablations (Figs. 15-18).
    bool use_transit_table = true;
    bool enable_version_reuse = true;
    /// Slow-path latency charged to a redirected SYN (§4.2: "a few ms").
    sim::Time syn_redirect_delay = 2 * sim::kMillisecond;
    /// Data-plane pipeline latency per packet (§5.2: sub-microsecond;
    /// SilkRoad's additional logic adds at most tens of ns).
    sim::Time pipeline_latency = 400;  // ns
    lb::PoolSemantics pool_semantics = lb::PoolSemantics::kStableResilient;
    /// Idle-connection expiration ("connections that are timed-out and
    /// deleted from ConnTable", §4.2): entries without data-plane activity
    /// for this long are erased by the CPU's aging sweep. 0 disables aging
    /// (flows then expire only on FIN).
    sim::Time idle_timeout = 0;
    /// Period of the CPU aging sweep when idle_timeout is enabled.
    sim::Time aging_sweep_period = 10 * sim::kSecond;

    // --- Graceful degradation (all disabled by default) ---------------------

    /// Bounded pending-insert queue: a new flow arriving while this many
    /// insertions are pending is shed per `shed_policy` instead of learned.
    /// 0 = unbounded.
    std::size_t max_pending_inserts = 0;
    /// Degraded-mode hysteresis on the switch-CPU backlog: enter at or above
    /// `enter`, leave at or below `exit`. 0 disables the backlog trigger.
    std::size_t degraded_enter_backlog = 0;
    std::size_t degraded_exit_backlog = 0;
    /// Degraded-mode hysteresis on ConnTable occupancy (0..1); values above
    /// 1.0 disable the occupancy trigger.
    double degraded_enter_occupancy = 2.0;
    double degraded_exit_occupancy = 2.0;
    ShedPolicy shed_policy = ShedPolicy::kPinVersion;
    /// While degraded, how often to re-check the exit condition when no
    /// admission event does it first.
    sim::Time degraded_poll_period = 1 * sim::kMillisecond;
    /// Re-learn janitor: a pending flow whose learning notification has not
    /// reached the CPU after this long is re-enqueued directly, recovering
    /// dropped learning-filter notifications. 0 = off.
    sim::Time relearn_timeout = 0;

    // --- Data-plane performance telemetry (DESIGN.md §14) -------------------

    /// Gates the sampling packet profiler and the per-DIP active/new
    /// connection accounting. The always-on core counters (packets, table
    /// hits/misses, ...) are sharded and stay on regardless; disabling this
    /// removes everything that costs more than a counter bump.
    bool data_plane_telemetry = true;
    /// Sampling profiler knobs (period, seed, histogram resolution).
    obs::SamplingProfiler::Options profiler;

    // --- SRAM capacity ledger (DESIGN.md §15) -------------------------------

    /// Gates the ResourceLedger: live per-table occupancy, headroom,
    /// pressure, per-VIP SRAM attribution, and exhaustion-forecast telemetry
    /// (/capacity, /capacity.json). Disabling removes table registration and
    /// polling entirely (bench/capacity_overhead prices the difference).
    bool capacity_telemetry = true;
    /// Minimum sim time between ledger polls from packet/insert call sites;
    /// bounds the alarm + forecast sampling cost on the hot path.
    sim::Time capacity_poll_interval = 10 * sim::kMillisecond;
    /// Ledger knobs (alarm thresholds, forecast window).
    obs::ResourceLedger::Options capacity;
  };

  /// Sizes a ConnTable geometry for `connections` at `occupancy` packing
  /// across 4 stages with paper-default entry layout (16b digest + 6b
  /// version + 6b overhead = 28b, 4 entries / 112b word).
  static asic::CuckooConfig conn_table_for(std::size_t connections,
                                           unsigned digest_bits = 16,
                                           double occupancy = 0.90);

  SilkRoadSwitch(sim::Simulator& simulator, const Config& config);

  // --- lb::LoadBalancer -----------------------------------------------------
  std::string name() const override { return "silkroad"; }
  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;
  void request_update(const workload::DipUpdate& update) override;
  lb::PacketResult process_packet(const net::Packet& packet) override;
  void set_mapping_risk_callback(lb::LoadBalancer::MappingRiskCallback cb) override {
    risk_cb_ = std::move(cb);
  }
  bool vip_at_slb(const net::Endpoint&) const override { return false; }
  /// Runs the invariant auditor (check/invariant_auditor.h) over the whole
  /// switch and SR_CHECK-fails on any violation. The scenario driver calls
  /// this after every pool-update step, so tier-1 exercises the paper's
  /// structural invariants continuously. Defined in invariant_auditor.cc.
  void self_check() const override;

  // --- Extras beyond the common interface -----------------------------------

  /// Attaches a per-VIP rate limiter (performance isolation, §5.2). When
  /// `enforce` is true red packets are dropped.
  void attach_meter(const net::Endpoint& vip,
                    const asic::TwoRateThreeColorMeter::Config& meter,
                    bool enforce = false);

  /// DIP failure fast path (§7): removes the DIP via the regular update
  /// machinery (a new version), or — in resilient mode — marks the slot dead
  /// in *all* versions without a version flip.
  void handle_dip_failure(const net::Endpoint& vip, const net::Endpoint& dip,
                          bool resilient_in_place) override;

  /// Fault-injection hooks (src/fault): forwarded to the CPU and learning
  /// filter; `insert_fail` forces the BFS-budget-exhausted path at
  /// insertion time so the software-fallback machinery is exercised.
  struct FaultHooks {
    asic::SwitchCpu::DelayHook cpu_delay;
    asic::LearningFilter::DropHook learn_drop;
    std::function<bool(const net::FiveTuple&)> insert_fail;
  };
  void set_fault_hooks(FaultHooks hooks);

  /// Crash model: wipes all connection and update state (ConnTable, pending
  /// inserts, software/degraded pins, TransitTable, VIP config) while the
  /// monotone counters and trace ring survive. The controller must replay
  /// VIP config afterwards (see SilkRoadFleet::restore_switch).
  void reset();

  /// Flows whose mapping a healthy peer cannot reproduce from its own
  /// current pool version — connections pinned to older versions plus every
  /// software/degraded pin. This is the quantified §7 blast radius when this
  /// switch dies and its ECMP share re-hashes onto peers.
  std::vector<net::FiveTuple> failover_blast_radius() const;

  /// Snapshot view of the switch's headline counters, assembled on demand
  /// from the metrics registry (src/obs) — the registry's counters are the
  /// single source of truth; this struct exists for ergonomic access from
  /// tests, benches, and the evaluation drivers.
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t conn_table_hits = 0;
    std::uint64_t conn_table_misses = 0;
    std::uint64_t learns = 0;
    std::uint64_t inserts = 0;
    std::uint64_t insert_failures = 0;
    std::uint64_t erases = 0;
    std::uint64_t syn_false_positives = 0;
    std::uint64_t non_syn_false_hits = 0;
    std::uint64_t relocation_failures = 0;
    std::uint64_t transit_false_positives = 0;
    std::uint64_t updates_requested = 0;
    std::uint64_t updates_completed = 0;
    std::uint64_t versions_evicted = 0;
    std::uint64_t software_fallback_conns = 0;
    std::uint64_t meter_drops = 0;
    std::uint64_t aged_out = 0;
  };
  Stats stats() const noexcept;

  /// Per-switch telemetry: every counter the switch maintains lives here
  /// (naming scheme: silkroad_<subsystem>_<quantity>[_total|_bytes|_ns]).
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  /// Structured event ring covering the 3-step PCC update protocol, version
  /// lifecycle, cuckoo insertions, and digest collisions, timestamped with
  /// sim time. Scopes are interned VIP names (scope 0 = the switch itself).
  obs::TraceRing& trace() noexcept { return trace_; }
  const obs::TraceRing& trace() const noexcept { return trace_; }
  /// Live SRAM capacity ledger: per-table occupancy/headroom/fragmentation,
  /// insertion-pressure counters, per-VIP attribution, alarm levels, and the
  /// time-to-exhaustion forecast. Empty (no tables) when
  /// Config::capacity_telemetry is off.
  obs::ResourceLedger& capacity() noexcept { return capacity_; }
  const obs::ResourceLedger& capacity() const noexcept { return capacity_; }

  /// Attaches the fleet's causal-trace collector: traced DipUpdates record
  /// their CPU-queue wait and 3-step protocol execution (step1 open, flip,
  /// commit, finish — or abandonment) on their span under this switch's leg.
  /// Pass nullptr to detach.
  void bind_spans(obs::SpanCollector* spans, std::uint32_t switch_index);

  /// On-chip memory in use: ConnTable geometry + DIPPoolTable contents +
  /// TransitTable.
  struct MemoryUsage {
    std::size_t conn_table_bytes = 0;
    std::size_t dip_pool_table_bytes = 0;
    std::size_t transit_table_bytes = 0;
    std::size_t total() const noexcept {
      return conn_table_bytes + dip_pool_table_bytes + transit_table_bytes;
    }
  };
  MemoryUsage memory_usage() const;

  std::size_t active_connections() const noexcept {
    return conn_table_.size() + pending_.size() + software_table_.size();
  }
  const asic::DigestCuckooTable& conn_table() const noexcept {
    return conn_table_;
  }
  const VipVersionManager* version_manager(const net::Endpoint& vip) const;
  bool update_in_flight() const noexcept { return phase_ != Phase::kIdle; }
  std::size_t queued_updates() const noexcept { return update_queue_.size(); }
  std::size_t pending_insertions() const noexcept { return pending_.size(); }
  std::size_t software_flows() const noexcept { return software_table_.size(); }
  std::size_t degraded_flows() const noexcept { return degraded_flows_.size(); }
  bool in_degraded_mode() const noexcept { return degraded_; }

  /// Human-readable operational snapshot: table occupancies, per-VIP version
  /// state, control-plane queue depths, and counters — what an operator's
  /// `show loadbalancer` CLI would print.
  std::string debug_report() const;

  /// Per-stage ConnTable occupancy heatmap plus table summaries as JSON —
  /// the ScrapeServer's /tables payload (schema in DESIGN.md §10).
  std::string tables_json() const;

 private:
  /// The auditor reads (never mutates) the full private state; the testing
  /// hooks deliberately corrupt it so check_test.cc can prove the auditor
  /// detects each violation class.
  friend class silkroad::check::InvariantAuditor;
  friend struct silkroad::check::TestingHooks;

  enum class Phase : std::uint8_t { kIdle, kStep1, kStep2 };

  /// Per-DIP load-telemetry handles (data_plane_telemetry): a monotone
  /// new-connection counter and an active-connection gauge, both labeled
  /// vip=..,dip=.. so TimeSeriesRecorder can derive per-VIP imbalance
  /// indices across them.
  struct DipConnHandles {
    obs::ShardedCounter* new_conns = nullptr;
    obs::Gauge* active = nullptr;
  };

  struct VipState {
    std::unique_ptr<VipVersionManager> versions;
    /// CPU-side connection-to-pool tracking (§4.2): version -> flows.
    std::unordered_map<std::uint32_t,
                       std::unordered_set<net::FiveTuple, net::FiveTupleHash>>
        conns_by_version;
    std::optional<asic::TwoRateThreeColorMeter> meter;
    bool meter_enforce = false;
    /// Interned VIP name in the switch's TraceRing.
    std::uint32_t trace_scope = obs::kNoScope;
    /// Sampled per-VIP packet-latency histogram (null when telemetry off).
    obs::Histogram* sampled_latency = nullptr;
    /// Per-DIP telemetry handles, registered lazily on first connection.
    std::unordered_map<net::Endpoint, DipConnHandles, net::EndpointHash>
        dip_conns;
  };

  struct PendingConn {
    net::Endpoint vip;
    std::uint32_t version = 0;
    /// FIN observed before the entry landed: skip the insertion.
    bool dead = false;
    /// When the flow entered the learning filter; the insert-latency
    /// histogram records install-time minus this.
    sim::Time learned_at = 0;
    /// The learning notification reached the CPU queue. False past
    /// relearn_timeout means the notification was lost (see relearn_sweep).
    bool enqueued = false;
  };

  /// A flow admitted without a ConnTable entry under ShedPolicy::kPinVersion:
  /// served version-routed, pinned to its admission-time version.
  struct DegradedConn {
    net::Endpoint vip;
    std::uint32_t version = 0;
  };

  VipState* find_vip(const net::Endpoint& vip);
  const VipState* find_vip(const net::Endpoint& vip) const;

  /// Body of process_packet(); the public override wraps it to record the
  /// packet-latency histogram exactly once per packet.
  lb::PacketResult process_packet_impl(const net::Packet& packet);

  /// Creates the registry-backed counter handles and registers the pull
  /// (callback) gauges derived from live structures. Called once from the
  /// constructor, after all instrumented members exist.
  void init_metrics();

  /// Registers every SRAM-bearing structure with the capacity ledger
  /// (Config::capacity_telemetry). Called once from the constructor, after
  /// init_metrics().
  void init_capacity();
  /// Rate-limited ledger poll (alarm state machine + forecast history);
  /// at most one poll per Config::capacity_poll_interval of sim time.
  void poll_capacity();

  /// Picks the version a ConnTable-missing packet of `vip` should use,
  /// applying the Step1/Step2 TransitTable logic when `vip` is under update.
  std::uint32_t version_for_miss(const net::Endpoint& vip, VipState& state,
                                 const net::Packet& packet,
                                 bool* redirected_to_cpu);

  void learn_new_flow(const net::Endpoint& vip, VipState& state,
                      const net::FiveTuple& flow, std::uint32_t version,
                      const net::Endpoint& dip);
  /// Per-DIP telemetry handles for (vip, dip), registering the series on
  /// first use. Only called when data_plane_telemetry is on.
  DipConnHandles& dip_handles(VipState& state, const net::Endpoint& vip,
                              const net::Endpoint& dip);
  /// active-connection gauge decrement for a released flow: the DIP is
  /// recomputed from (version, flow), which PCC keeps stable for the flow's
  /// lifetime (a post-release mark_dip_down can drift a gauge by the flows
  /// that die after the DIP — acceptable for telemetry).
  void release_dip_conn(VipState& state, const net::Endpoint& vip,
                        std::uint32_t version, const net::FiveTuple& flow);
  /// Serves a brand-new flow without learning it (pending queue full, or
  /// degraded mode). Returns the chosen DIP.
  std::optional<net::Endpoint> admit_without_insert(const net::Endpoint& vip,
                                                    VipState& state,
                                                    const net::FiveTuple& flow,
                                                    bool shed);
  /// Re-evaluates the degraded-mode hysteresis (admission events + poll).
  void maybe_update_degraded();
  void arm_degraded_poll();
  /// Re-enqueues pending flows whose learning notification never arrived.
  void arm_relearn_sweep();
  void relearn_sweep();
  void on_learning_flush(const std::vector<asic::LearnEvent>& batch);
  void complete_insertion(const asic::LearnEvent& event);
  /// Control-plane digest-collision repair at insertion time: the switch
  /// software knows every pending/installed flow's 5-tuple, so after placing
  /// an entry it relocates any entry that would shadow a colliding flow's
  /// lookups (generalizing the §4.2 SYN-time resolution to flows already in
  /// flight).
  void resolve_digest_conflicts(const net::FiveTuple& inserted);
  void track_digest(const net::FiveTuple& flow);
  void untrack_digest(const net::FiveTuple& flow);
  /// Arms the aging sweep if idle_timeout is configured and it is not
  /// already pending; the sweep disarms itself when the table drains so an
  /// idle switch leaves the event queue empty.
  void arm_aging_sweep();
  void aging_sweep();
  void enqueue_erase(const net::FiveTuple& flow, const net::Endpoint& vip,
                     std::uint32_t version);
  void release_conn(const net::Endpoint& vip, const net::FiveTuple& flow,
                    std::uint32_t version);

  // 3-step update machinery (global: one update in flight, queue behind it).
  void try_start_next_update();
  void execute_flip();
  void finish_update();
  /// Records `kind` on one traced update's span (no-op when unbound / id 0).
  void span_event(std::uint64_t id, obs::SpanEventKind kind,
                  std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);
  /// Records `kind` on every span of the in-flight coalesced batch.
  void span_batch_event(obs::SpanEventKind kind, std::uint64_t arg0 = 0,
                        std::uint64_t arg1 = 0);
  void note_pending_resolved(const net::Endpoint& vip,
                             const net::FiveTuple& flow);
  /// Frees a version number by migrating a victim version's flows to exact
  /// DIP mappings in the software table.
  bool evict_version_for(const net::Endpoint& vip, VipState& state);

  /// Sampling-profiler stage indices (stage labels "pipeline" and
  /// "slow_path" on silkroad_packet_stage_latency_ns).
  static constexpr std::size_t kStagePipeline = 0;
  static constexpr std::size_t kStageSlowPath = 1;

  sim::Simulator& sim_;
  Config config_;
  /// Telemetry first: the instrumented members below bind to these.
  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_;
  obs::StageProfiler conn_profiler_;
  /// Deterministic 1-in-N packet latency sampler (data_plane_telemetry).
  obs::SamplingProfiler packet_profiler_;
  /// Hot-path counter handles into metrics_. The per-packet ones (packets,
  /// table hits/misses, meter colors, packet latency) are sharded so bumps
  /// from parallel data-plane shards never contend on a cache line
  /// (DESIGN.md §14); control-plane counters stay plain.
  struct CounterHandles {
    obs::ShardedCounter* packets = nullptr;
    obs::ShardedCounter* conn_table_hits = nullptr;
    obs::ShardedCounter* conn_table_misses = nullptr;
    obs::Counter* learns = nullptr;
    obs::Counter* inserts = nullptr;
    obs::Counter* insert_failures = nullptr;
    obs::Counter* erases = nullptr;
    obs::Counter* syn_false_positives = nullptr;
    obs::Counter* non_syn_false_hits = nullptr;
    obs::Counter* relocation_failures = nullptr;
    obs::Counter* transit_false_positives = nullptr;
    obs::Counter* updates_requested = nullptr;
    obs::Counter* updates_completed = nullptr;
    obs::Counter* versions_evicted = nullptr;
    obs::Counter* software_fallback_conns = nullptr;
    obs::Counter* meter_drops = nullptr;
    obs::Counter* aged_out = nullptr;
    obs::Counter* degraded_transitions = nullptr;
    obs::Counter* degraded_admits = nullptr;
    obs::Counter* pending_shed = nullptr;
    obs::Counter* relearns = nullptr;
    obs::ShardedCounter* meter_green = nullptr;
    obs::ShardedCounter* meter_yellow = nullptr;
    obs::ShardedCounter* meter_red = nullptr;
    obs::ShardedHistogram* packet_latency_ns = nullptr;
    obs::Histogram* learn_batch_size = nullptr;
    /// learn -> ConnTable-entry-landed, per installed connection.
    obs::Histogram* insert_latency_ns = nullptr;
    /// request-staged -> update-finish, per completed 3-step update.
    obs::Histogram* update_duration_ns = nullptr;
  } c_;
  asic::DigestCuckooTable conn_table_;
  asic::LearningFilter learning_filter_;
  asic::SwitchCpu cpu_;
  asic::BloomFilter transit_;
  /// SRAM capacity ledger (DESIGN.md §15); tables registered in
  /// init_capacity(), polled via poll_capacity().
  obs::ResourceLedger capacity_;
  sim::Time capacity_last_poll_ = 0;
  bool capacity_polled_ = false;

  std::unordered_map<net::Endpoint, VipState, net::EndpointHash> vips_;
  std::unordered_map<net::FiveTuple, PendingConn, net::FiveTupleHash> pending_;
  /// Exact-mapping fallback (insert failures, evicted versions): the
  /// slow-path "small table" of §4.2/§7.
  std::unordered_map<net::FiveTuple, net::Endpoint, net::FiveTupleHash>
      software_table_;
  /// kPinVersion shed/degraded admissions: flow -> pinned (vip, version).
  std::unordered_map<net::FiveTuple, DegradedConn, net::FiveTupleHash>
      degraded_flows_;
  /// CPU-side digest index over pending+installed flows, used to detect
  /// lookup shadowing among digest-colliding flows at insertion time.
  std::unordered_map<std::uint32_t, std::vector<net::FiveTuple>>
      digest_groups_;
  /// Flows with an aging-erase already queued at the CPU (prevents duplicate
  /// work when sweeps outpace the CPU).
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> aging_queue_;

  /// Fleet-level span collector (optional) and this switch's leg index.
  obs::SpanCollector* spans_ = nullptr;
  std::uint32_t span_switch_ = 0;
  /// Span ids of the in-flight coalesced batch (one flip covers them all).
  std::vector<std::uint64_t> span_batch_;

  // In-flight update state.
  Phase phase_ = Phase::kIdle;
  std::deque<workload::DipUpdate> update_queue_;
  net::Endpoint update_vip_;
  std::uint32_t update_old_version_ = 0;
  std::uint32_t update_new_version_ = 0;
  /// When the in-flight update was staged (update-duration histogram).
  sim::Time update_started_at_ = 0;
  /// S: flows pending at t_req (must land before the flip).
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> awaiting_pre_;
  /// S2: flows recorded in the TransitTable during Step1 (must land before
  /// the filter clears).
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> transit_members_;

  lb::LoadBalancer::MappingRiskCallback risk_cb_;
  bool aging_armed_ = false;
  bool degraded_ = false;
  bool degraded_poll_armed_ = false;
  bool relearn_armed_ = false;
  std::function<bool(const net::FiveTuple&)> insert_fail_hook_;
};

}  // namespace silkroad::core
