#include "core/health_checker.h"

#include <algorithm>

namespace silkroad::core {

void HealthChecker::watch(const net::Endpoint& vip, const net::Endpoint& dip) {
  const Key key{vip, dip};
  if (targets_.contains(key)) return;
  targets_.emplace(key, Target{});
  schedule_probe(key);
}

void HealthChecker::unwatch(const net::Endpoint& vip,
                            const net::Endpoint& dip) {
  const auto it = targets_.find(Key{vip, dip});
  if (it == targets_.end()) return;
  it->second.next_probe.cancel();
  targets_.erase(it);
}

void HealthChecker::stop() {
  for (auto& [key, target] : targets_) target.next_probe.cancel();
}

void HealthChecker::schedule_probe(const Key& key) {
  const auto it = targets_.find(key);
  if (it == targets_.end()) return;
  it->second.next_probe =
      sim_.schedule_after(config_.probe_interval, [this, key] {
        probe_once(key);
      });
}

void HealthChecker::probe_once(const Key& key) {
  const auto it = targets_.find(key);
  if (it == targets_.end()) return;
  Target& target = it->second;
  ++probes_sent_;
  target.flap_score = std::max(0.0, target.flap_score - config_.flap_decay);
  const bool alive = probe_(key.dip);
  if (alive) {
    target.missed = 0;
    if (target.declared_dead) {
      ++target.good;
      const bool suppressed = config_.flap_penalty > 0.0 &&
                              target.flap_score >=
                                  config_.flap_suppress_threshold;
      if (target.good < config_.recovery_threshold) {
        // Recovery hysteresis: not enough consecutive answers yet.
      } else if (suppressed) {
        ++suppressed_recoveries_;
      } else {
        // The server answered consistently (rebooted): hand it back through
        // the normal add-DIP update path so versioning (and reuse) applies.
        target.declared_dead = false;
        target.good = 0;
        ++recoveries_;
        if (on_recovery_) on_recovery_(key.vip, key.dip);
        workload::DipUpdate update;
        update.at = sim_.now();
        update.vip = key.vip;
        update.dip = key.dip;
        update.action = workload::UpdateAction::kAddDip;
        update.cause = workload::UpdateCause::kFailure;
        lb_.request_update(update);
      }
    }
  } else {
    target.good = 0;
    if (!target.declared_dead && ++target.missed >= config_.failure_threshold) {
      target.declared_dead = true;
      target.flap_score += config_.flap_penalty;
      ++failures_;
      if (on_failure_) on_failure_(key.vip, key.dip);
      lb_.handle_dip_failure(key.vip, key.dip, config_.resilient_in_place);
    }
  }
  schedule_probe(key);
}

double HealthChecker::probe_bandwidth_bps() const {
  if (targets_.empty()) return 0.0;
  const double probes_per_sec =
      static_cast<double>(targets_.size()) /
      sim::to_seconds(config_.probe_interval);
  return probes_per_sec * config_.probe_bytes * 8.0;
}

}  // namespace silkroad::core
