// Hybrid SilkRoad + SLB deployment (paper §7, "Combine with SLB solutions").
//
// Operators need not choose globally: serve high-volume VIPs from the switch
// ASIC and VIPs with huge connection counts (that would blow the SRAM
// budget) from SLBs, steering per VIP via BGP announcements. This balancer
// assigns each VIP to one tier at add_vip() time — by an explicit override
// or by a connection-count threshold against the switch's remaining SRAM-
// budgeted capacity — and forwards all per-VIP operations to that tier.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/silkroad_switch.h"  // NOLINT
#include "lb/load_balancer.h"
#include "lb/slb.h"

namespace silkroad::core {

class HybridLoadBalancer : public lb::LoadBalancer {
 public:
  struct Config {
    SilkRoadSwitch::Config switch_config;
    lb::SoftwareLoadBalancer::Config slb_config;
    /// Connection-capacity budget of the switch tier; VIPs are admitted in
    /// add_vip() order until their declared demand exceeds the remainder.
    std::uint64_t switch_connection_budget = 10'000'000;
  };

  HybridLoadBalancer(sim::Simulator& simulator, const Config& config)
      : config_(config),
        switch_tier_(std::make_unique<SilkRoadSwitch>(
            simulator, config.switch_config)),
        slb_tier_(std::make_unique<lb::SoftwareLoadBalancer>(config.slb_config)),
        remaining_budget_(config.switch_connection_budget) {}

  std::string name() const override { return "hybrid-silkroad-slb"; }

  /// Declares a VIP's expected concurrent-connection demand before adding it
  /// (defaults to 0: always fits the switch). Call before add_vip.
  void declare_demand(const net::Endpoint& vip, std::uint64_t connections) {
    demand_[vip] = connections;
  }

  /// Pins a VIP to a tier regardless of demand (operator override).
  enum class Tier : std::uint8_t { kAuto, kSwitch, kSlb };
  void pin_tier(const net::Endpoint& vip, Tier tier) { pinned_[vip] = tier; }

  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override {
    Tier tier = Tier::kAuto;
    if (const auto it = pinned_.find(vip); it != pinned_.end()) {
      tier = it->second;
    }
    std::uint64_t demand = 0;
    if (const auto it = demand_.find(vip); it != demand_.end()) {
      demand = it->second;
    }
    const bool to_switch =
        tier == Tier::kSwitch ||
        (tier == Tier::kAuto && demand <= remaining_budget_);
    if (to_switch) {
      if (tier == Tier::kAuto) remaining_budget_ -= demand;
      assignment_[vip] = true;
      switch_tier_->add_vip(vip, dips);
    } else {
      assignment_[vip] = false;
      slb_tier_->add_vip(vip, dips);
    }
  }

  void request_update(const workload::DipUpdate& update) override {
    tier_of(update.vip).request_update(update);
  }

  lb::PacketResult process_packet(const net::Packet& packet) override {
    return tier_of(packet.flow.dst).process_packet(packet);
  }

  void set_mapping_risk_callback(MappingRiskCallback cb) override {
    switch_tier_->set_mapping_risk_callback(cb);
    slb_tier_->set_mapping_risk_callback(std::move(cb));
  }

  bool vip_at_slb(const net::Endpoint& vip) const override {
    const auto it = assignment_.find(vip);
    return it != assignment_.end() && !it->second;
  }

  // --- Introspection --------------------------------------------------------
  bool vip_on_switch(const net::Endpoint& vip) const {
    const auto it = assignment_.find(vip);
    return it != assignment_.end() && it->second;
  }
  std::uint64_t remaining_switch_budget() const noexcept {
    return remaining_budget_;
  }
  const SilkRoadSwitch& switch_tier() const { return *switch_tier_; }
  const lb::SoftwareLoadBalancer& slb_tier() const { return *slb_tier_; }

 private:
  lb::LoadBalancer& tier_of(const net::Endpoint& vip) {
    const auto it = assignment_.find(vip);
    if (it != assignment_.end() && !it->second) return *slb_tier_;
    return *switch_tier_;
  }

  Config config_;
  std::unique_ptr<SilkRoadSwitch> switch_tier_;
  std::unique_ptr<lb::SoftwareLoadBalancer> slb_tier_;
  std::uint64_t remaining_budget_;
  std::unordered_map<net::Endpoint, std::uint64_t, net::EndpointHash> demand_;
  std::unordered_map<net::Endpoint, Tier, net::EndpointHash> pinned_;
  /// true = switch tier, false = SLB tier.
  std::unordered_map<net::Endpoint, bool, net::EndpointHash> assignment_;
};

}  // namespace silkroad::core
