#include "asic/resources.h"

#include <cmath>
#include <cstdio>

#include "asic/sram.h"

namespace silkroad::asic {

ResourceVector ResourceVector::percent_of(const ResourceVector& base) const noexcept {
  const auto pct = [](double x, double b) { return b == 0 ? 0.0 : 100.0 * x / b; };
  return ResourceVector{
      pct(match_crossbar_bits, base.match_crossbar_bits),
      pct(sram_bytes, base.sram_bytes),
      pct(tcam_bytes, base.tcam_bytes),
      pct(vliw_actions, base.vliw_actions),
      pct(hash_bits, base.hash_bits),
      pct(stateful_alus, base.stateful_alus),
      pct(phv_bits, base.phv_bits),
  };
}

ResourceVector ChipModel::totals() const noexcept {
  const double s = static_cast<double>(stages);
  return ResourceVector{
      match_crossbar_bits_per_stage * s,
      sram_bytes_per_stage * s,
      tcam_bytes_per_stage * s,
      vliw_actions_per_stage * s,
      hash_bits_per_stage * s,
      stateful_alus_per_stage * s,
      phv_bits_total,
  };
}

ResourceVector baseline_switch_p4_usage() {
  // Calibrated estimates for the ~5000-line switch.p4 baseline
  // (L2/L3/ACL/QoS): the paper reports only SilkRoad's usage relative to it.
  return ResourceVector{
      /*match_crossbar_bits=*/4280,
      /*sram_bytes=*/14.1e6,
      /*tcam_bytes=*/1.2e6,  // ACL/LPM tables; SilkRoad adds none on top
      /*vliw_actions=*/90,
      /*hash_bits=*/407,
      /*stateful_alus=*/9,  // counters/meters in the baseline
      /*phv_bits=*/4082,
  };
}

ResourceVector silkroad_usage(const SilkRoadLayout& layout) {
  ResourceVector usage;

  const unsigned entry_bits =
      layout.digest_bits + layout.version_bits + layout.entry_overhead_bits;
  const unsigned tuple_bits = layout.five_tuple_bits();
  const unsigned vip_key_bits = (layout.ipv6 ? 128u : 32u) + 16 + 8;
  const std::size_t dip_entry_bytes = (layout.ipv6 ? 16u : 4u) + 2;

  // --- ConnTable: digest exact-match over `conn_table_stages` stages -------
  usage.sram_bytes += static_cast<double>(
      sram_bytes_for_entries(layout.connections, entry_bits));
  // The full 5-tuple rides the crossbar into every stage the table spans
  // (for hashing + digest comparison).
  usage.match_crossbar_bits +=
      static_cast<double>(tuple_bits) * static_cast<double>(layout.conn_table_stages);
  // Addressing hash bits: log2(buckets) per stage, plus the digest extraction.
  const std::size_t ways = entries_per_word(entry_bits);
  const std::size_t buckets_total =
      words_for_entries(layout.connections, entry_bits);
  const std::size_t buckets_per_stage =
      buckets_total / (layout.conn_table_stages == 0 ? 1 : layout.conn_table_stages) + 1;
  const double addr_bits = std::ceil(std::log2(static_cast<double>(
      buckets_per_stage == 0 ? 1 : buckets_per_stage)));
  usage.hash_bits += addr_bits * static_cast<double>(layout.conn_table_stages) +
                     static_cast<double>(layout.digest_bits);
  (void)ways;

  // --- VIPTable: VIP -> current (and in-update: old+new) version -----------
  usage.sram_bytes += static_cast<double>(sram_bytes_for_entries(
      layout.vips, vip_key_bits + 2u * layout.version_bits +
                        layout.entry_overhead_bits));
  usage.match_crossbar_bits += vip_key_bits;
  usage.hash_bits += std::ceil(std::log2(static_cast<double>(layout.vips)));

  // --- DIPPoolTable: (VIP, version) -> DIP member list ----------------------
  // Provisioned for the maximum concurrently-active versions (2^version_bits)
  // in the worst case; typical occupancy is a handful of versions, but the
  // table must be sized for the envelope times average pool fan-out. We size
  // for the DIP population with a 4x version multiplier (measured §6.1:
  // DIPPoolTable ~8% of ConnTable for the peak Backend).
  const std::size_t pool_entries = layout.dips * 4;
  usage.sram_bytes += static_cast<double>(pool_entries) *
                      static_cast<double>(dip_entry_bytes + 2);
  usage.match_crossbar_bits +=
      static_cast<double>(vip_key_bits) + layout.version_bits;
  // ECMP-style member selection hash.
  usage.hash_bits += 14;

  // --- TransitTable: bloom filter on transactional memory ------------------
  usage.sram_bytes += static_cast<double>(layout.transit_table_bytes);
  usage.hash_bits +=
      static_cast<double>(layout.transit_hashes) *
      std::ceil(std::log2(static_cast<double>(layout.transit_table_bytes * 8)));
  // One stateful ALU per parallel bloom access plus one for the learn-filter
  // trigger register.
  usage.stateful_alus += static_cast<double>(layout.transit_hashes) + 1;

  // --- LearnTable + miscellaneous ------------------------------------------
  usage.match_crossbar_bits += 48;  // learn trigger match on miss/SYN flags

  // --- VLIW actions ----------------------------------------------------------
  // set_version, use_old_version, use_new_version, select_dip, rewrite_dst,
  // rewrite_l4, learn_notify, transit_mark, transit_check, syn_redirect,
  // fallback_dip, meter_mark, meter_drop, conn_miss, conn_hit, pool_select,
  // update_metadata.
  usage.vliw_actions += 17;

  // --- PHV metadata ----------------------------------------------------------
  // digest (16) + old/new version (2x6) + table-control flags (4) + VIP index
  // (8) carried between tables (Figure 10).
  usage.phv_bits += layout.digest_bits + 2.0 * layout.version_bits + 12;

  return usage;
}

ResourceVector paper_table2_reference() {
  return ResourceVector{37.53, 27.92, 0.0, 18.89, 34.17, 44.44, 0.98};
}

std::string format_resource_table(const ResourceVector& silkroad_pct,
                                  const ResourceVector& paper_pct) {
  char buf[1024];
  std::string out;
  const auto row = [&](const char* name, double ours, double paper) {
    std::snprintf(buf, sizeof buf, "%-22s %10.2f%% %12.2f%%\n", name, ours,
                  paper);
    out += buf;
  };
  std::snprintf(buf, sizeof buf, "%-22s %11s %13s\n", "Resource", "measured",
                "paper");
  out += buf;
  row("Match Crossbar", silkroad_pct.match_crossbar_bits,
      paper_pct.match_crossbar_bits);
  row("SRAM", silkroad_pct.sram_bytes, paper_pct.sram_bytes);
  row("TCAM", silkroad_pct.tcam_bytes, paper_pct.tcam_bytes);
  row("VLIW Actions", silkroad_pct.vliw_actions, paper_pct.vliw_actions);
  row("Hash Bits", silkroad_pct.hash_bits, paper_pct.hash_bits);
  row("Stateful ALUs", silkroad_pct.stateful_alus, paper_pct.stateful_alus);
  row("Packet Header Vector", silkroad_pct.phv_bits, paper_pct.phv_bits);
  return out;
}

}  // namespace silkroad::asic
