// Bloom filter on ASIC transactional memory — SilkRoad's TransitTable
// substrate (paper §4.3).
//
// Unlike the cuckoo ConnTable, a bloom filter needs no CPU involvement: each
// insert/query is a handful of hash-addressed single-bit register operations
// the ASIC performs at line rate with packet-transactional semantics. The
// price is false positives, which the 3-step update protocol keeps harmless
// (a falsely-matching SYN is redirected to the switch CPU, §4.3).
#pragma once

#include <cmath>
#include <cstdint>

#include "asic/register_array.h"
#include "net/five_tuple.h"
#include "net/hash.h"

namespace silkroad::asic {

class BloomFilter {
 public:
  /// A filter of `bytes` SRAM (8 bits/byte of 1-bit registers) addressed by
  /// `num_hashes` independent hash functions. The paper's headline
  /// configuration is 256 bytes.
  BloomFilter(std::size_t bytes, unsigned num_hashes = 3,
              std::uint64_t seed = 0x7A4517ULL)
      : bits_(bytes * 8 == 0 ? 8 : bytes * 8),
        num_hashes_(num_hashes == 0 ? 1 : num_hashes),
        seed_(seed),
        registers_(bits_, 1) {}

  void insert(const net::FiveTuple& flow) {
    for (unsigned i = 0; i < num_hashes_; ++i) {
      registers_.write(index_of(flow, i), 1);
    }
    ++inserted_;
  }

  bool maybe_contains(const net::FiveTuple& flow) const {
    for (unsigned i = 0; i < num_hashes_; ++i) {
      if (registers_.read(index_of(flow, i)) == 0) return false;
    }
    return true;
  }

  void clear() {
    registers_.clear();
    inserted_ = 0;
  }

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t byte_count() const noexcept { return bits_ / 8; }
  unsigned num_hashes() const noexcept { return num_hashes_; }
  std::uint64_t inserted() const noexcept { return inserted_; }

  /// Fraction of set bits (diagnostic).
  double fill_ratio() const {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < bits_; ++i) ones += registers_.read(i);
    return static_cast<double>(ones) / static_cast<double>(bits_);
  }

  /// Classical expected false-positive probability for n inserted keys:
  /// (1 - e^{-kn/m})^k.
  static double expected_fp_rate(std::size_t bits, unsigned k, std::size_t n) {
    if (bits == 0) return 1.0;
    const double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                            static_cast<double>(bits);
    return std::pow(1.0 - std::exp(exponent), static_cast<double>(k));
  }

 private:
  std::size_t index_of(const net::FiveTuple& flow, unsigned i) const {
    return static_cast<std::size_t>(
        net::hash_five_tuple(flow, net::mix64(seed_ + 0x51F1 * (i + 1))) %
        bits_);
  }

  std::size_t bits_;
  unsigned num_hashes_;
  std::uint64_t seed_;
  RegisterArray registers_;
  std::uint64_t inserted_ = 0;
};

}  // namespace silkroad::asic
