#include "asic/learning_filter.h"

namespace silkroad::asic {

void LearningFilter::learn(const net::FiveTuple& flow, std::uint32_t value) {
  total_events_.inc();
  if (pending_.contains(flow)) {
    duplicate_events_.inc();
    return;
  }
  pending_.emplace(flow, LearnEvent{flow, value, sim_.now()});
  order_.push_back(flow);
  if (pending_.size() >= config_.capacity) {
    flush_now();
    return;
  }
  if (pending_.size() == 1) {
    // First event after an empty filter arms the notification timer.
    timeout_event_ = sim_.schedule_after(config_.timeout, [this] { flush_now(); });
  }
}

void LearningFilter::flush_now() {
  timeout_event_.cancel();
  if (pending_.empty()) return;
  std::vector<LearnEvent> batch;
  batch.reserve(order_.size());
  for (const auto& flow : order_) {
    const auto it = pending_.find(flow);
    if (it == pending_.end()) continue;
    if (drop_hook_ && drop_hook_(it->second)) {
      dropped_events_.inc();
      continue;
    }
    batch.push_back(it->second);
  }
  pending_.clear();
  order_.clear();
  flushes_.inc();
  sink_(std::move(batch));
}

void LearningFilter::reset() {
  timeout_event_.cancel();
  pending_.clear();
  order_.clear();
}

}  // namespace silkroad::asic
