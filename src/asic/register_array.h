// Transactional register arrays (paper §4.1).
//
// Switching ASICs keep arrays of counters/meters/registers with *packet
// transactional* semantics: a read-check-modify-write completes in one clock
// cycle, so an update by one packet is visible to the very next packet. P4
// exposes this as register arrays; SilkRoad builds its TransitTable bloom
// filter on them. In a single-threaded simulation the transactional property
// is trivially satisfied; the class models the *resource* (cell count, cell
// width, stateful-ALU usage) and enforces width wrap-around.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/sr_check.h"

namespace silkroad::asic {

class RegisterArray {
 public:
  /// `cells` registers of `width_bits` each (1..64).
  RegisterArray(std::size_t cells, unsigned width_bits)
      : width_bits_(width_bits),
        mask_(width_bits >= 64 ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << width_bits) - 1)),
        cells_(cells, 0) {
    SR_CHECKF(width_bits >= 1 && width_bits <= 64,
              "register width %u outside 1..64", width_bits);
  }

  std::uint64_t read(std::size_t index) const { return cells_.at(index); }

  void write(std::size_t index, std::uint64_t value) {
    cells_.at(index) = value & mask_;
  }

  /// Transactional read-modify-write: returns the pre-update value.
  template <typename Fn>
  std::uint64_t update(std::size_t index, Fn&& fn) {
    std::uint64_t& cell = cells_.at(index);
    const std::uint64_t old = cell;
    cell = static_cast<std::uint64_t>(fn(old)) & mask_;
    return old;
  }

  /// Saturating increment (counter semantics). Returns the pre-update value.
  std::uint64_t increment(std::size_t index, std::uint64_t by = 1) {
    return update(index, [&](std::uint64_t v) {
      const std::uint64_t next = v + by;
      return next < v || next > mask_ ? mask_ : next;
    });
  }

  void clear() { std::fill(cells_.begin(), cells_.end(), 0); }

  std::size_t size() const noexcept { return cells_.size(); }
  unsigned width_bits() const noexcept { return width_bits_; }
  std::size_t total_bits() const noexcept { return cells_.size() * width_bits_; }

 private:
  unsigned width_bits_;
  std::uint64_t mask_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace silkroad::asic
