// Multi-stage digest exact-match table with cuckoo insertion — the hardware
// substrate of SilkRoad's ConnTable (paper §4.1, §4.2).
//
// Data plane (ASIC side): the table spans several physical pipeline stages;
// each stage has its own addressing hash function. A lookup addresses one
// SRAM word (bucket) per stage and compares the packed entries' stored
// *digests* against the packet's digest; the first stage that matches wins.
// Because only a digest is stored, two distinct connections can collide
// (same stage bucket + same digest): a *false positive*, resolved by the
// control plane (§4.2, SYN redirection + entry relocation).
//
// Control plane (switch CPU side): insertion requires finding an empty slot,
// possibly rearranging existing entries over a sequence of moves (BFS cuckoo).
// This is too complex for the ASIC and runs on the switch CPU — which is
// exactly why ConnTable insertion is slow and why SilkRoad needs the
// TransitTable to guarantee PCC (§4.3). The CPU keeps shadow state with each
// entry's full 5-tuple; the ASIC stores only digest + value.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asic/sram.h"
#include "net/hash.h"
#include "net/five_tuple.h"
#include "obs/sharded.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"

namespace silkroad::check {
struct TestingHooks;
}  // namespace silkroad::check

namespace silkroad::asic {

struct CuckooConfig {
  /// Physical stages the table is instantiated on.
  std::size_t stages = 4;
  /// SRAM words (buckets) per stage; each word packs `ways` entries.
  std::size_t buckets_per_stage = 1024;
  /// Entries packed per SRAM word (4 for 28-bit SilkRoad entries in 112-bit
  /// words).
  std::size_t ways = 4;
  /// Digest width stored per entry (paper default: 16).
  unsigned digest_bits = 16;
  /// Action-data width per entry (6-bit DIP-pool version in SilkRoad).
  unsigned value_bits = 6;
  /// Packing overhead per entry (instruction + next-table address; §6.1 uses
  /// 6 bits so the ConnTable entry is exactly 28 bits).
  unsigned overhead_bits = 6;
  /// Base seed; stage s uses an independent hash derived from it.
  std::uint64_t hash_seed = 0x517C0ADULL;
  /// BFS search budget for insertion (nodes expanded before giving up).
  std::size_t max_bfs_nodes = 2048;
};

/// Position of an entry: (stage, bucket, way).
struct SlotRef {
  std::uint32_t stage = 0;
  std::uint32_t bucket = 0;
  std::uint32_t way = 0;

  friend bool operator==(const SlotRef&, const SlotRef&) = default;
};

class DigestCuckooTable {
 public:
  explicit DigestCuckooTable(const CuckooConfig& config);

  struct LookupResult {
    std::uint32_t value = 0;
    SlotRef slot;
  };

  /// ASIC data-plane lookup: first-stage-match-wins digest comparison.
  /// May return a false-positive hit; the ASIC cannot tell.
  std::optional<LookupResult> lookup(const net::FiveTuple& key) const;

  /// CPU-side: true iff the hit at `slot` belongs to a different 5-tuple
  /// than `key` (digest collision).
  bool is_false_positive(const net::FiveTuple& key, const SlotRef& slot) const;

  struct InsertResult {
    bool inserted = false;
    /// Entry moves the cuckoo search performed (0 = direct placement).
    std::size_t moves = 0;
  };

  /// CPU-side insertion. Fails (inserted=false) if the BFS budget is
  /// exhausted — the table is effectively full for this key.
  InsertResult insert(const net::FiveTuple& key, std::uint32_t value);

  /// CPU-side removal (connection expired). Returns false if absent.
  bool erase(const net::FiveTuple& key);

  /// Drops every entry (switch crash/restore: connection state is lost while
  /// the geometry, observers, and monotone counters survive).
  void clear() {
    for (auto& slot : slots_) slot = Slot{};
    for (auto& key : shadow_keys_) key = net::FiveTuple{};
    index_.clear();
  }

  /// CPU-side exact-match presence test (uses shadow state, no digests).
  bool contains(const net::FiveTuple& key) const;

  /// CPU-side value read for an exactly-matching entry.
  std::optional<std::uint32_t> exact_value(const net::FiveTuple& key) const;

  /// CPU-side in-place action-data update for an exactly-matching entry.
  bool update_value(const net::FiveTuple& key, std::uint32_t value);

  /// §4.2 false-positive resolution: relocates the *existing* entry at
  /// `slot` to another stage so that `arriving` no longer falsely hits it
  /// (their buckets differ under that stage's hash). Returns false when no
  /// conflict-free placement exists within the BFS budget.
  bool relocate_for(const net::FiveTuple& arriving, const SlotRef& slot);

  // --- Activity tracking (hardware hit bits, sampled by the CPU) -----------

  /// Records data-plane activity on an entry. ASICs keep a per-entry hit
  /// indication the control plane samples to expire idle connections.
  void touch(const SlotRef& slot, std::uint64_t stamp);

  /// CPU-side activity stamp by exact key (e.g., at insertion time).
  void touch_exact(const net::FiveTuple& key, std::uint64_t stamp);

  /// Collects the keys of entries whose last activity stamp is strictly
  /// older than `older_than` (the CPU's aging sweep).
  std::vector<net::FiveTuple> collect_idle(std::uint64_t older_than) const;

  // --- Introspection -------------------------------------------------------
  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept {
    return config_.stages * config_.buckets_per_stage * config_.ways;
  }
  double occupancy() const noexcept {
    return capacity() == 0
               ? 0.0
               : static_cast<double>(size()) / static_cast<double>(capacity());
  }
  unsigned entry_bits() const noexcept {
    return config_.digest_bits + config_.value_bits + config_.overhead_bits;
  }
  /// SRAM bytes this table's geometry occupies (allocated, not used).
  std::size_t sram_bytes() const noexcept {
    return bits_to_bytes(config_.stages * config_.buckets_per_stage *
                         kSramWordBits);
  }
  const CuckooConfig& config() const noexcept { return config_; }
  std::uint64_t total_moves() const noexcept { return total_moves_.value(); }
  std::uint64_t failed_inserts() const noexcept {
    return failed_inserts_.value();
  }

  /// One installed connection as the control plane sees it (shadow 5-tuple +
  /// the entry's action data).
  struct Entry {
    net::FiveTuple key;
    std::uint32_t value = 0;
    SlotRef slot;
  };
  /// Snapshot of every installed entry (invariant-auditor input; order is
  /// unspecified).
  std::vector<Entry> entries() const;

  /// Number of physically occupied slots. Always equals size() unless the
  /// word array and the CPU shadow index have diverged — the "phantom SRAM
  /// accounting" corruption the invariant auditor detects.
  std::size_t used_slot_count() const noexcept;

  /// Occupied slots in physical stage `stage` (cuckoo fills earlier stages
  /// first, so the per-stage skew is itself a signal — paper §6.1).
  std::size_t used_in_stage(std::uint32_t stage) const noexcept;

  /// One stage's occupancy heatmap row: `bins` contiguous bucket ranges,
  /// each counting its occupied slots (of bin_capacity possible).
  struct StageOccupancy {
    std::uint32_t stage = 0;
    std::size_t used = 0;      ///< occupied slots in the whole stage
    std::size_t capacity = 0;  ///< slots in the whole stage
    std::size_t bin_capacity = 0;
    std::vector<std::size_t> bins;
  };
  /// Heatmap rows for every stage — the ScrapeServer's /tables payload.
  /// `bins` is clamped to the bucket count.
  std::vector<StageOccupancy> stage_occupancy(std::size_t bins = 16) const;

  // --- Telemetry -----------------------------------------------------------

  /// Attaches per-stage lookup profiling and/or structured event tracing
  /// (obs layer). Either pointer may be null; both must outlive the table.
  /// Lookups then record one probe per examined stage, and inserts emit
  /// cuckoo-insert / cuckoo-evict / cuckoo-insert-fail trace events.
  void bind_observer(obs::StageProfiler* profiler,
                     obs::TraceRing* trace) noexcept {
    profiler_ = profiler;
    trace_ = trace;
  }

  /// Bucket index of `key` at `stage` (exposed for tests/analysis).
  std::uint32_t bucket_of(const net::FiveTuple& key, std::uint32_t stage) const;
  /// The digest stored for `key` (exposed for tests/analysis).
  std::uint32_t digest_of(const net::FiveTuple& key) const {
    return net::connection_digest(key, config_.digest_bits);
  }

 private:
  /// check_test.cc's corruption hooks reach in to break slot/shadow agreement
  /// on purpose, proving the invariant auditor can fail.
  friend struct silkroad::check::TestingHooks;

  struct Slot {
    bool used = false;
    std::uint32_t digest = 0;
    std::uint32_t value = 0;
    /// Last data-plane activity stamp (hit bit + CPU sampling epoch).
    std::uint64_t last_hit = 0;
  };

  std::size_t flat_index(const SlotRef& ref) const noexcept {
    return (static_cast<std::size_t>(ref.stage) * config_.buckets_per_stage +
            ref.bucket) *
               config_.ways +
           ref.way;
  }
  std::uint64_t stage_seed(std::uint32_t stage) const noexcept {
    return net::mix64(config_.hash_seed + 0x9E37 * (stage + 1));
  }

  /// Places `key` in a free way of its bucket at some stage, if one exists.
  std::optional<SlotRef> find_free_slot(const net::FiveTuple& key) const;

  void place(const net::FiveTuple& key, std::uint32_t value, const SlotRef& ref);
  void move_entry(const SlotRef& from, const SlotRef& to);

  CuckooConfig config_;
  std::vector<Slot> slots_;
  /// CPU shadow: full 5-tuple per occupied slot (parallel to slots_).
  std::vector<net::FiveTuple> shadow_keys_;
  /// CPU shadow index: key -> current slot.
  std::unordered_map<net::FiveTuple, SlotRef, net::FiveTupleHash> index_;
  /// Sharded (DESIGN.md §14): bumped on the per-lookup/insert hot path.
  obs::ShardedCounter total_moves_;
  obs::ShardedCounter failed_inserts_;
  obs::StageProfiler* profiler_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace silkroad::asic
