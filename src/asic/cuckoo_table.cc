#include "asic/cuckoo_table.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

#include "check/sr_check.h"

namespace silkroad::asic {

DigestCuckooTable::DigestCuckooTable(const CuckooConfig& config)
    : config_(config),
      slots_(config.stages * config.buckets_per_stage * config.ways),
      shadow_keys_(slots_.size()) {
  SR_CHECKF(config_.stages >= 2, "cuckoo needs at least two stages");
  SR_CHECK(config_.buckets_per_stage > 0 && config_.ways > 0);
}

std::uint32_t DigestCuckooTable::bucket_of(const net::FiveTuple& key,
                                           std::uint32_t stage) const {
  return static_cast<std::uint32_t>(
      net::hash_five_tuple(key, stage_seed(stage)) % config_.buckets_per_stage);
}

std::optional<DigestCuckooTable::LookupResult> DigestCuckooTable::lookup(
    const net::FiveTuple& key) const {
  const std::uint32_t digest = digest_of(key);
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    const std::uint32_t bucket = bucket_of(key, stage);
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      const SlotRef ref{stage, bucket, way};
      const Slot& slot = slots_[flat_index(ref)];
      if (slot.used && slot.digest == digest) {
        if (profiler_ != nullptr) profiler_->record_lookup(stage, true);
        return LookupResult{slot.value, ref};
      }
    }
    if (profiler_ != nullptr) profiler_->record_lookup(stage, false);
  }
  return std::nullopt;
}

bool DigestCuckooTable::is_false_positive(const net::FiveTuple& key,
                                          const SlotRef& slot) const {
  const std::size_t idx = flat_index(slot);
  return slots_[idx].used && !(shadow_keys_[idx] == key);
}

bool DigestCuckooTable::contains(const net::FiveTuple& key) const {
  return index_.contains(key);
}

std::optional<std::uint32_t> DigestCuckooTable::exact_value(
    const net::FiveTuple& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return slots_[flat_index(it->second)].value;
}

bool DigestCuckooTable::update_value(const net::FiveTuple& key,
                                     std::uint32_t value) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  slots_[flat_index(it->second)].value = value;
  return true;
}

void DigestCuckooTable::place(const net::FiveTuple& key, std::uint32_t value,
                              const SlotRef& ref) {
  const std::size_t idx = flat_index(ref);
  SR_DCHECK(!slots_[idx].used);
  slots_[idx] = Slot{true, digest_of(key), value};
  shadow_keys_[idx] = key;
  index_[key] = ref;
}

void DigestCuckooTable::move_entry(const SlotRef& from, const SlotRef& to) {
  const std::size_t src = flat_index(from);
  const std::size_t dst = flat_index(to);
  SR_DCHECK(slots_[src].used && !slots_[dst].used);
  slots_[dst] = slots_[src];
  shadow_keys_[dst] = shadow_keys_[src];
  slots_[src].used = false;
  index_[shadow_keys_[dst]] = to;
  total_moves_.inc();
}

std::optional<SlotRef> DigestCuckooTable::find_free_slot(
    const net::FiveTuple& key) const {
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    const std::uint32_t bucket = bucket_of(key, stage);
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      const SlotRef ref{stage, bucket, way};
      if (!slots_[flat_index(ref)].used) return ref;
    }
  }
  return std::nullopt;
}

namespace {
/// Breadth-first cuckoo search node: an occupied slot whose occupant will be
/// displaced toward the path's tail.
struct BfsNode {
  SlotRef slot;
  int parent;  // index into the arena, -1 for roots
};
}  // namespace

DigestCuckooTable::InsertResult DigestCuckooTable::insert(
    const net::FiveTuple& key, std::uint32_t value) {
  if (index_.contains(key)) {
    // Re-learn of an existing connection: refresh action data.
    update_value(key, value);
    return InsertResult{true, 0};
  }
  // Fast path: a free way in one of the key's buckets.
  if (const auto free = find_free_slot(key)) {
    place(key, value, *free);
    if (trace_ != nullptr) {
      trace_->record(obs::TraceEventKind::kCuckooInsert, obs::kNoScope, value,
                     0, net::FiveTupleHash{}(key));
    }
    return InsertResult{true, 0};
  }
  // BFS cuckoo over displacement chains.
  std::vector<BfsNode> arena;
  arena.reserve(config_.max_bfs_nodes);
  std::unordered_set<std::uint64_t> visited;  // (stage, bucket) pairs
  const auto bucket_key = [this](std::uint32_t stage, std::uint32_t bucket) {
    return static_cast<std::uint64_t>(stage) * config_.buckets_per_stage +
           bucket;
  };
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    const std::uint32_t bucket = bucket_of(key, stage);
    if (!visited.insert(bucket_key(stage, bucket)).second) continue;
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      arena.push_back(BfsNode{SlotRef{stage, bucket, way}, -1});
    }
  }
  for (std::size_t head = 0;
       head < arena.size() && arena.size() < config_.max_bfs_nodes; ++head) {
    const BfsNode node = arena[head];
    const net::FiveTuple occupant = shadow_keys_[flat_index(node.slot)];
    for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
      if (stage == node.slot.stage) continue;
      const std::uint32_t bucket = bucket_of(occupant, stage);
      // A free way here terminates the search: unwind the chain.
      for (std::uint32_t way = 0; way < config_.ways; ++way) {
        const SlotRef target{stage, bucket, way};
        if (!slots_[flat_index(target)].used) {
          std::size_t moves = 0;
          SlotRef to = target;
          int at = static_cast<int>(head);
          while (at >= 0) {
            const BfsNode& n = arena[static_cast<std::size_t>(at)];
            move_entry(n.slot, to);
            ++moves;
            to = n.slot;
            at = n.parent;
          }
          place(key, value, to);
          if (trace_ != nullptr) {
            const std::uint64_t fid = net::FiveTupleHash{}(key);
            trace_->record(obs::TraceEventKind::kCuckooInsert, obs::kNoScope,
                           value, moves, fid);
            trace_->record(obs::TraceEventKind::kCuckooEvict, obs::kNoScope,
                           value, moves, fid);
          }
          return InsertResult{true, moves};
        }
      }
      if (!visited.insert(bucket_key(stage, bucket)).second) continue;
      for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (arena.size() >= config_.max_bfs_nodes) break;
        arena.push_back(
            BfsNode{SlotRef{stage, bucket, way}, static_cast<int>(head)});
      }
    }
  }
  failed_inserts_.inc();
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEventKind::kCuckooInsertFail, obs::kNoScope,
                   value, 0, net::FiveTupleHash{}(key));
  }
  return InsertResult{false, 0};
}

bool DigestCuckooTable::erase(const net::FiveTuple& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  slots_[flat_index(it->second)].used = false;
  index_.erase(it);
  return true;
}

void DigestCuckooTable::touch(const SlotRef& slot, std::uint64_t stamp) {
  Slot& s = slots_[flat_index(slot)];
  if (s.used) s.last_hit = stamp;
}

void DigestCuckooTable::touch_exact(const net::FiveTuple& key,
                                    std::uint64_t stamp) {
  const auto it = index_.find(key);
  if (it != index_.end()) touch(it->second, stamp);
}

std::vector<net::FiveTuple> DigestCuckooTable::collect_idle(
    std::uint64_t older_than) const {
  std::vector<net::FiveTuple> idle;
  for (const auto& [key, ref] : index_) {
    if (slots_[flat_index(ref)].last_hit < older_than) idle.push_back(key);
  }
  return idle;
}

std::vector<DigestCuckooTable::Entry> DigestCuckooTable::entries() const {
  std::vector<Entry> out;
  out.reserve(index_.size());
  for (const auto& [key, ref] : index_) {
    out.push_back(Entry{key, slots_[flat_index(ref)].value, ref});
  }
  return out;
}

std::size_t DigestCuckooTable::used_slot_count() const noexcept {
  std::size_t used = 0;
  for (const auto& slot : slots_) {
    if (slot.used) ++used;
  }
  return used;
}

std::size_t DigestCuckooTable::used_in_stage(
    std::uint32_t stage) const noexcept {
  if (stage >= config_.stages) return 0;
  const std::size_t per_stage = config_.buckets_per_stage * config_.ways;
  const std::size_t begin = static_cast<std::size_t>(stage) * per_stage;
  std::size_t used = 0;
  for (std::size_t i = begin; i < begin + per_stage; ++i) {
    if (slots_[i].used) ++used;
  }
  return used;
}

std::vector<DigestCuckooTable::StageOccupancy>
DigestCuckooTable::stage_occupancy(std::size_t bins) const {
  bins = std::max<std::size_t>(1, std::min(bins, config_.buckets_per_stage));
  std::vector<StageOccupancy> rows(config_.stages);
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    StageOccupancy& row = rows[stage];
    row.stage = stage;
    row.capacity = config_.buckets_per_stage * config_.ways;
    row.bins.assign(bins, 0);
    for (std::uint32_t bucket = 0; bucket < config_.buckets_per_stage;
         ++bucket) {
      const std::size_t bin = bucket * bins / config_.buckets_per_stage;
      for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (slots_[flat_index(SlotRef{stage, bucket, way})].used) {
          ++row.bins[bin];
          ++row.used;
        }
      }
    }
    // Bucket-range sizes differ by at most one when bins does not divide the
    // bucket count; report the largest so heat normalizes conservatively.
    row.bin_capacity =
        (config_.buckets_per_stage + bins - 1) / bins * config_.ways;
  }
  return rows;
}

bool DigestCuckooTable::relocate_for(const net::FiveTuple& arriving,
                                     const SlotRef& slot) {
  const std::size_t idx = flat_index(slot);
  if (!slots_[idx].used) return false;
  const net::FiveTuple resident = shadow_keys_[idx];
  const std::uint32_t resident_value = slots_[idx].value;
  // A stage is conflict-free if the two keys address different buckets there
  // (the digests are equal by construction of a false positive, so bucket
  // separation is the only way to disambiguate).
  const auto conflict_free = [&](std::uint32_t stage) {
    return bucket_of(resident, stage) != bucket_of(arriving, stage);
  };
  // Pass 1: free way in a conflict-free stage.
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    if (stage == slot.stage || !conflict_free(stage)) continue;
    const std::uint32_t bucket = bucket_of(resident, stage);
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      const SlotRef target{stage, bucket, way};
      if (!slots_[flat_index(target)].used) {
        move_entry(slot, target);
        return true;
      }
    }
  }
  // Pass 2: evict an occupant of a conflict-free bucket into its own
  // alternative position, then take its slot (one level of displacement;
  // deeper chains are overwhelmingly unnecessary at realistic occupancies).
  for (std::uint32_t stage = 0; stage < config_.stages; ++stage) {
    if (stage == slot.stage || !conflict_free(stage)) continue;
    const std::uint32_t bucket = bucket_of(resident, stage);
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      const SlotRef victim_ref{stage, bucket, way};
      const net::FiveTuple victim = shadow_keys_[flat_index(victim_ref)];
      for (std::uint32_t vstage = 0; vstage < config_.stages; ++vstage) {
        if (vstage == stage) continue;
        const std::uint32_t vbucket = bucket_of(victim, vstage);
        for (std::uint32_t vway = 0; vway < config_.ways; ++vway) {
          const SlotRef vtarget{vstage, vbucket, vway};
          if (!slots_[flat_index(vtarget)].used) {
            move_entry(victim_ref, vtarget);
            move_entry(slot, victim_ref);
            return true;
          }
        }
      }
    }
  }
  // Pass 3: as a last resort, erase + full BFS reinsert of the resident with
  // the conflicting placements masked out by temporarily occupying them is
  // not modeled; report failure and let the control plane fall back.
  (void)resident_value;
  return false;
}

}  // namespace silkroad::asic
