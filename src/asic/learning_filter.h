// Connection learning filter (paper §4.1, §4.3).
//
// ASICs batch "new flow" events in a hardware learning filter (originally for
// L2 MAC learning): duplicate events from multiple packets of the same flow
// are suppressed, and the switch CPU is notified when the filter fills or a
// timeout expires. The batch+timeout behaviour is what creates *pending
// connections* — flows whose packets are in flight before their ConnTable
// entry exists — and therefore the PCC hazard SilkRoad's TransitTable closes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/five_tuple.h"
#include "net/hash.h"
#include "obs/sharded.h"
#include "sim/event_queue.h"

namespace silkroad::asic {

/// One learned event: the new connection plus the action data the data plane
/// chose for it (DIP-pool version in SilkRoad; an opaque value here).
struct LearnEvent {
  net::FiveTuple flow;
  std::uint32_t value = 0;
  sim::Time first_seen = 0;
};

class LearningFilter {
 public:
  struct Config {
    /// Capacity in distinct flows before an immediate flush ("up to
    /// thousands of requests").
    std::size_t capacity = 2048;
    /// Notification timeout; the paper expects 500 µs – 5 ms.
    sim::Time timeout = 1 * sim::kMillisecond;
  };

  using FlushSink = std::function<void(std::vector<LearnEvent>)>;

  /// Fault-injection hook: returns true to lose this event at flush time.
  /// The filter still clears its own state (the hardware did notify; the
  /// PCI-E message was lost), so only a CPU-side re-learn sweep can recover
  /// the flow — exactly the failure mode a dropped notification creates.
  using DropHook = std::function<bool(const LearnEvent& event)>;

  LearningFilter(sim::Simulator& simulator, const Config& config,
                 FlushSink sink)
      : sim_(simulator), config_(config), sink_(std::move(sink)) {}

  LearningFilter(const LearningFilter&) = delete;
  LearningFilter& operator=(const LearningFilter&) = delete;

  /// Data-plane hook: called on a ConnTable miss by a flow not yet pending.
  /// Duplicate notifications for the same flow are absorbed (the hardware
  /// dedups by key). Flushes synchronously when the filter fills.
  void learn(const net::FiveTuple& flow, std::uint32_t value);

  /// True if the flow currently sits in the filter awaiting flush.
  bool pending(const net::FiveTuple& flow) const {
    return pending_.contains(flow);
  }

  /// Forces an immediate flush (used at teardown and in tests).
  void flush_now();

  /// Drops all buffered events and cancels the notification timer (switch
  /// crash: the hardware filter loses power with everything else).
  void reset();

  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  std::size_t pending_count() const noexcept { return pending_.size(); }
  std::uint64_t total_events() const noexcept { return total_events_.value(); }
  std::uint64_t duplicate_events() const noexcept {
    return duplicate_events_.value();
  }
  std::uint64_t flushes() const noexcept { return flushes_.value(); }
  std::uint64_t dropped_events() const noexcept {
    return dropped_events_.value();
  }
  const Config& config() const noexcept { return config_; }

 private:
  sim::Simulator& sim_;
  Config config_;
  FlushSink sink_;
  std::unordered_map<net::FiveTuple, LearnEvent, net::FiveTupleHash> pending_;
  std::vector<net::FiveTuple> order_;  // flush in arrival order
  sim::EventHandle timeout_event_;
  DropHook drop_hook_;
  /// Sharded (DESIGN.md §14): learn() runs once per new-flow packet.
  obs::ShardedCounter total_events_;
  obs::ShardedCounter duplicate_events_;
  obs::ShardedCounter flushes_;
  obs::ShardedCounter dropped_events_;
};

}  // namespace silkroad::asic
