// The switch management CPU (paper §4.1, §5.2).
//
// Cuckoo search and entry insertion are too complex for the ASIC data plane
// and run on an embedded x86 connected over PCI-E. We model it as a single
// FIFO worker with a configurable service rate; the paper measures ~200K
// ConnTable insertions/second. The queueing delay this introduces between a
// connection's first packet and its ConnTable entry is the source of the PCC
// hazard during DIP-pool updates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "check/thread_annotations.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace silkroad::asic {

class SwitchCpu {
 public:
  struct Config {
    /// Task service rate per pipe (ConnTable insertions/deletions/sec).
    double tasks_per_second = 200'000.0;
    /// Worker cores, one per physical pipe (§5.2: "multiple cores to handle
    /// insertions into different physical pipes"). Tasks are sharded by an
    /// explicit key so all operations on one flow stay ordered.
    std::size_t pipes = 1;
  };

  using Task = std::function<void()>;

  /// Fault-injection hook: maps the nominal per-task service time to the
  /// effective one (a stall window returns time-until-window-end + base; a
  /// slowdown returns base x factor). Consulted once per task dispatch.
  using DelayHook = std::function<sim::Time(sim::Time base)>;

  SwitchCpu(sim::Simulator& simulator, const Config& config)
      : sim_(simulator),
        service_time_(config.tasks_per_second <= 0
                          ? sim::Time{1}
                          : static_cast<sim::Time>(
                                static_cast<double>(sim::kSecond) /
                                config.tasks_per_second)),
        pipes_(config.pipes == 0 ? 1 : config.pipes) {}

  SwitchCpu(const SwitchCpu&) = delete;
  SwitchCpu& operator=(const SwitchCpu&) = delete;

  /// Enqueues a task on the pipe selected by `shard`; tasks with the same
  /// shard execute in FIFO order, each consuming one service time. The task
  /// body runs at completion time.
  void enqueue(Task task, std::uint64_t shard = 0) {
    const sr::MutexLock lock(mu_);
    Pipe& pipe = pipes_[shard % pipes_.size()];
    pipe.queue.push_back(std::move(task));
    if (!pipe.busy) {
      pipe.busy = true;
      schedule_next(pipe);
    }
  }

  /// Registers this CPU's pull metrics in `registry` under `prefix`
  /// (`<prefix>_queue_depth`, `<prefix>_tasks_completed_total`). The
  /// registry reads existing state at snapshot time — no double counting.
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix) {
    registry.register_callback(
        prefix + "_queue_depth", obs::MetricKind::kGauge,
        [this] { return static_cast<double>(queue_depth()); },
        "tasks queued across all CPU pipes");
    registry.register_callback(
        prefix + "_tasks_completed_total", obs::MetricKind::kCounter,
        [this] { return static_cast<double>(completed_tasks()); },
        "control-plane tasks executed");
  }

  std::size_t queue_depth() const {
    const sr::MutexLock lock(mu_);
    std::size_t total = 0;
    for (const auto& pipe : pipes_) total += pipe.queue.size();
    return total;
  }
  bool idle() const {
    const sr::MutexLock lock(mu_);
    for (const auto& pipe : pipes_) {
      if (pipe.busy) return false;
    }
    return true;
  }
  std::uint64_t completed_tasks() const {
    const sr::MutexLock lock(mu_);
    return completed_;
  }
  sim::Time service_time() const noexcept { return service_time_; }
  std::size_t pipe_count() const noexcept {
    // pipes_ never resizes after construction; only element state is guarded.
    const sr::MutexLock lock(mu_);
    return pipes_.size();
  }

  void set_delay_hook(DelayHook hook) { delay_hook_ = std::move(hook); }

 private:
  struct Pipe {
    std::deque<Task> queue;
    bool busy = false;
  };

  void schedule_next(Pipe& pipe) SR_REQUIRES(mu_) {
    const sim::Time delay =
        delay_hook_ ? delay_hook_(service_time_) : service_time_;
    // `pipe` outlives the lambda: pipes_ is sized in the constructor and
    // never reallocates. The task body runs UNLOCKED — it may re-enter
    // enqueue() (relearn re-queues, protocol continuations).
    sim_.schedule_after(delay, [this, &pipe] {
      Task task;
      {
        const sr::MutexLock lock(mu_);
        task = std::move(pipe.queue.front());
        pipe.queue.pop_front();
        ++completed_;
      }
      task();
      const sr::MutexLock lock(mu_);
      if (pipe.queue.empty()) {
        pipe.busy = false;
      } else {
        schedule_next(pipe);
      }
    });
  }

  sim::Simulator& sim_;
  sim::Time service_time_;
  mutable sr::Mutex mu_;
  std::vector<Pipe> pipes_ SR_GUARDED_BY(mu_);
  std::uint64_t completed_ SR_GUARDED_BY(mu_) = 0;
  DelayHook delay_hook_;
};

}  // namespace silkroad::asic
