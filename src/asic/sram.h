// SRAM geometry model of a match-action switching ASIC.
//
// Exact-match tables are instantiated on SRAM blocks spread across physical
// pipeline stages. Entries are packed into fixed-width SRAM words ("word
// packing", RMT §: the paper and our evaluation use 112-bit words, so a
// 28-bit SilkRoad ConnTable entry packs exactly 4 per word).
#pragma once

#include <cstddef>
#include <cstdint>

namespace silkroad::asic {

/// Width of one SRAM word in bits (matches the RMT/Tofino-class value the
/// paper assumes in §6: "we consider the SRAM word of 112 bits").
inline constexpr std::size_t kSramWordBits = 112;

/// One physical SRAM block: 1K words of 112 bits (14 KB per block), the unit
/// in which memory is allocated to tables.
inline constexpr std::size_t kSramBlockWords = 1024;

constexpr std::size_t bits_to_bytes(std::size_t bits) noexcept {
  return (bits + 7) / 8;
}

/// How many entries of `entry_bits` fit in one SRAM word.
constexpr std::size_t entries_per_word(std::size_t entry_bits) noexcept {
  return entry_bits == 0 ? 0 : kSramWordBits / entry_bits;
}

/// SRAM words needed to hold `entries` entries of `entry_bits` each. Narrow
/// entries pack several per word (no straddling); entries wider than a word
/// stitch whole words from parallel blocks, as wide exact-match keys do in
/// real ASICs.
constexpr std::size_t words_for_entries(std::size_t entries,
                                        std::size_t entry_bits) noexcept {
  if (entry_bits == 0) return 0;
  const std::size_t per_word = entries_per_word(entry_bits);
  if (per_word == 0) {
    const std::size_t words_per_entry =
        (entry_bits + kSramWordBits - 1) / kSramWordBits;
    return entries * words_per_entry;
  }
  return (entries + per_word - 1) / per_word;
}

/// Bytes of SRAM consumed by `entries` packed entries.
constexpr std::size_t sram_bytes_for_entries(std::size_t entries,
                                             std::size_t entry_bits) noexcept {
  return bits_to_bytes(words_for_entries(entries, entry_bits) * kSramWordBits);
}

/// Generation of switching ASIC (paper Table 1): switching capacity and the
/// SRAM envelope available for match-action tables.
struct AsicGeneration {
  const char* name;
  int year;
  double capacity_tbps;
  std::size_t sram_mb_low;
  std::size_t sram_mb_high;
};

inline constexpr AsicGeneration kAsicGenerations[] = {
    {"<1.6 Tbps (Trident II / FlexPipe)", 2012, 1.6, 10, 20},
    {"3.2 Tbps (Tomahawk / XPliant)", 2014, 3.2, 30, 60},
    {"6.4+ Tbps (Tofino / Tomahawk II / Spectrum)", 2016, 6.5, 50, 100},
};

}  // namespace silkroad::asic
