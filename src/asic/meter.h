// Two-rate three-color meter (RFC 4115) — per-VIP rate limiting (paper §5.2).
//
// SilkRoad attaches a meter to each VIP for performance isolation: packets
// are marked green/yellow/red against a committed rate (CIR/CBS) and an
// excess rate (EIR/EBS); red packets are dropped under DDoS or flash crowds.
// The paper reports <1% average marking error and ~1% of SRAM for 40K meters.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace silkroad::asic {

enum class MeterColor : std::uint8_t { kGreen, kYellow, kRed };

constexpr const char* to_string(MeterColor c) noexcept {
  switch (c) {
    case MeterColor::kGreen: return "green";
    case MeterColor::kYellow: return "yellow";
    default: return "red";
  }
}

/// Color-blind RFC 4115 trTCM: token buckets refilled at CIR (committed) and
/// EIR (excess) bits/sec with burst sizes CBS and EBS bytes.
class TwoRateThreeColorMeter {
 public:
  struct Config {
    double cir_bps = 1e9;          ///< committed information rate, bits/sec
    double eir_bps = 1e9;          ///< excess information rate, bits/sec
    std::uint64_t cbs_bytes = 128 * 1024;  ///< committed burst size
    std::uint64_t ebs_bytes = 128 * 1024;  ///< excess burst size
  };

  explicit TwoRateThreeColorMeter(const Config& config)
      : config_(config),
        committed_tokens_(static_cast<double>(config.cbs_bytes)),
        excess_tokens_(static_cast<double>(config.ebs_bytes)) {}

  /// Marks a packet of `bytes` arriving at simulated time `now`.
  MeterColor mark(sim::Time now, std::uint32_t bytes) {
    refill(now);
    const double b = static_cast<double>(bytes);
    if (committed_tokens_ >= b) {
      committed_tokens_ -= b;
      ++green_;
      return MeterColor::kGreen;
    }
    if (excess_tokens_ >= b) {
      excess_tokens_ -= b;
      ++yellow_;
      return MeterColor::kYellow;
    }
    ++red_;
    return MeterColor::kRed;
  }

  std::uint64_t green_packets() const noexcept { return green_; }
  std::uint64_t yellow_packets() const noexcept { return yellow_; }
  std::uint64_t red_packets() const noexcept { return red_; }
  const Config& config() const noexcept { return config_; }

  /// SRAM bits one meter instance occupies (two 32-bit token counters, two
  /// timestamps, config) — used for the 40K-meters ≈ 1% SRAM estimate.
  static constexpr std::size_t sram_bits_per_instance() noexcept { return 128; }

 private:
  void refill(sim::Time now) {
    if (now <= last_update_) return;
    const double dt = sim::to_seconds(now - last_update_);
    committed_tokens_ += config_.cir_bps / 8.0 * dt;
    if (committed_tokens_ > static_cast<double>(config_.cbs_bytes)) {
      committed_tokens_ = static_cast<double>(config_.cbs_bytes);
    }
    excess_tokens_ += config_.eir_bps / 8.0 * dt;
    if (excess_tokens_ > static_cast<double>(config_.ebs_bytes)) {
      excess_tokens_ = static_cast<double>(config_.ebs_bytes);
    }
    last_update_ = now;
  }

  Config config_;
  double committed_tokens_;
  double excess_tokens_;
  sim::Time last_update_ = 0;
  std::uint64_t green_ = 0;
  std::uint64_t yellow_ = 0;
  std::uint64_t red_ = 0;
};

}  // namespace silkroad::asic
