// Pipeline resource accounting (paper §5.2, Table 2).
//
// A PISA/RMT-class ASIC gives each pipeline stage fixed budgets of match
// crossbar bits, SRAM/TCAM blocks, VLIW action slots, hash bits, stateful
// ALUs, and a packet header vector (PHV) shared across stages. Table 2 of the
// paper reports the *additional* resources SilkRoad consumes normalized by
// the baseline switch.p4 usage. We compute SilkRoad's absolute consumption
// from first principles (its table layout) and normalize by documented
// baseline estimates (the paper publishes only ratios; the baseline constants
// below are calibrated so a faithful SilkRoad layout reproduces the ratios).
#pragma once

#include <cstdint>
#include <string>

namespace silkroad::asic {

/// A bundle of pipeline resources; addable and scalable.
struct ResourceVector {
  double match_crossbar_bits = 0;
  double sram_bytes = 0;
  double tcam_bytes = 0;
  double vliw_actions = 0;
  double hash_bits = 0;
  double stateful_alus = 0;
  double phv_bits = 0;

  ResourceVector& operator+=(const ResourceVector& o) noexcept {
    match_crossbar_bits += o.match_crossbar_bits;
    sram_bytes += o.sram_bytes;
    tcam_bytes += o.tcam_bytes;
    vliw_actions += o.vliw_actions;
    hash_bits += o.hash_bits;
    stateful_alus += o.stateful_alus;
    phv_bits += o.phv_bits;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }

  /// Element-wise ratio (this / base), in percent; 0 where base is 0.
  ResourceVector percent_of(const ResourceVector& base) const noexcept;
};

/// Whole-chip budgets for a Tofino-class device (RMT-derived: 32 stages).
struct ChipModel {
  int stages = 32;
  double match_crossbar_bits_per_stage = 1280;  // 8 x 160b exact-match ways
  double sram_bytes_per_stage = 136 * 1024 * 14;  // 136 blocks x 1K x 112b
  double tcam_bytes_per_stage = 16 * 2048 * 5;    // 16 blocks x 2K x 40b
  double vliw_actions_per_stage = 128;
  double hash_bits_per_stage = 416;
  double stateful_alus_per_stage = 4;
  double phv_bits_total = 4096;

  ResourceVector totals() const noexcept;
};

/// Geometry of the SilkRoad P4 program's tables for a given connection scale
/// (defaults: 1M connections, 16-bit digest, 6-bit version — Table 2's
/// configuration).
struct SilkRoadLayout {
  std::size_t connections = 1'000'000;
  unsigned digest_bits = 16;
  unsigned version_bits = 6;
  unsigned entry_overhead_bits = 6;
  std::size_t conn_table_stages = 4;
  std::size_t vips = 4096;
  std::size_t dips = 4096;
  bool ipv6 = true;
  std::size_t transit_table_bytes = 256;
  unsigned transit_hashes = 3;
  /// Match key width the crossbar must carry for a 5-tuple (bits).
  unsigned five_tuple_bits() const noexcept { return ipv6 ? 296 : 104; }
};

/// Resource usage of the baseline switch.p4 (L2/L3/ACL/QoS, ~5000 lines of
/// P4). The paper does not publish absolute numbers; these constants are
/// estimates calibrated so that the SilkRoad layout above reproduces the
/// Table 2 ratios — see EXPERIMENTS.md.
ResourceVector baseline_switch_p4_usage();

/// First-principles resource usage of the SilkRoad tables (Figure 10:
/// ConnTable, VIPTable, DIPPoolTable, TransitTable, LearnTable + metadata).
ResourceVector silkroad_usage(const SilkRoadLayout& layout);

/// Paper Table 2 reference values (percent, for comparison printouts).
ResourceVector paper_table2_reference();

std::string format_resource_table(const ResourceVector& silkroad_pct,
                                  const ResourceVector& paper_pct);

}  // namespace silkroad::asic
