// PISA pipeline program placement (paper §5.1-§5.2).
//
// A P4 program is a set of match-action tables with dependencies; the
// compiler places them onto the chip's physical stages, each with fixed
// budgets of match crossbar bits, SRAM/TCAM blocks, hash bits, stateful
// ALUs, and VLIW action slots. "Adding any new logic into the pipeline does
// not change throughput as long as the logic fits into the pipeline resource
// constraints" — so the question the prototype answers is exactly a
// placement-feasibility question: do switch.p4's tables *plus* SilkRoad's
// tables fit in 32 stages? This module models that placement with a greedy
// first-fit allocator honoring dependencies and per-stage budgets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asic/resources.h"
#include "asic/sram.h"
#include "obs/metrics.h"

namespace silkroad::asic {

enum class MatchKind : std::uint8_t {
  kExact,    // hash-addressed SRAM (cuckoo)
  kTernary,  // TCAM
  kIndex,    // direct-indexed SRAM (no crossbar/hash cost beyond the index)
};

/// One logical match-action table of a program.
struct TableSpec {
  std::string name;
  MatchKind match = MatchKind::kExact;
  /// Bits the crossbar must deliver to the table (the lookup key on the
  /// wire, e.g. the full 5-tuple for ConnTable).
  unsigned key_bits = 0;
  /// Bits actually stored per entry as the match field; defaults to
  /// key_bits, smaller when the table stores a hash digest of the key
  /// (SilkRoad's ConnTable: 296-bit key, 16-bit stored digest).
  unsigned stored_key_bits = 0;
  unsigned action_data_bits = 0;
  std::size_t entries = 0;
  /// Entry packing overhead (instruction/next-table pointers).
  unsigned overhead_bits = 6;
  /// Stateful ALUs the table's actions need (registers/meters/counters).
  unsigned stateful_alus = 0;
  /// Distinct VLIW actions the table can invoke.
  unsigned vliw_actions = 1;
  /// Tables in the same dependency level may share a stage; a table must
  /// start strictly after the *first* stage of every lower-level table of
  /// the same program (simplified PISA dependency graph: levels with
  /// span-overlap, since results forward within a span). Independent
  /// programs (after merge()) constrain only themselves.
  int dependency_level = 0;
  /// Program the table belongs to (assigned by merge(); dependencies apply
  /// within one program only).
  int program_id = 0;

  unsigned entry_bits() const noexcept {
    // Direct-indexed tables store no key; exact tables store the key (or a
    // digest of it); ternary keys live in TCAM, not in the SRAM entry.
    unsigned stored = 0;
    if (match == MatchKind::kExact) {
      stored = stored_key_bits == 0 ? key_bits : stored_key_bits;
    }
    return stored + action_data_bits + overhead_bits;
  }
  /// SRAM words the entries need (0 for ternary: they consume TCAM).
  std::size_t sram_words() const noexcept {
    return match == MatchKind::kTernary
               ? 0
               : words_for_entries(entries, entry_bits());
  }
};

/// Per-stage physical budgets (defaults derive from ChipModel).
struct StageBudget {
  double crossbar_bits = 1280;
  std::size_t sram_words = 136 * 1024;
  std::size_t tcam_entries = 16 * 2048;
  unsigned stateful_alus = 4;
  /// VLIW instruction words per stage (RMT-class chips provide O(100)).
  unsigned vliw_actions = 128;
  double hash_bits = 416;
};

class PipelineProgram {
 public:
  explicit PipelineProgram(std::string name) : name_(std::move(name)) {}

  PipelineProgram& add_table(TableSpec spec);
  /// Merges another program's tables (e.g., switch.p4 + silkroad.p4) as an
  /// *independent* program: its dependency levels constrain only its own
  /// tables, so the two programs interleave across stages like parallel
  /// control flows in one P4 pipeline.
  PipelineProgram& merge(const PipelineProgram& other);

  const std::string& name() const noexcept { return name_; }
  const std::vector<TableSpec>& tables() const noexcept { return tables_; }

  /// Aggregate resource demand (independent of placement).
  ResourceVector total_resources() const;

  struct TablePlacement {
    std::string table;
    int first_stage = 0;
    int last_stage = 0;  // exact tables may span stages for capacity
  };
  struct Placement {
    bool fits = false;
    int stages_used = 0;
    std::vector<TablePlacement> tables;
    std::vector<double> stage_sram_utilization;  // per used stage
    std::string error;  // set when !fits
  };

  /// Greedy first-fit placement over `chip.stages` stages with `budget`
  /// per stage, honoring dependency levels.
  Placement place(const ChipModel& chip, const StageBudget& budget = {}) const;

  /// The ~5000-line baseline switch.p4 (L2/L3/ACL/QoS), table inventory
  /// modeled from the open-source program.
  static PipelineProgram baseline_switch_p4();

  /// SilkRoad's tables (Figure 10) for a connection scale.
  static PipelineProgram silkroad_p4(std::size_t connections,
                                     unsigned digest_bits = 16,
                                     unsigned version_bits = 6,
                                     std::size_t vips = 4096,
                                     std::size_t transit_bytes = 256);

 private:
  std::string name_;
  std::vector<TableSpec> tables_;
};

std::string format_placement(const PipelineProgram::Placement& placement);

/// Publishes a placement into the metrics registry: per-stage SRAM
/// utilization gauges (`silkroad_pipeline_stage_sram_utilization{stage=…}`),
/// stages used, and a fits boolean — so placement feasibility shows up in
/// the same Prometheus/JSON snapshots as the runtime counters.
void export_placement_metrics(const PipelineProgram::Placement& placement,
                              obs::MetricsRegistry& registry,
                              const std::string& prefix = "silkroad_pipeline");

}  // namespace silkroad::asic
