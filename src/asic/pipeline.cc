#include "asic/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace silkroad::asic {
namespace {

double hash_bits_for(const TableSpec& table) {
  if (table.match != MatchKind::kExact || table.entries == 0) return 0;
  // Addressing bits plus digest extraction when the stored key is hashed.
  double bits = std::ceil(std::log2(static_cast<double>(table.entries) + 1));
  if (table.stored_key_bits != 0 && table.stored_key_bits < table.key_bits) {
    bits += table.stored_key_bits;
  }
  return bits;
}

double crossbar_bits_for(const TableSpec& table) {
  switch (table.match) {
    case MatchKind::kExact:
    case MatchKind::kTernary:
      return table.key_bits;
    case MatchKind::kIndex:
      return std::ceil(std::log2(static_cast<double>(table.entries) + 1));
  }
  return 0;
}

}  // namespace

PipelineProgram& PipelineProgram::add_table(TableSpec spec) {
  tables_.push_back(std::move(spec));
  return *this;
}

PipelineProgram& PipelineProgram::merge(const PipelineProgram& other) {
  int max_program = 0;
  for (const auto& table : tables_) {
    max_program = std::max(max_program, table.program_id);
  }
  for (TableSpec table : other.tables_) {
    table.program_id += max_program + 1;
    tables_.push_back(std::move(table));
  }
  return *this;
}

ResourceVector PipelineProgram::total_resources() const {
  ResourceVector total;
  for (const auto& table : tables_) {
    total.match_crossbar_bits += crossbar_bits_for(table);
    total.hash_bits += hash_bits_for(table);
    total.stateful_alus += table.stateful_alus;
    total.vliw_actions += table.vliw_actions;
    if (table.match == MatchKind::kTernary) {
      total.tcam_bytes += static_cast<double>(table.entries) *
                          bits_to_bytes(table.key_bits);
    } else {
      total.sram_bytes +=
          static_cast<double>(table.sram_words()) * bits_to_bytes(kSramWordBits);
    }
  }
  return total;
}

PipelineProgram::Placement PipelineProgram::place(
    const ChipModel& chip, const StageBudget& budget) const {
  Placement result;
  const int stages = chip.stages;
  std::vector<StageBudget> remaining(static_cast<std::size_t>(stages), budget);

  // Stable order: dependency level first, then declaration order.
  std::vector<std::size_t> order(tables_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tables_[a].dependency_level < tables_[b].dependency_level;
  });

  // A table of level L must start strictly after the *first* stage of every
  // lower-level table of the same program (span-overlapping pipelining).
  std::map<std::pair<int, int>, int> level_first_stage;  // (program, level)
  const auto level_floor = [&](int program, int level) {
    int floor = 0;
    for (const auto& [key, first] : level_first_stage) {
      if (key.first == program && key.second < level) {
        floor = std::max(floor, first + 1);
      }
    }
    return floor;
  };
  const auto note_level_stage = [&](int program, int level, int first) {
    const auto key = std::make_pair(program, level);
    const auto it = level_first_stage.find(key);
    if (it == level_first_stage.end()) {
      level_first_stage.emplace(key, first);
    } else {
      it->second = std::max(it->second, first);
    }
  };

  for (const std::size_t idx : order) {
    const TableSpec& table = tables_[idx];
    const double crossbar = crossbar_bits_for(table);
    const double hash = hash_bits_for(table);
    std::size_t sram_left = table.sram_words();
    std::size_t tcam_left =
        table.match == MatchKind::kTernary ? table.entries : 0;

    int first = -1;
    int last = -1;
    bool control_charged = false;
    for (int stage = level_floor(table.program_id, table.dependency_level);
         stage < stages; ++stage) {
      StageBudget& b = remaining[static_cast<std::size_t>(stage)];
      // Per-spanned-stage costs: the key rides the crossbar into every stage
      // that holds part of the table; control costs (ALUs, VLIW) charge once.
      if (b.crossbar_bits < crossbar || b.hash_bits < hash) continue;
      if (!control_charged &&
          (b.stateful_alus < table.stateful_alus ||
           b.vliw_actions < table.vliw_actions)) {
        continue;
      }
      const std::size_t sram_take = std::min(sram_left, b.sram_words);
      const std::size_t tcam_take = std::min(tcam_left, b.tcam_entries);
      if (sram_left > 0 && sram_take == 0) continue;
      if (tcam_left > 0 && tcam_take == 0) continue;

      b.crossbar_bits -= crossbar;
      b.hash_bits -= hash;
      if (!control_charged) {
        b.stateful_alus -= table.stateful_alus;
        b.vliw_actions -= table.vliw_actions;
        control_charged = true;
      }
      b.sram_words -= sram_take;
      sram_left -= sram_take;
      b.tcam_entries -= tcam_take;
      tcam_left -= tcam_take;
      if (first < 0) first = stage;
      last = stage;
      if (sram_left == 0 && tcam_left == 0) break;
    }
    if (first < 0 || sram_left > 0 || tcam_left > 0) {
      result.fits = false;
      result.error = "table '" + table.name + "' does not fit in " +
                     std::to_string(stages) + " stages";
      return result;
    }
    note_level_stage(table.program_id, table.dependency_level, first);
    result.tables.push_back(TablePlacement{table.name, first, last});
    result.stages_used = std::max(result.stages_used, last + 1);
  }

  result.fits = true;
  result.stage_sram_utilization.resize(
      static_cast<std::size_t>(result.stages_used));
  for (int stage = 0; stage < result.stages_used; ++stage) {
    const auto& b = remaining[static_cast<std::size_t>(stage)];
    result.stage_sram_utilization[static_cast<std::size_t>(stage)] =
        1.0 - static_cast<double>(b.sram_words) /
                  static_cast<double>(budget.sram_words);
  }
  return result;
}

PipelineProgram PipelineProgram::baseline_switch_p4() {
  // Representative table inventory of the open-source switch.p4
  // (L2/L3/ACL/QoS for a data-center ToR), sized for a 64K-host pod.
  PipelineProgram program("switch.p4");
  program
      .add_table({.name = "port_vlan_to_bd", .match = MatchKind::kExact,
                  .key_bits = 28, .action_data_bits = 16, .entries = 16384,
                  .vliw_actions = 3, .dependency_level = 0})
      .add_table({.name = "validate_packet", .match = MatchKind::kTernary,
                  .key_bits = 64, .action_data_bits = 8, .entries = 64,
                  .vliw_actions = 4, .dependency_level = 0})
      .add_table({.name = "smac", .match = MatchKind::kExact, .key_bits = 64,
                  .action_data_bits = 16, .entries = 131072,
                  .stateful_alus = 1,  // MAC-learning notify register
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "dmac", .match = MatchKind::kExact, .key_bits = 64,
                  .action_data_bits = 24, .entries = 131072, .vliw_actions = 4,
                  .dependency_level = 1})
      .add_table({.name = "tunnel_term", .match = MatchKind::kExact,
                  .key_bits = 110, .action_data_bits = 24, .entries = 32768,
                  .vliw_actions = 4, .dependency_level = 1})
      .add_table({.name = "ipv4_host", .match = MatchKind::kExact,
                  .key_bits = 44, .action_data_bits = 24, .entries = 131072,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "ipv4_urpf", .match = MatchKind::kExact,
                  .key_bits = 52, .action_data_bits = 8, .entries = 65536,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "multicast_bridge", .match = MatchKind::kExact,
                  .key_bits = 92, .action_data_bits = 16, .entries = 65536,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "multicast_route", .match = MatchKind::kExact,
                  .key_bits = 100, .action_data_bits = 16, .entries = 65536,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "ipv4_lpm", .match = MatchKind::kTernary,
                  .key_bits = 44, .action_data_bits = 24, .entries = 16384,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "ipv6_host", .match = MatchKind::kExact,
                  .key_bits = 140, .action_data_bits = 24, .entries = 16384,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "ipv6_lpm", .match = MatchKind::kTernary,
                  .key_bits = 140, .action_data_bits = 24, .entries = 8192,
                  .vliw_actions = 2, .dependency_level = 1})
      .add_table({.name = "acl_ipv4", .match = MatchKind::kTernary,
                  .key_bits = 120, .action_data_bits = 16, .entries = 2048,
                  .stateful_alus = 2,  // ACL counters
                  .vliw_actions = 6, .dependency_level = 2})
      .add_table({.name = "acl_ipv6", .match = MatchKind::kTernary,
                  .key_bits = 320, .action_data_bits = 16, .entries = 1024,
                  .vliw_actions = 6, .dependency_level = 2})
      .add_table({.name = "ecmp_group", .match = MatchKind::kIndex,
                  .key_bits = 16, .action_data_bits = 48, .entries = 16384,
                  .vliw_actions = 2, .dependency_level = 3})
      .add_table({.name = "nexthop", .match = MatchKind::kIndex,
                  .key_bits = 16, .action_data_bits = 96, .entries = 32768,
                  .vliw_actions = 4, .dependency_level = 3})
      .add_table({.name = "lag_group", .match = MatchKind::kIndex,
                  .key_bits = 10, .action_data_bits = 24, .entries = 1024,
                  .vliw_actions = 2, .dependency_level = 4})
      .add_table({.name = "qos_meters", .match = MatchKind::kIndex,
                  .key_bits = 12, .action_data_bits = 8, .entries = 4096,
                  .stateful_alus = 4,  // meter state
                  .vliw_actions = 3, .dependency_level = 4})
      .add_table({.name = "egress_vlan_xlate", .match = MatchKind::kExact,
                  .key_bits = 28, .action_data_bits = 16, .entries = 16384,
                  .stateful_alus = 2,  // egress counters
                  .vliw_actions = 3, .dependency_level = 5})
      .add_table({.name = "rewrite", .match = MatchKind::kIndex,
                  .key_bits = 16, .action_data_bits = 128, .entries = 16384,
                  .vliw_actions = 45, .dependency_level = 5})
      .add_table({.name = "system_acl", .match = MatchKind::kTernary,
                  .key_bits = 160, .action_data_bits = 16, .entries = 512,
                  .vliw_actions = 10, .dependency_level = 6});
  return program;
}

PipelineProgram PipelineProgram::silkroad_p4(std::size_t connections,
                                             unsigned digest_bits,
                                             unsigned version_bits,
                                             std::size_t vips,
                                             std::size_t transit_bytes) {
  PipelineProgram program("silkroad.p4");
  program
      .add_table({.name = "conn_table", .match = MatchKind::kExact,
                  .key_bits = 296,  // IPv6 5-tuple rides the crossbar
                  .stored_key_bits = digest_bits,
                  .action_data_bits = version_bits, .entries = connections,
                  .vliw_actions = 4, .dependency_level = 0})
      .add_table({.name = "vip_table", .match = MatchKind::kExact,
                  .key_bits = 152,  // VIP(128)+port(16)+proto(8)
                  .action_data_bits = 2 * version_bits + 2,
                  .entries = vips, .vliw_actions = 3, .dependency_level = 1})
      .add_table({.name = "transit_table", .match = MatchKind::kIndex,
                  .key_bits = 0, .action_data_bits = 1,
                  .entries = transit_bytes * 8,
                  .overhead_bits = 0,
                  .stateful_alus = 4,  // 3 bloom ways + learn trigger
                  .vliw_actions = 3, .dependency_level = 1})
      .add_table({.name = "dip_pool_table", .match = MatchKind::kIndex,
                  .key_bits = 18,  // (vip index, version)
                  .action_data_bits = 144,  // IPv6 DIP + port
                  .entries = vips * 4, .vliw_actions = 4,
                  .dependency_level = 2})
      .add_table({.name = "learn_table", .match = MatchKind::kIndex,
                  .key_bits = 4, .action_data_bits = 4, .entries = 16,
                  .vliw_actions = 3, .dependency_level = 2});
  return program;
}

std::string format_placement(const PipelineProgram::Placement& placement) {
  char buf[256];
  std::string out;
  if (!placement.fits) {
    return "placement FAILED: " + placement.error + "\n";
  }
  std::snprintf(buf, sizeof buf, "fits in %d stages\n", placement.stages_used);
  out += buf;
  for (const auto& table : placement.tables) {
    if (table.first_stage == table.last_stage) {
      std::snprintf(buf, sizeof buf, "  %-22s stage %d\n", table.table.c_str(),
                    table.first_stage);
    } else {
      std::snprintf(buf, sizeof buf, "  %-22s stages %d-%d\n",
                    table.table.c_str(), table.first_stage, table.last_stage);
    }
    out += buf;
  }
  out += "  per-stage SRAM utilization:";
  for (const double util : placement.stage_sram_utilization) {
    std::snprintf(buf, sizeof buf, " %.0f%%", 100 * util);
    out += buf;
  }
  out += "\n";
  return out;
}

void export_placement_metrics(const PipelineProgram::Placement& placement,
                              obs::MetricsRegistry& registry,
                              const std::string& prefix) {
  registry.gauge(prefix + "_fits", "1 when the program placement succeeded")
      ->set(placement.fits ? 1 : 0);
  registry.gauge(prefix + "_stages_used", "physical stages the placement uses")
      ->set(placement.stages_used);
  for (std::size_t i = 0; i < placement.stage_sram_utilization.size(); ++i) {
    registry
        .gauge(prefix + "_stage_sram_utilization",
               "fraction of the stage's SRAM words allocated",
               "stage=\"" + std::to_string(i) + "\"")
        ->set(placement.stage_sram_utilization[i]);
  }
}

}  // namespace silkroad::asic
