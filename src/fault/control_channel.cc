#include "fault/control_channel.h"

#include <utility>

#include "check/sr_check.h"

namespace silkroad::fault {

ControlChannel::ControlChannel(sim::Simulator& simulator, const Config& config,
                               DeliverFn deliver, ResyncFn resync)
    : sim_(simulator),
      config_(config),
      deliver_(std::move(deliver)),
      resync_(std::move(resync)),
      rng_(config.seed) {
  SR_CHECK(deliver_ != nullptr);
  SR_CHECK(resync_ != nullptr);
  SR_CHECK(config_.retry_backoff >= 1.0);
}

void ControlChannel::send(Payload payload) {
  ++sent_;
  const std::uint64_t id = payload_update_id(payload);
  span_event(id, obs::SpanEventKind::kChannelSend);
  if (offline_) {
    // The peer is dead: the message is gone, and only a full resync on
    // restore can re-establish a consistent state.
    ++dropped_;
    needs_resync_ = true;
    // The span leg terminates here; the restore-time resync subsumes it.
    span_event(id, obs::SpanEventKind::kChannelDrop, 0, 2);
    span_event(id, obs::SpanEventKind::kAbandon, 0, 3);
    if (spans_ != nullptr && id != 0) pending_subsume_.push_back(id);
    return;
  }
  if (std::holds_alternative<ResyncChunk>(payload)) ++resync_chunks_;
  const std::uint64_t seq = next_seq_++;
  auto [it, inserted] = outstanding_.emplace(
      seq, Outstanding{std::move(payload), 0, config_.retry_timeout, {}});
  SR_CHECK(inserted);
  (void)it;
  transmit(seq);
  arm_retry(seq);
}

void ControlChannel::transmit(std::uint64_t seq) {
  const sim::Time now = sim_.now();
  const auto out_it = outstanding_.find(seq);
  const std::uint64_t id = out_it == outstanding_.end()
                               ? 0
                               : payload_update_id(out_it->second.payload);
  const std::uint64_t attempt =
      out_it == outstanding_.end()
          ? 0
          : static_cast<std::uint64_t>(out_it->second.retries);
  if (out_it != outstanding_.end()) {
    // Every transmission attempt pays the chunk's modeled wire cost — a
    // retransmitted chunk is re-sent in full, so loss makes resync more
    // expensive, not magically cheaper.
    if (const auto* chunk =
            std::get_if<ResyncChunk>(&out_it->second.payload)) {
      resync_bytes_ += wire_size(*chunk);
    }
  }
  bool drop = offline_ || rng_.bernoulli(config_.drop_probability);
  if (!drop && loss_hook_ && loss_hook_(now)) drop = true;
  if (drop) {
    ++dropped_;
    span_event(id, obs::SpanEventKind::kChannelDrop, attempt, 0);
    return;  // The retry timer is still armed; the message will come back.
  }
  span_event(id, obs::SpanEventKind::kChannelXmit, attempt);
  sim::Time delay = config_.base_delay;
  if (config_.jitter > 0) {
    delay += static_cast<sim::Time>(rng_.uniform() *
                                    static_cast<double>(config_.jitter));
  }
  if (config_.reorder_probability > 0 &&
      rng_.bernoulli(config_.reorder_probability)) {
    delay += config_.reorder_extra;
    ++reorders_;
  }
  ++inflight_;
  sim_.schedule_after(delay, [this, seq, epoch = epoch_] {
    --inflight_;
    on_message_arrival(seq, epoch);
  });
}

void ControlChannel::arm_retry(std::uint64_t seq) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  it->second.retry_event = sim_.schedule_after(
      it->second.timeout, [this, seq] { on_retry_timeout(seq); });
}

void ControlChannel::on_retry_timeout(std::uint64_t seq) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;  // Acked in the meantime.
  if (offline_) return;                  // Restore will resync instead.
  ++it->second.retries;
  const bool chunk =
      std::holds_alternative<ResyncChunk>(it->second.payload);
  if (!chunk && it->second.retries > config_.resync_after_retries) {
    // The window is not making progress message-by-message; escalate to a
    // resync session, which supersedes everything outstanding. Chunk traffic
    // IS the session: it sits at the bottom of the escalation ladder and is
    // retried until acknowledged (a mid-session crash restarts the session
    // from the watermark via set_offline/force_resync instead).
    force_resync();
    return;
  }
  ++retries_;
  span_event(payload_update_id(it->second.payload),
             obs::SpanEventKind::kChannelRetry,
             static_cast<std::uint64_t>(it->second.retries));
  it->second.timeout = static_cast<sim::Time>(
      static_cast<double>(it->second.timeout) * config_.retry_backoff);
  if (chunk && it->second.timeout > 16 * config_.retry_timeout) {
    // Cap the chunk backoff: recovery traffic keeps probing through long
    // loss windows instead of backing off into minutes of lag.
    it->second.timeout = 16 * config_.retry_timeout;
  }
  transmit(seq);
  arm_retry(seq);
}

void ControlChannel::on_message_arrival(std::uint64_t seq,
                                        std::uint64_t epoch) {
  if (epoch != epoch_) return;  // Sent to a peer state that no longer exists.
  if (seq < next_expected_) {
    // Already delivered once: the ack was lost and the sender retransmitted.
    // The sender-side copy is still outstanding (that is why it
    // retransmitted), so the payload's span id is recoverable here.
    ++duplicates_;
    if (const auto it = outstanding_.find(seq); it != outstanding_.end()) {
      span_event(payload_update_id(it->second.payload),
                 obs::SpanEventKind::kChannelDup);
    }
    ack(seq);
    return;
  }
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;  // Superseded by a resync.
  if (!reorder_buffer_.emplace(seq, it->second.payload).second) {
    ++duplicates_;  // Retransmit raced its own earlier copy.
    span_event(payload_update_id(it->second.payload),
               obs::SpanEventKind::kChannelDup);
  }
  ack(seq);
  drain_in_order();
}

void ControlChannel::ack(std::uint64_t seq) {
  // The ack crosses the same lossy channel; a lost ack leaves the message
  // outstanding and produces a duplicate delivery on retransmit.
  bool drop = rng_.bernoulli(config_.drop_probability);
  if (!drop && loss_hook_ && loss_hook_(sim_.now())) drop = true;
  if (drop) {
    ++dropped_;
    if (const auto it = outstanding_.find(seq); it != outstanding_.end()) {
      span_event(payload_update_id(it->second.payload),
                 obs::SpanEventKind::kChannelDrop, 0, 1);
    }
    return;
  }
  sim::Time delay = config_.base_delay;
  if (config_.jitter > 0) {
    delay += static_cast<sim::Time>(rng_.uniform() *
                                    static_cast<double>(config_.jitter));
  }
  sim_.schedule_after(delay, [this, seq, epoch = epoch_] {
    if (epoch != epoch_) return;
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    it->second.retry_event.cancel();
    outstanding_.erase(it);
  });
}

void ControlChannel::drain_in_order() {
  while (true) {
    auto it = reorder_buffer_.find(next_expected_);
    if (it == reorder_buffer_.end()) break;
    Payload payload = std::move(it->second);
    reorder_buffer_.erase(it);
    ++next_expected_;
    ++delivered_;
    span_event(payload_update_id(payload), obs::SpanEventKind::kChannelDeliver);
    deliver_(payload);
  }
}

void ControlChannel::wipe_window() {
  // Traced messages dying with the window are abandoned on this leg and
  // queued for subsumption by the next resync escalation. A message can sit
  // in both maps at once (received, ack in flight) — the duplicate record
  // and subsume entry are harmless.
  if (spans_ != nullptr) {
    const auto abandon = [this](const Payload& payload) {
      const std::uint64_t id = payload_update_id(payload);
      if (id == 0) return;
      span_event(id, obs::SpanEventKind::kAbandon, 0, 3);
      pending_subsume_.push_back(id);
    };
    for (const auto& [seq, msg] : outstanding_) abandon(msg.payload);
    for (const auto& [seq, payload] : reorder_buffer_) abandon(payload);
  }
  for (auto& [seq, msg] : outstanding_) msg.retry_event.cancel();
  outstanding_.clear();
  reorder_buffer_.clear();
}

void ControlChannel::set_offline(bool offline) {
  if (offline == offline_) return;
  offline_ = offline;
  if (offline_) {
    ++epoch_;  // In-flight deliveries and acks die with the peer.
    wipe_window();
    needs_resync_ = true;
  }
}

void ControlChannel::force_resync() {
  wipe_window();
  if (offline_) {
    needs_resync_ = true;  // Deferred until the peer is restored.
    return;
  }
  needs_resync_ = false;
  ++resyncs_;
  ++epoch_;  // Stale in-flight arrivals and acks die with the old window.
  // Re-anchor the in-order stream: the session's chunks (and anything sent
  // after them) are the next sequences the receiver will accept.
  next_expected_ = next_seq_;
  if (spans_ != nullptr) {
    active_resync_id_ =
        spans_->begin_resync(span_switch_, sim_.now(), pending_subsume_);
    pending_subsume_.clear();
  }
  if (session_hook_) session_hook_(active_resync_id_, sim_.now());
  // Ask the controller to send the chunked catch-up. The chunks go through
  // send()/transmit() like every other message — there is no reliable
  // delivery fiction here; the session span gets its kResyncApply when the
  // final chunk actually lands at the receiver.
  resync_();
}

void ControlChannel::bind_metrics(obs::MetricsRegistry& registry,
                                  const std::string& labels) {
  const auto bind = [&](const char* name, const char* help,
                        const std::uint64_t* value) {
    registry.register_callback(
        name, obs::MetricKind::kCounter,
        [value] { return static_cast<double>(*value); }, help, labels);
  };
  bind("silkroad_ctrl_sent_total", "Control messages submitted for delivery",
       &sent_);
  bind("silkroad_ctrl_delivered_total",
       "Control messages delivered in order to the switch agent", &delivered_);
  bind("silkroad_ctrl_dropped_total",
       "Control-channel transmissions (messages and acks) lost", &dropped_);
  bind("silkroad_ctrl_duplicates_total",
       "Duplicate deliveries caused by lost acks", &duplicates_);
  bind("silkroad_ctrl_reorders_total",
       "Messages that arrived after a later-sequenced message", &reorders_);
  bind("silkroad_ctrl_retries_total", "Retransmissions after ack timeout",
       &retries_);
  bind("silkroad_ctrl_resyncs_total",
       "Resync sessions begun (retry exhaustion or crash restore)",
       &resyncs_);
  bind("silkroad_ctrl_resync_chunks_total",
       "ResyncChunk payloads submitted on the channel", &resync_chunks_);
  bind("silkroad_ctrl_resync_bytes_total",
       "Modeled bytes of chunk transmission attempts (retransmits re-pay)",
       &resync_bytes_);
  registry.register_callback(
      "silkroad_ctrl_outstanding", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(outstanding_.size()); },
      "Unacknowledged control messages in flight", labels);
  registry.register_callback(
      "silkroad_ctrl_inflight", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(inflight_); },
      "Message transmissions currently in the air (not yet landed)", labels);
  registry.register_callback(
      "silkroad_ctrl_reorder_buffer_depth", obs::MetricKind::kGauge,
      [this] { return static_cast<double>(reorder_buffer_.size()); },
      "Received messages buffered behind an in-order sequence gap", labels);
}

void ControlChannel::bind_spans(obs::SpanCollector* spans,
                                std::uint32_t switch_index) {
  spans_ = spans;
  span_switch_ = switch_index;
}

std::uint64_t ControlChannel::payload_update_id(
    const Payload& payload) noexcept {
  if (const auto* update = std::get_if<workload::DipUpdate>(&payload)) {
    return update->update_id;
  }
  if (const auto* chunk = std::get_if<ResyncChunk>(&payload)) {
    return chunk->span_id;
  }
  return 0;  // VipConfig payloads are untraced.
}

void ControlChannel::span_event(std::uint64_t id, obs::SpanEventKind kind,
                                std::uint64_t arg0, std::uint64_t arg1) {
  if (spans_ == nullptr || id == 0) return;
  spans_->record(id, kind, span_switch_, sim_.now(), arg0, arg1);
}

}  // namespace silkroad::fault
