// Deterministic, seed-driven fault injection for the SilkRoad pipeline.
//
// A FaultPlan is a sim-time schedule of fault windows over the failure modes
// the paper's control plane is exposed to: switch-CPU stalls and slowdowns
// (§4.1's ~200K inserts/s is a best case), learning-filter notification loss,
// cuckoo-insert failures, DIP flapping (§7), control-channel loss, and whole
// switch crash/restore (§5.3). A FaultInjector turns the plan into the hooks
// the production classes accept — SwitchCpu's delay hook, LearningFilter's
// drop hook, SilkRoadSwitch's insert-failure hook, ControlChannel's loss
// hook — plus a DIP liveness oracle for the health checker and crash/restore
// callbacks for the fleet. Everything is driven by forked sim::Rng streams,
// so a (plan seed, injector seed) pair replays the exact same fault history.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asic/learning_filter.h"
#include "asic/switch_cpu.h"
#include "net/five_tuple.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace silkroad::fault {

enum class FaultKind : std::uint8_t {
  kCpuStall,     ///< switch CPU halts; queued tasks resume at window end
  kCpuSlowdown,  ///< service time multiplied by `magnitude`
  kLearnDrop,    ///< learning-filter notifications lost with p=`magnitude`
  kInsertFail,   ///< cuckoo insertions forced to fail with p=`magnitude`
  kChannelLoss,  ///< control-channel transmissions lost with p=`magnitude`
  kDipFlap,      ///< DIP alternates dead/alive with period `period`
  kSwitchCrash,  ///< switch dies at `start`, is restored at `end`
};
inline constexpr std::size_t kFaultKindCount = 7;

const char* to_string(FaultKind kind) noexcept;

struct FaultWindow {
  FaultKind kind = FaultKind::kCpuStall;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Switch index for switch-targeted kinds; DIP index for kDipFlap.
  std::size_t target = 0;
  /// Slowdown factor or drop/fail probability, per kind.
  double magnitude = 0;
  /// kDipFlap: full square-wave period (down the first half-period).
  sim::Time period = 0;

  std::string to_string() const;
};

struct FaultPlan {
  struct Options {
    sim::Time horizon = 30 * sim::kSecond;
    std::size_t switches = 3;
    std::size_t dips = 8;
    bool include_crash = true;
  };

  std::vector<FaultWindow> windows;

  /// Generates a randomized plan containing at least one window of every
  /// fault kind (crash only when options.include_crash), with all windows
  /// closing before 85% of the horizon so the system can quiesce.
  static FaultPlan random(std::uint64_t seed, const Options& options);

  bool any(FaultKind kind) const;
  std::string to_string() const;
};

class FaultInjector {
 public:
  /// `registry` (optional) receives silkroad_faults_injected_total{kind=...}
  /// counters, pre-created at zero for every kind so the exporters always
  /// show the full taxonomy.
  FaultInjector(sim::Simulator& simulator, FaultPlan plan, std::uint64_t seed,
                obs::MetricsRegistry* registry = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Hook factories (the injector must outlive the returned hooks) -------

  /// SwitchCpu delay hook: a stall window stretches the in-flight task to
  /// the window's end; a slowdown window multiplies the service time.
  asic::SwitchCpu::DelayHook cpu_delay_hook(std::size_t switch_index);

  /// LearningFilter drop hook: loses notifications with the window's
  /// probability while a kLearnDrop window targets this switch.
  asic::LearningFilter::DropHook learn_drop_hook(std::size_t switch_index);

  /// SilkRoadSwitch insert-failure hook (forces the BFS-budget-exhausted
  /// path with the window's probability).
  std::function<bool(const net::FiveTuple&)> insert_fail_hook(
      std::size_t switch_index);

  /// ControlChannel loss hook.
  std::function<bool(sim::Time)> channel_loss_hook(std::size_t switch_index);

  /// DIP liveness oracle for the health checker: false while a kDipFlap
  /// window holds the DIP in the down half of its square wave.
  bool dip_alive(std::size_t dip_index, sim::Time now);

  /// Schedules every kSwitchCrash window: `crash(target)` at start,
  /// `restore(target)` at end.
  void schedule_crashes(std::function<void(std::size_t)> crash,
                        std::function<void(std::size_t)> restore);

  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t injected_total() const;
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  const FaultWindow* active(FaultKind kind, std::size_t target,
                            sim::Time now) const;
  void count(FaultKind kind);

  sim::Simulator& sim_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::uint64_t injected_[kFaultKindCount] = {};
  obs::Counter* counters_[kFaultKindCount] = {};
  /// Last liveness reported per flapping DIP (transition edge counting).
  std::unordered_map<std::size_t, bool> dip_state_;
};

}  // namespace silkroad::fault
