#include "fault/fault_injector.h"

#include <cstdio>
#include <utility>

#include "check/sr_check.h"

namespace silkroad::fault {
namespace {

constexpr FaultKind kAllKinds[kFaultKindCount] = {
    FaultKind::kCpuStall,    FaultKind::kCpuSlowdown, FaultKind::kLearnDrop,
    FaultKind::kInsertFail,  FaultKind::kChannelLoss, FaultKind::kDipFlap,
    FaultKind::kSwitchCrash,
};

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCpuStall: return "cpu-stall";
    case FaultKind::kCpuSlowdown: return "cpu-slowdown";
    case FaultKind::kLearnDrop: return "learn-drop";
    case FaultKind::kInsertFail: return "insert-fail";
    case FaultKind::kChannelLoss: return "channel-loss";
    case FaultKind::kDipFlap: return "dip-flap";
    case FaultKind::kSwitchCrash: return "switch-crash";
  }
  return "unknown";
}

std::string FaultWindow::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%-12s target=%zu [%.3fs, %.3fs) magnitude=%.2f period=%.3fs",
                fault::to_string(kind), target, sim::to_seconds(start),
                sim::to_seconds(end), magnitude, sim::to_seconds(period));
  return buf;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const Options& options) {
  sim::Rng rng(seed ^ 0xFA017BADULL);
  FaultPlan plan;
  const double horizon = static_cast<double>(options.horizon);
  const auto pick_span = [&](double min_frac, double max_frac) {
    const double start = rng.uniform(0.05, 0.55) * horizon;
    const double len = rng.uniform(min_frac, max_frac) * horizon;
    const double end = std::min(start + len, 0.85 * horizon);
    return std::pair<sim::Time, sim::Time>{static_cast<sim::Time>(start),
                                           static_cast<sim::Time>(end)};
  };
  const auto sw = [&] {
    return static_cast<std::size_t>(rng.uniform_int(
        options.switches == 0 ? 1 : options.switches));
  };

  for (const FaultKind kind : kAllKinds) {
    if (kind == FaultKind::kSwitchCrash && !options.include_crash) continue;
    FaultWindow w;
    w.kind = kind;
    switch (kind) {
      case FaultKind::kCpuStall: {
        const auto [start, end] = pick_span(0.01, 0.05);
        w.start = start;
        w.end = end;
        w.target = sw();
        break;
      }
      case FaultKind::kCpuSlowdown: {
        const auto [start, end] = pick_span(0.05, 0.20);
        w.start = start;
        w.end = end;
        w.target = sw();
        w.magnitude = rng.uniform(2.0, 10.0);
        break;
      }
      case FaultKind::kLearnDrop: {
        const auto [start, end] = pick_span(0.05, 0.25);
        w.start = start;
        w.end = end;
        w.target = sw();
        w.magnitude = rng.uniform(0.2, 0.9);
        break;
      }
      case FaultKind::kInsertFail: {
        const auto [start, end] = pick_span(0.05, 0.25);
        w.start = start;
        w.end = end;
        w.target = sw();
        w.magnitude = rng.uniform(0.05, 0.30);
        break;
      }
      case FaultKind::kChannelLoss: {
        const auto [start, end] = pick_span(0.05, 0.25);
        w.start = start;
        w.end = end;
        w.target = sw();
        w.magnitude = rng.uniform(0.2, 0.8);
        break;
      }
      case FaultKind::kDipFlap: {
        const auto [start, end] = pick_span(0.20, 0.45);
        w.start = start;
        w.end = end;
        w.target = static_cast<std::size_t>(
            rng.uniform_int(options.dips == 0 ? 1 : options.dips));
        w.period = static_cast<sim::Time>(rng.uniform(0.10, 0.30) * horizon);
        break;
      }
      case FaultKind::kSwitchCrash: {
        // Crash early enough that restore + resync fully settles before the
        // harness audits convergence at quiesce.
        w.start = static_cast<sim::Time>(rng.uniform(0.25, 0.45) * horizon);
        w.end = w.start +
                static_cast<sim::Time>(rng.uniform(0.10, 0.20) * horizon);
        w.target = sw();
        break;
      }
    }
    plan.windows.push_back(w);
  }
  return plan;
}

bool FaultPlan::any(FaultKind kind) const {
  for (const auto& w : windows) {
    if (w.kind == kind) return true;
  }
  return false;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& w : windows) {
    out += w.to_string();
    out += '\n';
  }
  return out;
}

FaultInjector::FaultInjector(sim::Simulator& simulator, FaultPlan plan,
                             std::uint64_t seed,
                             obs::MetricsRegistry* registry)
    : sim_(simulator), plan_(std::move(plan)), rng_(seed ^ 0x1A7EC7EDULL) {
  if (registry != nullptr) {
    for (const FaultKind kind : kAllKinds) {
      counters_[static_cast<std::size_t>(kind)] = registry->counter(
          "silkroad_faults_injected_total", "faults injected by kind",
          std::string("kind=\"") + fault::to_string(kind) + "\"");
    }
  }
}

const FaultWindow* FaultInjector::active(FaultKind kind, std::size_t target,
                                         sim::Time now) const {
  for (const auto& w : plan_.windows) {
    if (w.kind == kind && w.target == target && now >= w.start && now < w.end) {
      return &w;
    }
  }
  return nullptr;
}

void FaultInjector::count(FaultKind kind) {
  ++injected_[static_cast<std::size_t>(kind)];
  if (obs::Counter* counter = counters_[static_cast<std::size_t>(kind)]) {
    counter->inc();
  }
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

asic::SwitchCpu::DelayHook FaultInjector::cpu_delay_hook(
    std::size_t switch_index) {
  return [this, switch_index](sim::Time base) -> sim::Time {
    const sim::Time now = sim_.now();
    if (const FaultWindow* w =
            active(FaultKind::kCpuStall, switch_index, now)) {
      // The CPU freezes: the in-flight task completes only once the stall
      // lifts (one event at window end, no polling).
      count(FaultKind::kCpuStall);
      return (w->end - now) + base;
    }
    if (const FaultWindow* w =
            active(FaultKind::kCpuSlowdown, switch_index, now)) {
      count(FaultKind::kCpuSlowdown);
      const double factor = w->magnitude < 1.0 ? 1.0 : w->magnitude;
      return static_cast<sim::Time>(static_cast<double>(base) * factor);
    }
    return base;
  };
}

asic::LearningFilter::DropHook FaultInjector::learn_drop_hook(
    std::size_t switch_index) {
  return [this, switch_index](const asic::LearnEvent&) {
    const FaultWindow* w =
        active(FaultKind::kLearnDrop, switch_index, sim_.now());
    if (w != nullptr && rng_.bernoulli(w->magnitude)) {
      count(FaultKind::kLearnDrop);
      return true;
    }
    return false;
  };
}

std::function<bool(const net::FiveTuple&)> FaultInjector::insert_fail_hook(
    std::size_t switch_index) {
  return [this, switch_index](const net::FiveTuple&) {
    const FaultWindow* w =
        active(FaultKind::kInsertFail, switch_index, sim_.now());
    if (w != nullptr && rng_.bernoulli(w->magnitude)) {
      count(FaultKind::kInsertFail);
      return true;
    }
    return false;
  };
}

std::function<bool(sim::Time)> FaultInjector::channel_loss_hook(
    std::size_t switch_index) {
  return [this, switch_index](sim::Time now) {
    const FaultWindow* w = active(FaultKind::kChannelLoss, switch_index, now);
    if (w != nullptr && rng_.bernoulli(w->magnitude)) {
      count(FaultKind::kChannelLoss);
      return true;
    }
    return false;
  };
}

bool FaultInjector::dip_alive(std::size_t dip_index, sim::Time now) {
  bool alive = true;
  for (const auto& w : plan_.windows) {
    if (w.kind != FaultKind::kDipFlap || w.target != dip_index) continue;
    if (now < w.start || now >= w.end) continue;
    const sim::Time period = w.period > 0 ? w.period : sim::Time{1};
    if ((now - w.start) % period < period / 2) {
      alive = false;
      break;
    }
  }
  auto [it, inserted] = dip_state_.emplace(dip_index, true);
  if (it->second && !alive) count(FaultKind::kDipFlap);  // down edge
  it->second = alive;
  return alive;
}

void FaultInjector::schedule_crashes(std::function<void(std::size_t)> crash,
                                     std::function<void(std::size_t)> restore) {
  SR_CHECK(crash != nullptr);
  SR_CHECK(restore != nullptr);
  for (const auto& w : plan_.windows) {
    if (w.kind != FaultKind::kSwitchCrash) continue;
    sim_.schedule_at(w.start, [this, crash, target = w.target] {
      count(FaultKind::kSwitchCrash);
      crash(target);
    });
    sim_.schedule_at(w.end, [restore, target = w.target] { restore(target); });
  }
}

}  // namespace silkroad::fault
