// Modeled controller->switch control channel (lossy, delayed, resynced).
//
// The paper assumes every switch receives the controller's DIP-pool update
// stream; production control channels are RPC sessions over a management
// network that delays, drops, and reorders messages, and that must resync a
// replica when it falls too far behind or returns from a crash (§5.3, §7).
// This class models one such session: messages carry sequence numbers, the
// receiver delivers strictly in order (buffering gaps), the sender retries
// unacknowledged messages with exponential backoff, and after too many
// retries it escalates to a resync *session* — the controller computes the
// catch-up (journal delta or full state, DESIGN.md §16) and sends it as
// ResyncChunk payloads through this same channel, subject to the same loss,
// reordering, and retransmission as every other message. There is no
// reliable side channel: chunk traffic is the bottom of the escalation
// ladder and is retried until acknowledged (it never re-escalates).
//
// Both endpoints live in this one object (the simulation owns both sides);
// loss applies independently to the message and to its ack, so a lost ack
// produces a genuine duplicate delivery at the receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <variant>
#include <vector>

#include "fault/sync_wire.h"
#include "net/endpoint.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "workload/update_gen.h"

namespace silkroad::fault {

class ControlChannel {
 public:
  struct Config {
    /// One-way propagation + processing delay per message (and per ack).
    sim::Time base_delay = 0;
    /// Uniform extra delay in [0, jitter) added per transmission.
    sim::Time jitter = 0;
    /// Probability a transmission (message or ack) is lost.
    double drop_probability = 0.0;
    /// Probability a message is delayed by `reorder_extra` (arrives after
    /// later messages — the receiver's in-order buffer repairs it).
    double reorder_probability = 0.0;
    sim::Time reorder_extra = 0;
    /// First retransmit timeout; each retry multiplies it by retry_backoff.
    sim::Time retry_timeout = 1 * sim::kMillisecond;
    double retry_backoff = 2.0;
    /// Retries per message before escalating to a full-state resync.
    int resync_after_retries = 5;
    std::uint64_t seed = 0xC0117301ULL;
  };

  using Payload = std::variant<workload::DipUpdate, VipConfig, ResyncChunk>;
  /// Receiver-side application of one in-order message.
  using DeliverFn = std::function<void(const Payload& payload)>;
  /// Begin-resync-session request: the callee computes the catch-up (journal
  /// suffix past the replica's watermark, or full state after compaction)
  /// and sends it back through this channel as sequenced ResyncChunk
  /// payloads. Invoked synchronously from force_resync(); nothing about the
  /// transfer itself is reliable (srlint R13 keeps direct invocations out of
  /// the rest of the tree).
  using ResyncFn = std::function<void()>;
  /// Fault-injection hook: returns true to force-drop this transmission.
  using LossHook = std::function<bool(sim::Time now)>;
  /// Resync-session state notification, fired at the window-wipe edge of
  /// force_resync() — before the ResyncFn computes the catch-up — with the
  /// freshly minted session span id (0 when no span collector is bound).
  /// The convergence observatory (DESIGN.md §17) uses it to suspend digest
  /// checks for the duration of the session.
  using SessionHook = std::function<void(std::uint64_t session_id,
                                         sim::Time now)>;

  ControlChannel(sim::Simulator& simulator, const Config& config,
                 DeliverFn deliver, ResyncFn resync);

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  /// Queues one message. While the channel is offline the message is dropped
  /// and the channel is marked as needing a resync (the peer is dead; the
  /// controller replays state wholesale on restore).
  void send(Payload payload);

  /// Peer liveness. Going offline wipes the in-flight window (messages to a
  /// dead switch are gone) and marks the channel for resync; coming back
  /// online does *not* resync by itself — call force_resync().
  void set_offline(bool offline);

  /// Escalates to a resync session: drops the in-flight window, bumps the
  /// receive epoch (stale arrivals die), re-anchors the in-order syncpoint,
  /// and synchronously asks the resync callback to send the chunked catch-up
  /// through this channel. The chunks themselves are ordinary lossy traffic;
  /// a chunk is retried until acknowledged but never re-escalates.
  void force_resync();

  void set_loss_hook(LossHook hook) { loss_hook_ = std::move(hook); }
  void set_session_hook(SessionHook hook) { session_hook_ = std::move(hook); }

  /// Registers this channel's counters in `registry` under the
  /// silkroad_ctrl_* names with `labels` (e.g. switch="2").
  void bind_metrics(obs::MetricsRegistry& registry, const std::string& labels);

  /// Attaches the causal-trace collector: every channel-leg event of a
  /// traced DipUpdate (send, transmission attempts, drops, retries,
  /// deliveries, duplicates) is recorded on its span under this switch's
  /// leg, and resync escalations mint resync spans subsuming whatever the
  /// window wipe abandoned. Pass nullptr to detach.
  void bind_spans(obs::SpanCollector* spans, std::uint32_t switch_index);

  // --- Introspection ---------------------------------------------------------
  bool offline() const noexcept { return offline_; }
  bool needs_resync() const noexcept { return needs_resync_; }
  std::size_t outstanding() const noexcept { return outstanding_.size(); }
  /// Message transmissions currently in the air (scheduled, not yet landed).
  std::size_t inflight() const noexcept { return inflight_; }
  /// Received-but-undeliverable messages buffered behind a sequence gap.
  std::size_t reorder_buffer_depth() const noexcept {
    return reorder_buffer_.size();
  }
  /// Span id of the most recent resync escalation (0 before the first); the
  /// fleet parents resync-synthesized diff updates under it.
  std::uint64_t active_resync_id() const noexcept { return active_resync_id_; }
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t duplicates() const noexcept { return duplicates_; }
  std::uint64_t reorders() const noexcept { return reorders_; }
  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t resyncs() const noexcept { return resyncs_; }
  /// ResyncChunk payloads submitted on this channel.
  std::uint64_t resync_chunks() const noexcept { return resync_chunks_; }
  /// Modeled bytes of every chunk transmission attempt (retransmits re-pay).
  std::uint64_t resync_bytes() const noexcept { return resync_bytes_; }
  const Config& config() const noexcept { return config_; }

 private:
  struct Outstanding {
    Payload payload;
    int retries = 0;
    sim::Time timeout = 0;
    sim::EventHandle retry_event;
  };

  void transmit(std::uint64_t seq);
  void arm_retry(std::uint64_t seq);
  void on_retry_timeout(std::uint64_t seq);
  void on_message_arrival(std::uint64_t seq, std::uint64_t epoch);
  void ack(std::uint64_t seq);
  void drain_in_order();
  void wipe_window();

  /// The causal-trace id riding in `payload` (0 for VipConfig / untraced).
  static std::uint64_t payload_update_id(const Payload& payload) noexcept;
  void span_event(std::uint64_t id, obs::SpanEventKind kind,
                  std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  sim::Simulator& sim_;
  Config config_;
  DeliverFn deliver_;
  ResyncFn resync_;
  LossHook loss_hook_;
  SessionHook session_hook_;
  sim::Rng rng_;

  obs::SpanCollector* spans_ = nullptr;
  std::uint32_t span_switch_ = 0;
  /// Traced updates the window wipes abandoned; the next resync escalation
  /// subsumes them (only populated while spans_ is bound).
  std::vector<std::uint64_t> pending_subsume_;
  std::uint64_t active_resync_id_ = 0;
  std::size_t inflight_ = 0;

  // Sender side.
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Outstanding> outstanding_;
  // Receiver side.
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Payload> reorder_buffer_;
  /// Bumped on offline / resync; in-flight arrivals from an older epoch are
  /// discarded (they were addressed to a state that no longer exists).
  std::uint64_t epoch_ = 0;

  bool offline_ = false;
  bool needs_resync_ = false;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t resync_chunks_ = 0;
  std::uint64_t resync_bytes_ = 0;
};

}  // namespace silkroad::fault
