// Wire types for incremental controller->switch state sync (DESIGN.md §16).
//
// The controller journals every desired-state mutation (VIP provisioning,
// DIP add/remove) under a monotone fleet log position. A lagging or restored
// replica reports its durable applied-through watermark and receives only the
// journal suffix past it, packed into ResyncChunk messages that ride the
// ordinary lossy ControlChannel — sequenced, delayed, dropped, retried —
// instead of the old magically-reliable bulk transfer. When the journal has
// been compacted past the watermark the session escalates to a full-state
// transfer (one VipConfig record per VIP), still chunked over the channel.
//
// The wire_size() helpers model the serialized footprint of each message so
// the silkroad_ctrl_resync_bytes_total counter (and bench/resync_cost) can
// compare delta-vs-full transfer cost without a real serializer.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/endpoint.h"
#include "workload/update_gen.h"

namespace silkroad::fault {

/// Full VIP (re)configuration carried over the channel: the controller's
/// desired member set, replayed at provisioning time or during a resync.
struct VipConfig {
  net::Endpoint vip;
  std::vector<net::Endpoint> dips;
};

/// One desired-state mutation as the controller journals it.
using JournalMutation = std::variant<workload::DipUpdate, VipConfig>;

/// A journal entry replayed to a lagging replica: the mutation plus its
/// monotone fleet log position (pos 0 = synthetic full-transfer record that
/// never lived in the journal).
struct JournalRecord {
  std::uint64_t pos = 0;
  JournalMutation mutation;
};

/// One leg of a chunked resync session. Chunks are ordinary channel payloads:
/// they carry sequence numbers, suffer loss/reordering, and are retransmitted
/// until acknowledged. `watermark_after` is the log position the receiver has
/// durably applied through once this chunk lands — the resume point a
/// mid-resync crash restarts from.
struct ResyncChunk {
  /// Span id of the resync session (ControlChannel::active_resync_id()).
  std::uint64_t resync_id = 0;
  /// Causal-trace id of this chunk's own span (0 = untraced).
  std::uint64_t span_id = 0;
  std::uint32_t chunk_index = 0;
  bool final_chunk = false;
  /// True when the journal was compacted past the receiver's watermark and
  /// this session is a full-state transfer instead of a delta.
  bool full = false;
  std::uint64_t watermark_after = 0;
  std::vector<JournalRecord> entries;
};

// --- Modeled serialized sizes ----------------------------------------------

/// v4 address (4) + port (2).
inline constexpr std::size_t kWireEndpointSize = 6;

inline std::size_t wire_size(const workload::DipUpdate&) noexcept {
  // vip + dip endpoints, action, cause.
  return 2 * kWireEndpointSize + 2;
}

inline std::size_t wire_size(const VipConfig& config) noexcept {
  // vip endpoint + member count (2) + members.
  return kWireEndpointSize + 2 + config.dips.size() * kWireEndpointSize;
}

inline std::size_t wire_size(const JournalRecord& record) noexcept {
  const std::size_t mutation_size =
      std::holds_alternative<VipConfig>(record.mutation)
          ? wire_size(std::get<VipConfig>(record.mutation))
          : wire_size(std::get<workload::DipUpdate>(record.mutation));
  return 8 /*pos*/ + mutation_size;
}

inline std::size_t wire_size(const ResyncChunk& chunk) noexcept {
  // session id + chunk index (4) + flags (1) + watermark + entry count (2).
  std::size_t total = 8 + 4 + 1 + 8 + 2;
  for (const auto& record : chunk.entries) total += wire_size(record);
  return total;
}

}  // namespace silkroad::fault
