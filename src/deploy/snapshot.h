// Checkpointed per-switch state snapshots (DESIGN.md §16).
//
// A switch's durable recovery anchor: the membership the controller has
// applied to it, plus the journal position that state is applied through.
// Checkpoints are taken on a mutation cadence and at every resync-chunk
// boundary, so a replica that crashes mid-resync restarts its next session
// from the last acknowledged chunk's watermark — not from zero.
//
// The store survives fail_switch() (it models durable storage on the switch
// management plane); restore_switch() replays the snapshot into the wiped
// switch before requesting the journal suffix past its watermark.
//
// Thread safety: none of its own — the fleet guards its store with the same
// mutex that guards the applied-state mirrors the snapshots capture.
#pragma once

#include <cstdint>
#include <vector>

#include "net/endpoint.h"

namespace silkroad::deploy {

/// One VIP's checkpointed member set (DIPs sorted for run-to-run and
/// platform determinism — srlint R10).
struct VipMembers {
  net::Endpoint vip;
  std::vector<net::Endpoint> dips;
};

struct SwitchSnapshot {
  /// Journal position this state is applied through.
  std::uint64_t watermark = 0;
  /// Per-VIP membership in provisioning order.
  std::vector<VipMembers> vips;

  bool empty() const noexcept { return watermark == 0 && vips.empty(); }
  /// Modeled serialized size (same wire model as fault/sync_wire.h).
  std::size_t wire_size() const noexcept;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(std::size_t switches) : snapshots_(switches) {}

  /// Replaces switch `index`'s durable snapshot.
  void checkpoint(std::size_t index, SwitchSnapshot snapshot);

  const SwitchSnapshot& at(std::size_t index) const {
    return snapshots_.at(index);
  }

  std::size_t size() const noexcept { return snapshots_.size(); }
  std::uint64_t checkpoints() const noexcept { return checkpoints_; }
  std::size_t total_wire_size() const noexcept;

 private:
  std::vector<SwitchSnapshot> snapshots_;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace silkroad::deploy
