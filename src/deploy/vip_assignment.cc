#include "deploy/vip_assignment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace silkroad::deploy {
namespace {

struct LayerLoad {
  std::vector<std::size_t> switch_ids;  // indices into topology.switches()
  double sram_used = 0;                 // per enabled switch (even split)
  double gbps_used = 0;
};

}  // namespace

Assignment assign_vips(const ClosTopology& topology,
                       const std::vector<VipDemand>& demands) {
  const auto& switches = topology.switches();
  Assignment result;
  result.vip_layer.assign(demands.size(), Layer::kToR);
  result.switch_sram_used.assign(switches.size(), 0.0);
  result.switch_gbps_used.assign(switches.size(), 0.0);

  // Build per-layer views (even ECMP split means per-switch load within a
  // layer is uniform, so we track one number per layer and expand at the
  // end).
  LayerLoad loads[3];
  for (std::size_t i = 0; i < switches.size(); ++i) {
    if (switches[i].enabled) {
      loads[static_cast<int>(switches[i].layer)].switch_ids.push_back(i);
    }
  }

  // Largest memory demand first (FFD).
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].sram_bytes() > demands[b].sram_bytes();
  });

  for (const std::size_t vi : order) {
    const VipDemand& demand = demands[vi];
    const double demand_sram = static_cast<double>(demand.sram_bytes());

    int best_layer = -1;
    double best_utilization = 0;
    for (const Layer layer : kAllLayers) {
      LayerLoad& load = loads[static_cast<int>(layer)];
      const std::size_t n = load.switch_ids.size();
      if (n == 0) continue;
      const SwitchNode& representative = switches[load.switch_ids.front()];
      const double per_switch_sram =
          load.sram_used + demand_sram / static_cast<double>(n);
      const double per_switch_gbps =
          load.gbps_used + demand.traffic_gbps / static_cast<double>(n);
      if (per_switch_sram >
              static_cast<double>(representative.sram_budget_bytes) ||
          per_switch_gbps > representative.capacity_gbps) {
        continue;  // would exceed a budget
      }
      const double utilization =
          per_switch_sram / static_cast<double>(representative.sram_budget_bytes);
      if (best_layer < 0 || utilization < best_utilization) {
        best_layer = static_cast<int>(layer);
        best_utilization = utilization;
      }
    }
    if (best_layer < 0) {
      ++result.unassigned;
      continue;
    }
    LayerLoad& chosen = loads[best_layer];
    const double n = static_cast<double>(chosen.switch_ids.size());
    chosen.sram_used += demand_sram / n;
    chosen.gbps_used += demand.traffic_gbps / n;
    result.vip_layer[vi] = static_cast<Layer>(best_layer);
  }

  for (const Layer layer : kAllLayers) {
    const LayerLoad& load = loads[static_cast<int>(layer)];
    for (const std::size_t sw : load.switch_ids) {
      result.switch_sram_used[sw] = load.sram_used;
      result.switch_gbps_used[sw] = load.gbps_used;
      const auto& node = topology.switches()[sw];
      result.max_sram_utilization = std::max(
          result.max_sram_utilization,
          load.sram_used / static_cast<double>(node.sram_budget_bytes));
      result.max_capacity_utilization =
          std::max(result.max_capacity_utilization,
                   load.gbps_used / node.capacity_gbps);
    }
  }
  return result;
}

std::uint64_t switch_failure_broken_conns(
    const ClosTopology& topology, const Assignment& assignment,
    const std::vector<VipDemand>& demands, int failed_switch,
    double stale_fraction) {
  const auto& switches = topology.switches();
  if (failed_switch < 0 ||
      static_cast<std::size_t>(failed_switch) >= switches.size()) {
    return 0;
  }
  const SwitchNode& failed = switches[static_cast<std::size_t>(failed_switch)];
  if (!failed.enabled) return 0;
  const std::size_t peers = topology.enabled_count(failed.layer);
  if (peers == 0) return 0;

  // Connections on the failed switch: each VIP assigned to its layer
  // contributes conns/peers. Survivors re-hash on another switch with the
  // *latest* VIPTable; only connections bound to old versions break (§7).
  double conns_on_switch = 0;
  for (std::size_t vi = 0; vi < demands.size(); ++vi) {
    if (assignment.vip_layer[vi] == failed.layer) {
      conns_on_switch += static_cast<double>(demands[vi].active_connections) /
                         static_cast<double>(peers);
    }
  }
  return static_cast<std::uint64_t>(std::llround(conns_on_switch * stale_fraction));
}

std::string format_assignment(const ClosTopology& topology,
                              const Assignment& assignment) {
  char buf[256];
  std::string out;
  double layer_sram[3] = {0, 0, 0};
  int layer_count[3] = {0, 0, 0};
  const auto& switches = topology.switches();
  for (std::size_t i = 0; i < switches.size(); ++i) {
    if (!switches[i].enabled) continue;
    const int l = static_cast<int>(switches[i].layer);
    layer_sram[l] = assignment.switch_sram_used[i];
    ++layer_count[l];
  }
  for (const Layer layer : kAllLayers) {
    const int l = static_cast<int>(layer);
    std::snprintf(buf, sizeof buf,
                  "%-5s: %3d switches, %8.2f MB SRAM per switch\n",
                  to_string(layer), layer_count[l], layer_sram[l] / 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "max SRAM utilization %.1f%%, max capacity utilization %.1f%%, "
                "unassigned VIPs %llu\n",
                100 * assignment.max_sram_utilization,
                100 * assignment.max_capacity_utilization,
                static_cast<unsigned long long>(assignment.unassigned));
  out += buf;
  return out;
}

}  // namespace silkroad::deploy
