#include "deploy/journal.h"

#include <utility>

#include "check/sr_check.h"

namespace silkroad::deploy {

MutationJournal::MutationJournal(std::size_t capacity) : capacity_(capacity) {
  SR_CHECK(capacity_ > 0);
}

std::uint64_t MutationJournal::append(fault::JournalMutation mutation) {
  const std::uint64_t pos = next_pos_++;
  fault::JournalRecord record;
  record.pos = pos;
  record.mutation = std::move(mutation);
  wire_size_ += wire_size(record);
  entries_.push_back(std::move(record));
  while (entries_.size() > capacity_) {
    wire_size_ -= wire_size(entries_.front());
    entries_.pop_front();
    ++compacted_;
  }
  return pos;
}

std::vector<fault::JournalRecord> MutationJournal::suffix_since(
    std::uint64_t watermark) const {
  std::vector<fault::JournalRecord> suffix;
  for (const auto& record : entries_) {
    if (record.pos > watermark) suffix.push_back(record);
  }
  return suffix;
}

}  // namespace silkroad::deploy
