#include "deploy/topology.h"

namespace silkroad::deploy {

ClosTopology::ClosTopology(int tors, int aggs, int cores,
                           std::size_t sram_budget_bytes,
                           double capacity_gbps) {
  int id = 0;
  const auto add_layer = [&](Layer layer, int count) {
    for (int i = 0; i < count; ++i) {
      switches_.push_back(
          SwitchNode{id++, layer, sram_budget_bytes, capacity_gbps, true});
    }
  };
  add_layer(Layer::kToR, tors);
  add_layer(Layer::kAgg, aggs);
  add_layer(Layer::kCore, cores);
}

std::vector<const SwitchNode*> ClosTopology::enabled_in(Layer layer) const {
  std::vector<const SwitchNode*> out;
  for (const auto& sw : switches_) {
    if (sw.layer == layer && sw.enabled) out.push_back(&sw);
  }
  return out;
}

std::size_t ClosTopology::enabled_count(Layer layer) const {
  return enabled_in(layer).size();
}

void ClosTopology::enable_only(Layer layer, int count) {
  int seen = 0;
  for (auto& sw : switches_) {
    if (sw.layer != layer) continue;
    sw.enabled = seen++ < count;
  }
}

}  // namespace silkroad::deploy
