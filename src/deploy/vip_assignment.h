// Adaptive VIP-to-layer assignment (paper §5.3).
//
// Bin-packing formulation: given the topology, the VIP list, and per-VIP
// traffic (volume + active connections), choose a layer per VIP minimizing
// the maximum SRAM utilization across switches while respecting each
// switch's forwarding-capacity and SRAM budgets. A VIP assigned to a layer
// ECMP-splits its load across that layer's enabled switches. Solved with a
// greedy first-fit-decreasing heuristic (largest memory demand first, pick
// the layer minimizing the resulting bottleneck), which is the standard
// practical approach for this NP-hard family.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/memory_model.h"
#include "deploy/topology.h"
#include "net/endpoint.h"

namespace silkroad::deploy {

/// Per-VIP demand: connection state and traffic volume.
struct VipDemand {
  net::Endpoint vip;
  std::uint64_t active_connections = 0;
  double traffic_gbps = 0;
  std::size_t dips = 100;
  bool ipv6 = false;

  /// SRAM bytes this VIP needs in total (ConnTable share + pool table).
  std::size_t sram_bytes() const {
    return core::conn_table_bytes(active_connections,
                                  core::digest_version_entry()) +
           core::dip_pool_table_bytes(dips, 4, ipv6);
  }
};

struct Assignment {
  std::vector<Layer> vip_layer;           // parallel to demands
  std::vector<double> switch_sram_used;   // bytes, parallel to topo switches
  std::vector<double> switch_gbps_used;   // parallel to topo switches
  double max_sram_utilization = 0;        // bottleneck, fraction of budget
  double max_capacity_utilization = 0;
  std::uint64_t unassigned = 0;           // VIPs no layer could host
};

/// Runs the FFD heuristic. Returns the assignment and utilization profile.
Assignment assign_vips(const ClosTopology& topology,
                       const std::vector<VipDemand>& demands);

/// Connections that lose PCC when `failed_switch` dies (paper §7): flows on
/// that switch using a non-latest pool version re-hash differently on the
/// ECMP-failover switch. `stale_fraction` is the fraction of a switch's
/// connections bound to old versions (workload-dependent input).
std::uint64_t switch_failure_broken_conns(
    const ClosTopology& topology, const Assignment& assignment,
    const std::vector<VipDemand>& demands, int failed_switch,
    double stale_fraction);

std::string format_assignment(const ClosTopology& topology,
                              const Assignment& assignment);

}  // namespace silkroad::deploy
