// Clos topology model for network-wide SilkRoad deployment (paper §5.3).
//
// Three switch layers (ToR / Aggregation / Core); each switch has an SRAM
// budget available for load balancing and a forwarding-capacity budget. A
// VIP is assigned to exactly one layer and its traffic/connections are split
// by ECMP across that layer's SilkRoad-enabled switches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace silkroad::deploy {

enum class Layer : std::uint8_t { kToR = 0, kAgg = 1, kCore = 2 };
inline constexpr Layer kAllLayers[] = {Layer::kToR, Layer::kAgg, Layer::kCore};

constexpr const char* to_string(Layer layer) noexcept {
  switch (layer) {
    case Layer::kToR: return "ToR";
    case Layer::kAgg: return "Agg";
    default: return "Core";
  }
}

struct SwitchNode {
  int id = 0;
  Layer layer = Layer::kToR;
  /// SRAM the operator budgets for load balancing on this switch (bytes).
  std::size_t sram_budget_bytes = 50u << 20;
  /// Forwarding capacity budget (Gbps) for VIP traffic.
  double capacity_gbps = 6400;
  /// SilkRoad enabled (incremental deployment, §5.3).
  bool enabled = true;
};

class ClosTopology {
 public:
  ClosTopology(int tors, int aggs, int cores,
               std::size_t sram_budget_bytes = 50u << 20,
               double capacity_gbps = 6400);

  std::vector<SwitchNode>& switches() noexcept { return switches_; }
  const std::vector<SwitchNode>& switches() const noexcept { return switches_; }

  /// SilkRoad-enabled switches in a layer.
  std::vector<const SwitchNode*> enabled_in(Layer layer) const;
  std::size_t enabled_count(Layer layer) const;

  /// Disables a fraction of each layer's switches (incremental deployment).
  void enable_only(Layer layer, int count);

 private:
  std::vector<SwitchNode> switches_;
};

}  // namespace silkroad::deploy
