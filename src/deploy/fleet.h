// A fleet of SilkRoad switches behind ECMP (paper §5.3, §7).
//
// Every switch announces every VIP; the upstream fabric ECMP-sprays flows
// across them by 5-tuple hash. All switches receive the same control-plane
// update stream, so their VIPTables converge to the same newest version —
// which is exactly why a switch failure is survivable: a failed switch's
// flows re-hash onto peers, and any flow that was on the *latest* pool
// version maps identically there. Only flows bound to older versions (or
// pinned in software fallback) lose consistency, the same blast radius as
// losing one SLB's ConnTable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/silkroad_switch.h"
#include "lb/load_balancer.h"

namespace silkroad::deploy {

class SilkRoadFleet : public lb::LoadBalancer {
 public:
  /// `replicas` identical switches sharing one configuration.
  SilkRoadFleet(sim::Simulator& simulator,
                const core::SilkRoadSwitch::Config& config,
                std::size_t replicas, std::uint64_t ecmp_seed = 0xFEE7ULL);

  std::string name() const override { return "silkroad-fleet"; }

  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;

  /// Updates fan out to every live switch (they all run the 3-step protocol
  /// independently; their DIPPoolTables stay content-identical).
  void request_update(const workload::DipUpdate& update) override;

  /// Routes the packet to the ECMP-selected live switch.
  lb::PacketResult process_packet(const net::Packet& packet) override;

  void set_mapping_risk_callback(MappingRiskCallback cb) override;
  bool vip_at_slb(const net::Endpoint&) const override { return false; }

  // --- Fleet operations -------------------------------------------------------

  /// Kills a switch: its connection state is gone; its flows re-hash onto
  /// the survivors from the next packet on.
  void fail_switch(std::size_t index);
  /// Brings a (fresh, empty) switch back.
  void restore_switch(std::size_t index);

  std::size_t size() const noexcept { return switches_.size(); }
  std::size_t live_count() const;
  const core::SilkRoadSwitch& switch_at(std::size_t index) const {
    return *switches_.at(index);
  }
  core::SilkRoadSwitch& switch_at(std::size_t index) {
    return *switches_.at(index);
  }

  /// Index of the live switch the fabric currently hashes `flow` to, or
  /// nullopt when the whole fleet is down.
  std::optional<std::size_t> route_of(const net::FiveTuple& flow) const;

  /// Fleet-wide telemetry: merges every member switch's registry snapshot
  /// (counters/histograms sum; gauges sum — fleet totals, e.g. installed
  /// connections across replicas), plus silkroad_fleet_switches /
  /// silkroad_fleet_switches_live gauges. Dead switches still contribute
  /// their final counter values until restore_switch() resets them.
  obs::Snapshot metrics_snapshot() const;

  /// The fleet-wide snapshot as a callable — plugs directly into
  /// obs::TimeSeriesRecorder so one recorder tracks the whole fleet.
  std::function<obs::Snapshot()> snapshot_source() const;

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<core::SilkRoadSwitch>> switches_;
  std::vector<bool> alive_;
  std::uint64_t ecmp_seed_;
  MappingRiskCallback risk_cb_;
};

}  // namespace silkroad::deploy
