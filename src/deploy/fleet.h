// A fleet of SilkRoad switches behind ECMP (paper §5.3, §7).
//
// Every switch announces every VIP; the upstream fabric ECMP-sprays flows
// across them by 5-tuple hash. The controller holds the desired membership
// (VIP -> live DIPs) and drives every switch over its own control channel
// (src/fault/control_channel.h): updates are sequenced, delayed, possibly
// dropped or reordered, retried with backoff, and escalated to a full-state
// resync when a replica falls too far behind or returns from a crash. The
// channels converge every live replica's DIPPoolTables to the same newest
// content — which is exactly why a switch failure is survivable: a failed
// switch's flows re-hash onto peers, and any flow that was on the *latest*
// pool version maps identically there. Only flows bound to older versions
// (or pinned in software fallback) lose consistency, the same blast radius
// as losing one SLB's ConnTable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/thread_annotations.h"
#include "core/silkroad_switch.h"
#include "fault/control_channel.h"
#include "lb/load_balancer.h"

namespace silkroad::deploy {

class SilkRoadFleet : public lb::LoadBalancer {
 public:
  /// `replicas` identical switches sharing one configuration. `channel`
  /// shapes every controller->switch session; the default (zero delay, no
  /// loss) behaves like the idealized synchronous fan-out apart from event
  /// ordering — deliveries still need the simulator to run.
  SilkRoadFleet(sim::Simulator& simulator,
                const core::SilkRoadSwitch::Config& config,
                std::size_t replicas, std::uint64_t ecmp_seed = 0xFEE7ULL,
                const fault::ControlChannel::Config& channel = {});

  std::string name() const override { return "silkroad-fleet"; }

  /// Provisioning: recorded in the controller's desired state and applied
  /// synchronously to every live switch (config precedes traffic). Dead
  /// switches receive it from the restore-time resync.
  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;

  /// Applies the update to the controller's desired membership and fans it
  /// out to every switch over its control channel (each replica then runs
  /// the 3-step protocol independently). Channels to dead switches mark
  /// themselves for resync instead.
  void request_update(const workload::DipUpdate& update) override;

  /// DIP failure fast path. `resilient_in_place` bypasses the channels (BFD
  /// state is switch-local, §7) and leaves the desired membership intact;
  /// otherwise this is a plain removal update through the channels.
  void handle_dip_failure(const net::Endpoint& vip, const net::Endpoint& dip,
                          bool resilient_in_place) override;

  /// Routes the packet to the ECMP-selected live switch.
  lb::PacketResult process_packet(const net::Packet& packet) override;

  void set_mapping_risk_callback(MappingRiskCallback cb) override;
  bool vip_at_slb(const net::Endpoint&) const override { return false; }

  /// Audits every live switch's structural invariants.
  void self_check() const override;

  // --- Fleet operations -------------------------------------------------------

  /// Kills a switch: its connection state is gone, its control channel goes
  /// offline (in-flight messages are lost), and its flows re-hash onto the
  /// survivors from the next packet on.
  void fail_switch(std::size_t index);

  /// Begins restoring a switch: its state is wiped (crash model), the
  /// channel comes back online, and the controller schedules a full-state
  /// resync that replays the VIP config and newest membership. The switch
  /// rejoins ECMP only when the resync lands (run the simulator).
  void restore_switch(std::size_t index);

  /// True when every live switch serves every VIP with exactly the
  /// controller's desired live-member set and no channel work is pending.
  bool converged() const;

  std::size_t size() const noexcept { return switches_.size(); }
  std::size_t live_count() const;
  const core::SilkRoadSwitch& switch_at(std::size_t index) const {
    return *switches_.at(index);
  }
  core::SilkRoadSwitch& switch_at(std::size_t index) {
    return *switches_.at(index);
  }
  const fault::ControlChannel& channel_at(std::size_t index) const {
    return *channels_.at(index);
  }

  /// Notification on ECMP membership changes (fail/restore), invoked with
  /// (switch index, now-alive). The chaos harness uses it to mark flows
  /// whose route just moved.
  using MembershipCallback = std::function<void(std::size_t index, bool alive)>;
  void set_membership_callback(MembershipCallback cb) {
    membership_cb_ = std::move(cb);
  }

  /// Fault-injection: forced-loss hook for switch `index`'s channel.
  void set_channel_loss_hook(std::size_t index,
                             fault::ControlChannel::LossHook hook) {
    channels_.at(index)->set_loss_hook(std::move(hook));
  }

  std::uint64_t ctrl_retries() const;
  std::uint64_t ctrl_resyncs() const;
  std::size_t ctrl_outstanding() const;

  /// The fleet's causal-trace collector: every request_update intent mints a
  /// span here, and the channels/switches record their legs on it. The span
  /// tree is exported over /spans + /update/<id> and consumed by
  /// obs::assemble_forensics.
  obs::SpanCollector& spans() noexcept { return spans_; }
  const obs::SpanCollector& spans() const noexcept { return spans_; }

  /// Index of the live switch the fabric currently hashes `flow` to, or
  /// nullopt when the whole fleet is down.
  std::optional<std::size_t> route_of(const net::FiveTuple& flow) const;

  /// Fleet-wide telemetry: merges every member switch's registry snapshot
  /// (counters/histograms sum; gauges sum — fleet totals, e.g. installed
  /// connections across replicas), the per-channel silkroad_ctrl_* series,
  /// plus silkroad_fleet_switches / silkroad_fleet_switches_live gauges.
  /// Dead switches still contribute their final counter values until
  /// restore_switch() resets them.
  obs::Snapshot metrics_snapshot() const;

  /// The fleet-wide snapshot as a callable — plugs directly into
  /// obs::TimeSeriesRecorder so one recorder tracks the whole fleet.
  std::function<obs::Snapshot()> snapshot_source() const;

 private:
  using DipSet = std::unordered_set<net::Endpoint, net::EndpointHash>;

  /// In-order application of one channel message at switch `index`. Guarded
  /// by the per-switch applied-state mirror so resync-vs-in-flight overlap
  /// cannot double-apply an update.
  void deliver_to(std::size_t index, const fault::ControlChannel::Payload& p);
  /// Full-state resync of switch `index`: replays missing VIP configs and
  /// diffs the switch's applied membership against the desired membership.
  void apply_resync(std::size_t index);

  sim::Simulator& sim_;
  /// Declared before the switches/channels that hold raw pointers into it,
  /// so it outlives them during destruction.
  obs::SpanCollector spans_;
  std::vector<std::unique_ptr<core::SilkRoadSwitch>> switches_;
  std::vector<std::unique_ptr<fault::ControlChannel>> channels_;
  std::vector<bool> alive_;
  /// Mid-restore: channel online, resync in flight, not yet in ECMP.
  std::vector<bool> restoring_;
  std::uint64_t ecmp_seed_;

  /// Guards the controller's desired-state bookkeeping below — the maps a
  /// multi-threaded control plane shares between the operator-facing API
  /// (add_vip/request_update) and the channel delivery/resync callbacks.
  /// Locking discipline: mutate under mu_, release, THEN call out (channel
  /// sends, switch updates, span records) — those paths re-enter the fleet.
  /// alive_/restoring_ and the switch/channel vectors stay simulation-thread
  /// -only (packet path) and are deliberately not guarded here.
  mutable sr::Mutex mu_;
  /// Controller desired state: VIP -> live members, in provisioning order.
  std::unordered_map<net::Endpoint, std::vector<net::Endpoint>,
                     net::EndpointHash>
      membership_ SR_GUARDED_BY(mu_);
  std::vector<net::Endpoint> vip_order_ SR_GUARDED_BY(mu_);
  /// Per-switch mirror of what this controller has asked it to apply.
  std::vector<std::unordered_map<net::Endpoint, DipSet, net::EndpointHash>>
      applied_ SR_GUARDED_BY(mu_);

  /// Channel counters live here (the switches' registries are their own).
  obs::MetricsRegistry fleet_metrics_;
  MappingRiskCallback risk_cb_;
  MembershipCallback membership_cb_;
};

}  // namespace silkroad::deploy
