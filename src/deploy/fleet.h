// A fleet of SilkRoad switches behind ECMP (paper §5.3, §7).
//
// Every switch announces every VIP; the upstream fabric ECMP-sprays flows
// across them by 5-tuple hash. The controller holds the desired membership
// (VIP -> live DIPs) and drives every switch over its own control channel
// (src/fault/control_channel.h): updates are sequenced, delayed, possibly
// dropped or reordered, retried with backoff, and escalated to a full-state
// resync when a replica falls too far behind or returns from a crash. The
// channels converge every live replica's DIPPoolTables to the same newest
// content — which is exactly why a switch failure is survivable: a failed
// switch's flows re-hash onto peers, and any flow that was on the *latest*
// pool version maps identically there. Only flows bound to older versions
// (or pinned in software fallback) lose consistency, the same blast radius
// as losing one SLB's ConnTable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/thread_annotations.h"
#include "core/silkroad_switch.h"
#include "deploy/journal.h"
#include "deploy/snapshot.h"
#include "fault/control_channel.h"
#include "lb/load_balancer.h"
#include "obs/convergence.h"
#include "obs/forensics.h"

namespace silkroad::deploy {

/// Incremental state-sync knobs (DESIGN.md §16). Namespace-scope so the
/// constructor's defaulted parameter can use it before SilkRoadFleet is
/// complete.
struct SyncConfig {
  /// Journal entries retained before compaction — the compaction horizon.
  /// A replica whose watermark lags further than this can only be served
  /// a full-state transfer.
  std::size_t journal_capacity = 1024;
  /// Journal records packed per ResyncChunk.
  std::size_t chunk_entries = 16;
  /// Checkpoint a switch's snapshot every N applied mutations (resync
  /// chunk boundaries always checkpoint in addition).
  std::size_t checkpoint_every = 8;
  /// Feed the convergence observatory (DESIGN.md §17): watermark-lag SLO,
  /// digest divergence detection, /fleet scrape data.
  bool observe_convergence = true;
  /// Observer tuning (lag hysteresis, SLO target, digest history).
  obs::FleetObserver::Options observer;
};

class SilkRoadFleet : public lb::LoadBalancer {
 public:
  using SyncConfig = deploy::SyncConfig;

  /// `replicas` identical switches sharing one configuration. `channel`
  /// shapes every controller->switch session; the default (zero delay, no
  /// loss) behaves like the idealized synchronous fan-out apart from event
  /// ordering — deliveries still need the simulator to run.
  SilkRoadFleet(sim::Simulator& simulator,
                const core::SilkRoadSwitch::Config& config,
                std::size_t replicas, std::uint64_t ecmp_seed = 0xFEE7ULL,
                const fault::ControlChannel::Config& channel = {},
                const SyncConfig& sync = SyncConfig());

  std::string name() const override { return "silkroad-fleet"; }

  /// Provisioning: recorded in the controller's desired state and applied
  /// synchronously to every live switch (config precedes traffic). Dead
  /// switches receive it from the restore-time resync.
  void add_vip(const net::Endpoint& vip,
               const std::vector<net::Endpoint>& dips) override;

  /// Applies the update to the controller's desired membership and fans it
  /// out to every switch over its control channel (each replica then runs
  /// the 3-step protocol independently). Channels to dead switches mark
  /// themselves for resync instead.
  void request_update(const workload::DipUpdate& update) override;

  /// DIP failure fast path. `resilient_in_place` bypasses the channels (BFD
  /// state is switch-local, §7) and leaves the desired membership intact;
  /// otherwise this is a plain removal update through the channels.
  void handle_dip_failure(const net::Endpoint& vip, const net::Endpoint& dip,
                          bool resilient_in_place) override;

  /// Routes the packet to the ECMP-selected live switch.
  lb::PacketResult process_packet(const net::Packet& packet) override;

  void set_mapping_risk_callback(MappingRiskCallback cb) override;
  bool vip_at_slb(const net::Endpoint&) const override { return false; }

  /// Audits every live switch's structural invariants.
  void self_check() const override;

  // --- Fleet operations -------------------------------------------------------

  /// Kills a switch: its connection state is gone, its control channel goes
  /// offline (in-flight messages are lost), and its flows re-hash onto the
  /// survivors from the next packet on.
  void fail_switch(std::size_t index);

  /// Begins restoring a switch: its in-memory state is wiped (crash model),
  /// the durable checkpoint snapshot is replayed into it, the channel comes
  /// back online, and the controller opens a resync session that sends only
  /// the journal suffix past the snapshot's watermark as sequenced chunks
  /// (escalating to a chunked full-state transfer when the journal has been
  /// compacted past it). The switch rejoins ECMP only when the session's
  /// final chunk lands (run the simulator). A crash mid-session restarts the
  /// next session from the last chunk-boundary checkpoint, not from zero.
  void restore_switch(std::size_t index);

  /// True when every live switch serves every VIP with exactly the
  /// controller's desired live-member set and no channel work is pending.
  bool converged() const;

  std::size_t size() const noexcept { return switches_.size(); }
  std::size_t live_count() const;
  const core::SilkRoadSwitch& switch_at(std::size_t index) const {
    return *switches_.at(index);
  }
  core::SilkRoadSwitch& switch_at(std::size_t index) {
    return *switches_.at(index);
  }
  const fault::ControlChannel& channel_at(std::size_t index) const {
    return *channels_.at(index);
  }

  /// Notification on ECMP membership changes (fail/restore), invoked with
  /// (switch index, now-alive). The chaos harness uses it to mark flows
  /// whose route just moved.
  using MembershipCallback = std::function<void(std::size_t index, bool alive)>;
  void set_membership_callback(MembershipCallback cb) {
    membership_cb_ = std::move(cb);
  }

  /// Fault-injection: forced-loss hook for switch `index`'s channel.
  void set_channel_loss_hook(std::size_t index,
                             fault::ControlChannel::LossHook hook) {
    channels_.at(index)->set_loss_hook(std::move(hook));
  }

  std::uint64_t ctrl_retries() const;
  std::uint64_t ctrl_resyncs() const;
  std::size_t ctrl_outstanding() const;
  /// Sums of the per-channel chunk traffic counters.
  std::uint64_t ctrl_resync_chunks() const;
  std::uint64_t ctrl_resync_bytes() const;

  // --- Incremental-sync introspection (DESIGN.md §16) -----------------------

  const SyncConfig& sync_config() const noexcept { return sync_; }
  /// Journal position switch `index` has durably applied through.
  std::uint64_t applied_through(std::size_t index) const;
  /// Copy of switch `index`'s durable checkpoint snapshot.
  SwitchSnapshot snapshot_of(std::size_t index) const;
  std::uint64_t journal_head() const;
  std::uint64_t journal_compacted() const;
  std::uint64_t snapshot_checkpoints() const;
  /// Resync sessions begun, by escalation rung.
  std::uint64_t delta_sessions() const noexcept { return delta_sessions_; }
  std::uint64_t full_sessions() const noexcept { return full_sessions_; }
  std::uint64_t empty_sessions() const noexcept { return empty_sessions_; }

  /// The fleet's causal-trace collector: every request_update intent mints a
  /// span here, and the channels/switches record their legs on it. The span
  /// tree is exported over /spans + /update/<id> and consumed by
  /// obs::assemble_forensics.
  obs::SpanCollector& spans() noexcept { return spans_; }
  const obs::SpanCollector& spans() const noexcept { return spans_; }

  /// Index of the live switch the fabric currently hashes `flow` to, or
  /// nullopt when the whole fleet is down.
  std::optional<std::size_t> route_of(const net::FiveTuple& flow) const;

  /// Fleet-wide telemetry: merges every member switch's registry snapshot
  /// (counters/histograms sum; gauges sum — fleet totals, e.g. installed
  /// connections across replicas), the per-channel silkroad_ctrl_* series,
  /// plus silkroad_fleet_switches / silkroad_fleet_switches_live gauges.
  /// Dead switches still contribute their final counter values until
  /// restore_switch() resets them.
  obs::Snapshot metrics_snapshot() const;

  /// The fleet-wide snapshot as a callable — plugs directly into
  /// obs::TimeSeriesRecorder so one recorder tracks the whole fleet.
  std::function<obs::Snapshot()> snapshot_source() const;

  // --- Convergence observatory (DESIGN.md §17) --------------------------------

  /// The fleet's convergence observer, or nullptr when
  /// SyncConfig::observe_convergence is off. Fed on every journal append,
  /// in-order delivery, and resync-session transition; renders /fleet.
  obs::FleetObserver* observer() noexcept { return observer_.get(); }
  const obs::FleetObserver* observer() const noexcept {
    return observer_.get();
  }

  /// ForensicsReports assembled by the observer's divergence callback —
  /// one per silent-divergence episode, with per-VIP attribution attached.
  const std::vector<obs::ForensicsReport>& divergence_reports() const {
    return divergence_reports_;
  }

  /// Test hook: mutates switch `index`'s applied mirror out of band,
  /// modeling a buggy apply path. The mutation is fed to the observer the
  /// same way a real (buggy) apply would be — which is exactly what lets
  /// the digest comparison catch it as silent divergence.
  void inject_mirror_corruption(std::size_t index, const net::Endpoint& vip,
                                const net::Endpoint& dip, bool add);

 private:
  using DipSet = std::unordered_set<net::Endpoint, net::EndpointHash>;

  /// In-order application of one channel message at switch `index`. Guarded
  /// by the per-switch applied-state mirror so resync-vs-in-flight overlap
  /// cannot double-apply an update.
  void deliver_to(std::size_t index, const fault::ControlChannel::Payload& p);
  /// ResyncFn target: computes switch `index`'s catch-up (journal delta,
  /// full state after compaction, or an empty confirmation) and sends it as
  /// sequenced ResyncChunk payloads through the switch's channel.
  void begin_resync_session(std::size_t index);
  /// Applies one delivered chunk: replays its journal records, advances the
  /// watermark, checkpoints the snapshot, and on the final chunk flips a
  /// restoring switch back into ECMP.
  void apply_chunk(std::size_t index, const fault::ResyncChunk& chunk);
  /// Applies a (re)configuration record: provisions an unknown VIP, or
  /// diffs the applied mirror against the config and issues the delta as
  /// 3-step updates parented under span `parent_id`.
  void apply_vip_config(std::size_t index, const fault::VipConfig& config,
                        std::uint64_t parent_id);
  /// Replays one journaled DIP update (content-deduped against the mirror)
  /// as a fresh child update parented under span `parent_id`.
  void apply_journaled_update(std::size_t index,
                              const workload::DipUpdate& update,
                              std::uint64_t parent_id);
  /// Counts one applied mutation toward the checkpoint cadence.
  void note_applied_locked(std::size_t index) SR_REQUIRES(mu_);
  /// Captures switch `index`'s mirror + watermark into the snapshot store.
  void checkpoint_switch_locked(std::size_t index) SR_REQUIRES(mu_);

  sim::Simulator& sim_;
  /// Declared before the switches/channels that hold raw pointers into it,
  /// so it outlives them during destruction.
  obs::SpanCollector spans_;
  std::vector<std::unique_ptr<core::SilkRoadSwitch>> switches_;
  std::vector<std::unique_ptr<fault::ControlChannel>> channels_;
  std::vector<bool> alive_;
  /// Mid-restore: channel online, resync in flight, not yet in ECMP.
  std::vector<bool> restoring_;
  std::uint64_t ecmp_seed_;

  /// Guards the controller's desired-state bookkeeping below — the maps a
  /// multi-threaded control plane shares between the operator-facing API
  /// (add_vip/request_update) and the channel delivery/resync callbacks.
  /// Locking discipline: mutate under mu_, release, THEN call out (channel
  /// sends, switch updates, span records) — those paths re-enter the fleet.
  /// alive_/restoring_ and the switch/channel vectors stay simulation-thread
  /// -only (packet path) and are deliberately not guarded here.
  mutable sr::Mutex mu_;
  /// Controller desired state: VIP -> live members, in provisioning order.
  std::unordered_map<net::Endpoint, std::vector<net::Endpoint>,
                     net::EndpointHash>
      membership_ SR_GUARDED_BY(mu_);
  std::vector<net::Endpoint> vip_order_ SR_GUARDED_BY(mu_);
  /// Per-switch mirror of what this controller has asked it to apply.
  std::vector<std::unordered_map<net::Endpoint, DipSet, net::EndpointHash>>
      applied_ SR_GUARDED_BY(mu_);
  /// Versioned desired-state mutation journal (DESIGN.md §16).
  MutationJournal journal_ SR_GUARDED_BY(mu_);
  /// Durable per-switch checkpoints; deliberately NOT cleared by
  /// fail_switch() — they model storage that survives the crash.
  SnapshotStore snapshots_ SR_GUARDED_BY(mu_);
  /// Journal position each switch has applied through (advanced by in-order
  /// delivery and by chunk boundaries; synchronous provisioning is replayed
  /// idempotently instead of advancing it).
  std::vector<std::uint64_t> applied_through_ SR_GUARDED_BY(mu_);
  /// Mutations applied since the last checkpoint (cadence counter).
  std::vector<std::size_t> since_checkpoint_ SR_GUARDED_BY(mu_);

  SyncConfig sync_;
  /// Session start times / escalation-rung counters (simulation-thread-only,
  /// like the channel counters).
  std::vector<sim::Time> resync_started_;
  std::uint64_t delta_sessions_ = 0;
  std::uint64_t full_sessions_ = 0;
  std::uint64_t empty_sessions_ = 0;

  /// Channel counters live here (the switches' registries are their own).
  obs::MetricsRegistry fleet_metrics_;
  obs::Histogram* h_resync_duration_ = nullptr;
  MappingRiskCallback risk_cb_;
  MembershipCallback membership_cb_;
  /// Convergence observatory (simulation-thread fed, own internal mutex;
  /// always called outside mu_, after the guarded mutation it mirrors).
  std::unique_ptr<obs::FleetObserver> observer_;
  /// One report per detected silent-divergence episode (sim-thread-only).
  std::vector<obs::ForensicsReport> divergence_reports_;
};

}  // namespace silkroad::deploy
