#include "deploy/snapshot.h"

#include <utility>

#include "fault/sync_wire.h"

namespace silkroad::deploy {

std::size_t SwitchSnapshot::wire_size() const noexcept {
  std::size_t total = 8;  // watermark
  for (const auto& entry : vips) {
    total += fault::kWireEndpointSize + 2 +
             entry.dips.size() * fault::kWireEndpointSize;
  }
  return total;
}

void SnapshotStore::checkpoint(std::size_t index, SwitchSnapshot snapshot) {
  snapshots_.at(index) = std::move(snapshot);
  ++checkpoints_;
}

std::size_t SnapshotStore::total_wire_size() const noexcept {
  std::size_t total = 0;
  for (const auto& snapshot : snapshots_) total += snapshot.wire_size();
  return total;
}

}  // namespace silkroad::deploy
