#include "deploy/fleet.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "check/sr_check.h"
#include "net/hash.h"

namespace silkroad::deploy {

SilkRoadFleet::SilkRoadFleet(sim::Simulator& simulator,
                             const core::SilkRoadSwitch::Config& config,
                             std::size_t replicas, std::uint64_t ecmp_seed,
                             const fault::ControlChannel::Config& channel,
                             const SyncConfig& sync)
    : sim_(simulator),
      alive_(replicas, true),
      restoring_(replicas, false),
      ecmp_seed_(ecmp_seed),
      applied_(replicas),
      journal_(sync.journal_capacity),
      snapshots_(replicas),
      applied_through_(replicas, 0),
      since_checkpoint_(replicas, 0),
      sync_(sync),
      resync_started_(replicas, 0) {
  SR_CHECK(replicas > 0);
  SR_CHECK(sync_.chunk_entries > 0);
  SR_CHECK(sync_.checkpoint_every > 0);
  switches_.reserve(replicas);
  channels_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    switches_.push_back(
        std::make_unique<core::SilkRoadSwitch>(simulator, config));
    fault::ControlChannel::Config per_switch = channel;
    // srlint: allow(R14) channel-seed derivation, not a membership digest.
    per_switch.seed = channel.seed ^ net::mix64(ecmp_seed + i + 1);
    channels_.push_back(std::make_unique<fault::ControlChannel>(
        simulator, per_switch,
        [this, i](const fault::ControlChannel::Payload& p) {
          deliver_to(i, p);
        },
        [this, i] {
          // srlint: allow(R13) the channel's ResyncFn binding is the one
          // sanctioned entry into the session opener.
          begin_resync_session(i);
        }));
    channels_.back()->bind_metrics(fleet_metrics_,
                                   "switch=\"" + std::to_string(i) + "\"");
    const auto leg = static_cast<std::uint32_t>(i);
    channels_.back()->bind_spans(&spans_, leg);
    switches_.back()->bind_spans(&spans_, leg);
    // Resync-session open notification (window-wipe edge): the observer
    // suspends digest checks for the session before any chunk is computed.
    channels_.back()->set_session_hook(
        [this, i](std::uint64_t session, sim::Time now) {
          if (observer_ != nullptr) observer_->on_session_open(i, session, now);
        });
  }
  if (sync_.observe_convergence) {
    observer_ =
        std::make_unique<obs::FleetObserver>(replicas, sync_.observer);
    observer_->bind_metrics(fleet_metrics_);
    observer_->set_divergence_callback(
        [this](const obs::DivergenceFinding& finding) {
          // Assemble the incident report while the trace ring still holds
          // the window: the diverged switch's events interleaved with every
          // overlapping update/resync span, plus per-VIP attribution.
          obs::ForensicsReport report = obs::assemble_forensics(
              switches_[finding.switch_index]->trace(), &spans_, 0,
              "silent divergence: switch " +
                  std::to_string(finding.switch_index) +
                  " digest mismatch at watermark " +
                  std::to_string(finding.position));
          report.attach_divergence(finding.to_text(), finding.to_json());
          divergence_reports_.push_back(std::move(report));
        });
  }
  spans_.bind_metrics(fleet_metrics_);
  // Sync-subsystem telemetry. The journal/snapshot stores are guarded fleet
  // state, so they export as pull callbacks that take mu_ at snapshot time
  // (metrics_snapshot() never holds it); the session-rung counters are
  // simulation-thread plain members, same convention as the channels'.
  fleet_metrics_.register_callback(
      "silkroad_ctrl_journal_entries", obs::MetricKind::kGauge,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(journal_.size());
      },
      "desired-state journal entries retained (compaction horizon window)");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_journal_head", obs::MetricKind::kGauge,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(journal_.head_pos());
      },
      "newest journal log position");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_journal_appended_total", obs::MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(journal_.appended());
      },
      "desired-state mutations journaled");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_journal_compactions_total", obs::MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(journal_.compacted());
      },
      "journal entries dropped by compaction");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_snapshot_checkpoints_total", obs::MetricKind::kCounter,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(snapshots_.checkpoints());
      },
      "switch snapshot checkpoints taken");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_snapshot_bytes", obs::MetricKind::kGauge,
      [this] {
        const sr::MutexLock lock(mu_);
        return static_cast<double>(snapshots_.total_wire_size());
      },
      "modeled serialized size of every durable switch snapshot");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_resync_sessions_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(delta_sessions_); },
      "resync sessions begun, by escalation rung", "kind=\"delta\"");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_resync_sessions_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(full_sessions_); },
      "resync sessions begun, by escalation rung", "kind=\"full\"");
  fleet_metrics_.register_callback(
      "silkroad_ctrl_resync_sessions_total", obs::MetricKind::kCounter,
      [this] { return static_cast<double>(empty_sessions_); },
      "resync sessions begun, by escalation rung", "kind=\"empty\"");
  h_resync_duration_ = fleet_metrics_.histogram(
      "silkroad_ctrl_resync_duration_ns",
      "resync session duration, session open to final chunk applied");
}

void SilkRoadFleet::add_vip(const net::Endpoint& vip,
                            const std::vector<net::Endpoint>& dips) {
  std::uint64_t pos = 0;
  {
    const sr::MutexLock lock(mu_);
    if (!membership_.contains(vip)) vip_order_.push_back(vip);
    membership_[vip] = dips;
    pos = journal_.append(fault::VipConfig{vip, dips});
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      if (!alive_[i]) continue;
      applied_[i][vip] = DipSet(dips.begin(), dips.end());
      // The synchronous config does not advance the watermark — a delta
      // session replays the VipConfig record and the diff no-ops — so the
      // cadence checkpoint below is what makes it durable.
      note_applied_locked(i);
    }
  }
  if (observer_ != nullptr) {
    observer_->on_append_config(pos, sim_.now(), vip, dips);
    // The synchronous application lands at an out-of-band journal position:
    // the observer extends each switch's effective watermark through it.
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      if (alive_[i]) observer_->on_mirror_config(i, vip, dips, pos, sim_.now());
    }
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->add_vip(vip, dips);
  }
}

void SilkRoadFleet::request_update(const workload::DipUpdate& update) {
  std::uint64_t pos = 0;
  {
    const sr::MutexLock lock(mu_);
    auto& members = membership_[update.vip];
    if (update.action == workload::UpdateAction::kAddDip) {
      if (std::find(members.begin(), members.end(), update.dip) ==
          members.end()) {
        members.push_back(update.dip);
      }
    } else {
      members.erase(std::remove(members.begin(), members.end(), update.dip),
                    members.end());
    }
    // Journal the intent under its fleet log position; the journaled copy is
    // untraced (span ids are per-send, the journal is per-mutation).
    workload::DipUpdate journaled = update;
    journaled.update_id = 0;
    journaled.log_pos = 0;
    pos = journal_.append(std::move(journaled));
  }
  if (observer_ != nullptr) {
    observer_->on_append_update(
        pos, sim_.now(), update.vip, update.dip,
        update.action == workload::UpdateAction::kAddDip);
  }
  // Mint the intent span; the stamped id rides in every channel copy and
  // survives retransmits, duplicates, and resync escalation. Sends happen
  // outside mu_ — a zero-delay channel can deliver synchronously, and
  // deliver_to() takes the lock again.
  workload::DipUpdate traced = update;
  traced.log_pos = pos;
  spans_.begin_update(traced, sim_.now());
  for (const auto& channel : channels_) channel->send(traced);
}

void SilkRoadFleet::handle_dip_failure(const net::Endpoint& vip,
                                       const net::Endpoint& dip,
                                       bool resilient_in_place) {
  if (!resilient_in_place) {
    workload::DipUpdate update;
    update.at = sim_.now();
    update.vip = vip;
    update.dip = dip;
    update.action = workload::UpdateAction::kRemoveDip;
    update.cause = workload::UpdateCause::kFailure;
    request_update(update);
    return;
  }
  // §7 in-place path: BFD state is switch-local, so the mark-down bypasses
  // the control channels. Desired membership is untouched — a restored
  // replica will see the DIP live until its own health checking catches up.
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->handle_dip_failure(vip, dip, true);
  }
}

void SilkRoadFleet::deliver_to(std::size_t index,
                               const fault::ControlChannel::Payload& payload) {
  if (const auto* chunk = std::get_if<fault::ResyncChunk>(&payload)) {
    apply_chunk(index, *chunk);
    return;
  }
  if (const auto* config = std::get_if<fault::VipConfig>(&payload)) {
    apply_vip_config(index, *config, 0);
    return;
  }
  const auto& update = std::get<workload::DipUpdate>(payload);
  const auto leg = static_cast<std::uint32_t>(index);
  if (switches_[index]->version_manager(update.vip) == nullptr) {
    // The replica is not provisioned with this VIP yet (its resync is still
    // in flight); the resync chunks will carry the membership over. The
    // watermark deliberately does not advance — the mutation was not applied.
    spans_.record(update.update_id, obs::SpanEventKind::kSkipped, leg,
                  sim_.now(), 0, 0);
    return;
  }
  bool duplicate = false;
  {
    const sr::MutexLock lock(mu_);
    auto& dips = applied_[index][update.vip];
    if (update.action == workload::UpdateAction::kAddDip) {
      // Duplicate delivery (lost ack / retransmit race): already applied.
      duplicate = !dips.insert(update.dip).second;
    } else {
      duplicate = dips.erase(update.dip) == 0;
    }
    // In-order delivery applied (or confirmed as already-applied) this log
    // position: the replica is caught up through it.
    if (update.log_pos != 0) {
      applied_through_[index] =
          std::max(applied_through_[index], update.log_pos);
    }
    if (!duplicate) note_applied_locked(index);
  }
  if (observer_ != nullptr) {
    // Mirror mutation and watermark advance as one fused feed: the digest
    // check at the new position sees the state that position produced.
    if (!duplicate && update.log_pos != 0) {
      observer_->on_delivery(index, update.vip, update.dip,
                             update.action == workload::UpdateAction::kAddDip,
                             update.log_pos, sim_.now());
    } else if (!duplicate) {
      observer_->on_mirror_update(
          index, update.vip, update.dip,
          update.action == workload::UpdateAction::kAddDip, update.log_pos,
          sim_.now());
    } else if (update.log_pos != 0) {
      // Content-deduped duplicate: still confirms the position.
      observer_->on_watermark(index, update.log_pos, sim_.now());
    }
  }
  if (duplicate) {
    spans_.record(update.update_id, obs::SpanEventKind::kSkipped, leg,
                  sim_.now(), 0, 1);
    return;
  }
  switches_[index]->request_update(update);
}

void SilkRoadFleet::begin_resync_session(std::size_t index) {
  // Compute the catch-up under mu_, send it after release: the chunks travel
  // the ordinary lossy channel, and a zero-delay channel delivers
  // synchronously back into apply_chunk which takes the lock again.
  std::vector<fault::JournalRecord> records;
  bool full = false;
  std::uint64_t watermark = 0;
  std::uint64_t head = 0;
  {
    const sr::MutexLock lock(mu_);
    watermark = applied_through_[index];
    head = journal_.head_pos();
    if (journal_.covers(watermark)) {
      records = journal_.suffix_since(watermark);
    } else {
      // Compacted past the watermark: escalate to a full-state transfer —
      // one synthetic config record per VIP, still chunked and lossy.
      full = true;
      records.reserve(vip_order_.size());
      for (const auto& vip : vip_order_) {
        fault::JournalRecord record;
        record.mutation = fault::VipConfig{vip, membership_.at(vip)};
        records.push_back(std::move(record));
      }
    }
  }
  if (full) {
    ++full_sessions_;
  } else if (records.empty()) {
    ++empty_sessions_;
  } else {
    ++delta_sessions_;
  }
  resync_started_[index] = sim_.now();
  const std::uint64_t session = channels_[index]->active_resync_id();
  if (observer_ != nullptr) {
    const auto kind = full ? obs::FleetObserver::ResyncKind::kFull
                     : records.empty()
                         ? obs::FleetObserver::ResyncKind::kEmpty
                         : obs::FleetObserver::ResyncKind::kDelta;
    observer_->on_resync_begin(index, session, kind, sim_.now());
  }
  const auto leg = static_cast<std::uint32_t>(index);
  // An empty delta still sends one (empty, final) chunk: the switch rejoins
  // ECMP only once a chunk confirms the round trip, and the chunk's
  // watermark re-anchors the checkpoint.
  const std::size_t chunk_count =
      records.empty()
          ? 1
          : (records.size() + sync_.chunk_entries - 1) / sync_.chunk_entries;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    fault::ResyncChunk chunk;
    chunk.resync_id = session;
    chunk.chunk_index = static_cast<std::uint32_t>(c);
    chunk.final_chunk = c + 1 == chunk_count;
    chunk.full = full;
    const std::size_t begin = c * sync_.chunk_entries;
    const std::size_t end =
        std::min(records.size(), begin + sync_.chunk_entries);
    chunk.entries.assign(std::make_move_iterator(records.begin() + begin),
                         std::make_move_iterator(records.begin() + end));
    if (full) {
      // Synthetic records carry no positions; only the final chunk of a
      // complete full transfer certifies the head position.
      chunk.watermark_after = chunk.final_chunk ? head : watermark;
    } else {
      // Chunks deliver in order, so applying this one means every position
      // it (and its predecessors) carried has been applied.
      chunk.watermark_after = watermark;
      for (const auto& record : chunk.entries) {
        chunk.watermark_after = std::max(chunk.watermark_after, record.pos);
      }
    }
    chunk.span_id =
        spans_.begin_chunk(leg, sim_.now(), session, c, chunk.entries.size());
    channels_[index]->send(std::move(chunk));
  }
}

void SilkRoadFleet::apply_chunk(std::size_t index,
                                const fault::ResyncChunk& chunk) {
  for (const auto& record : chunk.entries) {
    if (const auto* config = std::get_if<fault::VipConfig>(&record.mutation)) {
      apply_vip_config(index, *config, chunk.resync_id);
    } else {
      apply_journaled_update(index,
                             std::get<workload::DipUpdate>(record.mutation),
                             chunk.resync_id);
    }
  }
  {
    const sr::MutexLock lock(mu_);
    applied_through_[index] =
        std::max(applied_through_[index], chunk.watermark_after);
    // Every chunk boundary checkpoints: a crash mid-session restarts the
    // next session from this chunk's watermark, not from zero.
    checkpoint_switch_locked(index);
  }
  if (observer_ != nullptr) {
    observer_->on_watermark(index, chunk.watermark_after, sim_.now());
  }
  const auto leg = static_cast<std::uint32_t>(index);
  spans_.record(chunk.span_id, obs::SpanEventKind::kResyncApply, leg,
                sim_.now(), chunk.chunk_index, chunk.entries.size());
  if (!chunk.final_chunk) return;
  spans_.record(chunk.resync_id, obs::SpanEventKind::kResyncApply, leg,
                sim_.now(), chunk.chunk_index, 0);
  h_resync_duration_->record(
      static_cast<std::uint64_t>(sim_.now() - resync_started_[index]));
  if (restoring_[index]) {
    restoring_[index] = false;
    alive_[index] = true;
    if (membership_cb_) membership_cb_(index, true);
  }
  if (observer_ != nullptr) {
    observer_->on_resync_end(index, chunk.resync_id, sim_.now());
  }
}

void SilkRoadFleet::apply_vip_config(std::size_t index,
                                     const fault::VipConfig& config,
                                     std::uint64_t parent_id) {
  auto& sw = *switches_[index];
  if (sw.version_manager(config.vip) == nullptr) {
    {
      const sr::MutexLock lock(mu_);
      applied_[index][config.vip] =
          DipSet(config.dips.begin(), config.dips.end());
    }
    if (observer_ != nullptr) {
      observer_->on_mirror_config(index, config.vip, config.dips, 0,
                                  sim_.now());
    }
    sw.add_vip(config.vip, config.dips);
    return;
  }
  // The switch already serves this VIP: diff its applied membership against
  // the config and issue the delta as ordinary updates (each runs the 3-step
  // protocol, keeping existing flows consistent). Deltas are collected under
  // mu_ and issued after release — request_update fires span and
  // mapping-risk callbacks whose probe sweeps re-enter the fleet.
  std::vector<workload::DipUpdate> deltas;
  {
    const sr::MutexLock lock(mu_);
    auto& have = applied_[index][config.vip];
    const DipSet want(config.dips.begin(), config.dips.end());
    for (const auto& dip : config.dips) {
      if (have.contains(dip)) continue;
      workload::DipUpdate update;
      update.at = sim_.now();
      update.vip = config.vip;
      update.dip = dip;
      update.action = workload::UpdateAction::kAddDip;
      update.cause = workload::UpdateCause::kProvisioning;
      deltas.push_back(std::move(update));
    }
    // `have` is an unordered set (R10): snapshot and sort the stale DIPs so
    // the re-issued removals — and therefore their span ids and 3-step
    // executions — happen in the same order on every platform and run.
    std::vector<net::Endpoint> stale;
    for (const auto& dip : have) {
      if (!want.contains(dip)) stale.push_back(dip);
    }
    std::sort(stale.begin(), stale.end());
    for (const auto& dip : stale) {
      workload::DipUpdate update;
      update.at = sim_.now();
      update.vip = config.vip;
      update.dip = dip;
      update.action = workload::UpdateAction::kRemoveDip;
      update.cause = workload::UpdateCause::kRemoval;
      deltas.push_back(std::move(update));
    }
    have = want;
  }
  if (observer_ != nullptr) {
    observer_->on_mirror_config(index, config.vip, config.dips, 0, sim_.now());
  }
  for (auto& update : deltas) {
    spans_.begin_update(update, sim_.now(), parent_id);
    sw.request_update(update);
  }
}

void SilkRoadFleet::apply_journaled_update(std::size_t index,
                                           const workload::DipUpdate& update,
                                           std::uint64_t parent_id) {
  auto& sw = *switches_[index];
  // Journal order guarantees the VIP's config record precedes its updates;
  // this guard is belt-and-braces against a snapshot/journal mismatch.
  if (sw.version_manager(update.vip) == nullptr) return;
  bool duplicate = false;
  {
    const sr::MutexLock lock(mu_);
    auto& dips = applied_[index][update.vip];
    if (update.action == workload::UpdateAction::kAddDip) {
      duplicate = !dips.insert(update.dip).second;
    } else {
      duplicate = dips.erase(update.dip) == 0;
    }
  }
  // Already applied (the snapshot or an earlier delivery carried it): the
  // replay is idempotent, nothing to re-execute.
  if (duplicate) return;
  if (observer_ != nullptr) {
    observer_->on_mirror_update(
        index, update.vip, update.dip,
        update.action == workload::UpdateAction::kAddDip, 0, sim_.now());
  }
  workload::DipUpdate replay = update;
  replay.at = sim_.now();
  replay.update_id = 0;
  replay.log_pos = 0;
  spans_.begin_update(replay, sim_.now(), parent_id);
  sw.request_update(replay);
}

void SilkRoadFleet::note_applied_locked(std::size_t index) {
  if (++since_checkpoint_[index] >= sync_.checkpoint_every) {
    checkpoint_switch_locked(index);
  }
}

void SilkRoadFleet::checkpoint_switch_locked(std::size_t index) {
  SwitchSnapshot snapshot;
  snapshot.watermark = applied_through_[index];
  snapshot.vips.reserve(applied_[index].size());
  for (const auto& vip : vip_order_) {
    const auto it = applied_[index].find(vip);
    if (it == applied_[index].end()) continue;
    VipMembers members;
    members.vip = vip;
    // The mirror is an unordered set (R10): sort so the checkpoint — and the
    // restore-time add_vip replay it drives — is deterministic.
    members.dips.assign(it->second.begin(), it->second.end());
    std::sort(members.dips.begin(), members.dips.end());
    snapshot.vips.push_back(std::move(members));
  }
  snapshots_.checkpoint(index, std::move(snapshot));
  since_checkpoint_[index] = 0;
}

void SilkRoadFleet::set_mapping_risk_callback(MappingRiskCallback cb) {
  risk_cb_ = std::move(cb);
  // Any member switch flipping can change a flow's mapping; de-duplication
  // of the resulting probe sweeps is the driver's concern (the sweep is
  // idempotent between events).
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->set_mapping_risk_callback(
        [this](const net::Endpoint& vip) {
          if (risk_cb_) risk_cb_(vip);
        });
  }
}

void SilkRoadFleet::self_check() const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->self_check();
  }
}

std::optional<std::size_t> SilkRoadFleet::route_of(
    const net::FiveTuple& flow) const {
  // ECMP over live members: hash-ranked selection so a member failure only
  // re-routes the failed member's share (rendezvous / highest-random-weight
  // hashing, the resilient-ECMP behaviour of modern fabrics).
  std::optional<std::size_t> best;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (!alive_[i]) continue;
    const std::uint64_t weight =
        net::hash_five_tuple(flow, net::mix64(ecmp_seed_ + i));
    if (!best || weight > best_weight) {
      best = i;
      best_weight = weight;
    }
  }
  return best;
}

lb::PacketResult SilkRoadFleet::process_packet(const net::Packet& packet) {
  const auto route = route_of(packet.flow);
  if (!route) return {};
  return switches_[*route]->process_packet(packet);
}

void SilkRoadFleet::fail_switch(std::size_t index) {
  if (index >= alive_.size() || (!alive_[index] && !restoring_[index])) return;
  alive_[index] = false;
  restoring_[index] = false;
  channels_[index]->set_offline(true);
  {
    const sr::MutexLock lock(mu_);
    // Whatever it had applied in memory died with it; the durable snapshot
    // in snapshots_ survives — that is the restore-time recovery anchor.
    applied_[index].clear();
  }
  if (observer_ != nullptr) observer_->on_switch_down(index, sim_.now());
  if (membership_cb_) membership_cb_(index, false);
  // Flows the failed switch carried re-hash to survivors on their next
  // packet; callers audit the re-mapping with route_of() + probes (see the
  // fleet tests and examples).
}

void SilkRoadFleet::restore_switch(std::size_t index) {
  if (index >= alive_.size() || alive_[index] || restoring_[index]) return;
  // Crash model: the replacement comes up with nothing in memory. Its
  // durable checkpoint is replayed first (config + membership as of the
  // watermark), then the resync session ships only the journal suffix past
  // that watermark. Only once the session's final chunk lands does the
  // switch re-enter ECMP (apply_chunk flips alive_).
  switches_[index]->reset();
  SwitchSnapshot snapshot;
  {
    const sr::MutexLock lock(mu_);
    snapshot = snapshots_.at(index);
    applied_[index].clear();
    for (const auto& entry : snapshot.vips) {
      applied_[index][entry.vip] = DipSet(entry.dips.begin(), entry.dips.end());
    }
    applied_through_[index] = snapshot.watermark;
    since_checkpoint_[index] = 0;
  }
  if (observer_ != nullptr) {
    observer_->on_restore_begin(index, snapshot.watermark, sim_.now());
    for (const auto& entry : snapshot.vips) {
      observer_->on_mirror_config(index, entry.vip, entry.dips, 0, sim_.now());
    }
  }
  for (const auto& entry : snapshot.vips) {
    switches_[index]->add_vip(entry.vip, entry.dips);
  }
  restoring_[index] = true;
  channels_[index]->set_offline(false);
  channels_[index]->force_resync();
}

bool SilkRoadFleet::converged() const {
  // Read-only audit: holding mu_ across the switch/channel getters is safe
  // (none of them call back into the fleet).
  const sr::MutexLock lock(mu_);
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    // A mid-resync switch is about to rejoin with chunks in flight.
    if (restoring_[i]) return false;
    if (!alive_[i]) continue;
    if (channels_[i]->outstanding() != 0 || channels_[i]->needs_resync()) {
      return false;
    }
    const auto& sw = *switches_[i];
    if (sw.update_in_flight() || sw.queued_updates() != 0) return false;
    for (const auto& vip : vip_order_) {
      const auto* mgr = sw.version_manager(vip);
      if (mgr == nullptr) return false;
      const auto* pool = mgr->pool(mgr->current_version());
      if (pool == nullptr) return false;
      const auto live = pool->members();
      const DipSet have(live.begin(), live.end());
      const auto& desired = membership_.at(vip);
      if (have.size() != desired.size()) return false;
      for (const auto& dip : desired) {
        if (!have.contains(dip)) return false;
      }
    }
  }
  return true;
}

std::size_t SilkRoadFleet::live_count() const {
  std::size_t count = 0;
  for (const bool a : alive_) count += a ? 1 : 0;
  return count;
}

std::uint64_t SilkRoadFleet::ctrl_retries() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->retries();
  return total;
}

std::uint64_t SilkRoadFleet::ctrl_resyncs() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->resyncs();
  return total;
}

std::size_t SilkRoadFleet::ctrl_outstanding() const {
  std::size_t total = 0;
  for (const auto& channel : channels_) total += channel->outstanding();
  return total;
}

std::uint64_t SilkRoadFleet::ctrl_resync_chunks() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->resync_chunks();
  return total;
}

std::uint64_t SilkRoadFleet::ctrl_resync_bytes() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->resync_bytes();
  return total;
}

std::uint64_t SilkRoadFleet::applied_through(std::size_t index) const {
  const sr::MutexLock lock(mu_);
  return applied_through_.at(index);
}

SwitchSnapshot SilkRoadFleet::snapshot_of(std::size_t index) const {
  const sr::MutexLock lock(mu_);
  return snapshots_.at(index);
}

std::uint64_t SilkRoadFleet::journal_head() const {
  const sr::MutexLock lock(mu_);
  return journal_.head_pos();
}

std::uint64_t SilkRoadFleet::journal_compacted() const {
  const sr::MutexLock lock(mu_);
  return journal_.compacted();
}

std::uint64_t SilkRoadFleet::snapshot_checkpoints() const {
  const sr::MutexLock lock(mu_);
  return snapshots_.checkpoints();
}

obs::Snapshot SilkRoadFleet::metrics_snapshot() const {
  std::vector<obs::Snapshot> parts;
  parts.reserve(switches_.size() + 1);
  for (const auto& sw : switches_) {
    parts.push_back(sw->metrics().snapshot());
  }
  parts.push_back(fleet_metrics_.snapshot());
  obs::Snapshot merged = obs::MetricsRegistry::aggregate(parts);
  // Fleet-level gauges that no member registry can know about.
  obs::MetricSample switches;
  switches.name = "silkroad_fleet_switches";
  switches.help = "switches configured in the fleet";
  switches.kind = obs::MetricKind::kGauge;
  switches.value = static_cast<double>(switches_.size());
  obs::MetricSample live;
  live.name = "silkroad_fleet_switches_live";
  live.help = "switches currently alive (ECMP members)";
  live.kind = obs::MetricKind::kGauge;
  live.value = static_cast<double>(live_count());
  merged.samples.push_back(std::move(switches));
  merged.samples.push_back(std::move(live));
  return obs::MetricsRegistry::aggregate({std::move(merged)});  // re-sort
}

std::function<obs::Snapshot()> SilkRoadFleet::snapshot_source() const {
  return [this] { return metrics_snapshot(); };
}

void SilkRoadFleet::inject_mirror_corruption(std::size_t index,
                                             const net::Endpoint& vip,
                                             const net::Endpoint& dip,
                                             bool add) {
  {
    const sr::MutexLock lock(mu_);
    auto& dips = applied_.at(index)[vip];
    if (add) {
      dips.insert(dip);
    } else {
      dips.erase(dip);
    }
  }
  if (observer_ != nullptr) {
    observer_->on_mirror_update(index, vip, dip, add, 0, sim_.now());
  }
}

}  // namespace silkroad::deploy
