#include "deploy/fleet.h"

#include <algorithm>
#include <string>

#include "check/sr_check.h"
#include "net/hash.h"

namespace silkroad::deploy {

SilkRoadFleet::SilkRoadFleet(sim::Simulator& simulator,
                             const core::SilkRoadSwitch::Config& config,
                             std::size_t replicas, std::uint64_t ecmp_seed,
                             const fault::ControlChannel::Config& channel)
    : sim_(simulator),
      alive_(replicas, true),
      restoring_(replicas, false),
      ecmp_seed_(ecmp_seed),
      applied_(replicas) {
  SR_CHECK(replicas > 0);
  switches_.reserve(replicas);
  channels_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    switches_.push_back(
        std::make_unique<core::SilkRoadSwitch>(simulator, config));
    fault::ControlChannel::Config per_switch = channel;
    per_switch.seed = channel.seed ^ net::mix64(ecmp_seed + i + 1);
    channels_.push_back(std::make_unique<fault::ControlChannel>(
        simulator, per_switch,
        [this, i](const fault::ControlChannel::Payload& p) {
          deliver_to(i, p);
        },
        [this, i] { apply_resync(i); }));
    channels_.back()->bind_metrics(fleet_metrics_,
                                   "switch=\"" + std::to_string(i) + "\"");
    const auto leg = static_cast<std::uint32_t>(i);
    channels_.back()->bind_spans(&spans_, leg);
    switches_.back()->bind_spans(&spans_, leg);
  }
  spans_.bind_metrics(fleet_metrics_);
}

void SilkRoadFleet::add_vip(const net::Endpoint& vip,
                            const std::vector<net::Endpoint>& dips) {
  {
    const sr::MutexLock lock(mu_);
    if (!membership_.contains(vip)) vip_order_.push_back(vip);
    membership_[vip] = dips;
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      if (alive_[i]) applied_[i][vip] = DipSet(dips.begin(), dips.end());
    }
  }
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->add_vip(vip, dips);
  }
}

void SilkRoadFleet::request_update(const workload::DipUpdate& update) {
  {
    const sr::MutexLock lock(mu_);
    auto& members = membership_[update.vip];
    if (update.action == workload::UpdateAction::kAddDip) {
      if (std::find(members.begin(), members.end(), update.dip) ==
          members.end()) {
        members.push_back(update.dip);
      }
    } else {
      members.erase(std::remove(members.begin(), members.end(), update.dip),
                    members.end());
    }
  }
  // Mint the intent span; the stamped id rides in every channel copy and
  // survives retransmits, duplicates, and resync escalation. Sends happen
  // outside mu_ — a zero-delay channel can deliver synchronously, and
  // deliver_to() takes the lock again.
  workload::DipUpdate traced = update;
  spans_.begin_update(traced, sim_.now());
  for (const auto& channel : channels_) channel->send(traced);
}

void SilkRoadFleet::handle_dip_failure(const net::Endpoint& vip,
                                       const net::Endpoint& dip,
                                       bool resilient_in_place) {
  if (!resilient_in_place) {
    workload::DipUpdate update;
    update.at = sim_.now();
    update.vip = vip;
    update.dip = dip;
    update.action = workload::UpdateAction::kRemoveDip;
    update.cause = workload::UpdateCause::kFailure;
    request_update(update);
    return;
  }
  // §7 in-place path: BFD state is switch-local, so the mark-down bypasses
  // the control channels. Desired membership is untouched — a restored
  // replica will see the DIP live until its own health checking catches up.
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->handle_dip_failure(vip, dip, true);
  }
}

void SilkRoadFleet::deliver_to(std::size_t index,
                               const fault::ControlChannel::Payload& payload) {
  if (const auto* config = std::get_if<fault::VipConfig>(&payload)) {
    if (switches_[index]->version_manager(config->vip) == nullptr) {
      switches_[index]->add_vip(config->vip, config->dips);
    }
    const sr::MutexLock lock(mu_);
    applied_[index][config->vip] =
        DipSet(config->dips.begin(), config->dips.end());
    return;
  }
  const auto& update = std::get<workload::DipUpdate>(payload);
  const auto leg = static_cast<std::uint32_t>(index);
  if (switches_[index]->version_manager(update.vip) == nullptr) {
    // The replica is not provisioned with this VIP yet (its resync is still
    // in flight); the resync diff will carry the membership over.
    spans_.record(update.update_id, obs::SpanEventKind::kSkipped, leg,
                  sim_.now(), 0, 0);
    return;
  }
  bool duplicate = false;
  {
    const sr::MutexLock lock(mu_);
    auto& dips = applied_[index][update.vip];
    if (update.action == workload::UpdateAction::kAddDip) {
      // Duplicate delivery (lost ack / retransmit race): already applied.
      duplicate = !dips.insert(update.dip).second;
    } else {
      duplicate = dips.erase(update.dip) == 0;
    }
  }
  if (duplicate) {
    spans_.record(update.update_id, obs::SpanEventKind::kSkipped, leg,
                  sim_.now(), 0, 1);
    return;
  }
  switches_[index]->request_update(update);
}

void SilkRoadFleet::apply_resync(std::size_t index) {
  auto& sw = *switches_[index];
  // Provisions and delta updates are collected under mu_ and issued after it
  // is released: sw.add_vip/request_update fire span and mapping-risk
  // callbacks whose probe sweeps re-enter the fleet.
  struct Action {
    bool provision = false;
    net::Endpoint vip;
    std::vector<net::Endpoint> dips;  ///< provision payload
    workload::DipUpdate update;       ///< delta payload
  };
  std::vector<Action> actions;
  {
    const sr::MutexLock lock(mu_);
    for (const auto& vip : vip_order_) {
      const auto& desired = membership_.at(vip);
      if (sw.version_manager(vip) == nullptr) {
        applied_[index][vip] = DipSet(desired.begin(), desired.end());
        Action action;
        action.provision = true;
        action.vip = vip;
        action.dips = desired;
        actions.push_back(std::move(action));
        continue;
      }
      // The switch already serves this VIP: diff its applied membership
      // against the desired set and issue the delta as ordinary updates
      // (each runs the 3-step protocol, keeping existing flows consistent).
      auto& have = applied_[index][vip];
      const DipSet want(desired.begin(), desired.end());
      for (const auto& dip : desired) {
        if (have.contains(dip)) continue;
        Action action;
        action.vip = vip;
        action.update.at = sim_.now();
        action.update.vip = vip;
        action.update.dip = dip;
        action.update.action = workload::UpdateAction::kAddDip;
        action.update.cause = workload::UpdateCause::kProvisioning;
        actions.push_back(std::move(action));
      }
      // `have` is an unordered set (R10): snapshot and sort the stale DIPs
      // so the re-issued removals — and therefore their span ids and 3-step
      // executions — happen in the same order on every platform and run.
      std::vector<net::Endpoint> stale;
      for (const auto& dip : have) {
        if (!want.contains(dip)) stale.push_back(dip);
      }
      std::sort(stale.begin(), stale.end());
      for (const auto& dip : stale) {
        Action action;
        action.vip = vip;
        action.update.at = sim_.now();
        action.update.vip = vip;
        action.update.dip = dip;
        action.update.action = workload::UpdateAction::kRemoveDip;
        action.update.cause = workload::UpdateCause::kRemoval;
        actions.push_back(std::move(action));
      }
      have = want;
    }
  }
  // Diff updates are children of the channel's resync span: the spans of
  // the wiped in-flight updates point at the same resync, closing the
  // causal chain intent -> abandoned leg -> resync -> re-issued delta.
  const std::uint64_t resync_id = channels_[index]->active_resync_id();
  for (auto& action : actions) {
    if (action.provision) {
      sw.add_vip(action.vip, action.dips);
      continue;
    }
    spans_.begin_update(action.update, sim_.now(), resync_id);
    sw.request_update(action.update);
  }
  if (restoring_[index]) {
    restoring_[index] = false;
    alive_[index] = true;
    if (membership_cb_) membership_cb_(index, true);
  }
}

void SilkRoadFleet::set_mapping_risk_callback(MappingRiskCallback cb) {
  risk_cb_ = std::move(cb);
  // Any member switch flipping can change a flow's mapping; de-duplication
  // of the resulting probe sweeps is the driver's concern (the sweep is
  // idempotent between events).
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->set_mapping_risk_callback(
        [this](const net::Endpoint& vip) {
          if (risk_cb_) risk_cb_(vip);
        });
  }
}

void SilkRoadFleet::self_check() const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->self_check();
  }
}

std::optional<std::size_t> SilkRoadFleet::route_of(
    const net::FiveTuple& flow) const {
  // ECMP over live members: hash-ranked selection so a member failure only
  // re-routes the failed member's share (rendezvous / highest-random-weight
  // hashing, the resilient-ECMP behaviour of modern fabrics).
  std::optional<std::size_t> best;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (!alive_[i]) continue;
    const std::uint64_t weight =
        net::hash_five_tuple(flow, net::mix64(ecmp_seed_ + i));
    if (!best || weight > best_weight) {
      best = i;
      best_weight = weight;
    }
  }
  return best;
}

lb::PacketResult SilkRoadFleet::process_packet(const net::Packet& packet) {
  const auto route = route_of(packet.flow);
  if (!route) return {};
  return switches_[*route]->process_packet(packet);
}

void SilkRoadFleet::fail_switch(std::size_t index) {
  if (index >= alive_.size() || (!alive_[index] && !restoring_[index])) return;
  alive_[index] = false;
  restoring_[index] = false;
  channels_[index]->set_offline(true);
  {
    const sr::MutexLock lock(mu_);
    applied_[index].clear();  // whatever it had applied died with it
  }
  if (membership_cb_) membership_cb_(index, false);
  // Flows the failed switch carried re-hash to survivors on their next
  // packet; callers audit the re-mapping with route_of() + probes (see the
  // fleet tests and examples).
}

void SilkRoadFleet::restore_switch(std::size_t index) {
  if (index >= alive_.size() || alive_[index] || restoring_[index]) return;
  // Crash model: the replacement comes up empty — no VIP config, no
  // connection state. The controller replays config and newest membership
  // through the channel's full-state resync; only once that lands does the
  // switch re-enter ECMP (apply_resync flips alive_).
  switches_[index]->reset();
  restoring_[index] = true;
  channels_[index]->set_offline(false);
  channels_[index]->force_resync();
}

bool SilkRoadFleet::converged() const {
  // Read-only audit: holding mu_ across the switch/channel getters is safe
  // (none of them call back into the fleet).
  const sr::MutexLock lock(mu_);
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (!alive_[i]) continue;
    if (channels_[i]->outstanding() != 0 || channels_[i]->needs_resync()) {
      return false;
    }
    const auto& sw = *switches_[i];
    if (sw.update_in_flight() || sw.queued_updates() != 0) return false;
    for (const auto& vip : vip_order_) {
      const auto* mgr = sw.version_manager(vip);
      if (mgr == nullptr) return false;
      const auto* pool = mgr->pool(mgr->current_version());
      if (pool == nullptr) return false;
      const auto live = pool->members();
      const DipSet have(live.begin(), live.end());
      const auto& desired = membership_.at(vip);
      if (have.size() != desired.size()) return false;
      for (const auto& dip : desired) {
        if (!have.contains(dip)) return false;
      }
    }
  }
  return true;
}

std::size_t SilkRoadFleet::live_count() const {
  std::size_t count = 0;
  for (const bool a : alive_) count += a ? 1 : 0;
  return count;
}

std::uint64_t SilkRoadFleet::ctrl_retries() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->retries();
  return total;
}

std::uint64_t SilkRoadFleet::ctrl_resyncs() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->resyncs();
  return total;
}

std::size_t SilkRoadFleet::ctrl_outstanding() const {
  std::size_t total = 0;
  for (const auto& channel : channels_) total += channel->outstanding();
  return total;
}

obs::Snapshot SilkRoadFleet::metrics_snapshot() const {
  std::vector<obs::Snapshot> parts;
  parts.reserve(switches_.size() + 1);
  for (const auto& sw : switches_) {
    parts.push_back(sw->metrics().snapshot());
  }
  parts.push_back(fleet_metrics_.snapshot());
  obs::Snapshot merged = obs::MetricsRegistry::aggregate(parts);
  // Fleet-level gauges that no member registry can know about.
  obs::MetricSample switches;
  switches.name = "silkroad_fleet_switches";
  switches.help = "switches configured in the fleet";
  switches.kind = obs::MetricKind::kGauge;
  switches.value = static_cast<double>(switches_.size());
  obs::MetricSample live;
  live.name = "silkroad_fleet_switches_live";
  live.help = "switches currently alive (ECMP members)";
  live.kind = obs::MetricKind::kGauge;
  live.value = static_cast<double>(live_count());
  merged.samples.push_back(std::move(switches));
  merged.samples.push_back(std::move(live));
  return obs::MetricsRegistry::aggregate({std::move(merged)});  // re-sort
}

std::function<obs::Snapshot()> SilkRoadFleet::snapshot_source() const {
  return [this] { return metrics_snapshot(); };
}

}  // namespace silkroad::deploy
