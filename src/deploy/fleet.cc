#include "deploy/fleet.h"

#include "check/sr_check.h"

namespace silkroad::deploy {

SilkRoadFleet::SilkRoadFleet(sim::Simulator& simulator,
                             const core::SilkRoadSwitch::Config& config,
                             std::size_t replicas, std::uint64_t ecmp_seed)
    : sim_(simulator), alive_(replicas, true), ecmp_seed_(ecmp_seed) {
  SR_CHECK(replicas > 0);
  switches_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    switches_.push_back(
        std::make_unique<core::SilkRoadSwitch>(simulator, config));
  }
}

void SilkRoadFleet::add_vip(const net::Endpoint& vip,
                            const std::vector<net::Endpoint>& dips) {
  for (const auto& sw : switches_) sw->add_vip(vip, dips);
}

void SilkRoadFleet::request_update(const workload::DipUpdate& update) {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (alive_[i]) switches_[i]->request_update(update);
  }
}

void SilkRoadFleet::set_mapping_risk_callback(MappingRiskCallback cb) {
  risk_cb_ = std::move(cb);
  // Any member switch flipping can change a flow's mapping; de-duplication
  // of the resulting probe sweeps is the driver's concern (the sweep is
  // idempotent between events).
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->set_mapping_risk_callback(
        [this](const net::Endpoint& vip) {
          if (risk_cb_) risk_cb_(vip);
        });
  }
}

std::optional<std::size_t> SilkRoadFleet::route_of(
    const net::FiveTuple& flow) const {
  // ECMP over live members: hash-ranked selection so a member failure only
  // re-routes the failed member's share (rendezvous / highest-random-weight
  // hashing, the resilient-ECMP behaviour of modern fabrics).
  std::optional<std::size_t> best;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (!alive_[i]) continue;
    const std::uint64_t weight =
        net::hash_five_tuple(flow, net::mix64(ecmp_seed_ + i));
    if (!best || weight > best_weight) {
      best = i;
      best_weight = weight;
    }
  }
  return best;
}

lb::PacketResult SilkRoadFleet::process_packet(const net::Packet& packet) {
  const auto route = route_of(packet.flow);
  if (!route) return {};
  return switches_[*route]->process_packet(packet);
}

void SilkRoadFleet::fail_switch(std::size_t index) {
  if (index >= alive_.size() || !alive_[index]) return;
  alive_[index] = false;
  // Flows the failed switch carried re-hash to survivors on their next
  // packet; callers audit the re-mapping with route_of() + probes (see the
  // fleet tests and examples).
}

void SilkRoadFleet::restore_switch(std::size_t index) {
  if (index >= alive_.size() || alive_[index]) return;
  // A restored switch comes back empty (fresh ConnTable) but with the same
  // control-plane configuration; in a real deployment the controller replays
  // VIP config before re-announcing routes. Our switches keep their VIP
  // config (state loss is modeled by the conn tables having drained), so
  // re-enabling is sufficient for the simulation's purposes.
  alive_[index] = true;
}

std::size_t SilkRoadFleet::live_count() const {
  std::size_t count = 0;
  for (const bool a : alive_) count += a ? 1 : 0;
  return count;
}

obs::Snapshot SilkRoadFleet::metrics_snapshot() const {
  std::vector<obs::Snapshot> parts;
  parts.reserve(switches_.size());
  for (const auto& sw : switches_) {
    parts.push_back(sw->metrics().snapshot());
  }
  obs::Snapshot merged = obs::MetricsRegistry::aggregate(parts);
  // Fleet-level gauges that no member registry can know about.
  obs::MetricSample switches;
  switches.name = "silkroad_fleet_switches";
  switches.help = "switches configured in the fleet";
  switches.kind = obs::MetricKind::kGauge;
  switches.value = static_cast<double>(switches_.size());
  obs::MetricSample live;
  live.name = "silkroad_fleet_switches_live";
  live.help = "switches currently alive (ECMP members)";
  live.kind = obs::MetricKind::kGauge;
  live.value = static_cast<double>(live_count());
  merged.samples.push_back(std::move(switches));
  merged.samples.push_back(std::move(live));
  return obs::MetricsRegistry::aggregate({std::move(merged)});  // re-sort
}

std::function<obs::Snapshot()> SilkRoadFleet::snapshot_source() const {
  return [this] { return metrics_snapshot(); };
}

}  // namespace silkroad::deploy
