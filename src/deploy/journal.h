// Versioned journal of controller desired-state mutations (DESIGN.md §16).
//
// Every add_vip / request_update the controller accepts is appended here
// under a monotone fleet log position before it is fanned out. A lagging
// replica's resync session replays only the suffix past its applied-through
// watermark; the journal is bounded, and once compaction has dropped entries
// the watermark still needs, the session escalates to a full-state transfer.
//
// Thread safety: none of its own — the fleet guards its journal with the
// same mutex that guards the desired-state maps the journal records.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fault/sync_wire.h"

namespace silkroad::deploy {

class MutationJournal {
 public:
  /// Entries retained before compaction drops the oldest. The capacity is
  /// the fleet's "compaction horizon": a replica whose watermark falls
  /// behind it can no longer be served a delta.
  explicit MutationJournal(std::size_t capacity);

  /// Appends one mutation and returns its log position (monotone from 1).
  /// May compact the oldest retained entries to honor the capacity.
  std::uint64_t append(fault::JournalMutation mutation);

  /// Newest assigned position (0 before the first append).
  std::uint64_t head_pos() const noexcept { return next_pos_ - 1; }
  /// Oldest retained position; head_pos()+1 when nothing is retained.
  std::uint64_t first_pos() const noexcept {
    return entries_.empty() ? next_pos_ : entries_.front().pos;
  }
  /// True when every entry past `watermark` is still retained — i.e. a
  /// replica applied through `watermark` can catch up with a delta.
  bool covers(std::uint64_t watermark) const noexcept {
    return first_pos() <= watermark + 1;
  }
  /// Copies of every retained entry with pos > `watermark`, ascending.
  std::vector<fault::JournalRecord> suffix_since(
      std::uint64_t watermark) const;

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t appended() const noexcept { return next_pos_ - 1; }
  /// Entries dropped by compaction since construction.
  std::uint64_t compacted() const noexcept { return compacted_; }
  /// Modeled serialized size of the retained suffix.
  std::size_t retained_wire_size() const noexcept { return wire_size_; }

 private:
  std::size_t capacity_;
  std::deque<fault::JournalRecord> entries_;
  std::uint64_t next_pos_ = 1;
  std::uint64_t compacted_ = 0;
  std::size_t wire_size_ = 0;
};

}  // namespace silkroad::deploy
