// Figure 2: Y% of clusters have more than X DIP-pool updates per minute in
// the median / 99th-percentile minute of a month.
#include "bench_common.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 2 — Frequent DIP pool updates (CDF across clusters)",
      "32% of clusters >10 updates/min at p99 minute; 3% >50; half of "
      "Backends >16; some PoPs/Frontends >100");

  const auto clusters = workload::generate_population({});
  const auto all_p99 = workload::population_cdf(
      clusters,
      [](const workload::ClusterSpec& c) { return c.updates_per_min_p99; });
  const auto all_p50 = workload::population_cdf(
      clusters,
      [](const workload::ClusterSpec& c) { return c.updates_per_min_p50; });

  std::printf("\n-- all clusters, 99th percentile minute --\n");
  bench::print_cdf(all_p99, "updates/min");
  std::printf("\n-- all clusters, median minute --\n");
  bench::print_cdf(all_p50, "updates/min");

  std::printf("\n-- per type, p99 minute --\n");
  std::printf("%-10s %14s %14s %14s\n", "type", ">10/min (%)", ">50/min (%)",
              "median");
  for (const auto type :
       {workload::ClusterType::kPoP, workload::ClusterType::kFrontend,
        workload::ClusterType::kBackend}) {
    std::vector<double> values;
    for (const auto& c : clusters) {
      if (c.type == type) values.push_back(c.updates_per_min_p99);
    }
    const auto cdf = sim::EmpiricalCdf::from_samples(values);
    std::printf("%-10s %14.1f %14.1f %14.1f\n", workload::to_string(type),
                bench::percent_above(cdf, 10), bench::percent_above(cdf, 50),
                cdf.quantile(0.5));
  }

  std::printf(
      "\nmeasured vs paper: %.0f%% of clusters >10 updates/min at p99 "
      "(paper 32%%); %.0f%% >50 (paper 3%%)\n",
      bench::percent_above(all_p99, 10), bench::percent_above(all_p99, 50));
  bench::headline("clusters_above_10_upd_per_min_p99_pct",
                  bench::percent_above(all_p99, 10), "paper: 32%");
  bench::headline("clusters_above_50_upd_per_min_p99_pct",
                  bench::percent_above(all_p99, 50), "paper: 3%");
  bench::headline("median_updates_per_min_p50", all_p50.quantile(0.5));
  bench::emit_headlines("fig02_update_frequency");
  return 0;
}
