// §5.2 metering experiment: offer 10 Gbps to a VIP and measure color-marking
// accuracy across rate thresholds and burst sizes; the paper observes <1%
// average error. Also sizes 40K meter instances against the SRAM budget.
#include <cmath>

#include "bench_common.h"
#include "asic/meter.h"

using namespace silkroad;

namespace {

/// Offers `offered_gbps` of 1000-B packets for `seconds`; returns the green
/// share measured against the configured CIR.
double measure_green_share(double cir_gbps, double offered_gbps,
                           std::uint64_t burst_bytes, double seconds) {
  asic::TwoRateThreeColorMeter meter({.cir_bps = cir_gbps * 1e9,
                                      .eir_bps = cir_gbps * 1e9,
                                      .cbs_bytes = burst_bytes,
                                      .ebs_bytes = burst_bytes});
  const std::uint32_t pkt = 1000;
  const double pps = offered_gbps * 1e9 / (pkt * 8);
  const sim::Time gap =
      static_cast<sim::Time>(static_cast<double>(sim::kSecond) / pps);
  const std::uint64_t packets =
      static_cast<std::uint64_t>(pps * seconds);
  sim::Time t = 0;
  std::uint64_t green = 0;
  for (std::uint64_t i = 0; i < packets; ++i) {
    t += gap;
    if (meter.mark(t, pkt) == asic::MeterColor::kGreen) ++green;
  }
  return static_cast<double>(green) / static_cast<double>(packets);
}

}  // namespace

int main() {
  bench::print_header(
      "§5.2 — Per-VIP meter accuracy at 10 Gbps offered load",
      "<1% average color-marking error across thresholds and burst sizes; "
      "40K meters consume ~1% of ASIC SRAM");

  std::printf("\n%-14s %-14s %14s %14s %10s\n", "CIR (Gbps)", "burst (KB)",
              "expected green", "measured", "error");
  double total_error = 0;
  int cases = 0;
  for (const double cir : {1.0, 2.0, 5.0, 8.0}) {
    for (const std::uint64_t burst_kb : {32u, 128u, 512u}) {
      const double expected = std::min(1.0, cir / 10.0);
      const double measured =
          measure_green_share(cir, 10.0, burst_kb * 1024, 0.2);
      const double error = std::fabs(measured - expected);
      total_error += error;
      ++cases;
      std::printf("%-14.1f %-14llu %13.2f%% %13.2f%% %9.3f%%\n", cir,
                  static_cast<unsigned long long>(burst_kb), 100 * expected,
                  100 * measured, 100 * error);
    }
  }
  std::printf("\naverage error: %.3f%% (paper: <1%%)\n",
              100 * total_error / cases);

  const double meters_bytes =
      40000.0 * asic::TwoRateThreeColorMeter::sram_bits_per_instance() / 8;
  std::printf("40K meter instances: %.2f MB = %.2f%% of a 60 MB SRAM budget "
              "(paper: ~1%%)\n",
              meters_bytes / 1e6, 100 * meters_bytes / 60e6);
  bench::headline("avg_color_error_pct", 100 * total_error / cases,
                  "paper: <1%");
  bench::headline("meters_40k_sram_share_pct", 100 * meters_bytes / 60e6,
                  "paper: ~1% of SRAM");
  bench::emit_headlines("meter_accuracy");
  return 0;
}
