// Figure 4: CDF of DIP downtime (removal -> re-addition) per root cause.
#include "bench_common.h"
#include "workload/update_gen.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 4 — Distribution of DIP downtime by root cause",
      "upgrades: median 3 min, p99 100 min; provisioning causes no downtime");

  workload::UpdateGenConfig config;
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  workload::UpdateGenerator gen(config, vip,
                                {{net::IpAddress::v4(0x0A000001), 20}});
  sim::Rng rng(4);

  for (const auto cause :
       {workload::UpdateCause::kServiceUpgrade, workload::UpdateCause::kTesting,
        workload::UpdateCause::kFailure, workload::UpdateCause::kPreempting}) {
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
      const auto d = gen.sample_downtime(cause, rng);
      samples.push_back(sim::to_seconds(*d) / 60.0);  // minutes
    }
    const auto cdf = sim::EmpiricalCdf::from_samples(std::move(samples));
    std::printf("\n-- %s (downtime, minutes) --\n", workload::to_string(cause));
    bench::print_cdf(cdf, "minutes");
    const std::string slug = workload::to_string(cause);
    bench::headline(slug + "_downtime_median_min", cdf.quantile(0.5));
    bench::headline(slug + "_downtime_p99_min", cdf.quantile(0.99));
  }
  std::printf("\nprovisioning / removal: no downtime pairing (pure add / pure remove)\n");
  std::printf("measured upgrade median/p99 vs paper: 3 min / 100 min\n");
  bench::emit_headlines("fig04_downtime");
  return 0;
}
