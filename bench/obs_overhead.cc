// Hot-path observability overhead gate (DESIGN.md §14).
//
// Two claims are pinned here. (A) Contention: a ShardedCounter under
// multi-threaded bumping must beat both the per-op registry lookup (mutex on
// every bump) and a single plain Counter (one contended cache line) — that
// ordering, not the machine-dependent absolute times, is the headline.
// (B) End-to-end cost: the data-plane telemetry added on top of the base
// counters (sampling profiler + per-DIP connection gauges) must cost <5% of
// the telemetry-off packet path, measured span_overhead-style as the median
// per-pair CPU ratio over interleaved on/off runs of the packet-level
// auditor. Telemetry must never change sim-visible behavior.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/silkroad_switch.h"
#include "lb/packet_level.h"
#include "obs/sharded.h"
#include "workload/flow_gen.h"
#include "workload/update_gen.h"

using namespace silkroad;

namespace {

// --- Part A: counter contention ---------------------------------------------

constexpr std::size_t kThreads = 4;
constexpr std::size_t kOpsPerThread = 300'000;
constexpr int kContentionReps = 3;

/// Runs `op` on kThreads threads, kOpsPerThread calls each, all released by
/// one barrier so the contention window is shared; returns wall seconds
/// (wall, not CPU: with true contention the threads' CPU sums stay flat
/// while completion time grows, and completion time is what we gate).
template <typename Op>
double contended_seconds(Op op) {
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kOpsPerThread; ++i) op();
    });
  }
  while (ready.load() != kThreads) {
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// --- Part B: end-to-end telemetry overhead ----------------------------------

constexpr int kPairs = 7;

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

struct Workload {
  std::vector<workload::Flow> flows;
  std::vector<workload::DipUpdate> updates;
};

Workload make_workload() {
  Workload w;
  sim::Simulator gen_sim;
  workload::FlowGenerator gen(
      gen_sim,
      {{vip_ep(), 1200.0, workload::FlowProfile::hadoop(), false}},
      0x0B5ULL);
  gen.start(sim::kMinute,
            [&w](const workload::Flow& f) { w.flows.push_back(f); },
            [](const workload::Flow&) {});
  gen_sim.run();
  workload::UpdateGenerator ugen({.seed = 0x0B6ULL}, vip_ep(), make_dips(16));
  w.updates = ugen.generate(20.0, sim::kMinute);
  return w;
}

/// Process CPU time (see span_overhead.cc): immune to scheduler noise on
/// shared CI machines; the packet-level run is single-threaded.
double cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return 1e3 * static_cast<double>(ts.tv_sec) +
         1e-6 * static_cast<double>(ts.tv_nsec);
}

struct RunResult {
  double cpu_ms = 0;
  lb::PacketLevelRunner::Stats stats;
  std::uint64_t sampled = 0;  // profiler samples taken (0 when telemetry off)
};

RunResult run_once(const Workload& w, bool telemetry) {
  const double start = cpu_ms();
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(50'000);
  config.data_plane_telemetry = telemetry;
  core::SilkRoadSwitch sw(sim, config);
  sw.add_vip(vip_ep(), make_dips(16));
  lb::PacketLevelRunner runner(sim, sw,
                               {.packet_interval = 20 * sim::kMillisecond});
  RunResult result;
  result.stats = runner.run(w.flows, w.updates);
  result.cpu_ms = cpu_ms() - start;
  for (const auto& sample : sw.metrics().snapshot().samples) {
    if (sample.name == "silkroad_packet_sampled_packets_total") {
      result.sampled = static_cast<std::uint64_t>(sample.value);
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "hot-path observability overhead — sharded counters and the sampling "
      "profiler",
      "telemetry must be cheap enough to leave on: sharded beats registry "
      "lookup under contention; total packet-path overhead <5%");

  // (A) Three ways to bump a counter from 4 threads. Interleaved reps, min
  // per mode (min, not median: the floor is the intrinsic cost, everything
  // above it is scheduler noise on a loaded machine).
  obs::MetricsRegistry registry;
  obs::Counter* plain = registry.counter("obs_bench_plain", "");
  obs::ShardedCounter* sharded = registry.sharded_counter("obs_bench_sharded");
  double registry_s = 0, plain_s = 0, sharded_s = 0;
  for (int rep = 0; rep < kContentionReps; ++rep) {
    const double r = contended_seconds(
        [&] { registry.counter("obs_bench_lookup")->inc(); });
    const double p = contended_seconds([&] { plain->inc(); });
    const double s = contended_seconds([&] { sharded->inc(); });
    registry_s = rep == 0 ? r : std::min(registry_s, r);
    plain_s = rep == 0 ? p : std::min(plain_s, p);
    sharded_s = rep == 0 ? s : std::min(sharded_s, s);
  }
  const double total_ops =
      static_cast<double>(kThreads * kOpsPerThread) * kContentionReps;
  const bool counts_exact =
      registry.counter("obs_bench_lookup")->value() == total_ops &&
      plain->value() == total_ops &&
      static_cast<double>(sharded->value()) == total_ops;

  std::printf("\n%u threads x %zu bumps, min of %d reps:\n",
              static_cast<unsigned>(kThreads), kOpsPerThread, kContentionReps);
  std::printf("  %-34s %8.1f ns/op\n", "registry.counter(name)->inc()",
              1e9 * registry_s / (kThreads * kOpsPerThread));
  std::printf("  %-34s %8.1f ns/op\n", "plain Counter::inc (shared line)",
              1e9 * plain_s / (kThreads * kOpsPerThread));
  std::printf("  %-34s %8.1f ns/op\n", "ShardedCounter::inc (striped)",
              1e9 * sharded_s / (kThreads * kOpsPerThread));

  // (B) Interleaved telemetry-off/on pairs of the packet-level audit over a
  // SilkRoadSwitch; warm-up pair discarded; median per-pair CPU ratio.
  const Workload w = make_workload();
  (void)run_once(w, false);
  (void)run_once(w, true);
  RunResult off;
  RunResult on;
  std::vector<double> ratios;
  for (int rep = 0; rep < kPairs; ++rep) {
    const RunResult u = run_once(w, /*telemetry=*/false);
    const RunResult t = run_once(w, /*telemetry=*/true);
    if (rep == 0 || u.cpu_ms < off.cpu_ms) off = u;
    if (rep == 0 || t.cpu_ms < on.cpu_ms) on = t;
    if (u.cpu_ms > 0) ratios.push_back(t.cpu_ms / u.cpu_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct =
      ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);

  std::printf("\n%-28s %12s %12s\n", "", "telemetry off", "on");
  std::printf("%-28s %12.1f %12.1f\n", "cpu_ms (min of pairs)", off.cpu_ms,
              on.cpu_ms);
  std::printf("%-28s %12llu %12llu\n", "packets",
              static_cast<unsigned long long>(off.stats.packets),
              static_cast<unsigned long long>(on.stats.packets));
  std::printf("%-28s %12llu %12llu\n", "profiler samples",
              static_cast<unsigned long long>(off.sampled),
              static_cast<unsigned long long>(on.sampled));
  std::printf("%-28s %12.2f%%  (median of %zu interleaved pairs)\n",
              "obs_overhead_pct", overhead_pct, ratios.size());

  const bool behavior_identical =
      off.stats.flows == on.stats.flows &&
      off.stats.packets == on.stats.packets &&
      off.stats.violations == on.stats.violations &&
      off.stats.unmapped_flows == on.stats.unmapped_flows;
  const bool profiler_sampled = on.sampled > 0 && off.sampled == 0;

  // Absolute times are machine-dependent and deliberately NOT headlines; the
  // baseline pins the orderings and the relative overhead.
  bench::headline("sharded_beats_registry",
                  sharded_s < registry_s ? 1.0 : 0.0,
                  "striped bumps faster than per-op registry lookup (must be 1)");
  bench::headline("counts_exact", counts_exact ? 1.0 : 0.0,
                  "no bump lost under contention in any mode (must be 1)");
  bench::headline("obs_overhead_pct", overhead_pct,
                  "telemetry-on CPU over telemetry-off, percent (budget: <5)");
  bench::headline("behavior_identical", behavior_identical ? 1.0 : 0.0,
                  "telemetry changed no sim-visible outcome (must be 1)");
  bench::headline("profiler_sampled", profiler_sampled ? 1.0 : 0.0,
                  "sampling profiler took samples iff telemetry on (must be 1)");
  bench::emit_headlines("obs_overhead");

  if (!counts_exact || !behavior_identical || !profiler_sampled) return 1;
  if (sharded_s >= registry_s) return 1;
  return overhead_pct < 5.0 ? 0 : 1;
}
