// Figure 18: PCC-affected connections vs TransitTable (bloom filter) size,
// for learning-filter timeouts of 0.5 / 1 / 5 ms.
//
// Unlike the other scenario benches, this one must drive the paper's real
// arrival intensity against the paper's real filter sizes: the number of
// flows recorded in the filter during Step 1 is (arrival rate x insertion
// latency), and only at production rates (~2.77M new conns/min/ToR) does an
// 8-byte filter saturate. We therefore run one VIP at ~1.4M conns/min
// (0.5x the paper's peak; SILKROAD_BENCH_SCALE multiplies it) over a short
// horizon with two DIP-pool updates, using short flows so the active set
// stays tractable.
#include "bench_common.h"
#include "core/silkroad_switch.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

struct Result {
  double violations;     // auditor-observed mapping changes
  double stale_routed;   // conns routed via the old pool due to filter FPs
};

Result run(std::size_t transit_bytes, sim::Time learning_timeout,
           double scale) {
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(400'000);
  config.learning = {.capacity = 2048, .timeout = learning_timeout};
  config.cpu = {.tasks_per_second = 200'000.0};
  config.transit_table_bytes = transit_bytes;
  core::SilkRoadSwitch sw(sim, config);

  lb::ScenarioConfig sc;
  sc.horizon = 10 * sim::kSecond;
  sc.seed = 81;
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  workload::FlowProfile profile;
  profile.name = "short";
  profile.duration_median_s = 3.0;
  profile.duration_p99_s = 30.0;
  sc.vip_loads.push_back({vip, 1.4e6 * scale, profile, false});
  std::vector<net::Endpoint> dips;
  for (int d = 0; d < 24; ++d) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(d)), 20});
  }
  sc.dip_pools.push_back(dips);
  sc.updates.push_back({4 * sim::kSecond, vip, dips[0],
                        workload::UpdateAction::kRemoveDip,
                        workload::UpdateCause::kServiceUpgrade});
  sc.updates.push_back({7 * sim::kSecond, vip, dips[1],
                        workload::UpdateAction::kRemoveDip,
                        workload::UpdateCause::kServiceUpgrade});
  lb::Scenario scenario(sim, sw, sc);
  const auto stats = scenario.run();
  return Result{static_cast<double>(stats.violations),
                static_cast<double>(sw.stats().transit_false_positives)};
}

}  // namespace

int main() {
  const double scale = bench::scale_factor();
  bench::print_header(
      "Figure 18 — TransitTable size vs PCC-affected connections",
      "8 B suffice at <=1 ms learning timeout; at 5 ms, 8 B affect ~20 "
      "connections and 256 B none");
  std::printf("arrival rate %.2gM conns/min (paper peak 2.77M), 2 updates; "
              "scale %.2f\n", 1.4 * scale, scale);
  std::printf("affected connections = auditor violations + stale-routed "
              "(TransitTable false positives)\n\n");
  std::printf("%-16s | %14s %14s %14s\n", "TransitTable", "timeout 0.5ms",
              "timeout 1ms", "timeout 5ms");
  for (const std::size_t bytes : {8u, 16u, 64u, 256u, 1024u}) {
    const auto a = run(bytes, sim::kMillisecond / 2, scale);
    const auto b = run(bytes, sim::kMillisecond, scale);
    const auto c = run(bytes, 5 * sim::kMillisecond, scale);
    std::printf("%13zu B  | %14.0f %14.0f %14.0f\n", bytes,
                a.violations + a.stale_routed, b.violations + b.stale_routed,
                c.violations + c.stale_routed);
    if (bytes == 256u) {
      bench::headline("affected_conns_256B_5ms",
                      c.violations + c.stale_routed,
                      "paper: 256 B affects none even at 5 ms");
    }
    if (bytes == 8u) {
      bench::headline("affected_conns_8B_5ms", c.violations + c.stale_routed,
                      "paper: ~20 connections");
    }
  }
  std::printf("\n(affected connections over the run; expected: "
              "non-increasing in size, increasing in timeout, ~0 at 256 B)\n");
  bench::emit_headlines("fig18_transit_table_size");
  return 0;
}
