// Figure 3: distribution of root causes for DIP additions and removals over
// a month of service-management logs.
#include <map>

#include "bench_common.h"
#include "workload/update_gen.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 3 — Root causes of DIP additions/removals",
      "service upgrade dominates at 82.7%; testing/failure/preempting/"
      "provisioning/removing each <13% combined");

  // A month of updates for a busy Backend VIP.
  workload::UpdateGenConfig config;
  config.seed = 3;
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < 500; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  workload::UpdateGenerator gen(config, vip, dips);
  const auto events = gen.generate(/*rate_per_min=*/8.0, 720 * sim::kHour / 16);

  std::map<workload::UpdateCause, std::uint64_t> counts;
  std::uint64_t adds = 0, removes = 0;
  for (const auto& e : events) {
    ++counts[e.cause];
    (e.action == workload::UpdateAction::kAddDip ? adds : removes)++;
  }

  const double total = static_cast<double>(events.size());
  std::printf("\n%-18s %10s %10s\n", "cause", "events", "share");
  const double paper[] = {82.7, 4.4, 3.0, 2.6, 3.5, 3.8};
  int idx = 0;
  for (const auto cause : workload::kAllCauses) {
    std::printf("%-18s %10llu %9.1f%%   (paper ~%.1f%%)\n",
                workload::to_string(cause),
                static_cast<unsigned long long>(counts[cause]),
                100.0 * static_cast<double>(counts[cause]) / total, paper[idx++]);
  }
  std::printf("\nadds=%llu removes=%llu total=%llu\n",
              static_cast<unsigned long long>(adds),
              static_cast<unsigned long long>(removes),
              static_cast<unsigned long long>(events.size()));
  bench::headline("upgrade_share_pct",
                  100.0 *
                      static_cast<double>(
                          counts[workload::UpdateCause::kServiceUpgrade]) /
                      total,
                  "paper: ~82.7%");
  bench::headline("total_updates", total);
  bench::emit_headlines("fig03_update_root_causes");
  return 0;
}
