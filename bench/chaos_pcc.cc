// Chaos regression bench (DESIGN.md §11): one fixed-seed run of the seeded
// fault-injection harness (tests/chaos_test.cc) with its headline numbers
// emitted for the bench-regression gate. The contract the gate enforces:
//   * pcc_violations == 0 and converged == 1, exactly — robustness is a
//     correctness property, not a tolerance band;
//   * fault/retry/resync/blast-radius counts stay inside a drift budget, so
//     a change that silently stops exercising a fault path fails the gate.
#include <unordered_map>

#include "bench_common.h"
#include "core/health_checker.h"
#include "deploy/fleet.h"
#include "fault/fault_injector.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

constexpr std::uint64_t kSeed = 0;
constexpr std::size_t kSwitches = 3;
constexpr std::size_t kVips = 2;
constexpr std::size_t kDipsPerVip = 8;
constexpr sim::Time kHorizon = 30 * sim::kSecond;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 +
                            static_cast<std::uint32_t>(v * 256 + i)),
         20});
  }
  return dips;
}

core::SilkRoadSwitch::Config chaos_switch_config() {
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.use_transit_table = true;
  config.enable_version_reuse = false;
  config.max_pending_inserts = 512;
  config.degraded_enter_backlog = 256;
  config.degraded_exit_backlog = 32;
  config.shed_policy = core::SilkRoadSwitch::ShedPolicy::kPinVersion;
  config.degraded_poll_period = 1 * sim::kMillisecond;
  config.relearn_timeout = 20 * sim::kMillisecond;
  return config;
}

fault::ControlChannel::Config chaos_channel_config() {
  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.jitter = 100 * sim::kMicrosecond;
  channel.drop_probability = 0.05;
  channel.reorder_probability = 0.05;
  channel.reorder_extra = 300 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.retry_backoff = 2.0;
  channel.resync_after_retries = 5;
  channel.seed = 0xC0117301ULL ^ kSeed;
  return channel;
}

}  // namespace

int main() {
  bench::print_header(
      "chaos — PCC under combined fault injection (fixed seed)",
      "§4 PCC holds under control-plane faults; §7 quantifies the blast "
      "radius of a switch loss (flows pinned in switch-local state)");

  sim::Simulator sim;
  deploy::SilkRoadFleet fleet(sim, chaos_switch_config(), kSwitches,
                              0xFEE7ULL + kSeed, chaos_channel_config());

  obs::MetricsRegistry fault_registry;
  fault::FaultPlan plan = fault::FaultPlan::random(
      kSeed, {.horizon = kHorizon,
              .switches = kSwitches,
              .dips = kVips * kDipsPerVip,
              .include_crash = true});
  fault::FaultInjector injector(sim, plan, kSeed ^ 0x5EEDULL, &fault_registry);
  for (std::size_t i = 0; i < kSwitches; ++i) {
    fleet.switch_at(i).set_fault_hooks({injector.cpu_delay_hook(i),
                                        injector.learn_drop_hook(i),
                                        injector.insert_fail_hook(i)});
    fleet.set_channel_loss_hook(i, injector.channel_loss_hook(i));
  }

  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = kHorizon;
  scenario_config.seed = 0xC4405ULL ^ kSeed;
  std::unordered_map<net::Endpoint, std::size_t, net::EndpointHash> dip_index;
  for (std::size_t v = 0; v < kVips; ++v) {
    workload::FlowGenerator::VipLoad load;
    load.vip = vip_of(v);
    load.arrivals_per_min = 4800;
    load.profile = {"chaos", 2.0, 10.0, 1e6, 5e6};
    scenario_config.vip_loads.push_back(load);
    scenario_config.dip_pools.push_back(dips_of(v));
    for (std::size_t i = 0; i < kDipsPerVip; ++i) {
      dip_index[dips_of(v)[i]] = v * kDipsPerVip + i;
    }
    const sim::Time base = (3 + 6 * v) * sim::kSecond;
    const auto dip = dips_of(v)[7];
    scenario_config.updates.push_back({base, vip_of(v), dip,
                                       workload::UpdateAction::kRemoveDip,
                                       workload::UpdateCause::kServiceUpgrade});
    scenario_config.updates.push_back({base + 3 * sim::kSecond, vip_of(v), dip,
                                       workload::UpdateAction::kAddDip,
                                       workload::UpdateCause::kServiceUpgrade});
  }
  lb::Scenario scenario(sim, fleet, scenario_config);

  core::HealthChecker checker(
      sim, fleet,
      {.probe_interval = 500 * sim::kMillisecond,
       .failure_threshold = 2,
       .resilient_in_place = false,
       .recovery_threshold = 2,
       .flap_penalty = 2.0,
       .flap_suppress_threshold = 4.0,
       .flap_decay = 1.0},
      [&](const net::Endpoint& dip) {
        return injector.dip_alive(dip_index.at(dip), sim.now());
      });
  checker.set_failure_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        scenario.note_dip_down(dip);
        scenario.exempt_flows_on_dip(dip);
      });
  checker.set_recovery_callback(
      [&](const net::Endpoint&, const net::Endpoint& dip) {
        scenario.note_dip_up(dip);
      });
  for (std::size_t v = 0; v < kVips; ++v) {
    for (const auto& dip : dips_of(v)) checker.watch(vip_of(v), dip);
  }

  std::uint64_t crash_exempted = 0;
  std::uint64_t crash_pinned = 0;
  injector.schedule_crashes(
      [&](std::size_t index) {
        crash_pinned += fleet.switch_at(index).failover_blast_radius().size();
        for (const auto& flow : scenario.active_flows()) {
          if (const auto route = fleet.route_of(flow);
              route && *route == index) {
            scenario.exempt_flow(flow);
            ++crash_exempted;
          }
        }
        fleet.fail_switch(index);
      },
      [&](std::size_t index) { fleet.restore_switch(index); });
  fleet.set_membership_callback([&](std::size_t index, bool alive) {
    if (!alive) return;
    for (const auto& flow : scenario.active_flows()) {
      if (const auto route = fleet.route_of(flow); route && *route == index) {
        scenario.exempt_flow(flow);
        ++crash_exempted;
      }
    }
  });

  sim.schedule_at(2 * kHorizon, [&] { checker.stop(); });

  const lb::ScenarioStats stats = scenario.run();
  fleet.self_check();
  const auto fleet_snap = fleet.metrics_snapshot();

  std::printf("\n%-34s %14s\n", "headline", "value");
  const auto row = [](const char* name, double value) {
    std::printf("%-34s %14.0f\n", name, value);
  };
  row("flows", static_cast<double>(stats.flows));
  row("pcc_violations", static_cast<double>(stats.violations));
  row("faults_injected", static_cast<double>(injector.injected_total()));
  row("ctrl_retries", static_cast<double>(fleet.ctrl_retries()));
  row("ctrl_resyncs", static_cast<double>(fleet.ctrl_resyncs()));
  row("relearns", fleet_snap.value_of("silkroad_relearns_total"));
  row("blast_radius_rerouted", static_cast<double>(crash_exempted));
  row("blast_radius_pinned", static_cast<double>(crash_pinned));
  row("converged", fleet.converged() ? 1 : 0);

  bench::headline("pcc_violations", static_cast<double>(stats.violations),
                  "PCC violations across the whole chaos run (must be 0)");
  bench::headline("converged", fleet.converged() ? 1.0 : 0.0,
                  "every replica matched the controller state at quiesce");
  bench::headline("flows", static_cast<double>(stats.flows),
                  "flows completing during the run");
  bench::headline("faults_injected", static_cast<double>(injector.injected_total()),
                  "fault edges injected across all kinds");
  bench::headline("ctrl_retries", static_cast<double>(fleet.ctrl_retries()),
                  "control-channel retransmissions");
  bench::headline("ctrl_resyncs", static_cast<double>(fleet.ctrl_resyncs()),
                  "full-state resyncs after retry exhaustion or restore");
  bench::headline("relearns", fleet_snap.value_of("silkroad_relearns_total"),
                  "pending inserts recovered after a lost notification");
  bench::headline("blast_radius_rerouted", static_cast<double>(crash_exempted),
                  "flows re-hashed across the crash/restore ECMP changes");
  bench::headline("blast_radius_pinned", static_cast<double>(crash_pinned),
                  "flows pinned in the dead switch's local state (§7 cost)");
  bench::emit_headlines("chaos_pcc");
  return stats.violations == 0 && fleet.converged() ? 0 : 1;
}
