// §5.3 (Figure 11 scenario): network-wide VIP-to-layer assignment. Compares
// the bin-packing heuristic against single-layer placements on a pod with
// skewed VIP demands, and sweeps incremental deployment.
#include "bench_common.h"
#include "deploy/topology.h"
#include "deploy/vip_assignment.h"
#include "sim/random.h"

using namespace silkroad;
using namespace silkroad::deploy;

namespace {

std::vector<VipDemand> make_demands(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<VipDemand> demands;
  for (int v = 0; v < n; ++v) {
    VipDemand d;
    d.vip = {net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 443};
    d.active_connections = static_cast<std::uint64_t>(rng.pareto(5e4, 1.05));
    if (d.active_connections > 60'000'000) d.active_connections = 60'000'000;
    d.traffic_gbps = std::min(rng.pareto(3.0, 1.1), 3000.0);
    d.dips = 50 + rng.uniform_int(400);
    d.ipv6 = rng.bernoulli(0.5);
    demands.push_back(d);
  }
  return demands;
}

double single_layer_bottleneck(const ClosTopology& topo, Layer layer,
                               const std::vector<VipDemand>& demands) {
  const double n = static_cast<double>(topo.enabled_count(layer));
  if (n == 0) return 1e18;
  double total = 0;
  for (const auto& d : demands) total += static_cast<double>(d.sram_bytes());
  return total / n / static_cast<double>((50u << 20));
}

}  // namespace

int main() {
  bench::print_header(
      "§5.3 — Network-wide VIP assignment (bin packing across layers)",
      "objective: minimize the maximum SRAM utilization across switches "
      "subject to forwarding-capacity and SRAM budgets; supports "
      "incremental deployment");

  ClosTopology topo(48, 16, 4, /*sram=*/50u << 20, /*gbps=*/6400);
  const auto demands = make_demands(300, 42);

  const auto assignment = assign_vips(topo, demands);
  std::printf("\n-- 300 VIPs (Pareto conns & volume), 48 ToR / 16 Agg / 4 "
              "Core --\n%s\n",
              format_assignment(topo, assignment).c_str());

  std::printf("bottleneck SRAM utilization:\n");
  std::printf("  %-22s %8.1f%%\n", "bin-packing (ours)",
              100 * assignment.max_sram_utilization);
  bench::headline("binpack_bottleneck_sram_pct",
                  100 * assignment.max_sram_utilization,
                  "bin-packing beats any single-layer placement");
  for (const Layer layer : kAllLayers) {
    std::printf("  %-22s %8.1f%%\n",
                (std::string("all on ") + to_string(layer)).c_str(),
                100 * single_layer_bottleneck(topo, layer, demands));
  }

  std::printf("\n-- incremental deployment sweep (SilkRoad-enabled ToRs) --\n");
  std::printf("%-14s %16s %14s\n", "enabled ToRs", "bottleneck SRAM",
              "unassigned");
  for (const int tors : {4, 8, 16, 32, 48}) {
    ClosTopology partial = topo;
    partial.enable_only(Layer::kToR, tors);
    const auto inc = assign_vips(partial, demands);
    std::printf("%-14d %15.1f%% %14llu\n", tors,
                100 * inc.max_sram_utilization,
                static_cast<unsigned long long>(inc.unassigned));
  }

  std::printf("\n-- switch-failure blast radius (broken connections) --\n");
  std::printf("%-26s %18s\n", "stale-version fraction", "broken conns");
  for (const double stale : {0.0, 0.01, 0.05, 0.20}) {
    std::printf("%-26.2f %18llu\n", stale,
                static_cast<unsigned long long>(switch_failure_broken_conns(
                    topo, assignment, demands, /*failed=*/0, stale)));
  }
  bench::emit_headlines("deployment_binpack");
  return 0;
}
