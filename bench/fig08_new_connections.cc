// Figure 8: CDF of new connections per VIP in one minute — the arrival rate
// that determines how many pending connections a DIP-pool update races with.
#include "bench_common.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 8 — New connections per VIP per minute",
      "a VIP can see more than 50M new connections in a minute");

  const auto clusters = workload::generate_population({});
  std::vector<double> busiest, median_vip;
  for (const auto& c : clusters) {
    busiest.push_back(static_cast<double>(c.new_conns_per_min_vip_max));
    median_vip.push_back(static_cast<double>(c.new_conns_per_min_vip_p50));
  }
  const auto busiest_cdf = sim::EmpiricalCdf::from_samples(busiest);
  std::printf("\n-- busiest VIP per cluster --\n");
  bench::print_cdf(busiest_cdf, "new conns/min");
  std::printf("\n-- median VIP per cluster --\n");
  bench::print_cdf(sim::EmpiricalCdf::from_samples(median_vip), "new conns/min");

  std::printf("\nmax busiest-VIP arrivals: %.3g/min (paper: >50M observed)\n",
              busiest_cdf.quantile(1.0));
  std::printf(
      "implication: at 1M new conns/min and a 500 us learning-filter "
      "timeout, ~8 connections are always pending (paper §4.3)\n");
  bench::headline("busiest_vip_new_conns_per_min_max", busiest_cdf.quantile(1.0),
                  "paper: >50M observed");
  bench::emit_headlines("fig08_new_connections");
  return 0;
}
