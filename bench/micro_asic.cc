// Microbenchmarks of the ASIC-model data structures (google-benchmark):
// hashing, cuckoo insert/lookup at increasing occupancy, bloom filter ops,
// Maglev table build, meter marking. These correspond to the §5.2 control-
// plane cost discussion (hash computation dominates the switch CPU's ~200K
// insertions/second; cuckoo search is the second-largest cost).
#include <benchmark/benchmark.h>

#include "asic/bloom_filter.h"
#include "asic/cuckoo_table.h"
#include "asic/meter.h"
#include "lb/dip_pool.h"
#include "lb/maglev.h"
#include "net/hash.h"

using namespace silkroad;

namespace {

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        {net::IpAddress::v4(0x14000001), 80},
                        net::Protocol::kTcp};
}

void BM_HashFiveTuple(benchmark::State& state) {
  const auto flow = make_flow(1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_five_tuple(flow, seed++));
  }
}
BENCHMARK(BM_HashFiveTuple);

void BM_ConnectionDigest(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::connection_digest(make_flow(i++), 16));
  }
}
BENCHMARK(BM_ConnectionDigest);

void BM_CuckooInsert(benchmark::State& state) {
  // Fill to the requested occupancy (in %), then measure insert+erase pairs
  // at that load — the regime the switch CPU's 200K/s figure lives in.
  const double occupancy = static_cast<double>(state.range(0)) / 100.0;
  asic::CuckooConfig config;
  config.buckets_per_stage = 4096;
  asic::DigestCuckooTable table(config);
  const auto target = static_cast<std::uint32_t>(
      static_cast<double>(table.capacity()) * occupancy);
  for (std::uint32_t i = 0; i < target; ++i) table.insert(make_flow(i), 1);
  std::uint32_t next = target;
  for (auto _ : state) {
    table.insert(make_flow(next), 1);
    table.erase(make_flow(next));
    ++next;
  }
  state.counters["moves/op"] = benchmark::Counter(
      static_cast<double>(table.total_moves()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CuckooInsert)->Arg(50)->Arg(80)->Arg(90)->Arg(95);

void BM_CuckooLookup(benchmark::State& state) {
  asic::CuckooConfig config;
  config.buckets_per_stage = 4096;
  asic::DigestCuckooTable table(config);
  for (std::uint32_t i = 0; i < table.capacity() * 9 / 10; ++i) {
    table.insert(make_flow(i), 1);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(make_flow(i++ % 1000)));
  }
}
BENCHMARK(BM_CuckooLookup);

void BM_BloomInsertQuery(benchmark::State& state) {
  asic::BloomFilter bloom(static_cast<std::size_t>(state.range(0)), 3);
  std::uint32_t i = 0;
  for (auto _ : state) {
    bloom.insert(make_flow(i));
    benchmark::DoNotOptimize(bloom.maybe_contains(make_flow(i + 1)));
    ++i;
  }
}
BENCHMARK(BM_BloomInsertQuery)->Arg(8)->Arg(256)->Arg(1024);

void BM_MaglevBuild(benchmark::State& state) {
  std::vector<net::Endpoint> backends;
  for (int i = 0; i < state.range(0); ++i) {
    backends.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  for (auto _ : state) {
    lb::MaglevTable table(backends, 65537);
    benchmark::DoNotOptimize(table.table_size());
  }
}
BENCHMARK(BM_MaglevBuild)->Arg(16)->Arg(128)->Arg(512);

void BM_DipPoolSelect(benchmark::State& state) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < 64; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  lb::DipPool pool(dips, lb::PoolSemantics::kStableResilient);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.select(make_flow(i++)));
  }
}
BENCHMARK(BM_DipPoolSelect);

void BM_MeterMark(benchmark::State& state) {
  asic::TwoRateThreeColorMeter meter(
      {.cir_bps = 1e9, .eir_bps = 1e9, .cbs_bytes = 65536, .ebs_bytes = 65536});
  sim::Time t = 0;
  for (auto _ : state) {
    t += 800;
    benchmark::DoNotOptimize(meter.mark(t, 100));
  }
}
BENCHMARK(BM_MeterMark);

}  // namespace

BENCHMARK_MAIN();
