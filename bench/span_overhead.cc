// Span-tracing overhead gate (DESIGN.md §12): the chaos-style control-plane
// scenario run as interleaved untraced/traced pairs — SpanCollector disabled
// vs enabled — with the overhead taken as the median per-pair CPU-time
// ratio. The tracing contract is that the causal span tree is cheap enough
// to leave on everywhere: the headline span_overhead_pct must stay under 5%
// of the untraced run, and the committed baseline pins that.
// Sim-side numbers (flows, spans, audit problems) are identical across the
// two runs by construction — tracing must never change behavior.
#include <algorithm>
#include <ctime>

#include "bench_common.h"
#include "deploy/fleet.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

constexpr std::uint64_t kSeed = 0;
constexpr std::size_t kSwitches = 3;
constexpr std::size_t kVips = 2;
constexpr std::size_t kDipsPerVip = 8;
constexpr sim::Time kHorizon = 30 * sim::kSecond;
constexpr int kReps = 9;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 +
                            static_cast<std::uint32_t>(v * 256 + i)),
         20});
  }
  return dips;
}

struct RunResult {
  double cpu_ms = 0;
  std::uint64_t flows = 0;
  std::uint64_t violations = 0;
  std::uint64_t spans_started = 0;
  std::uint64_t span_events = 0;
  std::size_t audit_problems = 0;
  bool converged = false;
};

/// Process CPU time: the sim is single-threaded and CPU-bound, so this is
/// the throughput signal — and unlike wall clock it is immune to the
/// scheduler and to noisy neighbors on shared CI machines.
double cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return 1e3 * static_cast<double>(ts.tv_sec) +
         1e-6 * static_cast<double>(ts.tv_nsec);
}

RunResult run_once(bool spans_enabled) {
  const double start = cpu_ms();

  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.enable_version_reuse = false;

  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.jitter = 100 * sim::kMicrosecond;
  channel.drop_probability = 0.05;
  channel.reorder_probability = 0.05;
  channel.reorder_extra = 300 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.retry_backoff = 2.0;
  channel.resync_after_retries = 5;
  channel.seed = 0xC0117301ULL ^ kSeed;

  deploy::SilkRoadFleet fleet(sim, config, kSwitches, 0xFEE7ULL + kSeed,
                              channel);
  fleet.spans().set_enabled(spans_enabled);

  // A dense maintenance cycle: one membership update every 200 ms per VIP
  // (alternating remove/re-add of the last DIP), so span minting, channel
  // legs, retransmits, and 3-step executions all run continuously.
  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = kHorizon;
  scenario_config.seed = 0xC4405ULL ^ kSeed;
  for (std::size_t v = 0; v < kVips; ++v) {
    workload::FlowGenerator::VipLoad load;
    load.vip = vip_of(v);
    load.arrivals_per_min = 9600;
    load.profile = {"span-overhead", 2.0, 10.0, 1e6, 5e6};
    scenario_config.vip_loads.push_back(load);
    scenario_config.dip_pools.push_back(dips_of(v));
    const auto dip = dips_of(v)[kDipsPerVip - 1];
    bool remove = true;
    for (sim::Time at = sim::kSecond; at < kHorizon;
         at += 400 * sim::kMillisecond) {
      scenario_config.updates.push_back(
          {at + static_cast<sim::Time>(v) * 200 * sim::kMillisecond, vip_of(v),
           dip,
           remove ? workload::UpdateAction::kRemoveDip
                  : workload::UpdateAction::kAddDip,
           workload::UpdateCause::kServiceUpgrade});
      remove = !remove;
    }
  }
  lb::Scenario scenario(sim, fleet, scenario_config);
  const lb::ScenarioStats stats = scenario.run();

  RunResult result;
  result.cpu_ms = cpu_ms() - start;
  result.flows = stats.flows;
  result.violations = stats.violations;
  result.spans_started = fleet.spans().total_started();
  result.span_events = fleet.spans().events_recorded();
  result.audit_problems = fleet.spans().audit_complete().size();
  result.converged = fleet.converged();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "span tracing overhead — chaos-style control plane, traced vs untraced",
      "tracing must be cheap enough to leave on: <5% of untraced wall clock");

  // Interleaved pairs: each rep runs untraced then traced back to back, so
  // both sides of a pair see the same machine conditions; the median of the
  // per-pair ratios is robust to load drift across the whole measurement.
  // (A warm-up pair is discarded — it carries cold caches and page faults.)
  (void)run_once(false);
  (void)run_once(true);
  RunResult base;
  RunResult traced;
  std::vector<double> ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult u = run_once(/*spans_enabled=*/false);
    const RunResult t = run_once(/*spans_enabled=*/true);
    if (rep == 0 || u.cpu_ms < base.cpu_ms) base = u;
    if (rep == 0 || t.cpu_ms < traced.cpu_ms) traced = t;
    if (u.cpu_ms > 0) ratios.push_back(t.cpu_ms / u.cpu_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct =
      ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);

  std::printf("\n%-28s %12s %12s\n", "", "untraced", "traced");
  std::printf("%-28s %12.1f %12.1f\n", "cpu_ms (min of 9)", base.cpu_ms,
              traced.cpu_ms);
  std::printf("%-28s %12llu %12llu\n", "flows",
              static_cast<unsigned long long>(base.flows),
              static_cast<unsigned long long>(traced.flows));
  std::printf("%-28s %12llu %12llu\n", "spans_started",
              static_cast<unsigned long long>(base.spans_started),
              static_cast<unsigned long long>(traced.spans_started));
  std::printf("%-28s %12llu %12llu\n", "span_events",
              static_cast<unsigned long long>(base.span_events),
              static_cast<unsigned long long>(traced.span_events));
  std::printf("%-28s %12.2f%%  (median of %zu interleaved pairs)\n",
              "span_overhead_pct", overhead_pct, ratios.size());

  const bool behavior_identical = base.flows == traced.flows &&
                                  base.violations == traced.violations &&
                                  base.converged && traced.converged;
  const bool complete = traced.audit_problems == 0 &&
                        traced.spans_started > 0 && base.spans_started == 0;

  // Absolute CPU ms is machine-dependent and deliberately NOT a headline; the
  // committed baseline pins the relative overhead and the sim-side counts.
  bench::headline("span_overhead_pct", overhead_pct,
                  "traced CPU time over untraced, percent (budget: <5)");
  bench::headline("spans_started", static_cast<double>(traced.spans_started),
                  "update/resync spans minted in the traced run");
  bench::headline("span_audit_problems",
                  static_cast<double>(traced.audit_problems),
                  "incomplete span legs at quiesce (must be 0)");
  bench::headline("behavior_identical", behavior_identical ? 1.0 : 0.0,
                  "tracing changed no sim-visible outcome (must be 1)");
  bench::emit_headlines("span_overhead");

  if (!behavior_identical || !complete) return 1;
  return overhead_pct < 5.0 ? 0 : 1;
}
