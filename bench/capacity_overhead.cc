// Capacity-ledger overhead gate (DESIGN.md §15): the chaos-style
// control-plane scenario run as interleaved pairs — Config::capacity_telemetry
// off vs on — with the overhead taken as the median per-pair CPU-time ratio.
// The ledger's contract is that it is cheap enough to leave on everywhere:
// the per-packet cost is one uint64 compare (the poll rate limiter) and a
// full probe sweep at most once per capacity_poll_interval. The headline
// capacity_overhead_pct must stay under 5% of the untracked run, and the
// committed baseline pins that. Sim-side numbers (flows, violations,
// convergence) are identical across the two runs by construction — the
// ledger only observes, it must never change behavior.
#include <algorithm>
#include <ctime>

#include "bench_common.h"
#include "deploy/fleet.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

constexpr std::uint64_t kSeed = 0;
constexpr std::size_t kSwitches = 3;
constexpr std::size_t kVips = 2;
constexpr std::size_t kDipsPerVip = 8;
constexpr sim::Time kHorizon = 30 * sim::kSecond;
constexpr int kReps = 9;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back(
        {net::IpAddress::v4(0x0A000000 +
                            static_cast<std::uint32_t>(v * 256 + i)),
         20});
  }
  return dips;
}

struct RunResult {
  double cpu_ms = 0;
  std::uint64_t flows = 0;
  std::uint64_t violations = 0;
  std::size_t ledger_tables = 0;
  std::uint64_t alarm_transitions = 0;
  bool converged = false;
};

/// Process CPU time: the sim is single-threaded and CPU-bound, so this is
/// the throughput signal — and unlike wall clock it is immune to the
/// scheduler and to noisy neighbors on shared CI machines.
double cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return 1e3 * static_cast<double>(ts.tv_sec) +
         1e-6 * static_cast<double>(ts.tv_nsec);
}

RunResult run_once(bool ledger_enabled) {
  const double start = cpu_ms();

  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(4096);
  config.enable_version_reuse = false;
  config.capacity_telemetry = ledger_enabled;

  fault::ControlChannel::Config channel;
  channel.base_delay = 200 * sim::kMicrosecond;
  channel.jitter = 100 * sim::kMicrosecond;
  channel.drop_probability = 0.05;
  channel.reorder_probability = 0.05;
  channel.reorder_extra = 300 * sim::kMicrosecond;
  channel.retry_timeout = 1 * sim::kMillisecond;
  channel.retry_backoff = 2.0;
  channel.resync_after_retries = 5;
  channel.seed = 0xC0117301ULL ^ kSeed;

  deploy::SilkRoadFleet fleet(sim, config, kSwitches, 0xFEE7ULL + kSeed,
                              channel);

  // The same dense maintenance cycle the span-overhead gate uses: one
  // membership update every 200 ms per VIP, so connection learning, DIP-pool
  // version churn, and the ledger's poll sites all run continuously.
  lb::ScenarioConfig scenario_config;
  scenario_config.horizon = kHorizon;
  scenario_config.seed = 0xC4405ULL ^ kSeed;
  for (std::size_t v = 0; v < kVips; ++v) {
    workload::FlowGenerator::VipLoad load;
    load.vip = vip_of(v);
    load.arrivals_per_min = 9600;
    load.profile = {"capacity-overhead", 2.0, 10.0, 1e6, 5e6};
    scenario_config.vip_loads.push_back(load);
    scenario_config.dip_pools.push_back(dips_of(v));
    const auto dip = dips_of(v)[kDipsPerVip - 1];
    bool remove = true;
    for (sim::Time at = sim::kSecond; at < kHorizon;
         at += 400 * sim::kMillisecond) {
      scenario_config.updates.push_back(
          {at + static_cast<sim::Time>(v) * 200 * sim::kMillisecond, vip_of(v),
           dip,
           remove ? workload::UpdateAction::kRemoveDip
                  : workload::UpdateAction::kAddDip,
           workload::UpdateCause::kServiceUpgrade});
      remove = !remove;
    }
  }
  lb::Scenario scenario(sim, fleet, scenario_config);
  const lb::ScenarioStats stats = scenario.run();

  RunResult result;
  result.cpu_ms = cpu_ms() - start;
  result.flows = stats.flows;
  result.violations = stats.violations;
  result.converged = fleet.converged();
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    const auto& ledger = fleet.switch_at(s).capacity();
    result.ledger_tables += ledger.table_count();
    result.alarm_transitions += ledger.total_transitions();
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "capacity ledger overhead — chaos-style control plane, ledger on vs off",
      "the SRAM ledger must be cheap enough to leave on: <5% CPU overhead");

  // Interleaved pairs: each rep runs untracked then tracked back to back, so
  // both sides of a pair see the same machine conditions; the median of the
  // per-pair ratios is robust to load drift across the whole measurement.
  // (A warm-up pair is discarded — it carries cold caches and page faults.)
  (void)run_once(false);
  (void)run_once(true);
  RunResult base;
  RunResult tracked;
  std::vector<double> ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult u = run_once(/*ledger_enabled=*/false);
    const RunResult t = run_once(/*ledger_enabled=*/true);
    if (rep == 0 || u.cpu_ms < base.cpu_ms) base = u;
    if (rep == 0 || t.cpu_ms < tracked.cpu_ms) tracked = t;
    if (u.cpu_ms > 0) ratios.push_back(t.cpu_ms / u.cpu_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct =
      ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);

  std::printf("\n%-28s %12s %12s\n", "", "ledger off", "ledger on");
  std::printf("%-28s %12.1f %12.1f\n", "cpu_ms (min of 9)", base.cpu_ms,
              tracked.cpu_ms);
  std::printf("%-28s %12llu %12llu\n", "flows",
              static_cast<unsigned long long>(base.flows),
              static_cast<unsigned long long>(tracked.flows));
  std::printf("%-28s %12zu %12zu\n", "ledger tables", base.ledger_tables,
              tracked.ledger_tables);
  std::printf("%-28s %12llu %12llu\n", "alarm transitions",
              static_cast<unsigned long long>(base.alarm_transitions),
              static_cast<unsigned long long>(tracked.alarm_transitions));
  std::printf("%-28s %12.2f%%  (median of %zu interleaved pairs)\n",
              "capacity_overhead_pct", overhead_pct, ratios.size());

  const bool behavior_identical = base.flows == tracked.flows &&
                                  base.violations == tracked.violations &&
                                  base.converged && tracked.converged;
  // The disabled side registers no tables at all; the enabled side carries
  // the four SRAM-bearing tables on every switch.
  const bool ledger_live = base.ledger_tables == 0 &&
                           tracked.ledger_tables == 4 * kSwitches;

  // Absolute CPU ms is machine-dependent and deliberately NOT a headline; the
  // committed baseline pins the relative overhead and the sim-side counts.
  bench::headline("capacity_overhead_pct", overhead_pct,
                  "ledger-on CPU time over ledger-off, percent (budget: <5)");
  bench::headline("ledger_tables", static_cast<double>(tracked.ledger_tables),
                  "SRAM tables registered across the fleet (4 per switch)");
  bench::headline("behavior_identical", behavior_identical ? 1.0 : 0.0,
                  "the ledger changed no sim-visible outcome (must be 1)");
  bench::emit_headlines("capacity_overhead");

  if (!behavior_identical || !ledger_live) return 1;
  return overhead_pct < 5.0 ? 0 : 1;
}
