// Control-plane ablations (§5.2):
//  (a) multi-pipe CPU insertion — the paper expects 200K inserts/s on one
//      core and suggests "multiple cores to handle insertions into different
//      physical pipes"; how does the drain time of a connection burst scale?
//  (b) ConnTable occupancy — how hard can the table be packed before inserts
//      fail and connections spill to the software fallback ("treating the
//      ConnTable as a cache of connections", §7)?
#include "bench_common.h"
#include "core/silkroad_switch.h"

using namespace silkroad;

namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::Packet syn_of(std::uint32_t client) {
  net::Packet p;
  p.flow = {{net::IpAddress::v4(0x0B000000 + client), 1234}, vip_ep(),
            net::Protocol::kTcp};
  p.syn = true;
  p.size_bytes = 64;
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "§5.2 ablations — control-plane scaling knobs",
      "one CPU core inserts ~200K conns/s; multiple cores scale it across "
      "pipes; ConnTable packs to ~95% before spilling to software");

  std::printf("\n-- (a) burst drain time vs CPU pipes (100K-conn burst, "
              "200K/s per pipe) --\n");
  std::printf("%-8s %18s %14s\n", "pipes", "drain time (s)", "speedup");
  double base = 0;
  for (const std::size_t pipes : {1u, 2u, 4u, 8u}) {
    sim::Simulator sim;
    core::SilkRoadSwitch::Config config;
    config.conn_table = core::SilkRoadSwitch::conn_table_for(200'000);
    config.cpu = {.tasks_per_second = 200'000.0, .pipes = pipes};
    config.learning = {.capacity = 4096, .timeout = sim::kMillisecond};
    core::SilkRoadSwitch sw(sim, config);
    sw.add_vip(vip_ep(), make_dips(16));
    for (std::uint32_t i = 0; i < 100'000; ++i) sw.process_packet(syn_of(i));
    sim.run();
    const double secs = sim::to_seconds(sim.now());
    if (pipes == 1) base = secs;
    std::printf("%-8zu %18.3f %13.2fx\n", pipes, secs, base / secs);
    if (pipes == 8) {
      bench::headline("drain_speedup_8_pipes", base / secs,
                      "multi-core insertion scales across pipes");
    }
  }

  std::printf("\n-- (b) ConnTable occupancy vs software spill --\n");
  std::printf("(16K-entry table; offering progressively more concurrent "
              "connections)\n");
  std::printf("%-14s %12s %16s %18s\n", "offered/cap", "inserted", "spilled",
              "spilled share");
  for (const double load : {0.5, 0.8, 0.9, 0.95, 1.0, 1.1}) {
    sim::Simulator sim;
    core::SilkRoadSwitch::Config config;
    config.conn_table.stages = 4;
    config.conn_table.buckets_per_stage = 1024;  // 16K slots
    config.cpu = {.tasks_per_second = 2e6};
    config.learning = {.capacity = 4096, .timeout = sim::kMillisecond};
    core::SilkRoadSwitch sw(sim, config);
    sw.add_vip(vip_ep(), make_dips(16));
    const auto offered = static_cast<std::uint32_t>(
        static_cast<double>(sw.conn_table().capacity()) * load);
    for (std::uint32_t i = 0; i < offered; ++i) sw.process_packet(syn_of(i));
    sim.run();
    const auto& stats = sw.stats();
    std::printf("%-14.2f %12llu %16llu %17.2f%%\n", load,
                static_cast<unsigned long long>(stats.inserts),
                static_cast<unsigned long long>(stats.software_fallback_conns),
                100.0 * static_cast<double>(stats.software_fallback_conns) /
                    offered);
  }
  std::printf("\n(spilled connections keep exact software mappings — the §7 "
              "\"ConnTable as cache\" fallback; a hybrid deployment would "
              "send them to SLBs instead, see core/hybrid.h)\n");
  bench::emit_headlines("ablation_control_plane");
  return 0;
}
