// Figure 5: the dilemma of keeping ConnTable only in SLBs (Duet-style):
// (a) fraction of traffic handled in SLBs and (b) fraction of connections
// with PCC violations, vs DIP-pool update rate, for Migrate-10min /
// Migrate-1min / Migrate-PCC, on Hadoop-like (10 s median) flows, plus a
// cache-traffic (4.5 min median) sensitivity point.
#include "bench_common.h"
#include "lb/duet.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

struct Point {
  double slb_pct;
  double pcc_pct;
};

Point run(lb::DuetLoadBalancer::Config lb_config, double updates_per_min,
          const workload::FlowProfile& profile, double scale) {
  sim::Simulator sim;
  lb::DuetLoadBalancer duet(sim, lb_config);

  // Scaled PoP model: the paper uses 149 VIPs at 18.7K new conns/min/VIP;
  // we run `vips` VIPs at `rate` conns/min for `horizon`.
  const int vips = static_cast<int>(12 * scale);
  const double rate = 300.0 * scale;
  lb::ScenarioConfig config;
  config.horizon = static_cast<sim::Time>(12 * sim::kMinute);
  config.seed = 1005;
  sim::Rng seeder(77);
  for (int v = 0; v < vips; ++v) {
    const net::Endpoint vip{net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 80};
    config.vip_loads.push_back({vip, rate, profile, false});
    std::vector<net::Endpoint> dips;
    for (int d = 0; d < 24; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A000000 +
                                         static_cast<std::uint32_t>(v * 256 + d)),
                      20});
    }
    config.dip_pools.push_back(dips);
    workload::UpdateGenerator gen({.seed = seeder.next()},
                                  vip, config.dip_pools.back());
    auto updates =
        gen.generate(updates_per_min / vips, config.horizon);
    config.updates.insert(config.updates.end(), updates.begin(), updates.end());
  }
  lb::Scenario scenario(sim, duet, config);
  const auto stats = scenario.run();
  return Point{100.0 * stats.slb_traffic_fraction,
               100.0 * stats.violation_fraction};
}

}  // namespace

int main() {
  const double scale = bench::scale_factor();
  bench::print_header(
      "Figure 5 — SLB load vs PCC violations (ConnTable in SLBs)",
      "at 50 upd/min: Migrate-10min handles 74.3% of traffic in SLBs with "
      "0.3% broken conns; Migrate-1min 13.2% traffic but 1.4% broken; "
      "Migrate-PCC 93.8% traffic, 0 broken. Cache traffic is far worse.");
  std::printf("scale factor %.2f (see bench_common.h)\n\n", scale);

  const lb::DuetLoadBalancer::Config m10 = {
      .policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
      .migrate_period = 10 * sim::kMinute};
  const lb::DuetLoadBalancer::Config m1 = {
      .policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
      .migrate_period = sim::kMinute};
  const lb::DuetLoadBalancer::Config mpcc = {
      .policy = lb::DuetLoadBalancer::MigratePolicy::kWaitPcc};

  std::printf("-- Hadoop-like traffic (median flow 10 s) --\n");
  std::printf("%-10s | %-22s | %-22s | %-22s\n", "", "Migrate-10min",
              "Migrate-1min", "Migrate-PCC");
  std::printf("%-10s | %10s %11s | %10s %11s | %10s %11s\n", "upd/min",
              "SLB-traf%", "PCC-viol%", "SLB-traf%", "PCC-viol%", "SLB-traf%",
              "PCC-viol%");
  for (const double upd : {1.0, 10.0, 20.0, 50.0}) {
    const auto a = run(m10, upd, workload::FlowProfile::hadoop(), scale);
    const auto b = run(m1, upd, workload::FlowProfile::hadoop(), scale);
    const auto c = run(mpcc, upd, workload::FlowProfile::hadoop(), scale);
    std::printf("%-10.0f | %10.1f %11.3f | %10.1f %11.3f | %10.1f %11.3f\n",
                upd, a.slb_pct, a.pcc_pct, b.slb_pct, b.pcc_pct, c.slb_pct,
                c.pcc_pct);
  }

  std::printf("\n-- cache traffic (median flow 4.5 min), 50 upd/min --\n");
  const auto cache10 = run(m10, 50.0, workload::FlowProfile::cache(), scale);
  std::printf("Migrate-10min: SLB traffic %.1f%%, PCC violations %.1f%% "
              "(paper: 53.5%% of connections broken)\n",
              cache10.slb_pct, cache10.pcc_pct);
  bench::headline("cache_migrate10_slb_traffic_pct", cache10.slb_pct);
  bench::headline("cache_migrate10_pcc_violations_pct", cache10.pcc_pct,
                  "paper: 53.5% of connections broken");
  bench::emit_headlines("fig05_slb_dilemma");
  return 0;
}
