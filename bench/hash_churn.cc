// Ablation: how many ongoing flows re-map when one DIP leaves/joins, per
// hashing scheme. This is the quantity that becomes PCC violations whenever
// per-connection state is missing (stateless ECMP, Duet's migrate-back,
// SilkRoad flows not yet pinned) — the paper's motivation in one number.
#include <map>

#include "bench_common.h"
#include "lb/dip_pool.h"
#include "lb/hash_ring.h"
#include "lb/maglev.h"

using namespace silkroad;
using namespace silkroad::lb;

namespace {

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

net::FiveTuple make_flow(std::uint32_t client) {
  return net::FiveTuple{{net::IpAddress::v4(0x0B000000 + client), 1234},
                        {net::IpAddress::v4(0x14000001), 80},
                        net::Protocol::kTcp};
}

constexpr std::uint32_t kFlows = 40000;

template <typename SelectBefore, typename SelectAfter>
double churn(SelectBefore&& before, SelectAfter&& after) {
  std::uint32_t moved = 0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    const auto a = before(make_flow(i));
    const auto b = after(make_flow(i));
    if (a && b && !(*a == *b)) ++moved;
  }
  return 100.0 * moved / kFlows;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — flow re-mapping (%) when one of N DIPs is removed",
      "stateless ECMP re-maps ~everything (the §2.1 PCC problem); "
      "consistent schemes re-map ~1/N; SilkRoad's pinned flows re-map 0");

  std::printf("\n%-8s %14s %18s %12s %12s %12s\n", "N", "ecmp-compact",
              "resilient-slots", "maglev", "hash-ring", "ideal 1/N");
  for (const int n : {8, 16, 64, 256}) {
    const auto dips = make_dips(n);
    const auto& victim = dips[static_cast<std::size_t>(n / 2)];

    DipPool compact_before(dips, PoolSemantics::kCompactEcmp);
    DipPool compact_after = compact_before;
    compact_after.remove(victim);
    const double ecmp = churn(
        [&](const net::FiveTuple& f) { return compact_before.select(f); },
        [&](const net::FiveTuple& f) { return compact_after.select(f); });

    DipPool resilient_before(dips, PoolSemantics::kStableResilient);
    DipPool resilient_after = resilient_before;
    resilient_after.remove(victim);
    const double resilient = churn(
        [&](const net::FiveTuple& f) { return resilient_before.select(f); },
        [&](const net::FiveTuple& f) { return resilient_after.select(f); });

    MaglevTable maglev_before(dips, 65537);
    auto rest = dips;
    rest.erase(rest.begin() + n / 2);
    MaglevTable maglev_after(rest, 65537);
    const double maglev = churn(
        [&](const net::FiveTuple& f) { return maglev_before.select(f); },
        [&](const net::FiveTuple& f) { return maglev_after.select(f); });

    HashRing ring_before;
    for (const auto& d : dips) ring_before.add(d);
    HashRing ring_after = ring_before;
    ring_after.remove(victim);
    const double ring = churn(
        [&](const net::FiveTuple& f) { return ring_before.select(f); },
        [&](const net::FiveTuple& f) { return ring_after.select(f); });

    std::printf("%-8d %13.1f%% %17.1f%% %11.1f%% %11.1f%% %11.1f%%\n", n, ecmp,
                resilient, maglev, ring, 100.0 / n);
    if (n == 64) {
      bench::headline("ecmp_remap_pct_n64", ecmp,
                      "stateless ECMP re-maps ~everything");
      bench::headline("maglev_remap_pct_n64", maglev, "ideal is 1/N = 1.6%");
    }
  }

  std::printf(
      "\nand with per-connection state (SilkRoad ConnTable / SLB ConnTable): "
      "0%% — which is the whole point of §4\n");
  bench::emit_headlines("hash_churn");
  return 0;
}
