// Figure 14: memory saving from the digest and version compressions, per
// cluster, vs the naive 5-tuple -> DIP ConnTable.
#include "bench_common.h"
#include "core/memory_model.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 14 — ConnTable memory saving from digest + version",
      "every cluster saves >40%; PoPs ~85% (digest+version); Frontends ~50% "
      "(digest only); Backends 60-95%");

  const auto clusters = workload::generate_population({});
  std::vector<double> digest_only_savings, both_savings;
  for (const auto& c : clusters) {
    const std::size_t conns = c.active_conns_per_tor_p99;
    const auto naive =
        core::conn_table_bytes(conns, core::naive_entry(c.ipv6));
    const auto digest =
        core::conn_table_bytes(conns, core::digest_entry(c.ipv6));
    const auto both =
        core::conn_table_bytes(conns, core::digest_version_entry());
    digest_only_savings.push_back(100.0 * core::memory_saving(naive, digest));
    both_savings.push_back(100.0 * core::memory_saving(naive, both));
  }
  std::printf("\n-- saving with digest only (%%)--\n");
  bench::print_cdf(sim::EmpiricalCdf::from_samples(digest_only_savings), "%");
  std::printf("\n-- saving with digest + version (%%)--\n");
  const auto both_cdf = sim::EmpiricalCdf::from_samples(both_savings);
  bench::print_cdf(both_cdf, "%");
  std::printf("\nminimum saving across clusters: %.1f%% (paper: >40%%)\n",
              both_cdf.quantile(0.0 + 1e-9));

  // Digest-width ablation (paper §6.1 trade-off): FP rate vs SRAM for one
  // PoP at 2.77M new connections/minute.
  std::printf("\n-- digest width ablation (PoP, 10M-entry table) --\n");
  std::printf("%-12s %12s %22s\n", "digest bits", "SRAM (MB)",
              "expected FP per 2.77M conns");
  for (const unsigned bits : {12u, 16u, 20u, 24u}) {
    const auto bytes = core::conn_table_bytes(
        10'000'000, core::digest_version_entry(bits));
    // A new flow false-hits if any of the ~16 slots it addresses holds its
    // digest: p ~ 16 * occupancy * 2^-bits.
    const double p_fp = 16.0 * 0.9 / std::pow(2.0, bits);
    std::printf("%-12u %12.1f %22.1f\n", bits, bytes / 1e6, p_fp * 2.77e6);
  }
  std::printf("(paper: 16-bit digest w/ 32 MB -> ~270 FPs/min (0.01%%); "
              "24-bit w/ 42.8 MB -> 1.1/min)\n");
  bench::headline("min_memory_saving_pct", both_cdf.quantile(0.0 + 1e-9),
                  "paper: >40%");
  bench::emit_headlines("fig14_memory_saving");
  return 0;
}
