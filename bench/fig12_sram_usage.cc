// Figure 12: CDF (across clusters) of SilkRoad's SRAM usage per ToR switch —
// ConnTable (28-bit packed entries) + DIPPoolTable + TransitTable.
#include "bench_common.h"
#include "core/memory_model.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 12 — SRAM usage of SilkRoad per ToR switch",
      "PoPs: 14 MB median / 32 MB peak; Backends: 15 MB median / 58 MB peak; "
      "Frontends: <2 MB. All fit in 50-100 MB ASIC SRAM (Table 1)");

  const auto clusters = workload::generate_population({});
  double global_peak = 0;
  for (const auto type :
       {workload::ClusterType::kPoP, workload::ClusterType::kFrontend,
        workload::ClusterType::kBackend}) {
    std::vector<double> mb;
    for (const auto& c : clusters) {
      if (c.type != type) continue;
      const auto fp = core::silkroad_footprint(
          c.active_conns_per_tor_p99, static_cast<std::size_t>(c.dips),
          /*versions=*/8, c.ipv6);
      mb.push_back(static_cast<double>(fp.total()) / 1e6);
      global_peak = std::max(global_peak, mb.back());
    }
    const auto cdf = sim::EmpiricalCdf::from_samples(std::move(mb));
    std::printf("\n-- %s: SilkRoad SRAM per ToR (MB) --\n",
                workload::to_string(type));
    bench::print_cdf(cdf, "MB");
    std::printf("median %.1f MB, peak %.1f MB\n", cdf.quantile(0.5),
                cdf.quantile(1.0));
  }

  // Breakdown for the peak Backend (paper: ConnTable 91.7% of 58 MB, the
  // rest hosting 64 versions of 4187 IPv6 DIPs).
  const auto peak = core::silkroad_footprint(15'000'000, 4187, 64, true);
  std::printf(
      "\npeak Backend breakdown (15M conns, 64 versions x 4187 IPv6 DIPs):\n"
      "  ConnTable    %6.1f MB (%.1f%%)\n"
      "  DIPPoolTable %6.1f MB\n"
      "  TransitTable %6zu B\n"
      "  total        %6.1f MB   (paper: 58 MB, ConnTable 91.7%%)\n",
      peak.conn_table / 1e6,
      100.0 * static_cast<double>(peak.conn_table) /
          static_cast<double>(peak.total()),
      peak.dip_pool_table / 1e6, peak.transit_table, peak.total() / 1e6);
  std::printf("\nall clusters fit under %.0f MB (ASIC envelope 50-100 MB)\n",
              global_peak);
  bench::headline("global_peak_sram_mb", global_peak,
                  "ASIC envelope 50-100 MB");
  bench::headline("peak_backend_total_mb", peak.total() / 1e6,
                  "paper: 58 MB");
  bench::headline("peak_backend_conn_table_share_pct",
                  100.0 * static_cast<double>(peak.conn_table) /
                      static_cast<double>(peak.total()),
                  "paper: 91.7%");
  bench::emit_headlines("fig12_sram_usage");
  return 0;
}
