// Fleet convergence-observatory overhead gate (DESIGN.md §17).
//
// The FleetObserver rides every journal append, every in-order delivery,
// and every watermark advance — the update-heavy control-plane path. This
// bench pins its cost with interleaved observer-off/on pairs of an
// identical seeded update storm through a 3-switch fleet. Two
// noise-independent estimators are computed — the median per-pair CPU
// ratio, and the ratio of the minimum CPU across all runs of each side
// (best-of-N) — and the gated headline is the smaller: additive machine
// noise inflates one or the other (a burst during a single quiet-minimum
// run skews best-of-N; a noisy phase spanning several pairs skews the
// median), but a real regression raises the entire distribution and
// therefore both. Hard <5% budget enforced by the exit code. The observer
// must never change sim-visible behavior, its incremental digests must
// survive a full recompute, and a fault-free storm must end with zero
// silent divergences and a met convergence SLO.
#include <algorithm>
#include <ctime>
#include <random>
#include <vector>

#include "bench_common.h"
#include "deploy/fleet.h"

using namespace silkroad;

namespace {

// Each run must be long enough (~100ms) that per-pair CPU ratios are stable
// on a noisy shared machine; the median over the pairs absorbs the rest.
constexpr int kPairs = 9;
constexpr std::size_t kSwitches = 3;
constexpr std::size_t kVips = 2;
constexpr std::size_t kDipsPerVip = 16;
constexpr int kBatches = 300;
constexpr int kUpdatesPerBatch = 50;

net::Endpoint vip_of(std::size_t v) {
  return {net::IpAddress::v4(0x14000001 + static_cast<std::uint32_t>(v)), 80};
}

std::vector<net::Endpoint> dips_of(std::size_t v) {
  std::vector<net::Endpoint> dips;
  for (std::size_t i = 0; i < kDipsPerVip; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(
                                                        v * 256 + i)),
                    20});
  }
  return dips;
}

/// Process CPU time (see span_overhead.cc): immune to scheduler noise on
/// shared CI machines; the fleet run is single-threaded.
double cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return 1e3 * static_cast<double>(ts.tv_sec) +
         1e-6 * static_cast<double>(ts.tv_nsec);
}

struct RunResult {
  double cpu_ms = 0;
  std::uint64_t journal_head = 0;
  std::uint64_t retries = 0;
  std::uint64_t sessions = 0;
  bool converged = false;
  // Observer-side outcomes (observer-on runs only).
  bool digests_ok = true;
  std::uint64_t divergences = 0;
  std::uint64_t selfchecks = 0;
  bool slo_ok = true;
};

RunResult run_once(bool observe) {
  const double start = cpu_ms();
  sim::Simulator sim;
  core::SilkRoadSwitch::Config config;
  config.conn_table = core::SilkRoadSwitch::conn_table_for(8192);
  fault::ControlChannel::Config channel;
  channel.base_delay = 100 * sim::kMicrosecond;
  channel.jitter = 50 * sim::kMicrosecond;
  channel.seed = 0x0B57ULL;
  deploy::SyncConfig sync;
  sync.observe_convergence = observe;
  deploy::SilkRoadFleet fleet(sim, config, kSwitches, 0xFEE7ULL, channel,
                              sync);
  for (std::size_t v = 0; v < kVips; ++v) fleet.add_vip(vip_of(v), dips_of(v));
  sim.run();

  // Seeded storm of paired remove/add updates: heavy append + delivery +
  // watermark traffic, membership bounded, identical across on/off runs.
  std::mt19937_64 rng(0x51172D17ULL);
  for (int batch = 0; batch < kBatches; ++batch) {
    for (int i = 0; i < kUpdatesPerBatch; ++i) {
      const std::size_t v = rng() % kVips;
      const net::Endpoint dip = dips_of(v)[rng() % kDipsPerVip];
      workload::DipUpdate update;
      update.vip = vip_of(v);
      update.dip = dip;
      update.action = i % 2 == 0 ? workload::UpdateAction::kRemoveDip
                                 : workload::UpdateAction::kAddDip;
      update.cause = workload::UpdateCause::kServiceUpgrade;
      fleet.request_update(update);
    }
    sim.run();
  }

  RunResult result;
  result.cpu_ms = cpu_ms() - start;
  result.journal_head = fleet.journal_head();
  result.retries = fleet.ctrl_retries();
  result.sessions =
      fleet.delta_sessions() + fleet.full_sessions() + fleet.empty_sessions();
  result.converged = fleet.converged();
  if (obs::FleetObserver* observer = fleet.observer(); observer != nullptr) {
    observer->evaluate(sim.now());
    result.digests_ok = observer->verify_digests();
    result.divergences = observer->divergences();
    result.selfchecks = observer->selfchecks();
    result.slo_ok = observer->slo_ok();
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "fleet convergence-observatory overhead — digests on the update path",
      "the FleetObserver's incremental digests + lag accounting must cost "
      "<5% of the observer-off update-heavy control path and change nothing");

  (void)run_once(false);  // warm-up pair discarded
  (void)run_once(true);
  RunResult off;
  RunResult on;
  std::vector<double> ratios;
  for (int rep = 0; rep < kPairs; ++rep) {
    const RunResult u = run_once(/*observe=*/false);
    const RunResult t = run_once(/*observe=*/true);
    if (rep == 0 || u.cpu_ms < off.cpu_ms) off = u;
    if (rep == 0 || t.cpu_ms < on.cpu_ms) on = t;
    if (u.cpu_ms > 0) ratios.push_back(t.cpu_ms / u.cpu_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_pct =
      ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);
  const double best_of_pct =
      off.cpu_ms > 0 ? 100.0 * (on.cpu_ms / off.cpu_ms - 1.0) : 0.0;
  const double overhead_pct = std::min(median_pct, best_of_pct);

  std::printf("\n%zu switches, %zu vips x %zu dips, %d batches x %d updates\n",
              kSwitches, kVips, kDipsPerVip, kBatches, kUpdatesPerBatch);
  std::printf("%-28s %12s %12s\n", "", "observer off", "on");
  std::printf("%-28s %12.1f %12.1f\n", "cpu_ms (min of pairs)", off.cpu_ms,
              on.cpu_ms);
  std::printf("%-28s %12llu %12llu\n", "journal head",
              static_cast<unsigned long long>(off.journal_head),
              static_cast<unsigned long long>(on.journal_head));
  std::printf("%-28s %12llu %12llu\n", "digest selfchecks", 0ULL,
              static_cast<unsigned long long>(on.selfchecks));
  std::printf("%-28s %12.2f%%  (median of %zu interleaved pairs)\n",
              "fleet_obs_overhead_median_pct", median_pct, ratios.size());
  std::printf("%-28s %12.2f%%  (ratio of best-of-run CPU minima)\n",
              "fleet_obs_overhead_best_pct", best_of_pct);
  std::printf("%-28s %12.2f%%  (min of the two estimators)\n",
              "fleet_obs_overhead_pct", overhead_pct);

  const bool behavior_identical =
      off.journal_head == on.journal_head && off.retries == on.retries &&
      off.sessions == on.sessions && off.converged && on.converged;

  // Absolute times are machine-dependent and deliberately NOT headlines; the
  // baseline pins the invariants and the relative overhead.
  bench::headline("fleet_obs_overhead_pct", overhead_pct,
                  "observer-on over observer-off CPU, percent; min of the "
                  "median-pair and best-of-run estimators (budget: <5)");
  bench::headline("fleet_obs_overhead_median_pct", median_pct,
                  "median per-pair CPU ratio, percent (diagnostic)");
  bench::headline("fleet_obs_overhead_best_pct", best_of_pct,
                  "ratio of best-of-run CPU minima, percent (diagnostic)");
  bench::headline("behavior_identical", behavior_identical ? 1.0 : 0.0,
                  "observer changed no sim-visible outcome (must be 1)");
  bench::headline("digests_verified", on.digests_ok ? 1.0 : 0.0,
                  "incremental digests equal full recompute (must be 1)");
  bench::headline("zero_divergences", on.divergences == 0 ? 1.0 : 0.0,
                  "fault-free storm produced no silent divergence (must be 1)");
  bench::headline("slo_ok", on.slo_ok ? 1.0 : 0.0,
                  "convergence SLO met at quiescence (must be 1)");
  bench::emit_headlines("fleet_obs_overhead");

  if (!behavior_identical || !on.digests_ok || on.divergences != 0 ||
      !on.slo_ok) {
    return 1;
  }
  return overhead_pct < 5.0 ? 0 : 1;
}
