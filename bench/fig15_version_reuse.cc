// Figure 15: DIP-pool versions needed per 10-minute window, with and without
// version reuse, as the update rate grows.
//
// The dominant update source is the rolling reboot of a service upgrade
// (§3.1): a batch of DIPs is removed at one instant and each comes back a
// few minutes later. Three mechanisms keep the version count low, all
// modeled here exactly as in the library:
//   * batch coalescing — one version per same-instant removal batch,
//   * version reuse    — a returning DIP substitutes into the version that
//                        still holds its down predecessor (§4.2),
//   * recycling        — versions whose connections have drained return
//                        their number to the ring buffer (flows live a few
//                        minutes, so old versions steadily free up).
#include <deque>

#include "bench_common.h"
#include "core/version_manager.h"
#include "workload/update_gen.h"

using namespace silkroad;

namespace {

struct WindowResult {
  std::size_t max_live_versions;
  std::uint64_t reuses;
};

/// Replays `updates_in_window` rolling-reboot update events over a 10-minute
/// window. Each committed version is pinned by its cohort of connections for
/// `conn_lifetime` of simulated time, then released.
WindowResult run_window(bool reuse, int updates_in_window,
                        sim::Time conn_lifetime) {
  const net::Endpoint vip{net::IpAddress::v4(0x14000001), 80};
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < 64; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  core::VipVersionManager mgr(
      vip, dips,
      {.version_bits = 10, .enable_reuse = reuse,
       .semantics = lb::PoolSemantics::kStableResilient});

  // Build the rolling-reboot schedule: batches of 2 DIPs removed every
  // `step`, each DIP back 3 minutes later. 4 events per batch cycle.
  struct Event {
    sim::Time at;
    std::vector<workload::DipUpdate> batch;
  };
  std::vector<Event> events;
  const int cycles = updates_in_window / 4;
  const sim::Time window = 10 * sim::kMinute;
  const sim::Time step = window / (cycles + 1);
  const sim::Time downtime = 3 * sim::kMinute;
  for (int c = 0; c < cycles; ++c) {
    const sim::Time t = static_cast<sim::Time>(c + 1) * step;
    const auto& d1 = dips[static_cast<std::size_t>(2 * c) % dips.size()];
    const auto& d2 = dips[static_cast<std::size_t>(2 * c + 1) % dips.size()];
    events.push_back(
        {t,
         {{t, vip, d1, workload::UpdateAction::kRemoveDip,
           workload::UpdateCause::kServiceUpgrade},
          {t, vip, d2, workload::UpdateAction::kRemoveDip,
           workload::UpdateCause::kServiceUpgrade}}});
    events.push_back({t + downtime,
                      {{t + downtime, vip, d1, workload::UpdateAction::kAddDip,
                        workload::UpdateCause::kServiceUpgrade}}});
    events.push_back({t + downtime + sim::kSecond,
                      {{t + downtime + sim::kSecond, vip, d2,
                        workload::UpdateAction::kAddDip,
                        workload::UpdateCause::kServiceUpgrade}}});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });

  std::deque<std::pair<sim::Time, std::uint32_t>> releases;  // (when, version)
  std::size_t max_live = 1;
  mgr.acquire(mgr.current_version());
  releases.push_back({conn_lifetime, mgr.current_version()});
  for (const auto& event : events) {
    while (!releases.empty() && releases.front().first <= event.at) {
      mgr.release(releases.front().second);
      releases.pop_front();
    }
    const auto staged = mgr.stage_update_batch(event.batch);
    if (!staged) continue;
    mgr.commit(staged->target_version);
    mgr.acquire(staged->target_version);
    releases.push_back({event.at + conn_lifetime, staged->target_version});
    max_live = std::max(max_live, mgr.active_versions());
  }
  return WindowResult{max_live, mgr.versions_reused()};
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 15 — Benefit of version reuse (10-minute windows)",
      "up to 330 updates/10min need 330 versions (9 bits) without reuse, "
      "only 51 (6 bits) with reuse");

  std::printf("connections pin a version for ~4 minutes (flow-lifetime "
              "recycling); rolling reboot: 2 DIPs per batch, 3-min downtime\n");
  std::printf("\n%-22s %14s %14s %10s %10s\n", "updates per 10 min",
              "no reuse", "with reuse", "factor", "reuses");
  for (const int updates : {12, 40, 80, 160, 240, 330}) {
    const auto without = run_window(false, updates, 4 * sim::kMinute);
    const auto with = run_window(true, updates, 4 * sim::kMinute);
    std::printf("%-22d %14zu %14zu %9.1fx %10llu\n", updates,
                without.max_live_versions, with.max_live_versions,
                static_cast<double>(without.max_live_versions) /
                    static_cast<double>(with.max_live_versions),
                static_cast<unsigned long long>(with.reuses));
    if (updates == 330) {
      bench::headline("max_live_versions_no_reuse_330upd",
                      static_cast<double>(without.max_live_versions),
                      "paper: needs 9 version bits");
      bench::headline("max_live_versions_with_reuse_330upd",
                      static_cast<double>(with.max_live_versions),
                      "paper: <=64 versions (6 bits)");
    }
  }
  std::printf(
      "\nversion bits: ceil(log2(versions)) — paper: 9 bits without reuse vs "
      "6 bits (<=64 versions) with reuse at 330 updates\n");
  std::printf(
      "memory effect (paper): 10M conns + 4K DIPs -> 7.5 MB ConnTable + "
      "4.5 MB DIPPoolTable saved, 74.6%% total reduction\n");
  bench::emit_headlines("fig15_version_reuse");
  return 0;
}
