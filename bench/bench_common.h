// Shared helpers for the per-figure/table bench harnesses.
//
// Every harness prints (a) the series the paper plots, (b) the paper's
// headline numbers for side-by-side comparison, and (c) the scale it ran at.
// Scale: PCC scenario benches replay minutes of scaled-down traffic instead
// of the paper's one-hour 2.77M-conn/min traces; set SILKROAD_BENCH_SCALE
// (default 1.0, e.g. 4.0 for a longer, denser run) to trade time for
// fidelity. Analytic benches (memory/cost models) are exact and unscaled.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/exporters.h"
#include "obs/metrics.h"
#include "sim/distributions.h"

namespace silkroad::bench {

inline double scale_factor() {
  const char* env = std::getenv("SILKROAD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline void print_header(const std::string& title, const std::string& paper_note) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("=====================================================================\n");
}

/// Prints a CDF as "value  cumulative%" rows at standard grid points.
inline void print_cdf(const sim::EmpiricalCdf& cdf, const char* value_label,
                      const std::vector<double>& percentiles = {
                          0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
  std::printf("%-14s %12s\n", "CDF%", value_label);
  for (const double p : percentiles) {
    std::printf("%-14.0f %12.4g\n", 100 * p, cdf.quantile(p));
  }
}

/// Fraction of samples in `cdf` exceeding `threshold`, in percent.
inline double percent_above(const sim::EmpiricalCdf& cdf, double threshold) {
  return 100.0 * (1.0 - cdf.cdf(threshold));
}

// --- Machine-readable headline numbers (DESIGN.md §9) -----------------------
//
// Each harness records the numbers it prints as headline gauges and emits
// them as BENCH_<name>.json (obs JSON exporter format) so CI and plotting
// scripts consume the same values the console shows. Files land in
// SILKROAD_BENCH_JSON_DIR when set, else the working directory.

/// Process-wide registry backing headline().
inline obs::MetricsRegistry& headlines() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// Records one headline number, e.g. headline("pcc_violation_fraction", f).
inline void headline(const std::string& name, double value,
                     const std::string& help = "") {
  headlines().gauge(name, help)->set(value);
}

/// Writes the accumulated headlines as BENCH_<bench>.json and reports the
/// path on stdout. Call once at the end of main().
inline std::string emit_headlines(const std::string& bench) {
  const char* dir = std::getenv("SILKROAD_BENCH_JSON_DIR");
  const std::string path = std::string(dir == nullptr ? "." : dir) +
                           "/BENCH_" + bench + ".json";
  obs::write_file(path, obs::to_json(headlines().snapshot()));
  std::printf("headline JSON: %s\n", path.c_str());
  return path;
}

}  // namespace silkroad::bench
