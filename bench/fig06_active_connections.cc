// Figure 6: CDF (across clusters) of active connections per ToR switch, at
// the median and 99th-percentile minute snapshot.
#include "bench_common.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 6 — Active connections per ToR switch across clusters",
      "most loaded PoPs/Backends ~10M+ connections; Frontends far fewer "
      "(PoPs merge user-facing connections into few persistent ones)");

  const auto clusters = workload::generate_population({});
  for (const auto type :
       {workload::ClusterType::kPoP, workload::ClusterType::kFrontend,
        workload::ClusterType::kBackend}) {
    std::vector<double> p99s, p50s;
    for (const auto& c : clusters) {
      if (c.type != type) continue;
      p99s.push_back(static_cast<double>(c.active_conns_per_tor_p99));
      p50s.push_back(static_cast<double>(c.active_conns_per_tor_p50));
    }
    std::printf("\n-- %s: p99-minute active connections per ToR --\n",
                workload::to_string(type));
    const auto p99_cdf = sim::EmpiricalCdf::from_samples(std::move(p99s));
    bench::print_cdf(p99_cdf, "conns");
    std::printf("-- %s: median-minute --\n", workload::to_string(type));
    bench::print_cdf(sim::EmpiricalCdf::from_samples(std::move(p50s)), "conns");
    bench::headline(std::string(workload::to_string(type)) +
                        "_active_conns_per_tor_p99_max",
                    p99_cdf.quantile(1.0));
  }
  bench::emit_headlines("fig06_active_connections");
  return 0;
}
