// Figure 13: how many SLB servers one SilkRoad switch replaces, per cluster:
// #SLBs = peak pps / 12 Mpps; #SilkRoads = max(conns/10M, tbps/6.4).
#include "bench_common.h"
#include "core/memory_model.h"
#include "workload/cluster_model.h"

using namespace silkroad;

int main() {
  bench::print_header(
      "Figure 13 — Ratio of #SLBs to #SilkRoads per cluster",
      "PoPs 2-3x; Frontends 11x median; Backends 3x median, 277x peak; "
      "plus ~1/500 power and ~1/250 capital cost");

  const auto clusters = workload::generate_population({});
  for (const auto type :
       {workload::ClusterType::kPoP, workload::ClusterType::kFrontend,
        workload::ClusterType::kBackend}) {
    std::vector<double> ratios;
    for (const auto& c : clusters) {
      if (c.type != type) continue;
      const std::uint64_t cluster_conns =
          c.active_conns_per_tor_p99 * static_cast<std::uint64_t>(c.tor_switches);
      const auto slbs = core::slbs_required(c.peak_mpps);
      const auto silkroads =
          core::silkroads_required(cluster_conns, c.peak_gbps / 1000.0);
      ratios.push_back(static_cast<double>(slbs) /
                       static_cast<double>(silkroads));
    }
    const auto cdf = sim::EmpiricalCdf::from_samples(std::move(ratios));
    std::printf("\n-- %s: #SLB / #SilkRoad --\n", workload::to_string(type));
    bench::print_cdf(cdf, "ratio");
    std::printf("median %.1f, peak %.1f\n", cdf.quantile(0.5), cdf.quantile(1.0));
  }

  const auto cmp = core::cost_comparison();
  std::printf(
      "\ncost model (per equal packet rate): power ratio 1/%.0f, capital "
      "ratio 1/%.0f (paper: ~1/500 power, ~1/250 cost)\n",
      cmp.power_ratio, cmp.cost_ratio);
  bench::headline("power_ratio_inverse", cmp.power_ratio, "paper: ~500");
  bench::headline("cost_ratio_inverse", cmp.cost_ratio, "paper: ~250");
  bench::emit_headlines("fig13_slb_replacement");
  return 0;
}
