// Figure 16: PCC violations vs DIP-pool update frequency for Duet
// (Migrate-10min), SilkRoad without TransitTable, and full SilkRoad.
#include "bench_common.h"
#include "core/silkroad_switch.h"
#include "lb/duet.h"
#include "lb/scenario.h"

using namespace silkroad;

namespace {

lb::ScenarioConfig make_pop_scenario(double updates_per_min, double scale,
                                     std::uint64_t seed) {
  // Scaled stand-in for the paper's one-hour PoP trace (149 VIPs, 2.77M new
  // conns/min/ToR peak).
  lb::ScenarioConfig config;
  config.horizon = 6 * sim::kMinute;
  config.seed = seed;
  const int vips = static_cast<int>(10 * scale);
  const double rate = 1500.0 * scale;
  sim::Rng seeder(seed);
  for (int v = 0; v < vips; ++v) {
    const net::Endpoint vip{net::IpAddress::v4(0x14000000 + static_cast<std::uint32_t>(v)), 80};
    config.vip_loads.push_back(
        {vip, rate, workload::FlowProfile::hadoop(), false});
    std::vector<net::Endpoint> dips;
    for (int d = 0; d < 24; ++d) {
      dips.push_back({net::IpAddress::v4(0x0A000000 +
                                         static_cast<std::uint32_t>(v * 256 + d)),
                      20});
    }
    config.dip_pools.push_back(dips);
    workload::UpdateGenerator gen({.seed = seeder.next()}, vip,
                                  config.dip_pools.back());
    auto updates = gen.generate(updates_per_min / vips, config.horizon);
    config.updates.insert(config.updates.end(), updates.begin(), updates.end());
  }
  return config;
}

struct Row {
  double duet;
  double silkroad_no_transit;
  double silkroad;
  std::uint64_t flows;
};

Row run_row(double updates_per_min, double scale) {
  Row row{};
  {
    sim::Simulator sim;
    lb::DuetLoadBalancer duet(
        sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
              .migrate_period = 10 * sim::kMinute});
    lb::Scenario s(sim, duet, make_pop_scenario(updates_per_min, scale, 61));
    const auto st = s.run();
    row.duet = 100.0 * st.violation_fraction;
    row.flows = st.flows;
  }
  const auto run_silkroad = [&](bool transit) {
    sim::Simulator sim;
    core::SilkRoadSwitch::Config config;
    config.conn_table = core::SilkRoadSwitch::conn_table_for(200'000);
    config.learning = {.capacity = 2048, .timeout = sim::kMillisecond};
    config.cpu = {.tasks_per_second = 200'000.0};
    config.use_transit_table = transit;
    core::SilkRoadSwitch sw(sim, config);
    lb::Scenario s(sim, sw, make_pop_scenario(updates_per_min, scale, 61));
    return 100.0 * s.run().violation_fraction;
  };
  row.silkroad_no_transit = run_silkroad(false);
  row.silkroad = run_silkroad(true);
  return row;
}

}  // namespace

int main() {
  const double scale = bench::scale_factor();
  bench::print_header(
      "Figure 16 — PCC violations vs update frequency",
      "at 10 upd/min: Duet breaks 0.08% of connections, SilkRoad w/o "
      "TransitTable 0.00005%, SilkRoad 0 — always 0 up to 50 upd/min");
  std::printf("scale factor %.2f\n\n", scale);
  std::printf("%-10s %12s | %14s %20s %12s\n", "upd/min", "flows", "Duet(%)",
              "SilkRoad-noTT(%)", "SilkRoad(%)");
  for (const double upd : {1.0, 10.0, 20.0, 35.0, 50.0}) {
    const auto row = run_row(upd, scale);
    std::printf("%-10.0f %12llu | %14.4f %20.6f %12.6f\n", upd,
                static_cast<unsigned long long>(row.flows), row.duet,
                row.silkroad_no_transit, row.silkroad);
    if (upd == 50.0) {
      bench::headline("duet_violation_pct_50upd", row.duet);
      bench::headline("silkroad_no_transit_violation_pct_50upd",
                      row.silkroad_no_transit);
      bench::headline("silkroad_violation_pct_50upd", row.silkroad,
                      "paper: 0 up to 50 upd/min");
    }
  }
  std::printf("\nexpected shape: Duet >> SilkRoad-noTT >> SilkRoad == 0\n");
  bench::emit_headlines("fig16_pcc_vs_update_rate");
  return 0;
}
