// §2.2 / §2.3 / §5.2: per-packet load-balancing latency.
//
// The paper's performance argument in one table: SLBs add 50 µs - 1 ms of
// software processing per packet (comparable to the whole datacenter RTT of
// ~250 µs and crushing for 2-5 µs RDMA RTTs); Duet is bimodal (fast switch
// path, software path during updates — 474 µs median under redirection);
// SilkRoad serves every packet in the ASIC at sub-microsecond latency, with
// a rare few-ms slow path for digest-colliding SYNs.
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "core/silkroad_switch.h"
#include "lb/duet.h"
#include "lb/slb.h"

using namespace silkroad;

namespace {

net::Endpoint vip_ep() { return {net::IpAddress::v4(0x14000001), 80}; }

std::vector<net::Endpoint> make_dips(int n) {
  std::vector<net::Endpoint> dips;
  for (int i = 0; i < n; ++i) {
    dips.push_back({net::IpAddress::v4(0x0A000000 + static_cast<std::uint32_t>(i)), 20});
  }
  return dips;
}

struct LatencyStats {
  double p50_us, p99_us, max_us;
};

LatencyStats percentiles(std::vector<sim::Time> samples) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double p) {
    const std::size_t idx = std::min(
        samples.size() - 1, static_cast<std::size_t>(p * samples.size()));
    return static_cast<double>(samples[idx]) / sim::kMicrosecond;
  };
  return {at(0.5), at(0.99), at(0.9999)};
}

template <typename Lb>
LatencyStats measure(Lb& lb, sim::Simulator& sim, bool update_midway) {
  lb.add_vip(vip_ep(), make_dips(16));
  std::vector<sim::Time> latencies;
  for (std::uint32_t i = 0; i < 50'000; ++i) {
    if (update_midway && i == 25'000) {
      lb.request_update({sim.now(), vip_ep(), make_dips(16)[0],
                         workload::UpdateAction::kRemoveDip,
                         workload::UpdateCause::kServiceUpgrade});
    }
    net::Packet p;
    p.flow = {{net::IpAddress::v4(0x0B000000 + i), 1234}, vip_ep(),
              net::Protocol::kTcp};
    p.syn = true;
    p.size_bytes = 200;
    const auto r = lb.process_packet(p);
    if (r.dip) latencies.push_back(r.added_latency);
    if (i % 64 == 0) sim.run_until(sim.now() + sim::kMillisecond);
  }
  sim.run();
  return percentiles(std::move(latencies));
}

}  // namespace

int main() {
  bench::print_header(
      "§2.2/§5.2 — Added load-balancing latency per packet (new connections)",
      "SLB: 50 µs - 1 ms; Duet: switch-fast but software during updates "
      "(median 474 µs under redirection); SilkRoad: sub-µs, every packet");
  std::printf("\n%-26s %12s %12s %14s\n", "balancer", "p50 (µs)", "p99 (µs)",
              "p99.99 (µs)");

  {
    sim::Simulator sim;
    core::SilkRoadSwitch::Config config;
    config.conn_table = core::SilkRoadSwitch::conn_table_for(100'000);
    core::SilkRoadSwitch lb(sim, config);
    const auto s = measure(lb, sim, true);
    std::printf("%-26s %12.2f %12.2f %14.2f\n", "silkroad", s.p50_us, s.p99_us,
                s.max_us);
    bench::headline("silkroad_p50_us", s.p50_us, "paper: sub-µs, every packet");
    bench::headline("silkroad_p99_us", s.p99_us);
  }
  {
    sim::Simulator sim;
    lb::DuetLoadBalancer lb(
        sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
              .migrate_period = 10 * sim::kMinute});
    const auto quiet = measure(lb, sim, false);
    std::printf("%-26s %12.2f %12.2f %14.2f\n", "duet (no updates)",
                quiet.p50_us, quiet.p99_us, quiet.max_us);
  }
  {
    sim::Simulator sim;
    lb::DuetLoadBalancer lb(
        sim, {.policy = lb::DuetLoadBalancer::MigratePolicy::kPeriodic,
              .migrate_period = 10 * sim::kMinute});
    const auto busy = measure(lb, sim, true);
    std::printf("%-26s %12.2f %12.2f %14.2f\n", "duet (update mid-run)",
                busy.p50_us, busy.p99_us, busy.max_us);
  }
  {
    sim::Simulator sim;
    lb::SoftwareLoadBalancer lb;
    const auto s = measure(lb, sim, true);
    std::printf("%-26s %12.2f %12.2f %14.2f\n", "slb (maglev)", s.p50_us,
                s.p99_us, s.max_us);
    bench::headline("slb_p50_us", s.p50_us, "paper: 50 µs - 1 ms software");
  }

  std::printf(
      "\ncontext: median datacenter RTT ~250 µs; RDMA RTT 2-5 µs — only the "
      "sub-µs path stays invisible to both (§2.2)\n");
  bench::emit_headlines("latency_model");
  return 0;
}
